//! Seeded sampling helpers.
//!
//! Only `rand`'s uniform primitives are used; the log-normal, exponential
//! and Zipf samplers are hand-rolled (Box–Muller / inversion / CDF table)
//! to keep the dependency set to the sanctioned crates.

use rand::rngs::StdRng;
use rand::Rng;

/// A standard normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal sample with the given log-space parameters.
pub fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// An exponential sample with the given mean (inversion method).
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// A Zipf sampler over `{0, …, n-1}` with exponent `s`, using a
/// precomputed CDF (exact inversion; n is small in our generators).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler (`n ≥ 1`, `s ≥ 0`; `s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A diurnal start-time profile over one day: a uniform background plus
/// two Gaussian activity peaks (late morning, mid afternoon). This mimics
/// the skewed start-point distribution of the paper's firewall log
/// (Fig. 12a: some hours carry far more connection starts than others).
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Day length in seconds.
    pub day: i64,
    /// Weight of the uniform background in `[0, 1]`.
    pub background: f64,
}

impl DiurnalProfile {
    /// The default profile used by the traffic simulator.
    pub fn new(day: i64) -> Self {
        DiurnalProfile { day, background: 0.3 }
    }

    /// Draws a start timestamp in `[0, day)`.
    pub fn sample(&self, rng: &mut StdRng) -> i64 {
        let day = self.day as f64;
        let t = if rng.gen::<f64>() < self.background {
            rng.gen_range(0.0..day)
        } else {
            // Two peaks at 10:00 and 15:30 (fractions of the day), σ = 1.5 h.
            let (center, sd) = if rng.gen::<f64>() < 0.55 {
                (day * 10.0 / 24.0, day * 1.5 / 24.0)
            } else {
                (day * 15.5 / 24.0, day * 1.5 / 24.0)
            };
            center + sd * standard_normal(rng)
        };
        (t.rem_euclid(day)) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = rng(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_mean_matches_theory() {
        let (mu, sigma) = (2.0, 0.5);
        let mut r = rng(11);
        let n = 50_000;
        let mean = (0..n).map(|_| lognormal(&mut r, mu, sigma)).sum::<f64>() / n as f64;
        let theory = (mu + sigma * sigma / 2.0).exp();
        assert!((mean / theory - 1.0).abs() < 0.05, "mean {mean} vs {theory}");
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut r = rng(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| exponential(&mut r, 5.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut r = rng(5);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9], "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_ish() {
        let z = Zipf::new(4, 0.0);
        let mut r = rng(9);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.1, "{counts:?}");
        }
    }

    #[test]
    fn diurnal_stays_in_day_and_peaks() {
        let day = 86_400;
        let p = DiurnalProfile::new(day);
        let mut r = rng(13);
        let mut hours = [0usize; 24];
        for _ in 0..50_000 {
            let t = p.sample(&mut r);
            assert!((0..day).contains(&t));
            hours[(t * 24 / day) as usize] += 1;
        }
        // The 10:00 peak hour should dominate the 3:00 trough clearly.
        assert!(hours[10] > hours[3] * 3, "{hours:?}");
    }
}
