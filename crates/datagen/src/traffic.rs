//! Simulated network-traffic workload (paper §4.3.1).
//!
//! The paper uses a day of firewall logs from a data-hosting company
//! (≈ 100 M packets → 3,636,814 connections; lengths min 1 s, avg 54 s,
//! max 86,459 s; skewed start points — Fig. 12). That log is proprietary,
//! so this module *simulates* the generating process and then applies the
//! paper's own connection-building rule verbatim:
//!
//! 1. sessions between (client, server) pairs arrive following a diurnal
//!    start profile, with heavy-tailed (log-normal) durations and
//!    exponential packet inter-arrivals inside a session;
//! 2. packets of one (client, server) pair are grouped into *connections*
//!    by the 60-second gap rule: "Only consecutive packets whose
//!    timestamps are within a time interval [0, 60] are grouped";
//! 3. scalability sweeps sample a fraction of the packet log before
//!    building connections, exactly like the paper's 5 %–35 % samples.
//!
//! The simulator is calibrated so the connection-length marginals match
//! the published ones in shape: minimum 1 s, average a few tens of
//! seconds, maximum several orders of magnitude above the average.

use crate::distributions::{exponential, lognormal, DiurnalProfile, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkij_temporal::collection::{CollectionId, IntervalCollection};
use tkij_temporal::interval::Interval;

/// The paper's grouping gap: packets within 60 s belong to the same
/// connection.
pub const CONNECTION_GAP: i64 = 60;

/// One logged packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Client identifier.
    pub client: u32,
    /// Server identifier.
    pub server: u32,
    /// Timestamp in seconds.
    pub ts: i64,
}

/// One connection `[client, server, start, end]` built from the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Client identifier.
    pub client: u32,
    /// Server identifier.
    pub server: u32,
    /// First packet timestamp.
    pub start: i64,
    /// Last packet timestamp.
    pub end: i64,
}

/// Traffic simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of distinct clients.
    pub clients: usize,
    /// Number of distinct servers.
    pub servers: usize,
    /// Number of simulated sessions.
    pub sessions: usize,
    /// Day length in seconds.
    pub day: i64,
    /// Log-space mean of session durations.
    pub len_mu: f64,
    /// Log-space std-dev of session durations (heavy tail).
    pub len_sigma: f64,
    /// Mean packet inter-arrival inside a session, seconds.
    pub packet_gap_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// Calibrated default: connection lengths with min 1 s, average a few
    /// tens of seconds and a max thousands of times larger, like §4.3.1.
    pub fn calibrated(sessions: usize, seed: u64) -> Self {
        TrafficConfig {
            clients: 2_000,
            servers: 200,
            sessions,
            day: 86_400,
            // mean ≈ exp(μ + σ²/2) ≈ exp(2.45 + 1.28) ≈ 42 s, median 11 s.
            len_mu: 2.45,
            len_sigma: 1.6,
            packet_gap_mean: 8.0,
            seed,
        }
    }
}

/// Generates the packet log (sorted by timestamp).
pub fn generate_packets(cfg: &TrafficConfig) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let client_dist = Zipf::new(cfg.clients, 1.1);
    let server_dist = Zipf::new(cfg.servers, 1.2);
    let diurnal = DiurnalProfile::new(cfg.day);
    let mut packets = Vec::new();
    for _ in 0..cfg.sessions {
        let client = client_dist.sample(&mut rng) as u32;
        let server = server_dist.sample(&mut rng) as u32;
        let start = diurnal.sample(&mut rng);
        let duration = lognormal(&mut rng, cfg.len_mu, cfg.len_sigma).round() as i64;
        let duration = duration.clamp(1, cfg.day - 1);
        let end = (start + duration).min(cfg.day - 1);
        // Packets inside the session. Gaps above CONNECTION_GAP split a
        // session into several connections — realistic idle periods.
        let mut t = start;
        packets.push(Packet { client, server, ts: t });
        while t < end {
            let gap = exponential(&mut rng, cfg.packet_gap_mean).ceil() as i64;
            t += gap.max(1);
            if t > end {
                // Sessions always close with a final packet at `end`.
                packets.push(Packet { client, server, ts: end });
                break;
            }
            packets.push(Packet { client, server, ts: t });
        }
        // Occasional long-lived keep-alive flows create the far tail of
        // Fig. 12b (max length ≫ average).
        if rng.gen::<f64>() < 0.001 {
            let long_end = (end + rng.gen_range(10_000i64..40_000)).min(cfg.day - 1);
            let mut t = end;
            while t < long_end {
                t += rng.gen_range(1..CONNECTION_GAP);
                packets.push(Packet { client, server, ts: t.min(long_end) });
            }
        }
    }
    packets.sort_unstable_by_key(|p| (p.ts, p.client, p.server));
    packets
}

/// Keeps each packet with probability `fraction` (the paper's "randomly
/// selected samples on the log file", 5 %–35 %).
pub fn sample_packets(packets: &[Packet], fraction: f64, seed: u64) -> Vec<Packet> {
    assert!((0.0..=1.0).contains(&fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    packets.iter().copied().filter(|_| rng.gen::<f64>() < fraction).collect()
}

/// Builds connections from a packet log with the paper's 60 s gap rule.
pub fn build_connections(packets: &[Packet]) -> Vec<Connection> {
    // Group per (client, server) pair.
    let mut sorted: Vec<Packet> = packets.to_vec();
    sorted.sort_unstable_by_key(|p| (p.client, p.server, p.ts));
    let mut connections = Vec::new();
    let mut current: Option<Connection> = None;
    for p in sorted {
        match current.as_mut() {
            Some(c)
                if c.client == p.client
                    && c.server == p.server
                    && p.ts - c.end <= CONNECTION_GAP =>
            {
                c.end = p.ts;
            }
            _ => {
                if let Some(c) = current.take() {
                    connections.push(c);
                }
                current =
                    Some(Connection { client: p.client, server: p.server, start: p.ts, end: p.ts });
            }
        }
    }
    if let Some(c) = current {
        connections.push(c);
    }
    connections
}

/// Converts connections into an interval collection (ids are positional;
/// the (client, server) attributes are returned alongside for hybrid
/// queries).
pub fn connections_to_collection(
    id: CollectionId,
    connections: &[Connection],
) -> (IntervalCollection, Vec<(u32, u32)>) {
    assert!(!connections.is_empty(), "no connections to convert");
    let intervals = connections
        .iter()
        .enumerate()
        .map(|(i, c)| Interval::new_unchecked(i as u64, c.start, c.end))
        .collect();
    let attrs = connections.iter().map(|c| (c.client, c.server)).collect();
    (IntervalCollection::new(id, intervals).expect("non-empty"), attrs)
}

/// End-to-end convenience: simulate, optionally sample, build connections
/// and return the collection (plus attributes).
pub fn traffic_collection(
    cfg: &TrafficConfig,
    fraction: f64,
    id: CollectionId,
) -> (IntervalCollection, Vec<(u32, u32)>) {
    let packets = generate_packets(cfg);
    let sampled = if fraction >= 1.0 {
        packets
    } else {
        sample_packets(&packets, fraction, cfg.seed.wrapping_add(1))
    };
    let connections = build_connections(&sampled);
    connections_to_collection(id, &connections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_rule_splits_and_merges() {
        let packets = [
            Packet { client: 1, server: 1, ts: 0 },
            Packet { client: 1, server: 1, ts: 50 },
            Packet { client: 1, server: 1, ts: 110 }, // gap 60 → same
            Packet { client: 1, server: 1, ts: 171 }, // gap 61 → new
            Packet { client: 2, server: 1, ts: 55 },  // other pair
        ];
        let mut conns = build_connections(&packets);
        conns.sort_by_key(|c| (c.client, c.start));
        assert_eq!(
            conns,
            vec![
                Connection { client: 1, server: 1, start: 0, end: 110 },
                Connection { client: 1, server: 1, start: 171, end: 171 },
                Connection { client: 2, server: 1, start: 55, end: 55 },
            ]
        );
    }

    #[test]
    fn connection_lengths_match_paper_shape() {
        let cfg = TrafficConfig::calibrated(20_000, 4242);
        let (coll, _) = traffic_collection(&cfg, 1.0, CollectionId(0));
        let stats = coll.stats();
        assert!(stats.min_length >= 0);
        assert!(
            (10..=120).contains(&stats.avg_length),
            "avg length {} outside a plausible band around the paper's 54 s",
            stats.avg_length
        );
        assert!(
            stats.max_length > stats.avg_length * 50,
            "heavy tail expected: max {} vs avg {}",
            stats.max_length,
            stats.avg_length
        );
    }

    #[test]
    fn sampling_shrinks_connection_count() {
        let cfg = TrafficConfig::calibrated(8_000, 99);
        let packets = generate_packets(&cfg);
        let full = build_connections(&packets).len();
        let sampled = build_connections(&sample_packets(&packets, 0.2, 7)).len();
        assert!(sampled < full, "{sampled} !< {full}");
        assert!(sampled > 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = TrafficConfig::calibrated(2_000, 5);
        let packets = generate_packets(&cfg);
        let a = sample_packets(&packets, 0.3, 11);
        let b = sample_packets(&packets, 0.3, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn collection_ids_positional_and_attrs_aligned() {
        let conns = vec![
            Connection { client: 9, server: 2, start: 5, end: 10 },
            Connection { client: 3, server: 4, start: 7, end: 7 },
        ];
        let (coll, attrs) = connections_to_collection(CollectionId(1), &conns);
        assert_eq!(coll.intervals()[0].id, 0);
        assert_eq!(coll.intervals()[1].id, 1);
        assert_eq!(attrs, vec![(9, 2), (3, 4)]);
    }

    #[test]
    fn packets_sorted_by_timestamp() {
        let cfg = TrafficConfig::calibrated(1_000, 17);
        let packets = generate_packets(&cfg);
        assert!(packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(packets.len() > 1_000, "multiple packets per session");
    }
}
