//! Percentage histograms, the presentation used by the paper's Fig. 12
//! ("Network Traffic Data Distribution": x-axis as % of the maximum
//! value, y-axis as % of tuples, log scale for lengths).

/// One histogram row: bin upper edge as a percentage of the maximum
/// value, and the percentage of tuples falling in the bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentBin {
    /// Upper edge of the bin, in percent of the maximum observed value.
    pub upper_pct: f64,
    /// Share of tuples in the bin, in percent.
    pub tuples_pct: f64,
}

/// Builds a percent-of-max histogram with `bins` equal-width bins.
///
/// Empty inputs produce an empty histogram; a constant input puts 100 %
/// of tuples in the last bin.
pub fn percent_histogram(values: &[i64], bins: usize) -> Vec<PercentBin> {
    assert!(bins >= 1);
    if values.is_empty() {
        return Vec::new();
    }
    let max = values.iter().copied().max().expect("non-empty") as f64;
    let mut counts = vec![0u64; bins];
    for &v in values {
        let frac = if max > 0.0 { v as f64 / max } else { 1.0 };
        let idx = ((frac * bins as f64) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let total = values.len() as f64;
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| PercentBin {
            upper_pct: (i + 1) as f64 * 100.0 / bins as f64,
            tuples_pct: c as f64 * 100.0 / total,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_empty_histogram() {
        assert!(percent_histogram(&[], 10).is_empty());
    }

    #[test]
    fn bins_partition_percentages() {
        let values: Vec<i64> = (1..=100).collect();
        let h = percent_histogram(&values, 10);
        assert_eq!(h.len(), 10);
        let total: f64 = h.iter().map(|b| b.tuples_pct).sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Uniform 1..=100 into 10 bins: ≈ 10 % per bin (edge effects put
        // the max value into the last bin).
        for b in &h {
            assert!((b.tuples_pct - 10.0).abs() <= 1.0 + 1e-9, "{h:?}");
        }
        assert!((h[9].upper_pct - 100.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_input_concentrates_low_bins() {
        // 99 short values and one huge: everything but one lands in bin 0.
        let mut values = vec![1i64; 99];
        values.push(10_000);
        let h = percent_histogram(&values, 10);
        assert!((h[0].tuples_pct - 99.0).abs() < 1e-9);
        assert!((h[9].tuples_pct - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_input_lands_in_last_bin() {
        let h = percent_histogram(&[5, 5, 5], 4);
        assert!((h[3].tuples_pct - 100.0).abs() < 1e-9);
    }
}
