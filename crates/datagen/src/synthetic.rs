//! Synthetic interval workload (paper §4.2).
//!
//! "We use a pseudo-random uniform generator to get intervals' startpoints
//! and lengths in specified ranges (respectively s = [0, 10⁵] and
//! w = [1, 100]). Intervals' endpoints are integers."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkij_temporal::collection::{CollectionId, IntervalCollection};
use tkij_temporal::interval::Interval;

/// Parameters of the uniform generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of intervals `|C_i|`.
    pub size: usize,
    /// Inclusive startpoint range (the paper's `s = [0, 10⁵]`).
    pub start_range: (i64, i64),
    /// Inclusive length range (the paper's `w = [1, 100]`).
    pub length_range: (i64, i64),
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's parameters at a given size and seed.
    pub fn paper(size: usize, seed: u64) -> Self {
        SyntheticConfig { size, start_range: (0, 100_000), length_range: (1, 100), seed }
    }
}

/// Generates one collection.
pub fn uniform_collection(id: CollectionId, cfg: &SyntheticConfig) -> IntervalCollection {
    assert!(cfg.size > 0, "cannot generate an empty collection");
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let intervals = (0..cfg.size)
        .map(|i| {
            let start = rng.gen_range(cfg.start_range.0..=cfg.start_range.1);
            let len = rng.gen_range(cfg.length_range.0..=cfg.length_range.1);
            Interval::new_unchecked(i as u64, start, start + len)
        })
        .collect();
    IntervalCollection::new(id, intervals).expect("size > 0")
}

/// Generates `m` collections with the paper's parameters, sizes `size`
/// each, deterministically derived from `seed`.
pub fn uniform_collections(m: usize, size: usize, seed: u64) -> Vec<IntervalCollection> {
    (0..m as u32)
        .map(|i| uniform_collection(CollectionId(i), &SyntheticConfig::paper(size, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_ranges() {
        let cfg = SyntheticConfig::paper(5_000, 42);
        let c = uniform_collection(CollectionId(0), &cfg);
        assert_eq!(c.len(), 5_000);
        for iv in c.intervals() {
            assert!((0..=100_000).contains(&iv.start));
            assert!((1..=100).contains(&iv.length()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::paper(100, 7);
        let a = uniform_collection(CollectionId(0), &cfg);
        let b = uniform_collection(CollectionId(0), &cfg);
        assert_eq!(a, b);
        let c = uniform_collection(CollectionId(0), &SyntheticConfig::paper(100, 8));
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn collections_differ_by_id() {
        let cs = uniform_collections(3, 50, 1);
        assert_eq!(cs.len(), 3);
        assert_ne!(cs[0].intervals(), cs[1].intervals());
        assert_eq!(cs[2].id, CollectionId(2));
    }

    #[test]
    fn ids_are_dense_from_zero() {
        let c = uniform_collection(CollectionId(0), &SyntheticConfig::paper(10, 3));
        let ids: Vec<u64> = c.intervals().iter().map(|i| i.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn startpoint_spread_is_uniform_ish() {
        let c = uniform_collection(CollectionId(0), &SyntheticConfig::paper(20_000, 9));
        let below_half =
            c.intervals().iter().filter(|i| i.start < 50_000).count() as f64 / 20_000.0;
        assert!((below_half - 0.5).abs() < 0.02, "fraction {below_half}");
    }
}
