//! # tkij-datagen — workload generators for the TKIJ evaluation
//!
//! Two data sources drive the paper's experiments (§4):
//!
//! * [`synthetic`] — the uniform generator of §4.2 (startpoints in
//!   `[0, 10⁵]`, lengths in `[1, 100]`, integer endpoints);
//! * [`traffic`] — a simulator standing in for the proprietary firewall
//!   log of §4.3: packet logs with diurnal arrivals and heavy-tailed
//!   session lengths, grouped into connections with the paper's exact
//!   60-second gap rule, with packet-level sampling for the scalability
//!   sweeps. See DESIGN.md for the substitution rationale.
//!
//! [`histogram`] renders Fig. 12-style percent-of-max distributions and
//! [`distributions`] holds the seeded samplers. Everything is
//! deterministic given a seed.

pub mod distributions;
pub mod histogram;
pub mod synthetic;
pub mod traffic;

pub use histogram::{percent_histogram, PercentBin};
pub use synthetic::{uniform_collection, uniform_collections, SyntheticConfig};
pub use traffic::{
    build_connections, connections_to_collection, generate_packets, sample_packets,
    traffic_collection, Connection, Packet, TrafficConfig, CONNECTION_GAP,
};
