//! # tkij-core — Top-K Interval Joins
//!
//! The reference implementation of **TKIJ** (Pilourdault, Leroy,
//! Amer-Yahia: *Distributed Evaluation of Top-k Temporal Joins*,
//! SIGMOD 2016): exact top-k evaluation of n-ary Ranked Temporal Join
//! queries on a Map-Reduce substrate.
//!
//! The pipeline follows the paper's Fig. 5:
//!
//! 1. **Statistics collection** ([`stats`], offline): one bucket matrix
//!    per collection over `g` uniform time granules.
//! 2. **TopBuckets** ([`topbuckets`], per query): solver-backed score
//!    bounds on bucket combinations and the `getTopBuckets` pruning of
//!    Algorithm 1, under the `brute-force` / `loose` / `two-phase`
//!    strategies of Algorithm 2.
//! 3. **DistributeTopBuckets** ([`mod@distribute`]): Algorithms 3–4, plus the
//!    LPT baseline of §4.2.2.
//! 4. **Distributed join** ([`joinphase`], [`localjoin`]): per-reducer
//!    rank-joins with R-tree threshold access and early termination.
//! 5. **Merge** ([`merge`]): the final global top-k.
//!
//! The [`Tkij`] engine ties the phases together and emits an
//! [`ExecutionReport`] carrying every statistic the paper's evaluation
//! plots. [`naive`] provides the exhaustive oracle used to verify the
//! engine's exactness guarantee. [`hybrid`] implements the paper's
//! future-work extension: attribute constraints alongside temporal
//! predicates.
//!
//! For long-lived deployments, [`serving`] splits the lifecycle into a
//! *prepare* phase (statistics + immutable shared state) and a *query*
//! phase any number of threads run concurrently — with a plan cache and
//! a shared index pool, both bit-transparent to results and counters.

#![warn(missing_docs)]

pub mod combos;
pub mod config;
pub mod distribute;
pub mod engine;
pub mod hybrid;
pub mod joinphase;
pub mod localjoin;
pub mod merge;
pub mod naive;
pub mod plancache;
pub mod serving;
pub mod stats;
pub mod topbuckets;

pub use combos::{ComboSet, TopBucketsStats, VertexBuckets};
pub use config::{
    DistributionPolicy, LocalJoinBackend, ParseVariantError, Strategy, SweepScanKind, TkijConfig,
};
pub use distribute::{distribute, Assignment};
pub use engine::{DistributionSummary, ExecutionReport, QueryPlan, Tkij};
pub use joinphase::{run_join_phase, run_join_phase_pooled, run_join_phase_with, ReducerOutput};
pub use localjoin::{
    local_topk_join, local_topk_join_on, local_topk_join_planned, local_topk_join_pooled,
    select_backend, AutoIndex, BackendChoices, IndexPools, IntraJoin, LocalJoinStats,
    AUTO_DENSITY_THRESHOLD, AUTO_RTREE_BAND_MIN_DENSITY, AUTO_RTREE_MIN_CARDINALITY,
    INTRA_WAVE_CHUNKS, PROBE_CHUNK_ITEMS,
};
pub use merge::run_merge_phase;
pub use naive::{all_pair_scores, naive_boolean, naive_topk};
pub use plancache::PlanCache;
pub use serving::{LatencySnapshot, PlanKey, QueryHandle, ServingStats, TkijServer};
pub use stats::{collect_statistics, BucketProfile, DensityMatrix, PreparedDataset};
pub use topbuckets::{get_top_buckets, run_topbuckets};
// The out-of-core shuffle vocabulary callers need to read
// `ExecutionReport::shuffle_stats` or select a transport explicitly.
pub use tkij_mapreduce::{ShuffleMode, ShuffleStats, SpillSinkKind, SPILL_THRESHOLD_ENV};
