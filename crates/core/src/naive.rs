//! Reference evaluators: exhaustive enumeration of every tuple.
//!
//! These are the correctness oracles for TKIJ (whose central guarantee is
//! *exact* top-k answers) and for the Boolean baselines. They are also the
//! generators behind Fig. 7 (score distribution of all pairs).

use tkij_temporal::collection::IntervalCollection;
use tkij_temporal::interval::Interval;
use tkij_temporal::query::Query;
use tkij_temporal::result::{MatchTuple, TopK};

/// Visits every tuple of the cartesian product of the vertex collections.
fn for_each_tuple(data: &[&IntervalCollection], mut visit: impl FnMut(&[Interval])) {
    let n = data.len();
    if data.iter().any(|c| c.is_empty()) {
        return;
    }
    let mut idx = vec![0usize; n];
    let mut tuple: Vec<Interval> =
        idx.iter().enumerate().map(|(v, &i)| data[v].intervals()[i]).collect();
    loop {
        visit(&tuple);
        let mut v = n - 1;
        loop {
            idx[v] += 1;
            if idx[v] < data[v].len() {
                tuple[v] = data[v].intervals()[idx[v]];
                break;
            }
            idx[v] = 0;
            tuple[v] = data[v].intervals()[0];
            if v == 0 {
                return;
            }
            v -= 1;
        }
    }
}

/// Exhaustive exact top-k: scores every tuple and keeps the best `k`
/// under the deterministic [`TopK`] order. Exponential — test/bench scale
/// only.
pub fn naive_topk(query: &Query, data: &[&IntervalCollection], k: usize) -> Vec<MatchTuple> {
    assert_eq!(data.len(), query.n(), "one collection per vertex");
    let mut top = TopK::new(k);
    for_each_tuple(data, |tuple| {
        let score = query.score_tuple(tuple);
        // Cheap admission pre-check to keep the oracle usable at bench
        // scale; TopK re-checks deterministically.
        if score >= top.admission_score() {
            top.offer(MatchTuple::new(tuple.iter().map(|iv| iv.id).collect(), score));
        }
    });
    top.into_sorted_vec()
}

/// Exhaustive exact top-k restricted to tuples accepted by `admit` —
/// the oracle for hybrid (attribute-constrained) queries.
pub fn naive_topk_where(
    query: &Query,
    data: &[&IntervalCollection],
    k: usize,
    mut admit: impl FnMut(&[Interval]) -> bool,
) -> Vec<MatchTuple> {
    assert_eq!(data.len(), query.n());
    let mut top = TopK::new(k);
    for_each_tuple(data, |tuple| {
        if admit(tuple) {
            let score = query.score_tuple(tuple);
            top.offer(MatchTuple::new(tuple.iter().map(|iv| iv.id).collect(), score));
        }
    });
    top.into_sorted_vec()
}

/// Exhaustive Boolean join: ids of every tuple satisfying all edge
/// predicates crisply, in lexicographic id order.
pub fn naive_boolean(query: &Query, data: &[&IntervalCollection]) -> Vec<Vec<u64>> {
    assert_eq!(data.len(), query.n());
    let mut out = Vec::new();
    for_each_tuple(data, |tuple| {
        if query.holds_boolean(tuple) {
            out.push(tuple.iter().map(|iv| iv.id).collect());
        }
    });
    out.sort();
    out
}

/// All pairwise scores of a single scored predicate over two collections,
/// descending — the series plotted in Fig. 7.
pub fn all_pair_scores(
    predicate: &tkij_temporal::predicate::TemporalPredicate,
    left: &IntervalCollection,
    right: &IntervalCollection,
) -> Vec<f64> {
    let mut scores = Vec::with_capacity(left.len() * right.len());
    for x in left.intervals() {
        for y in right.intervals() {
            scores.push(predicate.score(x, y));
        }
    }
    scores.sort_by(|a, b| b.total_cmp(a));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::collection::CollectionId;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::predicate::TemporalPredicate;
    use tkij_temporal::query::table1;

    fn coll(id: u32, ivs: &[(i64, i64)]) -> IntervalCollection {
        IntervalCollection::new(
            CollectionId(id),
            ivs.iter()
                .enumerate()
                .map(|(i, (s, e))| Interval::new(i as u64, *s, *e).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn topk_orders_by_score_then_ids() {
        let q = table1::q_bb(PredicateParams::new(0, 0, 0, 10));
        let c1 = coll(0, &[(0, 10)]);
        let c2 = coll(1, &[(15, 20), (30, 40)]);
        let c3 = coll(2, &[(50, 60)]);
        let top = naive_topk(&q, &[&c1, &c2, &c3], 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        // (0, 1, 0): gaps 10 and 10 → both saturate ρ=10 → score 1.
        assert_eq!(top[0].ids, vec![0, 1, 0]);
        assert!((top[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boolean_join_matches_hand_count() {
        let q = table1::q_bb(PredicateParams::PB);
        let c1 = coll(0, &[(0, 10), (0, 50)]);
        let c2 = coll(1, &[(15, 20)]);
        let c3 = coll(2, &[(25, 30), (10, 12)]);
        // before(x1, x2): only id 0 of c1. before(x2, x3): only id 0 of c3.
        let matches = naive_boolean(&q, &[&c1, &c2, &c3]);
        assert_eq!(matches, vec![vec![0, 0, 0]]);
    }

    #[test]
    fn pair_scores_sorted_desc_and_complete() {
        let pred = TemporalPredicate::meets(PredicateParams::new(4, 8, 0, 0));
        let c1 = coll(0, &[(0, 10), (0, 20)]);
        let c2 = coll(1, &[(10, 30), (100, 110)]);
        let scores = all_pair_scores(&pred, &c1, &c2);
        assert_eq!(scores.len(), 4);
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(scores[0], 1.0);
        assert_eq!(scores[3], 0.0);
    }

    #[test]
    fn k_larger_than_result_space() {
        let q = table1::q_bb(PredicateParams::P1);
        let c = coll(0, &[(0, 5), (10, 15)]);
        let top = naive_topk(&q, &[&c, &c, &c], 100);
        assert_eq!(top.len(), 8, "2³ tuples in total");
    }
}
