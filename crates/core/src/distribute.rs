//! Workload distribution: `DistributeTopBuckets` (paper Algorithms 3–4)
//! and the LPT baseline of §4.2.2.
//!
//! DTB walks `Ω_{k,S}` in descending upper-bound order so that every
//! reducer receives a fair share of *high-scoring* combinations (which is
//! what lets local top-k joins terminate early), balances worst-case load
//! with the `2 × avgRes` cap, and secondarily minimizes replication by
//! favoring reducers that already hold a combination's buckets.
//!
//! **A note on `inCost`.** The paper's Algorithm 4 defines
//! `inCost(r_j, ω) = Σ |b| · Φ(r_j, b)` with `Φ = 1` if `b` was *already*
//! assigned to `r_j` — but minimizing that expression would pick the
//! reducer with the least overlap, contradicting both the surrounding
//! prose ("selects the reducer that was already assigned the largest
//! fraction of current ω") and the stated goal ("favors assignments that
//! reduce replication cost"). We therefore implement the evident intent:
//! `inCost` charges the buckets **not yet** present on the reducer (the
//! new input that the assignment would ship), and picks the minimum.

use crate::combos::ComboSet;
use crate::config::DistributionPolicy;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use tkij_temporal::bucket::{BucketId, BucketMatrix};
use tkij_temporal::query::Query;

/// A (query vertex, bucket) pair — the unit of data shipment: an interval
/// is sent to a reducer once per vertex role whose bucket the reducer
/// needs.
pub type VertexBucket = (u16, BucketId);

/// The output of workload distribution: which reducer processes each
/// combination, and which reducers need each (vertex, bucket).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Number of reducers `r`.
    pub num_reducers: usize,
    /// Reducer of each combination (indexed like the input `ComboSet`).
    pub combo_reducer: Vec<u32>,
    /// Combinations per reducer, in assignment order (descending UB for
    /// DTB).
    pub reducer_combos: Vec<Vec<u32>>,
    /// Potential results (`Σ nbRes`) per reducer.
    pub reducer_results: Vec<u128>,
    /// The shipment map `M`: reducers needing each (vertex, bucket),
    /// sorted and deduplicated.
    pub bucket_map: BTreeMap<VertexBucket, Vec<u32>>,
    /// Σ over (vertex, bucket) of `|b| × #reducers` — the records the
    /// join-phase shuffle will move.
    pub estimated_shuffle_records: u64,
    /// `estimated_shuffle_records / Σ |b|` over distinct needed buckets:
    /// the average number of reducers each needed record is shipped to.
    pub replication_factor: f64,
    /// (combo, reducer) candidacies scored while assigning: DTB counts
    /// every eligible reducer whose input cost was evaluated, LPT every
    /// reducer scanned by its least-loaded search. Deterministic work
    /// counter of the distribution phase.
    pub assignments_scored: u64,
    /// Times the `2 × avgRes` worst-case cap excluded every reducer and
    /// the least-loaded fallback decided (Algorithm 4's degenerate case).
    pub cap_fallbacks: u64,
    /// Wall time of the distribution phase.
    pub duration: Duration,
}

impl Assignment {
    /// Worst-case result imbalance: `max / avg` of `reducer_results`
    /// (over reducers that received work).
    pub fn result_imbalance(&self) -> f64 {
        let max = self.reducer_results.iter().copied().max().unwrap_or(0);
        let busy = self.reducer_results.iter().filter(|&&r| r > 0).count();
        if busy == 0 {
            return 1.0;
        }
        let avg = self.reducer_results.iter().sum::<u128>() as f64 / self.num_reducers as f64;
        if avg <= 0.0 {
            1.0
        } else {
            max as f64 / avg
        }
    }
}

/// Distributes `Ω_{k,S}` over `r` reducers with the chosen policy.
pub fn distribute(
    combos: &ComboSet,
    policy: DistributionPolicy,
    r: usize,
    query: &Query,
    matrices: &[BucketMatrix],
) -> Assignment {
    assert!(r >= 1, "need at least one reducer");
    // tkij-lint: allow(DET002) -- feeds only Assignment::duration, a timing artifact
    let started = Instant::now();
    let order = match policy {
        // Alg. 3 line 1: descending score upper-bound.
        DistributionPolicy::Dtb => combos.indices_by_ub_desc(),
        // LPT: descending number of results.
        DistributionPolicy::Lpt => combos.indices_by_nbres_desc(),
    };
    let total: u128 = combos.total_results();
    let avg_res = total as f64 / r as f64; // Alg. 3 line 2

    let mut combo_reducer = vec![0u32; combos.len()];
    let mut reducer_combos: Vec<Vec<u32>> = vec![Vec::new(); r];
    let mut reducer_results: Vec<u128> = vec![0; r];
    let mut assigned: BTreeMap<VertexBucket, Vec<u32>> = BTreeMap::new();
    let mut assignments_scored = 0u64;
    let mut cap_fallbacks = 0u64;
    let bucket_count =
        |v: usize, b: BucketId| -> u64 { matrices[query.vertices[v].0 as usize].count(b) };

    for &ci in &order {
        let ci = ci as usize;
        let buckets = combos.buckets(ci);
        let rj = match policy {
            DistributionPolicy::Dtb => {
                let pick = get_reducer(
                    buckets,
                    avg_res,
                    &reducer_combos,
                    &reducer_results,
                    &assigned,
                    &bucket_count,
                );
                assignments_scored += pick.scored;
                cap_fallbacks += pick.fell_back as u64;
                pick.reducer
            }
            DistributionPolicy::Lpt => {
                // Least loaded by potential results; ties → lowest index.
                assignments_scored += r as u64;
                (0..r).min_by_key(|&j| (reducer_results[j], j)).expect("r ≥ 1")
            }
        };
        combo_reducer[ci] = rj as u32;
        reducer_combos[rj].push(ci as u32);
        reducer_results[rj] += combos.nb_res(ci) as u128;
        for (v, &b) in buckets.iter().enumerate() {
            let entry = assigned.entry((v as u16, b)).or_default();
            if !entry.contains(&(rj as u32)) {
                entry.push(rj as u32);
            }
        }
    }

    // Shipment statistics.
    let mut shuffle = 0u64;
    let mut distinct = 0u64;
    for (&(v, b), reducers) in &assigned {
        let c = bucket_count(v as usize, b);
        shuffle += c * reducers.len() as u64;
        distinct += c;
    }
    let mut bucket_map = assigned;
    for v in bucket_map.values_mut() {
        v.sort_unstable();
    }
    Assignment {
        num_reducers: r,
        combo_reducer,
        reducer_combos,
        reducer_results,
        bucket_map,
        estimated_shuffle_records: shuffle,
        replication_factor: if distinct == 0 { 1.0 } else { shuffle as f64 / distinct as f64 },
        assignments_scored,
        cap_fallbacks,
        duration: started.elapsed(),
    }
}

/// One `getReducer` decision plus its work accounting.
struct ReducerPick {
    /// The chosen reducer.
    reducer: usize,
    /// Candidate reducers whose assignment was scored (cost evaluations,
    /// or reducers scanned by a fallback search).
    scored: u64,
    /// Whether the `2 × avgRes` cap excluded everyone.
    fell_back: bool,
}

/// Algorithm 4 (`getReducer`): among reducers under the `2 × avgRes`
/// worst-case cap, pick those with the fewest assigned combinations, then
/// minimize the new-input cost; ties break on the lowest index. Falls
/// back to the least-loaded reducer if the cap excludes everyone.
fn get_reducer(
    buckets: &[BucketId],
    avg_res: f64,
    reducer_combos: &[Vec<u32>],
    reducer_results: &[u128],
    assigned: &BTreeMap<VertexBucket, Vec<u32>>,
    bucket_count: &dyn Fn(usize, BucketId) -> u64,
) -> ReducerPick {
    let r = reducer_combos.len();
    let eligible =
        |j: usize| -> bool { (reducer_results[j] as f64) < 2.0 * avg_res || avg_res == 0.0 };
    // Lines 1–4: minimum number of assigned combinations among eligible.
    let min_assigned = (0..r).filter(|&j| eligible(j)).map(|j| reducer_combos[j].len()).min();
    let Some(min_assigned) = min_assigned else {
        // Every reducer is past the cap: least-loaded fallback.
        let reducer = (0..r).min_by_key(|&j| (reducer_results[j], j)).expect("r ≥ 1");
        return ReducerPick { reducer, scored: r as u64, fell_back: true };
    };
    // Lines 5–10: minimize the cost of input not yet present.
    let mut best = usize::MAX;
    let mut best_cost = u64::MAX;
    let mut scored = 0u64;
    for (j, combos_j) in reducer_combos.iter().enumerate() {
        if !eligible(j) || combos_j.len() != min_assigned {
            continue;
        }
        scored += 1;
        let mut cost = 0u64;
        for (v, &b) in buckets.iter().enumerate() {
            let already = assigned.get(&(v as u16, b)).is_some_and(|rs| rs.contains(&(j as u32)));
            if !already {
                cost += bucket_count(v, b);
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = j;
        }
    }
    debug_assert!(best != usize::MAX);
    ReducerPick { reducer: best, scored, fell_back: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistributionPolicy::{Dtb, Lpt};
    use tkij_temporal::aggregate::Aggregation;
    use tkij_temporal::collection::CollectionId;
    use tkij_temporal::granule::TimePartitioning;
    use tkij_temporal::interval::Interval;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::predicate::TemporalPredicate;
    use tkij_temporal::query::QueryEdge;

    /// Two-vertex query over one shared collection with intervals placed
    /// so each diagonal bucket (g, g) holds `per_bucket` intervals.
    fn setup(per_bucket: u64, granules: u32) -> (Query, Vec<BucketMatrix>) {
        let part = TimePartitioning::from_range(0, granules as i64 * 10 - 1, granules).unwrap();
        let mut intervals = Vec::new();
        let mut id = 0;
        for g in 0..granules as i64 {
            for _ in 0..per_bucket {
                intervals.push(Interval::new(id, g * 10 + 1, g * 10 + 5).unwrap());
                id += 1;
            }
        }
        let m = BucketMatrix::build(part, &intervals);
        let q = Query::new(
            vec![CollectionId(0), CollectionId(0)],
            vec![QueryEdge {
                src: 0,
                dst: 1,
                predicate: TemporalPredicate::meets(PredicateParams::P1),
            }],
            Aggregation::NormalizedSum,
        )
        .unwrap();
        (q, vec![m])
    }

    fn combos_with_bounds(granules: u32, per_bucket: u64) -> ComboSet {
        // One combination per (g, g) diagonal pair, UB descending in g.
        let mut set = ComboSet::new(2);
        for g in 0..granules {
            let b = BucketId::new(g, g);
            set.push(&[b, b], per_bucket * per_bucket, 0.1, 1.0 - g as f64 * 0.01);
        }
        set
    }

    #[test]
    fn every_combo_assigned_exactly_once() {
        let (q, m) = setup(3, 8);
        let combos = combos_with_bounds(8, 3);
        for policy in [Dtb, Lpt] {
            let a = distribute(&combos, policy, 4, &q, &m);
            assert_eq!(a.combo_reducer.len(), combos.len());
            let spread: usize = a.reducer_combos.iter().map(Vec::len).sum();
            assert_eq!(spread, combos.len());
            // Reducer lists and combo_reducer agree.
            for (rj, list) in a.reducer_combos.iter().enumerate() {
                for &ci in list {
                    assert_eq!(a.combo_reducer[ci as usize] as usize, rj);
                }
            }
        }
    }

    #[test]
    fn bucket_map_covers_all_combo_buckets() {
        let (q, m) = setup(2, 6);
        let combos = combos_with_bounds(6, 2);
        let a = distribute(&combos, Dtb, 3, &q, &m);
        for ci in 0..combos.len() {
            let rj = a.combo_reducer[ci];
            for (v, &b) in combos.buckets(ci).iter().enumerate() {
                let rs = &a.bucket_map[&(v as u16, b)];
                assert!(rs.contains(&rj), "combo {ci}: bucket missing its reducer");
                assert!(rs.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            }
        }
    }

    #[test]
    fn dtb_spreads_top_combos_breadth_first() {
        // With equal nbRes, the first r combinations (highest UB) must go
        // to r distinct reducers: that is the even spread of high-scoring
        // results the paper argues for.
        let (q, m) = setup(2, 8);
        let combos = combos_with_bounds(8, 2);
        let a = distribute(&combos, Dtb, 4, &q, &m);
        let order = combos.indices_by_ub_desc();
        let first_four: std::collections::BTreeSet<u32> =
            order[..4].iter().map(|&i| a.combo_reducer[i as usize]).collect();
        assert_eq!(first_four.len(), 4, "top-UB combos must hit distinct reducers");
    }

    #[test]
    fn dtb_prefers_overlapping_reducer() {
        // 3 combos: A = (b0, b1), B = (b2, b3), C = (b0, b1) again.
        // With 2 reducers: A → r0, B → r1 (fewest combos), C ties on
        // |Ω_rj| = 1 and must co-locate with A (zero new input) on r0.
        let (q, m) = setup(2, 8);
        let mut set = ComboSet::new(2);
        set.push(&[BucketId::new(0, 0), BucketId::new(1, 1)], 4, 0.0, 0.9);
        set.push(&[BucketId::new(2, 2), BucketId::new(3, 3)], 4, 0.0, 0.8);
        set.push(&[BucketId::new(0, 0), BucketId::new(1, 1)], 4, 0.0, 0.7);
        let a = distribute(&set, Dtb, 2, &q, &m);
        assert_eq!(a.combo_reducer[0], a.combo_reducer[2], "C co-locates with A");
        assert_ne!(a.combo_reducer[0], a.combo_reducer[1]);
        // No replication happened: each bucket lives on exactly 1 reducer.
        assert!((a.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dtb_worst_case_cap_diverts_large_loads() {
        // One giant combination (UB highest) then many small ones; the
        // giant's reducer is past 2×avg and must receive nothing else.
        let (q, m) = setup(2, 8);
        let mut set = ComboSet::new(2);
        set.push(&[BucketId::new(0, 0), BucketId::new(0, 0)], 1_000_000, 0.5, 1.0);
        for g in 1..8 {
            let b = BucketId::new(g, g);
            set.push(&[b, b], 4, 0.1, 0.9 - g as f64 * 0.01);
        }
        let a = distribute(&set, Dtb, 4, &q, &m);
        let giant_reducer = a.combo_reducer[0] as usize;
        assert_eq!(a.reducer_combos[giant_reducer].len(), 1, "cap must divert small combos");
    }

    #[test]
    fn lpt_assigns_to_least_loaded_by_results() {
        let (q, m) = setup(2, 8);
        let mut set = ComboSet::new(2);
        set.push(&[BucketId::new(0, 0), BucketId::new(0, 0)], 100, 0.0, 1.0);
        set.push(&[BucketId::new(1, 1), BucketId::new(1, 1)], 60, 0.0, 0.9);
        set.push(&[BucketId::new(2, 2), BucketId::new(2, 2)], 50, 0.0, 0.8);
        let a = distribute(&set, Lpt, 2, &q, &m);
        // LPT order: 100 → r0, 60 → r1, 50 → r1 (60+50=110 vs 100... no:
        // after 100→r0 and 60→r1, least loaded is r1 (60 < 100) → 50→r1).
        assert_eq!(a.reducer_results[a.combo_reducer[0] as usize], 100);
        assert_eq!(a.combo_reducer[1], a.combo_reducer[2]);
    }

    #[test]
    fn shuffle_estimates_count_replication() {
        let (q, m) = setup(3, 8); // 3 intervals per diagonal bucket
        let mut set = ComboSet::new(2);
        // Same bucket pair assigned twice to different reducers via cap=0?
        // Simpler: two combos sharing bucket (0,0) on vertex 0 but
        // differing on vertex 1 → if they land on different reducers,
        // bucket (0,0) ships twice.
        set.push(&[BucketId::new(0, 0), BucketId::new(1, 1)], 9, 0.0, 1.0);
        set.push(&[BucketId::new(0, 0), BucketId::new(2, 2)], 9, 0.0, 0.9);
        let a = distribute(&set, Dtb, 2, &q, &m);
        // Vertex-0 bucket (0,0) is needed by both reducers (breadth-first
        // spread on |Ω_rj| wins over inCost here).
        assert_eq!(a.bucket_map[&(0u16, BucketId::new(0, 0))].len(), 2);
        // Records: (0,0)×2 reducers ×3 + (1,1)×3 + (2,2)×3 = 12.
        assert_eq!(a.estimated_shuffle_records, 12);
        assert!((a.replication_factor - 12.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn work_counters_are_filled_and_bounded() {
        let (q, m) = setup(2, 8);
        let combos = combos_with_bounds(8, 2);
        for policy in [Dtb, Lpt] {
            let a = distribute(&combos, policy, 4, &q, &m);
            assert!(a.assignments_scored > 0, "{policy:?}");
            // Never more candidacies than combos × reducers.
            assert!(a.assignments_scored <= combos.len() as u64 * 4, "{policy:?}");
            assert_eq!(a.cap_fallbacks, 0, "{policy:?}: balanced load never trips the cap");
        }
        // LPT scans every reducer for every combination, exactly.
        let lpt = distribute(&combos, Lpt, 4, &q, &m);
        assert_eq!(lpt.assignments_scored, combos.len() as u64 * 4);
    }

    #[test]
    fn cap_fallback_path_is_counted() {
        // Through `distribute` the fallback is unreachable (all reducers
        // past 2×avgRes would sum past the total), so `cap_fallbacks`
        // gates as a constant 0 — but the defensive path itself must
        // still decide correctly. Exercise it directly with a doctored
        // load vector where every reducer is past the cap.
        let (_, m) = setup(2, 8);
        let bucket_count = |v: usize, b: BucketId| -> u64 {
            let _ = v;
            m[0].count(b)
        };
        let pick = get_reducer(
            &[BucketId::new(0, 0), BucketId::new(1, 1)],
            1.0, // avg 1 → cap 2; both reducers are far past it
            &[vec![0], vec![1]],
            &[100, 50],
            &BTreeMap::new(),
            &bucket_count,
        );
        assert!(pick.fell_back);
        assert_eq!(pick.reducer, 1, "least-loaded fallback");
        assert_eq!(pick.scored, 2, "fallback scans every reducer");
    }

    #[test]
    fn result_imbalance_sane() {
        let (q, m) = setup(2, 4);
        let combos = combos_with_bounds(4, 2);
        let a = distribute(&combos, Dtb, 4, &q, &m);
        assert!((a.result_imbalance() - 1.0).abs() < 1e-9, "equal combos spread evenly");
    }
}
