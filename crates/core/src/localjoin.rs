//! The per-reducer top-k RTJ evaluation (paper Fig. 5d and §4,
//! "Distributed join processing").
//!
//! Each reducer receives a set of bucket combinations `Ω_{r_j}` plus the
//! interval data of every (vertex, bucket) those combinations touch. It
//! evaluates the full query locally with a rank-join:
//!
//! * combinations are processed in **descending upper-bound order** and
//!   the loop stops as soon as a combination's UB falls below the current
//!   k-th score `τ` (no remaining combination can contribute);
//! * inside a combination, tuples are grown along the query's
//!   [`JoinPlan`]; candidates for the next vertex are fetched from the
//!   bucket's index with a **score-threshold window** derived from `τ`
//!   and the already-fixed edge scores (the paper's "returns only
//!   intervals x_j s.t. s-p(x_i, x_j) ≥ v");
//! * cycle edges are checked exactly, and partial tuples whose optimistic
//!   completion cannot reach `τ` are pruned.
//!
//! The candidate index is pluggable ([`LocalJoinBackend`]): the join is
//! generic over [`CandidateSource`], so the paper's R-tree and the
//! sweeping-based endpoint store evaluate through identical join logic
//! and differ only in how they serve window probes.
//!
//! Pruning uses *strict* comparisons against `τ`, so every tuple that
//! could enter the final top-k (including ties resolved by the
//! deterministic id order) is still generated — local results equal the
//! naive oracle's exactly, which the tests verify.
//!
//! # Intra-reducer parallelism: sharding the probe stream
//!
//! One reducer's probes are independent (Piatov et al.'s endpoint-lane
//! probes are embarrassingly parallel), so the candidate run of each
//! combination is split into **deterministic fixed-size chunks**
//! ([`IntraJoin::chunk_items`]) and evaluated in waves of
//! [`INTRA_WAVE_CHUNKS`] chunks. Each wave chunk gets a private top-k
//! heap (`ShardHeap` internally) and private probe counters; partial
//! heaps are merged back **in chunk order**, and partial counters are
//! summed the same way. Rank-join early termination survives sharding
//! the way Tziavelis et al. describe for partitioned rank joins: a
//! shared score bound — the merged global `τ`, published to a relaxed
//! atomic **only between waves**, never while a wave is in flight — lets
//! every chunk skip dominated probes from its first item. Because the
//! bound is frozen during a wave, *when* a chunk observes it can affect
//! neither correctness (any stale value is a valid lower bound on the
//! final `τ`) nor a single work counter. The chunk schedule, wave
//! boundaries and bound publication points depend only on the data and
//! `chunk_items` — never on [`IntraJoin::threads`] — so results *and*
//! work counters are bit-identical for every thread count, including the
//! sequential `0`; only wall time changes.

use crate::combos::ComboSet;
use crate::config::{LocalJoinBackend, SweepScanKind};
use crate::stats::BucketProfile;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tkij_index::{threshold_candidates, CandidateSource, RTree, SweepIndex, Window};
use tkij_temporal::bucket::BucketId;
use tkij_temporal::expr::Side;
use tkij_temporal::interval::Interval;
use tkij_temporal::query::{JoinPlan, Query};
use tkij_temporal::result::{MatchTuple, TopK};

/// Telemetry of one reducer's local join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalJoinStats {
    /// Combinations assigned to this reducer.
    pub combos_assigned: usize,
    /// Combinations actually processed before early termination.
    pub combos_processed: usize,
    /// Full tuples scored and offered to the local top-k.
    pub tuples_scored: u64,
    /// Candidate intervals visited through index windows.
    pub candidates_visited: u64,
    /// Window probes issued against the candidate index.
    pub index_probes: u64,
    /// Stored items the index examined serving those probes (≥
    /// `candidates_visited`; the gap is the backend's scan overhead).
    pub items_scanned: u64,
    /// Reducer buckets indexed with the R-tree (with a fixed backend:
    /// all or none; under [`LocalJoinBackend::Auto`]: the selector's
    /// per-bucket choices).
    pub buckets_rtree: u64,
    /// Reducer buckets indexed with the sweeping store.
    pub buckets_sweep: u64,
    /// Probe chunks actually evaluated (inline and wave chunks) across
    /// all combinations — the scheduling unit of the intra-reducer
    /// parallel join. Chunks skipped because their combination became
    /// dominated mid-run are not counted, so a deficit against the
    /// nominal chunk count witnesses per-chunk early termination.
    pub probe_chunks: u64,
    /// Largest chunk-worker count any wave of this reducer actually ran
    /// with (`0` = every chunk was evaluated sequentially). An
    /// execution-*shape* record, like the timing fields: unlike every
    /// other counter it legitimately varies with the configured thread
    /// knobs — though never between repeat runs of one configuration.
    pub intra_threads_used: u64,
    /// Minimum score among the returned local top-k (Fig. 8c), 0 when
    /// empty.
    pub kth_score: f64,
}

impl LocalJoinStats {
    /// Folds one probe chunk's private counters into the reducer totals
    /// (the chunk-order merge of the sharded local join). Only the four
    /// probe-level counters are chunk-local; everything else is
    /// maintained by the coordinating thread.
    pub fn absorb_probe_counters(&mut self, chunk: &LocalJoinStats) {
        self.tuples_scored += chunk.tuples_scored;
        self.candidates_visited += chunk.candidates_visited;
        self.index_probes += chunk.index_probes;
        self.items_scanned += chunk.items_scanned;
    }
}

/// Probe items per chunk of the sharded candidate run — the
/// [`IntraJoin::chunk_items`] default. Small enough that a hot bucket
/// splits into many schedulable chunks, large enough that per-chunk
/// heap and merge overhead stays marginal next to the probe work.
pub const PROBE_CHUNK_ITEMS: usize = 256;

/// Chunks per parallel wave. Between waves the coordinator merges the
/// partial heaps (in chunk order) and republishes the shared score
/// bound, so larger waves expose more parallelism but prune with a
/// staler bound. A constant — never a function of the thread count —
/// because wave boundaries and bound publication points are part of the
/// deterministic plan.
pub const INTRA_WAVE_CHUNKS: usize = 8;

/// The probe-stream sharding plan of one reducer's local join.
///
/// The *plan* (chunk boundaries, wave structure, bound publication
/// points) is fixed by `chunk_items` and the data alone; `threads` only
/// chooses how many OS threads execute it. Results and work counters
/// are therefore bit-identical for every `threads` value — the property
/// `tests/intra_parallel_determinism.rs` locks in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntraJoin {
    /// Worker threads evaluating one wave's chunks; `0` (like
    /// `ClusterConfig::worker_threads`) evaluates them sequentially on
    /// the calling thread. Derive this from the cluster's nested thread
    /// budget (`ClusterConfig::intra_join_plan`) so outer × inner task
    /// parallelism never oversubscribes the host.
    pub threads: usize,
    /// Fixed probe-chunk length (clamped to ≥ 1). An *algorithmic* knob:
    /// changing it moves chunk boundaries, which may exchange tie tuples
    /// of equal score — the score multiset stays exact for every value.
    pub chunk_items: usize,
    /// Whether wave chunks read the shared score bound (ablation
    /// switch). Disabling it starts every wave chunk unbounded — the
    /// maximally stale bound: results stay exact and work can only grow,
    /// i.e. the bound may only *prune* (asserted by the equivalence
    /// suite).
    pub shared_bound: bool,
}

impl Default for IntraJoin {
    fn default() -> Self {
        IntraJoin { threads: 0, chunk_items: PROBE_CHUNK_ITEMS, shared_bound: true }
    }
}

impl IntraJoin {
    /// The sequential default plan: chunked protocol, calling thread
    /// only.
    pub fn sequential() -> Self {
        Self::default()
    }
}

/// Density at or above which a bucket always uses the sweeping store
/// under [`LocalJoinBackend::Auto`]: window populations converge to the
/// swept run lengths, so the sweep examines essentially only the hit set
/// while the R-tree still touches whole leaf stripes.
pub const AUTO_DENSITY_THRESHOLD: f64 = 40.0;

/// Lower density edge of the R-tree band (see [`select_backend`]).
pub const AUTO_RTREE_BAND_MIN_DENSITY: f64 = 8.0;

/// Minimum bucket cardinality for the R-tree band: below it the window
/// runs are shorter than the R-tree's per-probe leaf floor (`FANOUT`
/// items per touched leaf), so sweeping always examines less.
pub const AUTO_RTREE_MIN_CARDINALITY: u64 = 256;

/// The per-bucket backend selector of [`LocalJoinBackend::Auto`]. Never
/// returns [`LocalJoinBackend::Auto`].
///
/// Calibrated against the fig15 density sweep's per-point scan effort
/// (`items_scanned`), whose crossover is **banded**, not monotone:
///
/// * small buckets (`cardinality < 256`) → **sweep**: probe runs are
///   shorter than the R-tree's touched-leaf floor (16 items per leaf),
///   so the sweep examines strictly less at every density measured;
/// * populous mid-density buckets (density in `[8, 40)`) → **R-tree**:
///   with enough items the STR tiling resolves two-axis windows finer
///   than any single endpoint run, and measured scans undercut the sweep
///   by up to ~15%;
/// * very dense buckets (density ≥ 40) → **sweep**: runs ≈ hit sets, and
///   the sweep's advantage grows with density (fig15's dense regime);
/// * sparse populous buckets (density < 8) → **sweep**: the backends tie
///   within a few percent and the sweep's linear lanes are cheaper per
///   examined item.
///
/// The profile can come from the collected statistics
/// ([`crate::stats::PreparedDataset::bucket_profile`]) or from the
/// bucket's shipped interval slice ([`BucketProfile::from_intervals`]) —
/// the two are identical by construction (tested), so selection is
/// deterministic wherever it runs.
pub fn select_backend(profile: &BucketProfile) -> LocalJoinBackend {
    let density = profile.density();
    if profile.cardinality >= AUTO_RTREE_MIN_CARDINALITY
        && (AUTO_RTREE_BAND_MIN_DENSITY..AUTO_DENSITY_THRESHOLD).contains(&density)
    {
        LocalJoinBackend::RTree
    } else {
        LocalJoinBackend::Sweep
    }
}

/// The per-bucket backend plan of one [`LocalJoinBackend::Auto`] join:
/// the fixed backend chosen for each (vertex, bucket). The engine builds
/// it **once** from the collected statistics
/// ([`crate::stats::PreparedDataset::bucket_profile`]) and every reducer
/// reads it, so replicated buckets are not re-profiled per reducer.
pub type BackendChoices = BTreeMap<(u16, BucketId), LocalJoinBackend>;

/// The [`LocalJoinBackend::Auto`] candidate source: each bucket builds
/// whichever fixed backend [`select_backend`] picks for its profile, and
/// serves probes through it.
#[derive(Debug, Clone)]
pub enum AutoIndex {
    /// The bucket was sparse/small: the paper's R-tree access path.
    RTree(RTree),
    /// The bucket was dense: the sweeping endpoint store.
    Sweep(SweepIndex),
}

impl AutoIndex {
    /// Builds the index for an already-made fixed-backend choice
    /// (planned from the collected statistics). [`LocalJoinBackend::Auto`]
    /// as `choice` is treated as "decide here" from the slice profile.
    /// `scan` only reaches the sweep arm: the kind a bucket's store
    /// sweeps its runs with (never a selection input — both kinds do
    /// identical work by contract).
    pub fn build_chosen(
        choice: LocalJoinBackend,
        items: Vec<Interval>,
        scan: SweepScanKind,
    ) -> Self {
        let choice = match choice {
            LocalJoinBackend::Auto => select_backend(&BucketProfile::from_intervals(&items)),
            fixed => fixed,
        };
        match choice {
            LocalJoinBackend::RTree => AutoIndex::RTree(RTree::bulk_load(items)),
            _ => AutoIndex::Sweep(SweepIndex::build_with_scan(items, scan)),
        }
    }
}

impl CandidateSource for AutoIndex {
    fn build(items: Vec<Interval>) -> Self {
        Self::build_chosen(LocalJoinBackend::Auto, items, SweepScanKind::default())
    }

    fn items(&self) -> &[Interval] {
        match self {
            AutoIndex::RTree(t) => t.items(),
            AutoIndex::Sweep(s) => s.items(),
        }
    }

    fn probe<'t>(&'t self, window: &Window, visit: &mut dyn FnMut(&'t Interval)) -> u64 {
        match self {
            AutoIndex::RTree(t) => t.probe(window, visit),
            AutoIndex::Sweep(s) => s.probe(window, visit),
        }
    }
}

/// Reports which fixed backend actually serves an index's probes, so the
/// join can record the per-bucket choice in [`LocalJoinStats`].
pub trait ChosenBackend {
    /// The fixed backend behind this index (never
    /// [`LocalJoinBackend::Auto`]).
    fn chosen(&self) -> LocalJoinBackend;
}

impl ChosenBackend for RTree {
    fn chosen(&self) -> LocalJoinBackend {
        LocalJoinBackend::RTree
    }
}

impl ChosenBackend for SweepIndex {
    fn chosen(&self) -> LocalJoinBackend {
        LocalJoinBackend::Sweep
    }
}

impl ChosenBackend for AutoIndex {
    fn chosen(&self) -> LocalJoinBackend {
        match self {
            AutoIndex::RTree(_) => LocalJoinBackend::RTree,
            AutoIndex::Sweep(_) => LocalJoinBackend::Sweep,
        }
    }
}

/// A shared index delegates the choice report to the index it wraps, so
/// pooled (`Arc`-held) and per-reducer-owned indexes record identical
/// `buckets_rtree` / `buckets_sweep` counters.
impl<C: ChosenBackend> ChosenBackend for Arc<C> {
    fn chosen(&self) -> LocalJoinBackend {
        (**self).chosen()
    }
}

/// The serving layer's shared, read-only index pool: one immutable index
/// per (collection, bucket, backend), built on first use and reused by
/// every subsequent query and reducer that ships the same bucket.
///
/// Sharing is sound because the contents of a pooled index are
/// *query-independent*: the join-phase mapper ships **every** interval of
/// a collection whose bucket the assignment needs, and each reducer sorts
/// the slice by `(start, end, id)` before indexing — so any two queries
/// (or reducers) that would build an index for the same (collection,
/// bucket) build it from the identical canonical interval sequence. A
/// pool hit therefore returns an index bit-identical to the one a cold
/// build would produce, including probe visit order and every examined
/// -item counter.
///
/// Keys use the *collection* id (not the query-vertex index) so self
/// -joins and different queries over the same collection share entries.
/// Concurrent first requests for one key may race to build; both builds
/// are identical by the argument above and the first insert wins, so the
/// race is benign (a little duplicated build work, never a different
/// index).
#[derive(Debug, Default)]
pub struct IndexPools {
    rtree: RwLock<BTreeMap<(u32, BucketId), Arc<RTree>>>,
    sweep: RwLock<BTreeMap<(u32, BucketId), Arc<SweepIndex>>>,
    auto: RwLock<BTreeMap<(u32, BucketId), Arc<AutoIndex>>>,
}

impl IndexPools {
    /// An empty pool; indexes are built lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cached indexes across all backend kinds.
    pub fn len(&self) -> usize {
        self.rtree.read().len() + self.sweep.read().len() + self.auto.read().len()
    }

    /// Whether no index has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_build<C>(
        map: &RwLock<BTreeMap<(u32, BucketId), Arc<C>>>,
        key: (u32, BucketId),
        build: impl FnOnce() -> C,
    ) -> Arc<C> {
        if let Some(found) = map.read().get(&key) {
            return Arc::clone(found);
        }
        // Built outside the write lock: a concurrent builder produces the
        // identical index (see the type-level soundness argument), and
        // `or_insert` keeps whichever landed first.
        let built = Arc::new(build());
        Arc::clone(map.write().entry(key).or_insert(built))
    }

    fn rtree(&self, key: (u32, BucketId), items: Vec<Interval>) -> Arc<RTree> {
        Self::get_or_build(&self.rtree, key, || RTree::bulk_load(items))
    }

    fn sweep(
        &self,
        key: (u32, BucketId),
        items: Vec<Interval>,
        scan: SweepScanKind,
    ) -> Arc<SweepIndex> {
        Self::get_or_build(&self.sweep, key, || SweepIndex::build_with_scan(items, scan))
    }

    fn auto(
        &self,
        key: (u32, BucketId),
        items: Vec<Interval>,
        choice: LocalJoinBackend,
        scan: SweepScanKind,
    ) -> Arc<AutoIndex> {
        Self::get_or_build(&self.auto, key, || AutoIndex::build_chosen(choice, items, scan))
    }
}

/// A predicate over *partial* tuples (entries are `None` until their
/// vertex is bound), used by hybrid queries to reject tuples on
/// non-temporal attributes as early as possible. Must be monotone:
/// once a partial tuple is rejected, every extension is too.
pub trait TupleFilter: Sync {
    /// Whether the partial tuple may still produce results.
    fn admits(&self, tuple: &[Option<Interval>]) -> bool;
}

/// Runs the local top-k join of one reducer with the default backend.
///
/// `combo_indices` lists this reducer's combinations (indices into
/// `combos`); they are re-sorted by descending UB internally. `data` maps
/// each (vertex, bucket) to the intervals shipped for it.
pub fn local_topk_join(
    query: &Query,
    plan: &JoinPlan,
    k: usize,
    combos: &ComboSet,
    combo_indices: &[u32],
    data: &BTreeMap<(u16, BucketId), Vec<Interval>>,
) -> (TopK, LocalJoinStats) {
    local_topk_join_with(query, plan, k, combos, combo_indices, data, None)
}

/// [`local_topk_join`] with an optional attribute filter (hybrid
/// queries). Filtering never breaks exactness: combination upper bounds
/// remain valid for any tuple subset, and the admission threshold only
/// tracks surviving tuples.
pub fn local_topk_join_with(
    query: &Query,
    plan: &JoinPlan,
    k: usize,
    combos: &ComboSet,
    combo_indices: &[u32],
    data: &BTreeMap<(u16, BucketId), Vec<Interval>>,
    filter: Option<&dyn TupleFilter>,
) -> (TopK, LocalJoinStats) {
    local_topk_join_on(
        LocalJoinBackend::default(),
        query,
        plan,
        k,
        combos,
        combo_indices,
        data,
        filter,
    )
}

/// [`local_topk_join_with`] on an explicit candidate-source backend.
/// Dispatches once per reducer; the join itself is monomorphized per
/// backend. With [`LocalJoinBackend::Auto`] and no pre-planned choices,
/// each bucket decides from its shipped slice's profile (identical to
/// the statistics-derived plan by construction).
#[allow(clippy::too_many_arguments)]
pub fn local_topk_join_on(
    backend: LocalJoinBackend,
    query: &Query,
    plan: &JoinPlan,
    k: usize,
    combos: &ComboSet,
    combo_indices: &[u32],
    data: &BTreeMap<(u16, BucketId), Vec<Interval>>,
    filter: Option<&dyn TupleFilter>,
) -> (TopK, LocalJoinStats) {
    local_topk_join_planned(
        backend,
        SweepScanKind::default(),
        query,
        plan,
        k,
        combos,
        combo_indices,
        data,
        filter,
        None,
        IntraJoin::sequential(),
    )
}

/// [`local_topk_join_on`] with an optional per-bucket backend plan
/// (derived from the collected statistics; only read under
/// [`LocalJoinBackend::Auto`]) and an explicit probe-stream sharding
/// plan. This is the join-phase entry point: the engine plans choices
/// once from `PreparedDataset::bucket_profile` and ships the plan — and
/// the [`IntraJoin`] sharding parameters — to every reducer. `scan`
/// selects the sweep store's run-scan kind (`TkijConfig::sweep_scan`);
/// it reaches every sweep-indexed bucket, fixed or auto-chosen, and by
/// the lanes contract cannot change results or counters.
#[allow(clippy::too_many_arguments)]
pub fn local_topk_join_planned(
    backend: LocalJoinBackend,
    scan: SweepScanKind,
    query: &Query,
    plan: &JoinPlan,
    k: usize,
    combos: &ComboSet,
    combo_indices: &[u32],
    data: &BTreeMap<(u16, BucketId), Vec<Interval>>,
    filter: Option<&dyn TupleFilter>,
    choices: Option<&BackendChoices>,
    intra: IntraJoin,
) -> (TopK, LocalJoinStats) {
    match backend {
        LocalJoinBackend::RTree => {
            join_generic(query, plan, k, combos, combo_indices, data, filter, intra, |_, items| {
                RTree::bulk_load(items)
            })
        }
        LocalJoinBackend::Sweep => {
            join_generic(query, plan, k, combos, combo_indices, data, filter, intra, |_, items| {
                SweepIndex::build_with_scan(items, scan)
            })
        }
        LocalJoinBackend::Auto => join_generic(
            query,
            plan,
            k,
            combos,
            combo_indices,
            data,
            filter,
            intra,
            |key, items| {
                let choice =
                    choices.and_then(|c| c.get(key).copied()).unwrap_or(LocalJoinBackend::Auto);
                AutoIndex::build_chosen(choice, items, scan)
            },
        ),
    }
}

/// [`local_topk_join_planned`] serving its bucket indexes from a shared
/// [`IndexPools`] instead of building them per reducer. The join logic,
/// visit order, and every work counter are bit-identical to the unpooled
/// entry (see the pool's soundness documentation); only the index *build*
/// work is amortized across queries. Pool keys translate the reducer's
/// (vertex, bucket) to (collection, bucket) through `query.vertices`, so
/// self-join vertices sharing a collection share one index.
#[allow(clippy::too_many_arguments)]
pub fn local_topk_join_pooled(
    backend: LocalJoinBackend,
    scan: SweepScanKind,
    query: &Query,
    plan: &JoinPlan,
    k: usize,
    combos: &ComboSet,
    combo_indices: &[u32],
    data: &BTreeMap<(u16, BucketId), Vec<Interval>>,
    filter: Option<&dyn TupleFilter>,
    choices: Option<&BackendChoices>,
    intra: IntraJoin,
    pools: &IndexPools,
) -> (TopK, LocalJoinStats) {
    let ckey = |key: &(u16, BucketId)| (query.vertices[key.0 as usize].0, key.1);
    match backend {
        LocalJoinBackend::RTree => join_generic(
            query,
            plan,
            k,
            combos,
            combo_indices,
            data,
            filter,
            intra,
            |key, items| pools.rtree(ckey(key), items),
        ),
        LocalJoinBackend::Sweep => join_generic(
            query,
            plan,
            k,
            combos,
            combo_indices,
            data,
            filter,
            intra,
            |key, items| pools.sweep(ckey(key), items, scan),
        ),
        LocalJoinBackend::Auto => join_generic(
            query,
            plan,
            k,
            combos,
            combo_indices,
            data,
            filter,
            intra,
            |key, items| {
                let choice =
                    choices.and_then(|c| c.get(key).copied()).unwrap_or(LocalJoinBackend::Auto);
                pools.auto(ckey(key), items, choice, scan)
            },
        ),
    }
}

/// The admission interface the rank-join recursion prunes against:
/// either the reducer's global [`TopK`] (inline chunks, full sequential
/// fidelity) or a wave chunk's private [`ShardHeap`] view.
trait ProbeHeap {
    /// Whether `k` results are (known to be) retained.
    fn is_full(&self) -> bool;
    /// A valid lower bound on the final k-th score (the pruning `τ`).
    fn admission_score(&self) -> f64;
    /// Offers a complete tuple.
    fn offer(&mut self, tuple: MatchTuple) -> bool;
}

impl ProbeHeap for TopK {
    fn is_full(&self) -> bool {
        TopK::is_full(self)
    }

    fn admission_score(&self) -> f64 {
        TopK::admission_score(self)
    }

    fn offer(&mut self, tuple: MatchTuple) -> bool {
        TopK::offer(self, tuple)
    }
}

/// A wave chunk's private view of the reducer's top-k: its own heap for
/// the chunk's tuples, plus the shared score bound frozen at wave start
/// (`floor`, with `floor_full` recording that the global heap backing it
/// held `k` results). `admission_score` is always a valid lower bound on
/// the final k-th score — the floor is the published global threshold
/// and the local k-th is the k-th of a *subset* of all offers — so
/// pruning against it preserves the exact score multiset no matter how
/// stale the floor is.
struct ShardHeap {
    local: TopK,
    floor: f64,
    floor_full: bool,
}

impl ProbeHeap for ShardHeap {
    fn is_full(&self) -> bool {
        self.floor_full || self.local.is_full()
    }

    fn admission_score(&self) -> f64 {
        self.floor.max(self.local.admission_score())
    }

    fn offer(&mut self, tuple: MatchTuple) -> bool {
        self.local.offer(tuple)
    }
}

/// Publishes a new value of the shared score bound. Called only at
/// deterministic merge points (between chunk waves), never while a wave
/// is in flight, so every load a wave chunk issues observes the same
/// value regardless of scheduling — observation timing can affect
/// neither correctness nor any work counter. Relaxed ordering suffices:
/// the scope join/spawn already orders the memory, and even a stale
/// value would only be a weaker, still-valid lower bound.
///
/// # Panics
///
/// Hard-asserts monotonicity: the rank-join admission threshold never
/// decreases, so a regressing publication means a bookkeeping bug that
/// would silently weaken pruning.
fn publish_bound(bound: &AtomicU64, value: f64) {
    let prev = f64::from_bits(bound.load(Ordering::Relaxed));
    assert!(
        value >= prev,
        "shared intra-join score bound must be monotone: publishing {value} after {prev}"
    );
    bound.store(value.to_bits(), Ordering::Relaxed);
}

/// The backend-generic rank-join body. `build` constructs one bucket's
/// index from its (vertex, bucket) key and shipped intervals.
#[allow(clippy::too_many_arguments)]
fn join_generic<C: CandidateSource + ChosenBackend>(
    query: &Query,
    plan: &JoinPlan,
    k: usize,
    combos: &ComboSet,
    combo_indices: &[u32],
    data: &BTreeMap<(u16, BucketId), Vec<Interval>>,
    filter: Option<&dyn TupleFilter>,
    intra: IntraJoin,
    build: impl Fn(&(u16, BucketId), Vec<Interval>) -> C,
) -> (TopK, LocalJoinStats) {
    let mut stats = LocalJoinStats { combos_assigned: combo_indices.len(), ..Default::default() };
    let mut topk = TopK::new(k);

    // Index every shipped bucket once; reused across combinations.
    let indexes: BTreeMap<(u16, BucketId), C> =
        data.iter().map(|(&key, intervals)| (key, build(&key, intervals.clone()))).collect();
    for index in indexes.values() {
        match index.chosen() {
            LocalJoinBackend::RTree => stats.buckets_rtree += 1,
            _ => stats.buckets_sweep += 1,
        }
    }

    // Access order: descending upper bound (paper §4).
    let mut order: Vec<u32> = combo_indices.to_vec();
    order.sort_by(|&a, &b| {
        combos
            .ub(b as usize)
            .total_cmp(&combos.ub(a as usize))
            .then_with(|| combos.buckets(a as usize).cmp(combos.buckets(b as usize)))
    });

    let run = ComboRun {
        query,
        plan,
        indexes: &indexes,
        filter,
        intra,
        k,
        bound: AtomicU64::new(0f64.to_bits()),
    };
    let mut scratch = Scratch::for_query(query);
    for &ci in &order {
        let ci = ci as usize;
        // Once the heap is full, a combination whose UB only *ties* the
        // k-th score cannot change the top-k score multiset: skip it.
        // (The paper's guarantee is the exact top-k ranking by score; tie
        // tuples are interchangeable.)
        if topk.is_full() && combos.ub(ci) <= topk.admission_score() {
            break; // no remaining combination can beat the k-th result
        }
        stats.combos_processed += 1;
        run.process_combo(combos.buckets(ci), combos.ub(ci), &mut topk, &mut stats, &mut scratch);
    }

    stats.kth_score = topk.min_score().unwrap_or(0.0);
    (topk, stats)
}

/// Immutable context of one reducer's combination loop — everything a
/// probe chunk needs, so wave workers can borrow a single struct.
struct ComboRun<'a, C> {
    query: &'a Query,
    plan: &'a JoinPlan,
    indexes: &'a BTreeMap<(u16, BucketId), C>,
    filter: Option<&'a dyn TupleFilter>,
    intra: IntraJoin,
    k: usize,
    /// Bits of the shared score bound ([`publish_bound`]).
    bound: AtomicU64,
}

impl<C: CandidateSource> ComboRun<'_, C> {
    /// Evaluates one combination: its first-step candidate run is split
    /// into fixed-size chunks ([`CandidateSource::item_chunks`]) and
    /// consumed as inline chunks (against the global heap) or parallel
    /// waves of private-heap chunks merged back in chunk order.
    fn process_combo(
        &self,
        buckets: &[BucketId],
        combo_ub: f64,
        topk: &mut TopK,
        stats: &mut LocalJoinStats,
        scratch: &mut Scratch,
    ) {
        let first = &self.plan.steps[0];
        let Some(index) = self.indexes.get(&(first.vertex as u16, buckets[first.vertex])) else {
            return; // bucket had no shipped data
        };
        // Chunk a snapshot: indexes are immutable, items are in the
        // backend's deterministic order. Chunks are consumed strictly in
        // order, so [`CandidateSource::item_chunks`] — the one source of
        // truth for chunk boundaries — serves both inline chunks and
        // wave slices without materializing a chunk list per combination.
        let mut chunk_iter = index.item_chunks(self.intra.chunk_items);
        let nchunks = chunk_iter.len();
        let mut next = 0usize;
        while next < nchunks {
            if topk.is_full() && combo_ub <= topk.admission_score() {
                break; // the whole combination became dominated mid-run
            }
            if !topk.is_full() || nchunks - next == 1 {
                // Inline chunk, evaluated directly against the global
                // heap with exact sequential fidelity: while the heap is
                // still filling there is no meaningful bound to shard
                // under, and a lone trailing chunk gains nothing from a
                // wave. Both conditions depend only on data and config.
                let mut cx = JoinCx {
                    query: self.query,
                    plan: self.plan,
                    indexes: self.indexes,
                    heap: &mut *topk,
                    stats,
                    tuple: &mut scratch.tuple,
                    fixed: &mut scratch.fixed,
                    filter: self.filter,
                };
                cx.run_chunk(
                    chunk_iter.next().expect("nchunks counts the chunks"),
                    buckets,
                    combo_ub,
                );
                stats.probe_chunks += 1;
                next += 1;
                continue;
            }
            let end = (next + INTRA_WAVE_CHUNKS).min(nchunks);
            let wave: Vec<&[Interval]> = chunk_iter.by_ref().take(end - next).collect();
            publish_bound(&self.bound, topk.admission_score());
            for (local, chunk_stats) in self.run_wave(&wave, buckets, combo_ub) {
                stats.absorb_probe_counters(&chunk_stats);
                // Chunk-order merge: the global heap's total order makes
                // the merged content offer-order independent, and fixing
                // the order anyway keeps the protocol easy to reason
                // about (and to mirror in tests).
                for tuple in local.into_sorted_vec() {
                    topk.offer(tuple);
                }
            }
            stats.probe_chunks += wave.len() as u64;
            if self.intra.threads >= 2 {
                stats.intra_threads_used =
                    stats.intra_threads_used.max(self.intra.threads.min(wave.len()) as u64);
            }
            next = end;
        }
    }

    /// Evaluates one wave's chunks — sequentially, or on a crossbeam
    /// scope of chunk workers claiming chunks from a shared cursor — and
    /// returns each chunk's private heap and counters, in chunk order.
    /// Which thread evaluates a chunk can never matter: a chunk's work
    /// is a pure function of (chunk, frozen bound).
    fn run_wave(
        &self,
        wave: &[&[Interval]],
        buckets: &[BucketId],
        combo_ub: f64,
    ) -> Vec<(TopK, LocalJoinStats)> {
        let eval = |chunk: &[Interval]| -> (TopK, LocalJoinStats) {
            let (floor, floor_full) = if self.intra.shared_bound {
                // Relaxed ordering suffices: the bound is published only
                // between waves ([`publish_bound`]), the scope join/spawn
                // already orders the memory, and any value read here is a
                // valid (monotone) admission floor.
                (f64::from_bits(self.bound.load(Ordering::Relaxed)), true)
            } else {
                (0.0, false) // ablation: the maximally stale bound
            };
            let mut heap = ShardHeap { local: TopK::new(self.k), floor, floor_full };
            let mut chunk_stats = LocalJoinStats::default();
            // Wave chunks genuinely need private scratch: they may run
            // concurrently with each other.
            let mut scratch = Scratch::for_query(self.query);
            let mut cx = JoinCx {
                query: self.query,
                plan: self.plan,
                indexes: self.indexes,
                heap: &mut heap,
                stats: &mut chunk_stats,
                tuple: &mut scratch.tuple,
                fixed: &mut scratch.fixed,
                filter: self.filter,
            };
            cx.run_chunk(chunk, buckets, combo_ub);
            (heap.local, chunk_stats)
        };
        let workers = self.intra.threads.min(wave.len());
        if workers < 2 {
            return wave.iter().map(|chunk| eval(chunk)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<(TopK, LocalJoinStats)>> = wave.iter().map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut out = Vec::new();
                        loop {
                            // Relaxed ordering suffices: the cursor only
                            // claims each chunk index exactly once; the
                            // results are merged back in chunk order, so
                            // claim order cannot reach a counter.
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= wave.len() {
                                break;
                            }
                            out.push((i, eval(wave[i])));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("intra-join worker panicked") {
                    slots[i] = Some(result);
                }
            }
        })
        .expect("intra-join scope");
        slots.into_iter().map(|s| s.expect("every chunk evaluated")).collect()
    }
}

/// Reusable recursion scratch (partial tuple + fixed edge scores): the
/// recursion restores both on exit, so one allocation serves every
/// inline chunk of a reducer; wave chunks carry their own.
struct Scratch {
    tuple: Vec<Option<Interval>>,
    fixed: Vec<(usize, f64)>,
}

impl Scratch {
    fn for_query(query: &Query) -> Self {
        Scratch { tuple: vec![None; query.n()], fixed: Vec::with_capacity(query.edges.len()) }
    }
}

/// Mutable evaluation context threaded through the recursion, generic
/// over the heap it prunes against ([`ProbeHeap`]).
struct JoinCx<'a, C, H> {
    query: &'a Query,
    plan: &'a JoinPlan,
    indexes: &'a BTreeMap<(u16, BucketId), C>,
    heap: &'a mut H,
    stats: &'a mut LocalJoinStats,
    /// Partial tuple, indexed by vertex (borrowed [`Scratch`]).
    tuple: &'a mut Vec<Option<Interval>>,
    /// Fixed (edge, score) pairs along the current path.
    fixed: &'a mut Vec<(usize, f64)>,
    /// Optional attribute filter (hybrid queries).
    filter: Option<&'a dyn TupleFilter>,
}

impl<C: CandidateSource, H: ProbeHeap> JoinCx<'_, C, H> {
    /// Evaluates one probe chunk: each item seeds the first plan step.
    fn run_chunk(&mut self, chunk: &[Interval], buckets: &[BucketId], combo_ub: f64) {
        let first_vertex = self.plan.steps[0].vertex;
        for x in chunk {
            if self.heap.is_full() && combo_ub <= self.heap.admission_score() {
                break; // the whole combination became dominated mid-way
            }
            self.tuple[first_vertex] = Some(*x);
            if self.filter.is_none_or(|f| f.admits(self.tuple)) {
                self.extend(1, buckets);
            }
            self.tuple[first_vertex] = None;
        }
    }

    /// Grows the tuple at plan step `s`.
    fn extend(&mut self, s: usize, buckets: &[BucketId]) {
        if s == self.plan.steps.len() {
            self.finish();
            return;
        }
        let step = &self.plan.steps[s];
        let anchor = step.anchor.expect("non-first steps have anchors");
        let edge = &self.query.edges[anchor.edge];
        let anchor_iv = self.tuple[anchor.bound_vertex].expect("anchor bound");
        let tau = self.heap.admission_score();
        // With a full heap, only strictly-better totals matter (ties
        // cannot change the score multiset).
        let strict = self.heap.is_full();
        let needed = self.query.aggregation.required_edge_score(
            self.fixed,
            anchor.edge,
            self.query.edges.len(),
            tau,
        );
        if needed > 1.0 || (strict && needed >= 1.0) {
            return; // even a perfect edge score cannot beat τ
        }
        let Some(index) = self.indexes.get(&(step.vertex as u16, buckets[step.vertex])) else {
            return;
        };
        // Materialize candidates with their exact anchor-edge scores (the
        // recursion needs `&mut self`), then visit them in descending
        // score order — rank-join style. High scorers raise the admission
        // threshold τ early, and because the stream is sorted, the first
        // candidate falling below the (re-evaluated) requirement ends the
        // whole loop instead of being skipped.
        let mut candidates: Vec<(f64, Interval)> = Vec::new();
        let scanned = threshold_candidates(
            index,
            &edge.predicate,
            &anchor_iv,
            anchor.anchor_side,
            needed.max(0.0),
            |c| {
                let s = match anchor.anchor_side {
                    Side::Left => edge.predicate.score(&anchor_iv, c),
                    Side::Right => edge.predicate.score(c, &anchor_iv),
                };
                if s >= needed {
                    candidates.push((s, *c));
                }
            },
        );
        self.stats.index_probes += 1;
        self.stats.items_scanned += scanned;
        self.stats.candidates_visited += candidates.len() as u64;
        candidates.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| (a.1.start, a.1.end, a.1.id).cmp(&(b.1.start, b.1.end, b.1.id)))
        });

        for (s_anchor, cand) in candidates {
            // Recompute the requirement against the *current* τ: it only
            // grows, and the stream is sorted descending, so a failure
            // here dominates every remaining candidate.
            let strict = self.heap.is_full();
            let needed_now = self.query.aggregation.required_edge_score(
                self.fixed,
                anchor.edge,
                self.query.edges.len(),
                self.heap.admission_score(),
            );
            if s_anchor < needed_now || (strict && s_anchor <= needed_now) {
                break;
            }
            self.fixed.push((anchor.edge, s_anchor));
            self.tuple[step.vertex] = Some(cand);
            // Cycle edges between the new vertex and bound ones.
            let mut ok = self.filter.is_none_or(|f| f.admits(self.tuple));
            let mut pushed = 1;
            for &ce in &step.checks {
                if !ok {
                    break;
                }
                let e = &self.query.edges[ce];
                let x = self.tuple[e.src].expect("check edges have both ends bound");
                let y = self.tuple[e.dst].expect("check edges have both ends bound");
                let sc = e.predicate.score(&x, &y);
                self.fixed.push((ce, sc));
                pushed += 1;
                let optimistic = self.optimistic_total();
                let tau_now = self.heap.admission_score();
                if optimistic < tau_now || (self.heap.is_full() && optimistic <= tau_now) {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.extend(s + 1, buckets);
            }
            for _ in 0..pushed {
                self.fixed.pop();
            }
            self.tuple[step.vertex] = None;
        }
    }

    /// Best achievable total given the fixed edges (free edges at 1.0).
    fn optimistic_total(&self) -> f64 {
        let mut scores = vec![1.0; self.query.edges.len()];
        for &(e, s) in self.fixed.iter() {
            scores[e] = s;
        }
        self.query.aggregation.eval(&scores)
    }

    /// Scores and offers a complete tuple.
    fn finish(&mut self) {
        let tuple: Vec<Interval> = self.tuple.iter().map(|t| t.expect("complete tuple")).collect();
        debug_assert_eq!(self.fixed.len(), self.query.edges.len());
        let mut scores = vec![0.0; self.query.edges.len()];
        for &(e, s) in self.fixed.iter() {
            scores[e] = s;
        }
        let total = self.query.aggregation.eval(&scores);
        self.stats.tuples_scored += 1;
        self.heap.offer(MatchTuple::new(tuple.iter().map(|iv| iv.id).collect(), total));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combos::vertex_buckets;
    use crate::naive::naive_topk;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tkij_temporal::bucket::BucketMatrix;
    use tkij_temporal::collection::{CollectionId, IntervalCollection};
    use tkij_temporal::granule::TimePartitioning;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::{table1, Query};

    type FullSetup = (ComboSet, Vec<u32>, BTreeMap<(u16, BucketId), Vec<Interval>>);

    /// Builds matrices, a full (unpruned) ComboSet with trivial bounds,
    /// and the complete data map for a single in-process "reducer".
    fn full_setup(query: &Query, collections: &[IntervalCollection], g: u32) -> FullSetup {
        let (min, max) = collections
            .iter()
            .map(|c| c.time_range())
            .fold((i64::MAX, i64::MIN), |acc, r| (acc.0.min(r.0), acc.1.max(r.1)));
        let part = TimePartitioning::from_range(min, max, g).unwrap();
        let matrices: Vec<BucketMatrix> =
            collections.iter().map(|c| BucketMatrix::build(part, c.intervals())).collect();
        let per_vertex = vertex_buckets(query, &matrices);
        let mut combos = ComboSet::new(query.n());
        crate::combos::enumerate_combos(&per_vertex, 0..per_vertex[0].len(), |idx| {
            let buckets: Vec<BucketId> =
                idx.iter().enumerate().map(|(v, &i)| per_vertex[v].ids[i]).collect();
            combos.push(&buckets, crate::combos::nb_res_of(&per_vertex, idx), 0.0, 1.0);
        });
        let indices: Vec<u32> = (0..combos.len() as u32).collect();
        let mut data: BTreeMap<(u16, BucketId), Vec<Interval>> = BTreeMap::new();
        for (v, cid) in query.vertices.iter().enumerate() {
            let m = &matrices[cid.0 as usize];
            for iv in collections[cid.0 as usize].intervals() {
                data.entry((v as u16, m.bucket_of(iv))).or_default().push(*iv);
            }
        }
        (combos, indices, data)
    }

    fn random_collections(seed: u64, m: usize, size: usize, span: i64) -> Vec<IntervalCollection> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m as u32)
            .map(|c| {
                let intervals = (0..size)
                    .map(|i| {
                        let s = rng.gen_range(0..span);
                        let w = rng.gen_range(0..span / 4);
                        Interval::new_unchecked(i as u64, s, s + w)
                    })
                    .collect();
                IntervalCollection::new(CollectionId(c), intervals).unwrap()
            })
            .collect()
    }

    fn assert_matches_naive(query: &Query, collections: &[IntervalCollection], k: usize, g: u32) {
        for (_, backend) in LocalJoinBackend::all() {
            assert_matches_naive_on(backend, query, collections, k, g);
        }
    }

    fn assert_matches_naive_on(
        backend: LocalJoinBackend,
        query: &Query,
        collections: &[IntervalCollection],
        k: usize,
        g: u32,
    ) {
        let (combos, indices, data) = full_setup(query, collections, g);
        let plan = query.plan();
        let (topk, stats) =
            local_topk_join_on(backend, query, &plan, k, &combos, &indices, &data, None);
        let refs: Vec<&IntervalCollection> =
            query.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
        let expected = naive_topk(query, &refs, k);
        let got = topk.into_sorted_vec();
        assert_eq!(
            got.len(),
            expected.len(),
            "{}: result count mismatch (stats {stats:?})",
            query.name()
        );
        for (g, e) in got.iter().zip(&expected) {
            // Exact score multiset; tie tuples are interchangeable (the
            // join legitimately skips ties once the heap is full).
            assert!(
                (g.score - e.score).abs() < 1e-9,
                "{}: scores diverge: {g:?} vs {e:?}",
                query.name()
            );
            // Every returned tuple must be genuine: re-score it.
            let tuple: Vec<Interval> = g
                .ids
                .iter()
                .zip(&query.vertices)
                .map(|(id, c)| {
                    *collections[c.0 as usize]
                        .intervals()
                        .iter()
                        .find(|iv| iv.id == *id)
                        .expect("result ids exist")
                })
                .collect();
            assert!(
                (query.score_tuple(&tuple) - g.score).abs() < 1e-9,
                "{}: reported score is wrong",
                query.name()
            );
        }
    }

    #[test]
    fn matches_naive_on_all_table1_queries() {
        let collections = random_collections(11, 3, 14, 200);
        let avg = collections[0].avg_length();
        for (name, q) in table1::all(PredicateParams::P1, avg) {
            // n = 3 queries only at this size (star queries are n = 3).
            assert_eq!(q.n(), 3, "{name}");
            assert_matches_naive(&q, &collections, 5, 6);
        }
    }

    #[test]
    fn matches_naive_with_boolean_params() {
        let collections = random_collections(23, 3, 12, 120);
        for (_, q) in table1::all(PredicateParams::PB, collections[0].avg_length()) {
            assert_matches_naive(&q, &collections, 4, 5);
        }
    }

    #[test]
    fn matches_naive_across_k_and_granularity() {
        let collections = random_collections(5, 3, 10, 150);
        let q = table1::q_om(PredicateParams::P2);
        for k in [1, 3, 10, 500, 2000] {
            for g in [1, 3, 9] {
                assert_matches_naive(&q, &collections, k, g);
            }
        }
    }

    #[test]
    fn matches_naive_on_4way_star() {
        let collections = random_collections(31, 4, 8, 150);
        let q = table1::q_o_star(4, PredicateParams::P3);
        assert_matches_naive(&q, &collections, 6, 4);
    }

    #[test]
    fn early_termination_skips_dominated_combos() {
        // Two granule clusters: one yields perfect meets scores, the other
        // scores 0. With combos holding honest bounds, the 0-UB ones must
        // never be processed once k perfect results exist.
        let part = TimePartitioning::from_range(0, 199, 4).unwrap();
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        for i in 0..6 {
            c1.push(Interval::new(i, 10, 49).unwrap()); // bucket (0,0)
            c2.push(Interval::new(i, 50, 99).unwrap()); // meets perfectly, bucket (1,1)
            c1.push(Interval::new(100 + i, 150, 160).unwrap()); // far bucket (3,3)
            c2.push(Interval::new(100 + i, 0, 10).unwrap()); // bucket (0,0)
        }
        let collections = [
            IntervalCollection::new(CollectionId(0), c1).unwrap(),
            IntervalCollection::new(CollectionId(1), c2).unwrap(),
        ];
        let q = Query::new(
            vec![CollectionId(0), CollectionId(1)],
            vec![tkij_temporal::query::QueryEdge {
                src: 0,
                dst: 1,
                predicate: tkij_temporal::predicate::TemporalPredicate::meets(
                    PredicateParams::new(4, 8, 0, 0),
                ),
            }],
            tkij_temporal::aggregate::Aggregation::NormalizedSum,
        )
        .unwrap();
        let matrices: Vec<BucketMatrix> =
            collections.iter().map(|c| BucketMatrix::build(part, c.intervals())).collect();
        // Hand-built Ω_{k,S}: the perfect-score combination first, then a
        // dominated one (honest UB 0.4 < the perfect 1.0 the first one
        // will realize).
        let mut selected = ComboSet::new(2);
        selected.push(&[BucketId::new(0, 0), BucketId::new(1, 1)], 36, 1.0, 1.0);
        selected.push(&[BucketId::new(3, 3), BucketId::new(0, 0)], 36, 0.0, 0.4);
        let indices: Vec<u32> = vec![0, 1];
        let mut data: BTreeMap<(u16, BucketId), Vec<Interval>> = BTreeMap::new();
        for (v, cid) in q.vertices.iter().enumerate() {
            let m = &matrices[cid.0 as usize];
            for iv in collections[cid.0 as usize].intervals() {
                data.entry((v as u16, m.bucket_of(iv))).or_default().push(*iv);
            }
        }
        let plan = q.plan();
        // Early termination is a property of the rank-join, not of the
        // candidate source: every backend must skip the dominated combo.
        for (name, backend) in LocalJoinBackend::all() {
            let (topk, stats) =
                local_topk_join_on(backend, &q, &plan, 3, &selected, &indices, &data, None);
            assert_eq!(topk.len(), 3, "{name}");
            assert!((topk.min_score().unwrap() - 1.0).abs() < 1e-9, "{name}");
            assert!(
                stats.combos_processed < stats.combos_assigned,
                "{name}: early termination must fire: {stats:?}"
            );
            assert_eq!(
                stats.combos_processed, 1,
                "{name}: UB-0.4 combo must be skipped: {stats:?}"
            );
        }
    }

    #[test]
    fn backends_agree_exactly_and_sweep_scans_less() {
        let collections = random_collections(17, 3, 40, 400);
        let q = table1::q_om(PredicateParams::P1);
        let (combos, indices, data) = full_setup(&q, &collections, 8);
        let plan = q.plan();
        let (rt_topk, rt_stats) = local_topk_join_on(
            LocalJoinBackend::RTree,
            &q,
            &plan,
            12,
            &combos,
            &indices,
            &data,
            None,
        );
        let (sw_topk, sw_stats) = local_topk_join_on(
            LocalJoinBackend::Sweep,
            &q,
            &plan,
            12,
            &combos,
            &indices,
            &data,
            None,
        );
        let a = rt_topk.into_sorted_vec();
        let b = sw_topk.into_sorted_vec();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Scores are computed by identical fp arithmetic on the same
            // winning tuples: bitwise equality, not epsilon equality.
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{x:?} vs {y:?}");
        }
        assert!(rt_stats.index_probes > 0 && sw_stats.index_probes > 0);
        assert!(rt_stats.items_scanned >= rt_stats.candidates_visited);
        assert!(sw_stats.items_scanned >= sw_stats.candidates_visited);
        // Fixed backends index every bucket with their own structure.
        assert!(rt_stats.buckets_rtree > 0 && rt_stats.buckets_sweep == 0);
        assert!(sw_stats.buckets_sweep > 0 && sw_stats.buckets_rtree == 0);
        assert_eq!(rt_stats.buckets_rtree, sw_stats.buckets_sweep, "same shipped buckets");
        // The perf property this backend exists for: the sweep store
        // examines at most the R-tree's items for the same join (it scans
        // the tighter of the two endpoint runs; the R-tree scans every
        // leaf its traversal touches).
        assert!(
            sw_stats.items_scanned <= rt_stats.items_scanned,
            "sweep must not out-scan the R-tree: {} vs {}",
            sw_stats.items_scanned,
            rt_stats.items_scanned
        );
    }

    #[test]
    fn selector_is_density_and_cardinality_driven() {
        // Very dense → sweep, at any cardinality.
        let dense = BucketProfile { cardinality: 1_000, duration_sum: 90_000, span: 1_000 };
        assert!(dense.density() >= AUTO_DENSITY_THRESHOLD);
        assert_eq!(select_backend(&dense), LocalJoinBackend::Sweep);
        // Populous mid-density band → rtree.
        let banded = BucketProfile { cardinality: 300, duration_sum: 15_000, span: 1_000 };
        assert!(banded.density() >= AUTO_RTREE_BAND_MIN_DENSITY);
        assert!(banded.density() < AUTO_DENSITY_THRESHOLD);
        assert_eq!(select_backend(&banded), LocalJoinBackend::RTree);
        // Mid-density but small → sweep (below the R-tree leaf floor).
        let small = BucketProfile { cardinality: 100, duration_sum: 15_000, span: 1_000 };
        assert_eq!(select_backend(&small), LocalJoinBackend::Sweep);
        // Sparse populous → sweep (backends tie; sweep is cheaper/item).
        let sparse = BucketProfile { cardinality: 10_000, duration_sum: 10_000, span: 1_000_000 };
        assert_eq!(select_backend(&sparse), LocalJoinBackend::Sweep);
        // Band edges are half-open: density exactly 40 flips to sweep.
        let at_edge = BucketProfile { cardinality: 1_000, duration_sum: 40_000, span: 1_000 };
        assert_eq!(at_edge.density(), AUTO_DENSITY_THRESHOLD);
        assert_eq!(select_backend(&at_edge), LocalJoinBackend::Sweep);
        // Empty → a fixed backend, never Auto.
        assert_eq!(select_backend(&BucketProfile::default()), LocalJoinBackend::Sweep);
    }

    #[test]
    fn auto_matches_fixed_backends_and_records_choices() {
        let collections = random_collections(41, 3, 60, 300);
        let q = table1::q_om(PredicateParams::P1);
        let (combos, indices, data) = full_setup(&q, &collections, 6);
        let plan = q.plan();
        let (auto_topk, auto_stats) = local_topk_join_on(
            LocalJoinBackend::Auto,
            &q,
            &plan,
            10,
            &combos,
            &indices,
            &data,
            None,
        );
        let (sw_topk, _) = local_topk_join_on(
            LocalJoinBackend::Sweep,
            &q,
            &plan,
            10,
            &combos,
            &indices,
            &data,
            None,
        );
        // Bitwise-identical score multiset vs a fixed backend.
        let a = auto_topk.into_sorted_vec();
        let b = sw_topk.into_sorted_vec();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // Every shipped bucket got exactly one choice, and the recorded
        // split equals what the selector says about each bucket's slice.
        assert_eq!(
            auto_stats.buckets_rtree + auto_stats.buckets_sweep,
            data.len() as u64,
            "one backend choice per shipped bucket"
        );
        let expect_sweep = data
            .values()
            .filter(|ivs| {
                select_backend(&BucketProfile::from_intervals(ivs)) == LocalJoinBackend::Sweep
            })
            .count() as u64;
        assert_eq!(auto_stats.buckets_sweep, expect_sweep, "choices match the selector");
    }

    #[test]
    fn auto_index_dispatches_to_the_selected_backend() {
        // A very dense bucket builds the sweep store; a populous
        // mid-density one the R-tree.
        let dense: Vec<Interval> =
            (0..100).map(|i| Interval::new_unchecked(i, i as i64, i as i64 + 80)).collect();
        let banded: Vec<Interval> =
            (0..300).map(|i| Interval::new_unchecked(i, i as i64, i as i64 + 14)).collect();
        let d = AutoIndex::build(dense);
        let b = AutoIndex::build(banded.clone());
        assert_eq!(d.chosen(), LocalJoinBackend::Sweep);
        assert_eq!(
            select_backend(&BucketProfile::from_intervals(&banded)),
            LocalJoinBackend::RTree
        );
        assert_eq!(b.chosen(), LocalJoinBackend::RTree);
        assert_eq!(d.len(), 100);
        assert_eq!(b.len(), 300);
    }

    type ShardedRun = (Vec<MatchTuple>, LocalJoinStats);

    /// Runs the sharded join end-to-end on a full (unpruned) setup.
    fn run_sharded(
        backend: LocalJoinBackend,
        intra: IntraJoin,
        query: &Query,
        collections: &[IntervalCollection],
        k: usize,
        g: u32,
    ) -> ShardedRun {
        let (combos, indices, data) = full_setup(query, collections, g);
        let plan = query.plan();
        let (topk, stats) = local_topk_join_planned(
            backend,
            SweepScanKind::default(),
            query,
            &plan,
            k,
            &combos,
            &indices,
            &data,
            None,
            None,
            intra,
        );
        (topk.into_sorted_vec(), stats)
    }

    #[test]
    fn sharded_join_is_thread_invariant_and_exact_for_any_chunk_size() {
        let collections = random_collections(61, 3, 48, 300);
        let q = table1::q_om(PredicateParams::P1);
        let refs: Vec<&IntervalCollection> =
            q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
        let expected = naive_topk(&q, &refs, 9);
        for (name, backend) in LocalJoinBackend::all() {
            for chunk_items in [1usize, 2, 5, 16, 64, 10_000] {
                let intra = IntraJoin { chunk_items, ..IntraJoin::default() };
                let (seq_results, seq_stats) = run_sharded(backend, intra, &q, &collections, 9, 6);
                // Exact score multiset vs the oracle, at every chunk size
                // (incl. 1 and longer than every candidate run).
                assert_eq!(seq_results.len(), expected.len(), "{name}/chunk={chunk_items}");
                for (got, want) in seq_results.iter().zip(&expected) {
                    assert!(
                        (got.score - want.score).abs() < 1e-9,
                        "{name}/chunk={chunk_items}: {got:?} vs {want:?}"
                    );
                }
                // The thread count only executes the fixed plan: results
                // (ids included) and every work counter are bit-identical
                // to the sequential execution.
                for threads in [1usize, 2, 4] {
                    let (par_results, par_stats) = run_sharded(
                        backend,
                        IntraJoin { threads, ..intra },
                        &q,
                        &collections,
                        9,
                        6,
                    );
                    assert_eq!(seq_results.len(), par_results.len());
                    for (a, b) in seq_results.iter().zip(&par_results) {
                        assert_eq!(a.ids, b.ids, "{name}/chunk={chunk_items}/threads={threads}");
                        assert_eq!(a.score.to_bits(), b.score.to_bits());
                    }
                    // `intra_threads_used` records the execution shape
                    // (it *should* differ across thread counts); every
                    // other field must match exactly.
                    let mut normalized = par_stats.clone();
                    normalized.intra_threads_used = seq_stats.intra_threads_used;
                    assert_eq!(
                        normalized, seq_stats,
                        "{name}/chunk={chunk_items}/threads={threads}: counters diverge"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_bound_only_prunes() {
        // Disabling the shared bound is the maximally stale bound every
        // wave chunk could ever observe: the exact same score multiset
        // must come back, and no counter may shrink — the bound can only
        // remove work, never add or redirect it.
        let collections = random_collections(77, 3, 60, 250);
        let q = table1::q_om(PredicateParams::P1);
        for chunk_items in [3usize, 10, 32] {
            let on = IntraJoin { chunk_items, ..IntraJoin::default() };
            let off = IntraJoin { shared_bound: false, ..on };
            let (r_on, s_on) = run_sharded(LocalJoinBackend::Sweep, on, &q, &collections, 7, 5);
            let (r_off, s_off) = run_sharded(LocalJoinBackend::Sweep, off, &q, &collections, 7, 5);
            assert_eq!(r_on.len(), r_off.len(), "chunk={chunk_items}");
            for (a, b) in r_on.iter().zip(&r_off) {
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "chunk={chunk_items}");
            }
            assert!(
                s_on.items_scanned <= s_off.items_scanned,
                "chunk={chunk_items}: the bound must only prune scans: {} vs {}",
                s_on.items_scanned,
                s_off.items_scanned
            );
            assert!(s_on.index_probes <= s_off.index_probes, "chunk={chunk_items}");
            assert!(s_on.tuples_scored <= s_off.tuples_scored, "chunk={chunk_items}");
        }
    }

    #[test]
    fn waves_fire_and_record_chunking_telemetry() {
        // A single hot bucket (g = 1) much longer than the chunk size:
        // once the heap fills, the remaining chunks run as waves on the
        // configured workers.
        // k is large enough that the admission threshold stays below the
        // combination's UB (1.0) — otherwise mid-run early termination
        // correctly skips the remaining chunks before any wave fires.
        let collections = random_collections(91, 3, 200, 4000);
        let q = table1::q_om(PredicateParams::P1);
        let intra = IntraJoin { threads: 2, chunk_items: 16, shared_bound: true };
        let (results, stats) = run_sharded(LocalJoinBackend::Sweep, intra, &q, &collections, 50, 1);
        assert_eq!(results.len(), 50);
        // Nominal chunk count of the one candidate run, from the profile.
        let nominal = BucketProfile::from_intervals(collections[0].intervals()).probe_chunks(16);
        assert_eq!(nominal, 13, "200 items / 16 per chunk");
        assert!(
            stats.probe_chunks >= 2 && stats.probe_chunks <= nominal,
            "chunks evaluated within the nominal bound: {stats:?}"
        );
        assert_eq!(stats.intra_threads_used, 2, "waves ran on the configured workers: {stats:?}");
        // Sequential execution of the identical plan: same counters,
        // but no wave ever ran on extra workers.
        let (_, seq) = run_sharded(
            LocalJoinBackend::Sweep,
            IntraJoin { threads: 0, ..intra },
            &q,
            &collections,
            50,
            1,
        );
        assert_eq!(seq.probe_chunks, stats.probe_chunks);
        assert_eq!(seq.items_scanned, stats.items_scanned);
        assert_eq!(seq.intra_threads_used, 0);
    }

    #[test]
    fn shard_heap_admission_is_a_valid_lower_bound() {
        let mut heap = ShardHeap { local: TopK::new(2), floor: 0.5, floor_full: true };
        assert!(heap.is_full(), "the frozen global heap was full");
        assert_eq!(heap.admission_score(), 0.5, "floor governs until the local k-th beats it");
        heap.offer(MatchTuple::new(vec![1], 0.9));
        assert_eq!(heap.admission_score(), 0.5, "local heap below k: floor still governs");
        heap.offer(MatchTuple::new(vec![2], 0.7));
        assert_eq!(heap.admission_score(), 0.7, "local k-th overtakes the floor");
        let empty = ShardHeap { local: TopK::new(2), floor: 0.0, floor_full: false };
        assert!(!empty.is_full());
        assert_eq!(empty.admission_score(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be monotone")]
    fn publish_bound_rejects_regressions() {
        let bound = AtomicU64::new(0f64.to_bits());
        publish_bound(&bound, 0.8);
        publish_bound(&bound, 0.5); // a regressing bound is a bookkeeping bug
    }

    #[test]
    fn empty_assignment_returns_empty() {
        let _collections = random_collections(7, 2, 5, 50);
        let q = Query::new(
            vec![CollectionId(0), CollectionId(1)],
            vec![tkij_temporal::query::QueryEdge {
                src: 0,
                dst: 1,
                predicate: tkij_temporal::predicate::TemporalPredicate::before(PredicateParams::P1),
            }],
            tkij_temporal::aggregate::Aggregation::NormalizedSum,
        )
        .unwrap();
        let plan = q.plan();
        let combos = ComboSet::new(2);
        let (topk, stats) = local_topk_join(&q, &plan, 5, &combos, &[], &BTreeMap::new());
        assert!(topk.is_empty());
        assert_eq!(stats.combos_processed, 0);
        assert_eq!(stats.kth_score, 0.0);
    }
}
