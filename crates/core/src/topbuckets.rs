//! TopBuckets: bound computation and pruning of bucket combinations
//! (paper §3.3, Algorithms 1 and 2).
//!
//! `getTopBuckets` selects `Ω_{k,S}`: a subset of combinations sufficient
//! to answer the top-k query exactly (Definition 2). The three strategies
//! trade solver effort for bound tightness:
//!
//! * [`Strategy::BruteForce`] — n-ary solver bounds for every combination;
//! * [`Strategy::Loose`] — solver bounds per bucket *pair* per edge,
//!   aggregated through the monotone `S` (sound but possibly loose);
//! * [`Strategy::TwoPhase`] — loose selection, then exact n-ary
//!   refinement of the survivors and a second selection.
//!
//! Like the paper's deployment, the candidate space can be partitioned by
//! the first vertex's buckets across `workers` groups, each running
//! `getTopBuckets` locally, with a final merge + re-selection (§4,
//! "Selection of bucket combinations"); this is proven safe because the
//! merged selection's `kthResLB` dominates every local one.

use crate::combos::{
    enumerate_combos, nb_res_of, vertex_buckets, ComboSet, TopBucketsStats, VertexBuckets,
};
use crate::config::Strategy;
use std::time::Instant;
use tkij_solver::{nary_bounds, pair_bounds, SolverConfig};
use tkij_temporal::bucket::BucketMatrix;
use tkij_temporal::query::Query;

/// Algorithm 1: selects a valid `Ω_{k,S}` from a bounded combination set.
///
/// Returns the kept indices in descending-UB order (the access order both
/// DTB and the local joins use).
pub fn get_top_buckets(k: u64, combos: &ComboSet) -> Vec<u32> {
    if combos.is_empty() {
        return Vec::new();
    }
    // Lines 1–6: lower-bound the k-th result score.
    let by_lb = combos.indices_by_lb_desc();
    let mut collected: u128 = 0;
    let mut kth_res_lb = f64::NEG_INFINITY;
    for &i in &by_lb {
        collected += combos.nb_res(i as usize) as u128;
        kth_res_lb = combos.lb(i as usize);
        if collected >= k as u128 {
            break;
        }
    }
    // Lines 7–13: keep combinations until k results are covered and the
    // next upper bound is dominated.
    let by_ub = combos.indices_by_ub_desc();
    let mut kept = Vec::new();
    let mut collected: u128 = 0;
    for &i in &by_ub {
        if collected >= k as u128 && combos.ub(i as usize) <= kth_res_lb {
            break;
        }
        kept.push(i);
        collected += combos.nb_res(i as usize) as u128;
    }
    kept
}

/// Per-edge pair-bound tables for the `loose` aggregation: entry
/// `[e][i * len_j + j]` holds the (lb, ub) of edge `e` over the i-th
/// bucket of its source vertex and the j-th bucket of its target vertex.
struct EdgePairBounds {
    per_edge: Vec<Vec<(f64, f64)>>,
    stride: Vec<usize>,
}

impl EdgePairBounds {
    fn compute(
        query: &Query,
        per_vertex: &[VertexBuckets],
        matrices: &[BucketMatrix],
        solver_cfg: &SolverConfig,
        solver_calls: &mut usize,
    ) -> Self {
        let mut per_edge = Vec::with_capacity(query.edges.len());
        let mut stride = Vec::with_capacity(query.edges.len());
        for e in &query.edges {
            let (src, dst) = (e.src, e.dst);
            let src_matrix = &matrices[query.vertices[src].0 as usize];
            let dst_matrix = &matrices[query.vertices[dst].0 as usize];
            let li = per_vertex[src].len();
            let lj = per_vertex[dst].len();
            let mut table = Vec::with_capacity(li * lj);
            for i in 0..li {
                let left = src_matrix.endpoint_box(per_vertex[src].ids[i]);
                for j in 0..lj {
                    let right = dst_matrix.endpoint_box(per_vertex[dst].ids[j]);
                    let b = pair_bounds(&e.predicate, left, right, solver_cfg);
                    *solver_calls += 1;
                    table.push((b.lb, b.ub));
                }
            }
            per_edge.push(table);
            stride.push(lj);
        }
        EdgePairBounds { per_edge, stride }
    }

    #[inline]
    fn get(&self, edge: usize, i: usize, j: usize) -> (f64, f64) {
        self.per_edge[edge][i * self.stride[edge] + j]
    }
}

/// Runs the full TopBuckets phase for a query.
///
/// `matrices` are indexed by collection id; `k` is the query's result
/// budget. Returns `Ω_{k,S}` (descending UB order) and phase telemetry.
pub fn run_topbuckets(
    query: &Query,
    matrices: &[BucketMatrix],
    k: u64,
    strategy: Strategy,
    solver_cfg: &SolverConfig,
    workers: usize,
) -> (ComboSet, TopBucketsStats) {
    // tkij-lint: allow(DET002) -- feeds only TopBucketsStats::duration, a timing artifact
    let started = Instant::now();
    let n = query.n();
    let per_vertex = vertex_buckets(query, matrices);
    let mut stats = TopBucketsStats::default();
    if per_vertex.iter().any(VertexBuckets::is_empty) {
        stats.duration = started.elapsed();
        return (ComboSet::new(n), stats);
    }

    // Shared pair-bound tables (needed by Loose and TwoPhase).
    let mut solver_calls = 0usize;
    let edge_bounds = match strategy {
        Strategy::Loose | Strategy::TwoPhase => Some(EdgePairBounds::compute(
            query,
            &per_vertex,
            matrices,
            solver_cfg,
            &mut solver_calls,
        )),
        Strategy::BruteForce => None,
    };

    // Partition vertex 0's buckets into worker groups.
    let len0 = per_vertex[0].len();
    let workers = workers.clamp(1, len0);
    let group = len0.div_ceil(workers);
    stats.worker_groups = workers;
    let mut merged = ComboSet::new(n);
    for w in 0..workers {
        let range = (w * group).min(len0)..((w + 1) * group).min(len0);
        let (local, local_stats) = run_group(
            query,
            matrices,
            &per_vertex,
            edge_bounds.as_ref(),
            strategy,
            solver_cfg,
            k,
            range,
        );
        stats.candidates += local_stats.0;
        stats.total_results += local_stats.1;
        solver_calls += local_stats.2;
        stats.pruned_local += local_stats.0 - local.len();
        merged.extend(&local);
    }

    // Final merge selection (the paper's "second phase of TopBuckets").
    let mut kept = get_top_buckets(k, &merged);
    stats.pruned_merge += merged.len() - kept.len();
    let mut selected = merged.subset(&kept);

    if strategy == Strategy::TwoPhase {
        // Refine the survivors with exact n-ary bounds, then re-select
        // (Algorithm 2, lines 8–10).
        for i in 0..selected.len() {
            let boxes = combo_boxes(query, matrices, selected.buckets(i));
            let b = nary_bounds(query, boxes, solver_cfg);
            solver_calls += 1;
            selected.set_bounds(i, b.lb, b.ub);
        }
        kept = get_top_buckets(k, &selected);
        stats.pruned_merge += selected.len() - kept.len();
        selected = selected.subset(&kept);
    }

    stats.selected = selected.len();
    stats.selected_results = selected.total_results();
    stats.solver_calls = solver_calls;
    stats.duration = started.elapsed();
    (selected, stats)
}

/// Enumerates one vertex-0 group, bounds every combination per the
/// strategy, and applies the local `getTopBuckets`. Returns the local
/// selection and `(candidates, total_results, solver_calls)`.
#[allow(clippy::too_many_arguments)]
fn run_group(
    query: &Query,
    matrices: &[BucketMatrix],
    per_vertex: &[VertexBuckets],
    edge_bounds: Option<&EdgePairBounds>,
    strategy: Strategy,
    solver_cfg: &SolverConfig,
    k: u64,
    range: std::ops::Range<usize>,
) -> (ComboSet, (usize, u128, usize)) {
    let n = query.n();
    let mut local = ComboSet::new(n);
    let mut candidates = 0usize;
    let mut total_results: u128 = 0;
    let mut solver_calls = 0usize;
    let mut bucket_buf = Vec::with_capacity(n);
    let mut edge_lb = vec![0.0; query.edges.len()];
    let mut edge_ub = vec![0.0; query.edges.len()];
    enumerate_combos(per_vertex, range, |indices| {
        candidates += 1;
        let nb = nb_res_of(per_vertex, indices);
        total_results += nb as u128;
        bucket_buf.clear();
        bucket_buf.extend(indices.iter().enumerate().map(|(v, &i)| per_vertex[v].ids[i]));
        let (lb, ub) = match strategy {
            Strategy::Loose | Strategy::TwoPhase => {
                let eb = edge_bounds.expect("pair bounds precomputed");
                for (e, edge) in query.edges.iter().enumerate() {
                    let (lb, ub) = eb.get(e, indices[edge.src], indices[edge.dst]);
                    edge_lb[e] = lb;
                    edge_ub[e] = ub;
                }
                (query.aggregation.eval(&edge_lb), query.aggregation.eval(&edge_ub))
            }
            Strategy::BruteForce => {
                let boxes = combo_boxes(query, matrices, &bucket_buf);
                let b = nary_bounds(query, boxes, solver_cfg);
                solver_calls += 1;
                (b.lb, b.ub)
            }
        };
        local.push(&bucket_buf, nb, lb, ub);
    });
    let kept = get_top_buckets(k, &local);
    (local.subset(&kept), (candidates, total_results, solver_calls))
}

/// The endpoint boxes of one combination, per query vertex.
pub fn combo_boxes(
    query: &Query,
    matrices: &[BucketMatrix],
    buckets: &[tkij_temporal::bucket::BucketId],
) -> Vec<tkij_temporal::expr::EndpointBox> {
    buckets
        .iter()
        .enumerate()
        .map(|(v, b)| matrices[query.vertices[v].0 as usize].endpoint_box(*b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::bucket::BucketId;
    use tkij_temporal::collection::CollectionId;
    use tkij_temporal::granule::TimePartitioning;
    use tkij_temporal::interval::Interval;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn combo(set: &mut ComboSet, b: u32, nb: u64, lb: f64, ub: f64) {
        set.push(&[BucketId::new(b, b)], nb, lb, ub);
    }

    #[test]
    fn get_top_buckets_prunes_dominated() {
        let mut set = ComboSet::new(1);
        combo(&mut set, 0, 10, 0.8, 1.0); // covers k with lb 0.8
        combo(&mut set, 1, 10, 0.1, 0.5); // ub 0.5 ≤ kthResLB 0.8 → pruned
        combo(&mut set, 2, 10, 0.2, 0.9); // ub 0.9 > 0.8 → kept
        let kept = get_top_buckets(5, &set);
        assert_eq!(kept.len(), 2);
        let selected = set.subset(&kept);
        assert!((0..selected.len()).all(|i| selected.ub(i) > 0.5));
    }

    #[test]
    fn get_top_buckets_keeps_all_when_results_scarce() {
        let mut set = ComboSet::new(1);
        combo(&mut set, 0, 1, 0.9, 1.0);
        combo(&mut set, 1, 1, 0.0, 0.1);
        let kept = get_top_buckets(10, &set);
        assert_eq!(kept.len(), 2, "fewer than k results: nothing prunable");
    }

    #[test]
    fn get_top_buckets_respects_coverage_before_pruning() {
        // kthResLB comes from the best-LB prefix covering k = 15: needs
        // both high-lb combos (10 + 10), so kth_lb = 0.6.
        let mut set = ComboSet::new(1);
        combo(&mut set, 0, 10, 0.7, 1.0);
        combo(&mut set, 1, 10, 0.6, 0.9);
        combo(&mut set, 2, 100, 0.0, 0.6); // ub = 0.6 ≤ 0.6 → pruned
        combo(&mut set, 3, 100, 0.0, 0.61); // just above → kept
        let kept = get_top_buckets(15, &set);
        let selected = set.subset(&kept);
        assert_eq!(selected.len(), 3);
        assert!((0..3).all(|i| selected.ub(i) >= 0.61));
    }

    #[test]
    fn get_top_buckets_output_is_ub_sorted() {
        let mut set = ComboSet::new(1);
        combo(&mut set, 0, 1, 0.1, 0.3);
        combo(&mut set, 1, 1, 0.2, 0.8);
        combo(&mut set, 2, 1, 0.0, 0.5);
        let kept = get_top_buckets(100, &set);
        let ubs: Vec<f64> = kept.iter().map(|&i| set.ub(i as usize)).collect();
        assert!(ubs.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Tiny two-collection dataset where the exact Ω_{k,S} is computable by
    /// hand: intervals cluster in two far-apart granule regions.
    fn small_dataset() -> (Vec<BucketMatrix>, Vec<Interval>, Vec<Interval>) {
        let part = TimePartitioning::from_range(0, 99, 10).unwrap();
        let c1: Vec<Interval> = vec![
            Interval::new(0, 5, 9).unwrap(),
            Interval::new(1, 6, 9).unwrap(),
            Interval::new(2, 71, 79).unwrap(),
        ];
        let c2: Vec<Interval> = vec![
            Interval::new(0, 10, 14).unwrap(),
            Interval::new(1, 90, 95).unwrap(),
            Interval::new(2, 12, 19).unwrap(),
        ];
        let m1 = BucketMatrix::build(part, &c1);
        let m2 = BucketMatrix::build(part, &c2);
        (vec![m1, m2], c1, c2)
    }

    fn two_way_meets() -> Query {
        let p = PredicateParams::new(4, 8, 0, 0);
        Query::new(
            vec![CollectionId(0), CollectionId(1)],
            vec![tkij_temporal::query::QueryEdge {
                src: 0,
                dst: 1,
                predicate: tkij_temporal::predicate::TemporalPredicate::meets(p),
            }],
            tkij_temporal::aggregate::Aggregation::NormalizedSum,
        )
        .unwrap()
    }

    #[test]
    fn strategies_select_supersets_of_needed_combos() {
        let (matrices, _, _) = small_dataset();
        let q = two_way_meets();
        for (name, strategy) in Strategy::all() {
            let (selected, stats) =
                run_topbuckets(&q, &matrices, 2, strategy, &SolverConfig::default(), 1);
            assert!(!selected.is_empty(), "{name}: nothing selected");
            assert!(stats.selected_results >= 2, "{name}: must cover k results");
            assert_eq!(stats.candidates, 4, "{name}: 2×2 buckets");
            // The bucket pair (start≈5, end≈9) × (start≈10..19) scores 1.0
            // and must be selected under every strategy.
            let has_hot = (0..selected.len()).any(|i| {
                selected.buckets(i)[0] == BucketId::new(0, 0)
                    && selected.buckets(i)[1] == BucketId::new(1, 1)
            });
            assert!(has_hot, "{name}: missing the high-scoring combination");
        }
    }

    #[test]
    fn loose_bounds_dominate_brute_force_bounds() {
        // Same combination set: loose UB ≥ brute-force UB, loose LB ≤
        // brute-force LB (loose is sound but weaker).
        let (matrices, _, _) = small_dataset();
        let q = table1::q_sm(PredicateParams::P1);
        let matrices3 = vec![matrices[0].clone(), matrices[1].clone(), matrices[0].clone()];
        let big_k = u64::MAX; // keep everything so sets align
        let (loose, _) =
            run_topbuckets(&q, &matrices3, big_k, Strategy::Loose, &SolverConfig::default(), 1);
        let (brute, _) = run_topbuckets(
            &q,
            &matrices3,
            big_k,
            Strategy::BruteForce,
            &SolverConfig::default(),
            1,
        );
        assert_eq!(loose.len(), brute.len());
        // Index combos by buckets for comparison.
        use std::collections::BTreeMap;
        let mut brute_by_buckets = BTreeMap::new();
        for i in 0..brute.len() {
            brute_by_buckets.insert(brute.buckets(i).to_vec(), (brute.lb(i), brute.ub(i)));
        }
        for i in 0..loose.len() {
            let (blb, bub) = brute_by_buckets[&loose.buckets(i).to_vec()];
            assert!(loose.ub(i) >= bub - 1e-9, "loose ub must dominate");
            assert!(loose.lb(i) <= blb + 1e-9, "loose lb must be dominated");
        }
    }

    #[test]
    fn partitioned_workers_select_valid_superset() {
        // Multi-worker selection must still contain every combination the
        // single-worker selection deems necessary (both are valid Ω_{k,S};
        // the partitioned one may be larger, never smaller than needed).
        let (matrices, _, _) = small_dataset();
        let q = two_way_meets();
        let (single, _) =
            run_topbuckets(&q, &matrices, 2, Strategy::Loose, &SolverConfig::default(), 1);
        let (multi, _) =
            run_topbuckets(&q, &matrices, 2, Strategy::Loose, &SolverConfig::default(), 4);
        let single_set: std::collections::BTreeSet<Vec<_>> =
            (0..single.len()).map(|i| single.buckets(i).to_vec()).collect();
        let multi_set: std::collections::BTreeSet<Vec<_>> =
            (0..multi.len()).map(|i| multi.buckets(i).to_vec()).collect();
        // Both cover at least k results.
        assert!(single.total_results() >= 2 && multi.total_results() >= 2);
        // The hottest combination is in both.
        for set in [&single_set, &multi_set] {
            assert!(set.contains(&vec![BucketId::new(0, 0), BucketId::new(1, 1)]));
        }
    }

    #[test]
    fn two_phase_never_selects_more_than_loose() {
        let (matrices, _, _) = small_dataset();
        let q = two_way_meets();
        let (loose, _) =
            run_topbuckets(&q, &matrices, 2, Strategy::Loose, &SolverConfig::default(), 1);
        let (two, _) =
            run_topbuckets(&q, &matrices, 2, Strategy::TwoPhase, &SolverConfig::default(), 1);
        assert!(two.len() <= loose.len());
    }

    #[test]
    fn definition2_validity_on_random_combosets() {
        // Property (paper Def. 2): for every pruned ω there must exist
        // Ψ ⊆ Ω_{k,S} with Σ nbRes ≥ k and ∀ω′∈Ψ: ω′.LB ≥ ω.UB.
        // Deterministic pseudo-random exploration over many shapes.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n_combos = (next() % 40 + 1) as usize;
            let k = next() % 50 + 1;
            let mut set = ComboSet::new(1);
            for i in 0..n_combos {
                let lb = (next() % 1000) as f64 / 1000.0;
                let ub = lb + (next() % 1000) as f64 / 1000.0 * (1.0 - lb);
                let nb = next() % 20 + 1;
                set.push(&[BucketId::new(i as u32, i as u32)], nb, lb, ub);
            }
            let kept = get_top_buckets(k, &set);
            let kept_set: std::collections::BTreeSet<u32> = kept.iter().copied().collect();
            for pruned in 0..n_combos as u32 {
                if kept_set.contains(&pruned) {
                    continue;
                }
                let ub = set.ub(pruned as usize);
                let cover: u128 = kept
                    .iter()
                    .filter(|&&i| set.lb(i as usize) >= ub)
                    .map(|&i| set.nb_res(i as usize) as u128)
                    .sum();
                assert!(
                    cover >= k as u128,
                    "trial {trial}: pruned combo (ub {ub}) not covered by {cover} ≥ k={k} results"
                );
            }
        }
    }

    #[test]
    fn pruning_counters_account_for_every_candidate() {
        // The work-counter invariant the bench gate relies on: every
        // examined combination is either selected or counted pruned at
        // exactly one of the two selection stages.
        let (matrices, _, _) = small_dataset();
        let q = two_way_meets();
        for (name, strategy) in Strategy::all() {
            for workers in [1, 2, 4] {
                let (selected, stats) =
                    run_topbuckets(&q, &matrices, 2, strategy, &SolverConfig::default(), workers);
                assert_eq!(
                    stats.candidates - stats.pruned_local - stats.pruned_merge,
                    selected.len(),
                    "{name}/w{workers}: {stats:?}"
                );
                assert_eq!(stats.selected, selected.len(), "{name}/w{workers}");
                assert_eq!(
                    stats.worker_groups,
                    workers.min(2),
                    "{name}/w{workers}: 2 buckets on v0"
                );
            }
        }
    }

    #[test]
    fn empty_vertex_yields_empty_selection() {
        let part = TimePartitioning::from_range(0, 99, 10).unwrap();
        let empty = BucketMatrix::new(part);
        let full = BucketMatrix::build(part, &[Interval::new(0, 1, 5).unwrap()]);
        let q = two_way_meets();
        let (selected, stats) =
            run_topbuckets(&q, &[full, empty], 5, Strategy::Loose, &SolverConfig::default(), 1);
        assert!(selected.is_empty());
        assert_eq!(stats.candidates, 0);
    }
}
