//! TKIJ engine configuration.

use std::str::FromStr;
use tkij_solver::SolverConfig;

// The variant-parse error lives in the base crate so the index crate's
// `SweepScanKind` knob can share it (orphan rules put its `FromStr`
// next to the enum); re-exported here to keep the historical path.
pub use tkij_temporal::error::ParseVariantError;

/// The sweep store's run-scan kind — scalar reference vs chunked lanes
/// (defined next to the lanes in `tkij_index`; re-exported here because
/// it is threaded through the engine exactly like [`LocalJoinBackend`]).
/// The kinds are bit-identical in results, visit order, and every work
/// counter; `TkijConfig::default` honors the `TKIJ_SWEEP_SCAN` env
/// override so CI can force the scalar reference suite-wide.
pub use tkij_index::SweepScanKind;

/// The TopBuckets strategy (paper §3.3, Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Solver bounds on full n-ary combinations (`brute-force`).
    BruteForce,
    /// Solver bounds per bucket pair, aggregated monotonically (`loose`) —
    /// the paper's recommended strategy.
    Loose,
    /// `loose` selection, then exact n-ary refinement of the survivors
    /// (`two-phase`).
    TwoPhase,
}

impl Strategy {
    /// All strategies with their paper names, for harness sweeps.
    pub fn all() -> [(&'static str, Strategy); 3] {
        [
            ("brute-force", Strategy::BruteForce),
            ("two-phase", Strategy::TwoPhase),
            ("loose", Strategy::Loose),
        ]
    }

    /// Paper name of the strategy.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute-force",
            Strategy::Loose => "loose",
            Strategy::TwoPhase => "two-phase",
        }
    }
}

impl FromStr for Strategy {
    type Err = ParseVariantError;

    /// Parses a paper strategy name (case-insensitive; `_` ≡ `-`), so
    /// bench bins and CI can select variants by flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "brute-force" => Ok(Strategy::BruteForce),
            "loose" => Ok(Strategy::Loose),
            "two-phase" => Ok(Strategy::TwoPhase),
            _ => Err(ParseVariantError {
                what: "strategy",
                input: s.to_string(),
                expected: &["brute-force", "loose", "two-phase"],
            }),
        }
    }
}

/// The candidate-source backend of the reducer-local rank-join.
///
/// The paper's implementation keeps each bucket's intervals "in memory
/// \[in\] R-Trees" (§4); [`LocalJoinBackend::Sweep`] is the drop-in,
/// cache-friendly replacement built on endpoint-sorted gapless lanes
/// (Piatov et al.). Both backends answer the same score-threshold window
/// queries and produce identical top-k results (property-tested); sweep
/// is the default because it is measurably faster on the hot path.
/// [`LocalJoinBackend::Auto`] picks one of the two per reducer bucket
/// from the bucket's cardinality/density statistics (the fig15 density
/// sweep shows the crossover is a function of bucket density).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalJoinBackend {
    /// STR bulk-loaded R-tree over endpoint points (the paper's choice).
    RTree,
    /// Endpoint-sorted sweeping store with gapless lanes.
    #[default]
    Sweep,
    /// Per-bucket selection between the two fixed backends, driven by the
    /// bucket's cardinality/density profile (see
    /// `tkij_core::localjoin::select_backend`).
    Auto,
}

impl LocalJoinBackend {
    /// All backends with display names, for harness sweeps.
    pub fn all() -> [(&'static str, LocalJoinBackend); 3] {
        [
            ("rtree", LocalJoinBackend::RTree),
            ("sweep", LocalJoinBackend::Sweep),
            ("auto", LocalJoinBackend::Auto),
        ]
    }

    /// Display name of the backend.
    pub fn name(&self) -> &'static str {
        match self {
            LocalJoinBackend::RTree => "rtree",
            LocalJoinBackend::Sweep => "sweep",
            LocalJoinBackend::Auto => "auto",
        }
    }
}

impl FromStr for LocalJoinBackend {
    type Err = ParseVariantError;

    /// Parses a backend display name (case-insensitive), including
    /// `auto`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rtree" | "r-tree" => Ok(LocalJoinBackend::RTree),
            "sweep" => Ok(LocalJoinBackend::Sweep),
            "auto" => Ok(LocalJoinBackend::Auto),
            _ => Err(ParseVariantError {
                what: "backend",
                input: s.to_string(),
                expected: &["rtree", "sweep", "auto"],
            }),
        }
    }
}

/// The workload-distribution policy of the join phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionPolicy {
    /// `DistributeTopBuckets` (Algorithm 3) — the paper's contribution:
    /// spread high-scoring combinations evenly, minimize replication.
    Dtb,
    /// Longest-Processing-Time scheduling on `nbRes` — the baseline of
    /// §4.2.2.
    Lpt,
}

impl DistributionPolicy {
    /// Paper name of the policy.
    pub fn name(&self) -> &'static str {
        match self {
            DistributionPolicy::Dtb => "DTB",
            DistributionPolicy::Lpt => "LPT",
        }
    }
}

impl FromStr for DistributionPolicy {
    type Err = ParseVariantError;

    /// Parses a paper policy name (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dtb" => Ok(DistributionPolicy::Dtb),
            "lpt" => Ok(DistributionPolicy::Lpt),
            _ => Err(ParseVariantError {
                what: "policy",
                input: s.to_string(),
                expected: &["DTB", "LPT"],
            }),
        }
    }
}

/// Full configuration of a TKIJ execution.
#[derive(Debug, Clone)]
pub struct TkijConfig {
    /// Number of granules `g` per collection (paper sweet spot: ≈ 40).
    pub granules: u32,
    /// Number of join-phase reducers `r` (paper: 24).
    pub reducers: usize,
    /// TopBuckets strategy.
    pub strategy: Strategy,
    /// Workload distribution policy.
    pub distribution: DistributionPolicy,
    /// Candidate-source backend of the reducer-local join.
    pub local_backend: LocalJoinBackend,
    /// Run-scan kind of the sweeping store (scalar reference vs chunked
    /// lanes). Pure wall-clock knob: both kinds visit the same
    /// candidates in the same order and report identical work counters
    /// (locked by `tests/sweep_scan_equivalence.rs` and the determinism
    /// batteries), so flipping it can never change a result bit or a
    /// baseline counter.
    pub sweep_scan: SweepScanKind,
    /// Bound-solver configuration.
    pub solver: SolverConfig,
    /// Parallel TopBuckets groups (the paper splits B₁ into 6 worker
    /// groups); 1 disables partitioning.
    pub topbuckets_workers: usize,
    /// Fixed probe-chunk length of the intra-reducer sharded local join
    /// (`tkij_core::localjoin::PROBE_CHUNK_ITEMS` by default). An
    /// algorithmic knob: it fixes the deterministic chunk plan, while the
    /// thread count executing that plan comes from
    /// `ClusterConfig::intra_join_threads` via the nested thread budget.
    pub probe_chunk_items: usize,
    /// Ablation switch of the sharded join's shared score bound: when
    /// `false`, wave chunks start unbounded (the maximally stale bound).
    /// Results stay exact; work can only grow — the bound may only
    /// *prune*, which the equivalence suite asserts by comparing
    /// `items_scanned` across this switch.
    pub intra_shared_bound: bool,
    /// Ablation switch: when `false`, `getTopBuckets` pruning is disabled
    /// and every bucket combination is processed (bounds are still
    /// computed and drive the UB-descending access order and runtime
    /// early termination). Quantifies the benefit of Ω_{k,S} selection.
    pub pruning: bool,
    /// Serving-layer plan cache switch (`tkij_core::serving`). When `true`
    /// (default) a `TkijServer` caches the driver-side plan — TopBuckets
    /// selection and reducer assignment — per (query graph, k) shape and
    /// replays it on repeats; when `false` every query plans from
    /// scratch (every served query then counts as a cache miss). Pure
    /// wall-clock knob: planning is deterministic, so a cached plan is
    /// bit-identical to a fresh one and results/counters never depend on
    /// this switch.
    pub plan_cache: bool,
    /// Capacity of the serving plan cache, in distinct query shapes
    /// (default [`PLAN_CACHE_CAPACITY`]; `0` = unbounded, the pre-cap
    /// behavior). Beyond it the least-recently-used shape is evicted —
    /// deterministically under a serial access order (the cache stamps
    /// accesses with a monotone logical clock, never a wall clock or
    /// thread id) — so adversarial shape churn cannot grow the cache
    /// without bound. Like [`TkijConfig::plan_cache`] this is a pure
    /// wall-clock knob: an evicted shape is simply re-planned on its
    /// next request, bit-identical to the evicted plan.
    pub plan_cache_capacity: usize,
    /// Out-of-core shuffle switch: `Some(threshold)` routes every engine
    /// Map-Reduce job (statistics, join, merge — serving included)
    /// through the serialized shuffle transport, spilling checksummed
    /// segments whenever a map task's buffered partition exceeds
    /// `threshold` bytes (`0` = spill every record into its own
    /// segment). `None` (default) keeps the in-memory transport, unless
    /// the `TKIJ_SPILL_THRESHOLD` env hook forces serialization
    /// suite-wide (see [`tkij_mapreduce::ShuffleMode::from_env`]).
    /// Results, shuffle record/byte counters, and every baseline metric
    /// are bit-identical across transports — only the
    /// [`tkij_mapreduce::ShuffleStats`] spill counters change, which the
    /// spill determinism battery locks.
    pub shuffle_spill_threshold_bytes: Option<u64>,
}

/// Default bound of the serving plan cache, in distinct query shapes.
pub const PLAN_CACHE_CAPACITY: usize = 256;

impl Default for TkijConfig {
    fn default() -> Self {
        TkijConfig {
            granules: 40,
            reducers: 24,
            strategy: Strategy::Loose,
            distribution: DistributionPolicy::Dtb,
            local_backend: LocalJoinBackend::Sweep,
            // Chunked lanes by default; the TKIJ_SWEEP_SCAN env hook
            // lets CI force the scalar reference onto whole suites
            // without touching any call site.
            sweep_scan: SweepScanKind::from_env().unwrap_or_default(),
            // Bounds stay sound under a node cap and a 1 % convergence
            // gap — they merely get (marginally) looser, which is the
            // trade-off the paper's loose strategy embraces. Corner
            // sampling makes most pair problems converge at the root.
            solver: SolverConfig { eps: 0.01, max_nodes: 500 },
            topbuckets_workers: 6,
            probe_chunk_items: crate::localjoin::PROBE_CHUNK_ITEMS,
            intra_shared_bound: true,
            pruning: true,
            plan_cache: true,
            plan_cache_capacity: PLAN_CACHE_CAPACITY,
            shuffle_spill_threshold_bytes: None,
        }
    }
}

impl TkijConfig {
    /// Convenience: override the number of granules.
    pub fn with_granules(mut self, g: u32) -> Self {
        self.granules = g;
        self
    }

    /// Convenience: override the strategy.
    pub fn with_strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Convenience: override the distribution policy.
    pub fn with_distribution(mut self, d: DistributionPolicy) -> Self {
        self.distribution = d;
        self
    }

    /// Convenience: override the number of reducers.
    pub fn with_reducers(mut self, r: usize) -> Self {
        self.reducers = r;
        self
    }

    /// Convenience: override the local-join backend.
    pub fn with_local_backend(mut self, b: LocalJoinBackend) -> Self {
        self.local_backend = b;
        self
    }

    /// Convenience: override the sweep store's run-scan kind.
    pub fn with_sweep_scan(mut self, s: SweepScanKind) -> Self {
        self.sweep_scan = s;
        self
    }

    /// Convenience: override the sharded join's probe-chunk length.
    pub fn with_probe_chunk_items(mut self, items: usize) -> Self {
        self.probe_chunk_items = items;
        self
    }

    /// Convenience: disable the sharded join's shared score bound
    /// (ablation — wave chunks run maximally stale).
    pub fn without_intra_bound(mut self) -> Self {
        self.intra_shared_bound = false;
        self
    }

    /// Convenience: disable `getTopBuckets` pruning (ablation).
    pub fn without_pruning(mut self) -> Self {
        self.pruning = false;
        self
    }

    /// Convenience: disable the serving layer's plan cache (every served
    /// query plans from scratch and counts as a cache miss).
    pub fn without_plan_cache(mut self) -> Self {
        self.plan_cache = false;
        self
    }

    /// Convenience: override the serving plan cache's capacity in
    /// distinct shapes (`0` = unbounded).
    pub fn with_plan_cache_capacity(mut self, shapes: usize) -> Self {
        self.plan_cache_capacity = shapes;
        self
    }

    /// Convenience: route every engine job through the serialized
    /// out-of-core shuffle, spilling segments past `bytes` buffered
    /// bytes per (task, partition).
    pub fn with_shuffle_spill_threshold_bytes(mut self, bytes: u64) -> Self {
        self.shuffle_spill_threshold_bytes = Some(bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TkijConfig::default();
        assert_eq!(c.granules, 40);
        assert_eq!(c.reducers, 24);
        assert_eq!(c.strategy, Strategy::Loose);
        assert_eq!(c.distribution, DistributionPolicy::Dtb);
        assert_eq!(c.topbuckets_workers, 6);
        assert_eq!(c.probe_chunk_items, crate::localjoin::PROBE_CHUNK_ITEMS);
        assert!(c.intra_shared_bound, "the shared bound is on by default");
        assert!(c.plan_cache, "the serving plan cache is on by default");
        assert_eq!(c.plan_cache_capacity, PLAN_CACHE_CAPACITY, "bounded by default");
        assert_eq!(c.shuffle_spill_threshold_bytes, None, "in-memory shuffle by default");
        // Chunked lanes unless the CI env hook forces the scalar
        // reference (keeps this test truthful under that matrix leg).
        assert_eq!(c.sweep_scan, SweepScanKind::from_env().unwrap_or(SweepScanKind::Chunked));
        // The one deliberate departure from the paper's setup: the local
        // join defaults to the faster sweep backend (results are
        // identical; `with_local_backend(LocalJoinBackend::RTree)`
        // restores the paper's access path).
        assert_eq!(c.local_backend, LocalJoinBackend::Sweep);
    }

    #[test]
    fn backend_registry_names() {
        let names: Vec<_> = LocalJoinBackend::all().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["rtree", "sweep", "auto"]);
        assert_eq!(LocalJoinBackend::RTree.name(), "rtree");
        assert_eq!(LocalJoinBackend::Auto.name(), "auto");
        assert_eq!(LocalJoinBackend::default().name(), "sweep");
        let c = TkijConfig::default().with_local_backend(LocalJoinBackend::RTree);
        assert_eq!(c.local_backend, LocalJoinBackend::RTree);
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for (name, strategy) in Strategy::all() {
            assert_eq!(name.parse::<Strategy>().unwrap(), strategy);
            assert_eq!(strategy.name().parse::<Strategy>().unwrap(), strategy);
        }
        for (name, backend) in LocalJoinBackend::all() {
            assert_eq!(name.parse::<LocalJoinBackend>().unwrap(), backend);
            assert_eq!(backend.name().parse::<LocalJoinBackend>().unwrap(), backend);
        }
        for (name, kind) in SweepScanKind::all() {
            assert_eq!(name.parse::<SweepScanKind>().unwrap(), kind);
            assert_eq!(kind.name().parse::<SweepScanKind>().unwrap(), kind);
        }
        for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
            assert_eq!(policy.name().parse::<DistributionPolicy>().unwrap(), policy);
        }
    }

    #[test]
    fn fromstr_accepts_flag_style_spellings() {
        assert_eq!("AUTO".parse::<LocalJoinBackend>().unwrap(), LocalJoinBackend::Auto);
        assert_eq!("R-Tree".parse::<LocalJoinBackend>().unwrap(), LocalJoinBackend::RTree);
        assert_eq!("two_phase".parse::<Strategy>().unwrap(), Strategy::TwoPhase);
        assert_eq!("Brute-Force".parse::<Strategy>().unwrap(), Strategy::BruteForce);
        assert_eq!("dtb".parse::<DistributionPolicy>().unwrap(), DistributionPolicy::Dtb);
        assert_eq!("lpt".parse::<DistributionPolicy>().unwrap(), DistributionPolicy::Lpt);
        assert_eq!("Chunked".parse::<SweepScanKind>().unwrap(), SweepScanKind::Chunked);
        assert_eq!("SCALAR".parse::<SweepScanKind>().unwrap(), SweepScanKind::Scalar);
    }

    #[test]
    fn fromstr_rejects_unknown_names_with_expectations() {
        let err = "btree".parse::<LocalJoinBackend>().unwrap_err();
        assert_eq!(err.what, "backend");
        assert!(err.to_string().contains("rtree, sweep, auto"), "{err}");
        assert!("eager".parse::<Strategy>().is_err());
        assert!("round-robin".parse::<DistributionPolicy>().is_err());
        // Re-export smoke check only — the error's shape and message are
        // covered where the enum lives (tkij_index::lanes).
        assert!("simd".parse::<SweepScanKind>().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = TkijConfig::default()
            .with_granules(15)
            .with_strategy(Strategy::TwoPhase)
            .with_distribution(DistributionPolicy::Lpt)
            .with_reducers(8)
            .with_probe_chunk_items(64)
            .with_sweep_scan(SweepScanKind::Scalar)
            .without_intra_bound()
            .without_plan_cache()
            .with_plan_cache_capacity(16)
            .with_shuffle_spill_threshold_bytes(4096);
        assert_eq!(c.granules, 15);
        assert_eq!(c.strategy.name(), "two-phase");
        assert_eq!(c.distribution.name(), "LPT");
        assert_eq!(c.reducers, 8);
        assert_eq!(c.probe_chunk_items, 64);
        assert_eq!(c.sweep_scan, SweepScanKind::Scalar);
        assert!(!c.intra_shared_bound);
        assert!(!c.plan_cache);
        assert_eq!(c.plan_cache_capacity, 16);
        assert_eq!(c.shuffle_spill_threshold_bytes, Some(4096));
    }

    #[test]
    fn strategy_registry_names() {
        let names: Vec<_> = Strategy::all().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["brute-force", "two-phase", "loose"]);
    }
}
