//! Statistics collection (paper §3.2, Fig. 5a) — the offline,
//! query-independent Map-Reduce job.
//!
//! "Each mapper reads a fraction of the data and maintains a local matrix
//! per collection. Matrices are then aggregated in the reduce phase, and
//! the reducer responsible for collection `C_i` outputs a final matrix
//! `B_i`." Updates are handled as the paper prescribes — by applying the
//! same unit process to inserted/deleted intervals
//! ([`PreparedDataset::insert`] / [`PreparedDataset::remove`]).

use tkij_mapreduce::{
    run_map_reduce, ClusterConfig, CodecError, FrameReader, JobMetrics, Record, SizeOf,
};
use tkij_temporal::bucket::{BucketId, BucketMatrix};
use tkij_temporal::collection::IntervalCollection;
use tkij_temporal::error::TemporalError;
use tkij_temporal::granule::TimePartitioning;
use tkij_temporal::interval::Interval;

/// The cardinality/density summary of one bucket — the statistic
/// per-bucket backend auto-selection keys on
/// (`tkij_core::localjoin::select_backend`).
///
/// `density()` is the bucket's average concurrency: summed inclusive
/// durations over the occupied endpoint span. Profiles derived from the
/// collected statistics ([`PreparedDataset::bucket_profile`]) and from a
/// bucket's shipped interval slice ([`BucketProfile::from_intervals`])
/// are **identical** — both aggregate the exact same intervals — which
/// the test battery asserts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BucketProfile {
    /// `|b|`: intervals in the bucket.
    pub cardinality: u64,
    /// Σ inclusive durations `(end − start + 1)` over the bucket.
    pub duration_sum: u64,
    /// Occupied endpoint extent `max_end − min_start + 1` (0 when empty).
    pub span: u64,
}

impl BucketProfile {
    /// Computes the profile of an interval slice (e.g. one reducer
    /// bucket's shipped data).
    pub fn from_intervals(items: &[Interval]) -> Self {
        let mut p = BucketProfile::default();
        let (mut min_start, mut max_end) = (i64::MAX, i64::MIN);
        for iv in items {
            p.cardinality += 1;
            p.duration_sum += (iv.end - iv.start + 1) as u64;
            min_start = min_start.min(iv.start);
            max_end = max_end.max(iv.end);
        }
        if p.cardinality > 0 {
            p.span = (max_end - min_start + 1) as u64;
        }
        p
    }

    /// Number of fixed-size probe chunks this bucket's candidate run
    /// splits into under the sharded local join:
    /// `⌈cardinality / chunk_items⌉` (`chunk_items` clamped to ≥ 1).
    /// The sharded join's `probe_chunks` counter equals the sum of this
    /// over the runs it actually evaluated — a deficit against the
    /// nominal total witnesses per-chunk early termination, which the
    /// test battery asserts.
    pub fn probe_chunks(&self, chunk_items: usize) -> u64 {
        self.cardinality.div_ceil(chunk_items.max(1) as u64)
    }

    /// Average number of concurrent intervals over the bucket's occupied
    /// span (equals [`tkij_index::endpoint_density`] of the same items);
    /// `0.0` when empty.
    pub fn density(&self) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            self.duration_sum as f64 / self.span as f64
        }
    }
}

/// Per-bucket density accumulators of one collection, collected in the
/// same Map-Reduce pass as the [`BucketMatrix`] counts: summed inclusive
/// durations plus the occupied endpoint extent, row-major like the count
/// matrix. Like the counts, the accumulators merge associatively and
/// commutatively (mapper partials → reducer), property-tested below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityMatrix {
    partitioning: TimePartitioning,
    /// Row-major `g × g` summed inclusive durations.
    durations: Vec<u64>,
    /// Row-major minimum start per bucket (`i64::MAX` when empty).
    min_start: Vec<i64>,
    /// Row-major maximum end per bucket (`i64::MIN` when empty).
    max_end: Vec<i64>,
}

impl DensityMatrix {
    /// An empty accumulator over the given partitioning.
    pub fn new(partitioning: TimePartitioning) -> Self {
        let g2 = (partitioning.g() as usize).pow(2);
        DensityMatrix {
            partitioning,
            durations: vec![0; g2],
            min_start: vec![i64::MAX; g2],
            max_end: vec![i64::MIN; g2],
        }
    }

    /// Builds the accumulator of a slice of intervals in one pass.
    pub fn build(partitioning: TimePartitioning, intervals: &[Interval]) -> Self {
        let mut m = Self::new(partitioning);
        for iv in intervals {
            m.insert(iv);
        }
        m
    }

    #[inline]
    fn slot(&self, b: BucketId) -> usize {
        b.start_g as usize * self.partitioning.g() as usize + b.end_g as usize
    }

    /// The bucket an interval falls into (same grid as the count matrix).
    #[inline]
    pub fn bucket_of(&self, iv: &Interval) -> BucketId {
        BucketId::new(self.partitioning.granule_of(iv.start), self.partitioning.granule_of(iv.end))
    }

    /// Records one interval.
    pub fn insert(&mut self, iv: &Interval) {
        let i = self.slot(self.bucket_of(iv));
        self.durations[i] += (iv.end - iv.start + 1) as u64;
        self.min_start[i] = self.min_start[i].min(iv.start);
        self.max_end[i] = self.max_end[i].max(iv.end);
    }

    /// Merges another accumulator (same partitioning): sums durations,
    /// widens extents. The reducer-side aggregation of the statistics job.
    pub fn merge(&mut self, other: &DensityMatrix) {
        assert_eq!(
            self.partitioning, other.partitioning,
            "cannot merge density accumulators over different partitionings"
        );
        for i in 0..self.durations.len() {
            self.durations[i] += other.durations[i];
            self.min_start[i] = self.min_start[i].min(other.min_start[i]);
            self.max_end[i] = self.max_end[i].max(other.max_end[i]);
        }
    }

    /// Removes one interval's contribution. The duration sum shrinks in
    /// O(1); when the interval defined its bucket's extent the caller
    /// must still [`DensityMatrix::rebuild_bucket`] — check with
    /// [`DensityMatrix::defines_extent`] first.
    pub fn remove(&mut self, iv: &Interval) {
        let i = self.slot(self.bucket_of(iv));
        self.durations[i] = self.durations[i].saturating_sub((iv.end - iv.start + 1) as u64);
    }

    /// Whether the interval sits on its bucket's recorded extent, i.e.
    /// removing it may shrink `min_start`/`max_end` and requires a
    /// rebuild.
    pub fn defines_extent(&self, iv: &Interval) -> bool {
        let i = self.slot(self.bucket_of(iv));
        iv.start == self.min_start[i] || iv.end == self.max_end[i]
    }

    /// Recomputes one bucket's accumulators from scratch (delete-style
    /// updates of extent-defining intervals: extents cannot shrink
    /// incrementally).
    pub fn rebuild_bucket<'a>(
        &mut self,
        b: BucketId,
        intervals: impl Iterator<Item = &'a Interval>,
    ) {
        let i = self.slot(b);
        self.durations[i] = 0;
        self.min_start[i] = i64::MAX;
        self.max_end[i] = i64::MIN;
        for iv in intervals {
            if self.bucket_of(iv) == b {
                self.insert(iv);
            }
        }
    }

    /// The profile of bucket `b`, given its cardinality from the count
    /// matrix. Identical to [`BucketProfile::from_intervals`] over the
    /// bucket's intervals.
    pub fn profile(&self, b: BucketId, cardinality: u64) -> BucketProfile {
        let i = self.slot(b);
        let span =
            if cardinality == 0 { 0 } else { (self.max_end[i] - self.min_start[i] + 1) as u64 };
        BucketProfile { cardinality, duration_sum: self.durations[i], span }
    }
}

/// A dataset with collected statistics, ready for query execution.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// The collections, indexed by their `CollectionId`.
    pub collections: Vec<IntervalCollection>,
    /// One bucket matrix per collection.
    pub matrices: Vec<BucketMatrix>,
    /// One density accumulator per collection (aligned with `matrices`).
    pub densities: Vec<DensityMatrix>,
    /// Number of granules `g` the statistics were collected with.
    pub granules: u32,
    /// Metrics of the statistics-collection job.
    pub stats_metrics: JobMetrics,
}

/// Shuffle message carrying a collection's partial count matrix plus its
/// density accumulators (value side).
struct MatrixMsg(BucketMatrix, DensityMatrix);

impl SizeOf for MatrixMsg {
    fn size_bytes(&self) -> usize {
        // Exactly the frame encoding below: the 20-byte partitioning
        // header plus 4 row-major g × g lanes of 8-byte words.
        let g = self.0.g() as usize;
        20 + g * g * 8 * 4
    }
}

impl Record for MatrixMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        let part = self.0.partitioning();
        debug_assert_eq!(part, self.1.partitioning, "count and density lanes share one grid");
        part.origin.encode(out);
        part.width.encode(out);
        part.count.encode(out);
        for &c in self.0.counts() {
            c.encode(out);
        }
        for &d in &self.1.durations {
            d.encode(out);
        }
        for &s in &self.1.min_start {
            s.encode(out);
        }
        for &e in &self.1.max_end {
            e.encode(out);
        }
    }

    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let origin = i64::decode(reader)?;
        let width = i64::decode(reader)?;
        let count = u32::decode(reader)?;
        if width <= 0 || count == 0 {
            return Err(CodecError {
                detail: format!("invalid partitioning: width {width}, count {count}"),
            });
        }
        // Validate the lane footprint against the frame before allocating
        // anything sized by the (attacker-controllable) granule count.
        let g2 = (count as usize)
            .checked_mul(count as usize)
            .filter(|g2| g2.checked_mul(8 * 4) == Some(reader.remaining()))
            .ok_or_else(|| CodecError {
                detail: format!(
                    "matrix lanes for g = {count} do not fit a {}-byte frame remainder",
                    reader.remaining()
                ),
            })?;
        let partitioning = TimePartitioning { origin, width, count };
        let mut counts = Vec::with_capacity(g2);
        for _ in 0..g2 {
            counts.push(u64::decode(reader)?);
        }
        let mut density = DensityMatrix::new(partitioning);
        for slot in density.durations.iter_mut() {
            *slot = u64::decode(reader)?;
        }
        for slot in density.min_start.iter_mut() {
            *slot = i64::decode(reader)?;
        }
        for slot in density.max_end.iter_mut() {
            *slot = i64::decode(reader)?;
        }
        Ok(MatrixMsg(BucketMatrix::from_counts(partitioning, counts), density))
    }
}

/// Runs the statistics-collection job over `collections` with `g`
/// granules per collection.
///
/// Collection ids must be dense (`collections[i].id == CollectionId(i)`).
pub fn collect_statistics(
    collections: Vec<IntervalCollection>,
    g: u32,
    cluster: &ClusterConfig,
) -> Result<PreparedDataset, TemporalError> {
    if collections.is_empty() {
        return Err(TemporalError::EmptyCollection);
    }
    for (i, c) in collections.iter().enumerate() {
        if c.id.0 as usize != i {
            return Err(TemporalError::InvalidQuery(format!(
                "collection ids must be dense: index {i} holds {}",
                c.id
            )));
        }
    }
    // Granule grids are fixed per collection before counting (the paper
    // partitions each collection's time range uniformly).
    let partitionings: Vec<TimePartitioning> = collections
        .iter()
        .map(|c| {
            let (min, max) = c.time_range();
            TimePartitioning::from_range(min, max, g)
        })
        .collect::<Result<_, _>>()?;

    // Flatten the input as (collection, interval) records.
    let mut inputs: Vec<(u32, Interval)> = Vec::new();
    for c in &collections {
        inputs.extend(c.intervals().iter().map(|iv| (c.id.0, *iv)));
    }
    let m = collections.len();

    let (outputs, metrics) = run_map_reduce(
        &inputs,
        cluster.map_slots.max(1) * 2,
        m,
        // Stateful per-split mapper: one local matrix (counts + density
        // accumulators) per collection.
        |_, chunk, em| {
            let mut local: Vec<Option<(BucketMatrix, DensityMatrix)>> = vec![None; m];
            for (c, iv) in chunk {
                let c = *c as usize;
                let (counts, density) = local[c].get_or_insert_with(|| {
                    (BucketMatrix::new(partitionings[c]), DensityMatrix::new(partitionings[c]))
                });
                counts.insert(iv);
                density.insert(iv);
            }
            for (c, partial) in local.into_iter().enumerate() {
                if let Some((counts, density)) = partial {
                    em.emit(c as u32, MatrixMsg(counts, density));
                }
            }
        },
        |c| *c as usize % m,
        // Reducer for collection c merges the partial matrices.
        |p, groups| {
            let mut merged: Option<(u32, BucketMatrix, DensityMatrix)> = None;
            for (c, msgs) in groups {
                debug_assert_eq!(c as usize % m, p);
                for MatrixMsg(counts, density) in msgs {
                    match merged.as_mut() {
                        Some((_, acc, dacc)) => {
                            acc.merge(&counts);
                            dacc.merge(&density);
                        }
                        None => merged = Some((c, counts, density)),
                    }
                }
            }
            merged
                .into_iter()
                .map(|(c, counts, density)| (c, (counts, density)))
                .collect::<Vec<_>>()
        },
        cluster,
    );

    let mut collected: Vec<Option<(BucketMatrix, DensityMatrix)>> = vec![None; m];
    for (c, pair) in outputs {
        collected[c as usize] = Some(pair);
    }
    let (matrices, densities): (Vec<BucketMatrix>, Vec<DensityMatrix>) = collected
        .into_iter()
        .enumerate()
        .map(|(c, pair)| {
            pair.unwrap_or_else(|| {
                (BucketMatrix::new(partitionings[c]), DensityMatrix::new(partitionings[c]))
            })
        })
        .unzip();

    Ok(PreparedDataset { collections, matrices, densities, granules: g, stats_metrics: metrics })
}

impl PreparedDataset {
    /// Insert-style update: extends the collection, its matrix, and its
    /// density accumulators.
    pub fn insert(&mut self, collection: usize, iv: Interval) {
        self.matrices[collection].insert(&iv);
        self.densities[collection].insert(&iv);
        self.collections[collection].push(iv);
    }

    /// Delete-style update: removes by id, maintaining the matrix and the
    /// density accumulators. The common case is O(1); only when the
    /// removed interval defined its bucket's endpoint extent is that one
    /// bucket recomputed (extents cannot shrink incrementally). Returns
    /// the removed interval, or `None` if absent (or if removal would
    /// empty the collection).
    pub fn remove(&mut self, collection: usize, id: u64) -> Option<Interval> {
        let iv = self.collections[collection].remove_id(id)?;
        self.matrices[collection].remove(&iv);
        if self.densities[collection].defines_extent(&iv) {
            let bucket = self.densities[collection].bucket_of(&iv);
            self.densities[collection]
                .rebuild_bucket(bucket, self.collections[collection].intervals().iter());
        } else {
            self.densities[collection].remove(&iv);
        }
        Some(iv)
    }

    /// The cardinality/density profile of one bucket of a collection —
    /// what per-bucket backend auto-selection keys on. Identical to
    /// [`BucketProfile::from_intervals`] over the bucket's intervals.
    pub fn bucket_profile(&self, collection: usize, b: BucketId) -> BucketProfile {
        self.densities[collection].profile(b, self.matrices[collection].count(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::collection::CollectionId;

    fn coll(id: u32, ivs: &[(i64, i64)]) -> IntervalCollection {
        IntervalCollection::new(
            CollectionId(id),
            ivs.iter()
                .enumerate()
                .map(|(i, (s, e))| Interval::new(i as u64, *s, *e).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn matrices_match_direct_build() {
        let c0 = coll(0, &[(0, 10), (50, 99), (20, 30), (0, 99)]);
        let c1 = coll(1, &[(5, 6), (90, 95)]);
        let prepared =
            collect_statistics(vec![c0.clone(), c1.clone()], 10, &ClusterConfig::default())
                .unwrap();
        for (c, coll) in [&c0, &c1].iter().enumerate() {
            let (min, max) = coll.time_range();
            let part = TimePartitioning::from_range(min, max, 10).unwrap();
            let direct = BucketMatrix::build(part, coll.intervals());
            assert_eq!(prepared.matrices[c], direct, "collection {c}");
        }
        assert_eq!(prepared.granules, 10);
        assert!(prepared.stats_metrics.total_shuffle_records() >= 2);
    }

    #[test]
    fn independent_of_map_task_count() {
        let c0 = coll(0, &(0..200).map(|i| (i, i + 10)).collect::<Vec<_>>());
        let few = collect_statistics(
            vec![c0.clone()],
            8,
            &ClusterConfig { map_slots: 1, ..Default::default() },
        )
        .unwrap();
        let many =
            collect_statistics(vec![c0], 8, &ClusterConfig { map_slots: 16, ..Default::default() })
                .unwrap();
        assert_eq!(few.matrices, many.matrices);
    }

    #[test]
    fn rejects_non_dense_ids() {
        let bad = coll(5, &[(0, 1)]);
        assert!(collect_statistics(vec![bad], 4, &ClusterConfig::default()).is_err());
        assert!(collect_statistics(vec![], 4, &ClusterConfig::default()).is_err());
    }

    #[test]
    fn density_profiles_match_direct_computation() {
        let c0 = coll(0, &[(0, 10), (2, 8), (50, 99), (20, 30), (0, 99)]);
        let prepared = collect_statistics(vec![c0.clone()], 10, &ClusterConfig::default()).unwrap();
        let m = &prepared.matrices[0];
        // Every non-empty bucket's stats-job profile equals the profile
        // computed directly from the bucket's interval slice.
        for (b, count) in m.nonempty() {
            let members: Vec<Interval> =
                c0.intervals().iter().filter(|iv| m.bucket_of(iv) == b).copied().collect();
            assert_eq!(members.len() as u64, count);
            let direct = BucketProfile::from_intervals(&members);
            let from_stats = prepared.bucket_profile(0, b);
            assert_eq!(from_stats, direct, "bucket {b:?}");
            assert_eq!(from_stats.density().to_bits(), direct.density().to_bits());
            // ... and equals the access-path crate's canonical density.
            assert_eq!(
                from_stats.density().to_bits(),
                tkij_index::endpoint_density(&members).to_bits(),
                "bucket {b:?}"
            );
        }
        // Empty buckets profile as empty.
        let empty = prepared.bucket_profile(0, tkij_temporal::bucket::BucketId::new(3, 2));
        assert_eq!(empty, BucketProfile::default());
        assert_eq!(empty.density(), 0.0);
    }

    #[test]
    fn density_merge_is_split_independent() {
        let c0 = coll(0, &(0..150).map(|i| (i, i + 7)).collect::<Vec<_>>());
        let few = collect_statistics(
            vec![c0.clone()],
            8,
            &ClusterConfig { map_slots: 1, ..Default::default() },
        )
        .unwrap();
        let many =
            collect_statistics(vec![c0], 8, &ClusterConfig { map_slots: 16, ..Default::default() })
                .unwrap();
        assert_eq!(few.densities, many.densities, "density accumulation is split-independent");
    }

    #[test]
    fn updates_keep_density_consistent() {
        let c0 = coll(0, &[(0, 10), (20, 30), (55, 60)]);
        let mut prepared = collect_statistics(vec![c0], 6, &ClusterConfig::default()).unwrap();
        let added = Interval::new(77, 21, 29).unwrap();
        prepared.insert(0, added);
        let rebuilt = DensityMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.densities[0], rebuilt, "insert matches rebuild");
        // Interior interval: the O(1) remove path (extents untouched).
        assert!(!prepared.densities[0].defines_extent(&added));
        prepared.remove(0, 77).unwrap();
        let rebuilt = DensityMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.densities[0], rebuilt, "O(1) remove matches rebuild");
        // Extent-defining interval: forces the rebuild path.
        let edge = *prepared.collections[0].intervals().iter().find(|iv| iv.id == 1).unwrap();
        assert!(prepared.densities[0].defines_extent(&edge));
        prepared.remove(0, 1).unwrap();
        let rebuilt = DensityMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.densities[0], rebuilt, "extent remove matches rebuild");
    }

    #[test]
    fn updates_keep_matrix_consistent() {
        let c0 = coll(0, &[(0, 10), (20, 30), (55, 60)]);
        let mut prepared = collect_statistics(vec![c0], 6, &ClusterConfig::default()).unwrap();
        let added = Interval::new(77, 21, 29).unwrap();
        prepared.insert(0, added);
        assert_eq!(prepared.matrices[0].total(), 4);
        let rebuilt = BucketMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.matrices[0], rebuilt, "insert matches rebuild");

        let removed = prepared.remove(0, 77).unwrap();
        assert_eq!(removed, added);
        let rebuilt = BucketMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.matrices[0], rebuilt, "remove matches rebuild");
        assert!(prepared.remove(0, 999).is_none());
    }
}
