//! Statistics collection (paper §3.2, Fig. 5a) — the offline,
//! query-independent Map-Reduce job.
//!
//! "Each mapper reads a fraction of the data and maintains a local matrix
//! per collection. Matrices are then aggregated in the reduce phase, and
//! the reducer responsible for collection `C_i` outputs a final matrix
//! `B_i`." Updates are handled as the paper prescribes — by applying the
//! same unit process to inserted/deleted intervals
//! ([`PreparedDataset::insert`] / [`PreparedDataset::remove`]).

use tkij_mapreduce::{run_map_reduce, ClusterConfig, JobMetrics, SizeOf};
use tkij_temporal::bucket::BucketMatrix;
use tkij_temporal::collection::IntervalCollection;
use tkij_temporal::error::TemporalError;
use tkij_temporal::granule::TimePartitioning;
use tkij_temporal::interval::Interval;

/// A dataset with collected statistics, ready for query execution.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// The collections, indexed by their `CollectionId`.
    pub collections: Vec<IntervalCollection>,
    /// One bucket matrix per collection.
    pub matrices: Vec<BucketMatrix>,
    /// Number of granules `g` the statistics were collected with.
    pub granules: u32,
    /// Metrics of the statistics-collection job.
    pub stats_metrics: JobMetrics,
}

/// Shuffle message carrying a partial matrix (value side).
struct MatrixMsg(BucketMatrix);

impl SizeOf for MatrixMsg {
    fn size_bytes(&self) -> usize {
        // g × g counters plus the partitioning header.
        let g = self.0.g() as usize;
        g * g * 8 + 24
    }
}

/// Runs the statistics-collection job over `collections` with `g`
/// granules per collection.
///
/// Collection ids must be dense (`collections[i].id == CollectionId(i)`).
pub fn collect_statistics(
    collections: Vec<IntervalCollection>,
    g: u32,
    cluster: &ClusterConfig,
) -> Result<PreparedDataset, TemporalError> {
    if collections.is_empty() {
        return Err(TemporalError::EmptyCollection);
    }
    for (i, c) in collections.iter().enumerate() {
        if c.id.0 as usize != i {
            return Err(TemporalError::InvalidQuery(format!(
                "collection ids must be dense: index {i} holds {}",
                c.id
            )));
        }
    }
    // Granule grids are fixed per collection before counting (the paper
    // partitions each collection's time range uniformly).
    let partitionings: Vec<TimePartitioning> = collections
        .iter()
        .map(|c| {
            let (min, max) = c.time_range();
            TimePartitioning::from_range(min, max, g)
        })
        .collect::<Result<_, _>>()?;

    // Flatten the input as (collection, interval) records.
    let mut inputs: Vec<(u32, Interval)> = Vec::new();
    for c in &collections {
        inputs.extend(c.intervals().iter().map(|iv| (c.id.0, *iv)));
    }
    let m = collections.len();

    let (outputs, metrics) = run_map_reduce(
        &inputs,
        cluster.map_slots.max(1) * 2,
        m,
        // Stateful per-split mapper: one local matrix per collection.
        |_, chunk, em| {
            let mut local: Vec<Option<BucketMatrix>> = vec![None; m];
            for (c, iv) in chunk {
                let c = *c as usize;
                local[c].get_or_insert_with(|| BucketMatrix::new(partitionings[c])).insert(iv);
            }
            for (c, matrix) in local.into_iter().enumerate() {
                if let Some(matrix) = matrix {
                    em.emit(c as u32, MatrixMsg(matrix));
                }
            }
        },
        |c| *c as usize % m,
        // Reducer for collection c merges the partial matrices.
        |p, groups| {
            let mut merged: Option<(u32, BucketMatrix)> = None;
            for (c, msgs) in groups {
                debug_assert_eq!(c as usize % m, p);
                for MatrixMsg(partial) in msgs {
                    match merged.as_mut() {
                        Some((_, acc)) => acc.merge(&partial),
                        None => merged = Some((c, partial)),
                    }
                }
            }
            merged.into_iter().collect::<Vec<_>>()
        },
        cluster,
    );

    let mut matrices: Vec<Option<BucketMatrix>> = vec![None; m];
    for (c, matrix) in outputs {
        matrices[c as usize] = Some(matrix);
    }
    let matrices: Vec<BucketMatrix> = matrices
        .into_iter()
        .enumerate()
        .map(|(c, matrix)| matrix.unwrap_or_else(|| BucketMatrix::new(partitionings[c])))
        .collect();

    Ok(PreparedDataset { collections, matrices, granules: g, stats_metrics: metrics })
}

impl PreparedDataset {
    /// Insert-style update: extends the collection and its matrix.
    pub fn insert(&mut self, collection: usize, iv: Interval) {
        self.matrices[collection].insert(&iv);
        self.collections[collection].push(iv);
    }

    /// Delete-style update: removes by id, maintaining the matrix.
    /// Returns the removed interval, or `None` if absent (or if removal
    /// would empty the collection).
    pub fn remove(&mut self, collection: usize, id: u64) -> Option<Interval> {
        let iv = self.collections[collection].remove_id(id)?;
        self.matrices[collection].remove(&iv);
        Some(iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::collection::CollectionId;

    fn coll(id: u32, ivs: &[(i64, i64)]) -> IntervalCollection {
        IntervalCollection::new(
            CollectionId(id),
            ivs.iter()
                .enumerate()
                .map(|(i, (s, e))| Interval::new(i as u64, *s, *e).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn matrices_match_direct_build() {
        let c0 = coll(0, &[(0, 10), (50, 99), (20, 30), (0, 99)]);
        let c1 = coll(1, &[(5, 6), (90, 95)]);
        let prepared =
            collect_statistics(vec![c0.clone(), c1.clone()], 10, &ClusterConfig::default())
                .unwrap();
        for (c, coll) in [&c0, &c1].iter().enumerate() {
            let (min, max) = coll.time_range();
            let part = TimePartitioning::from_range(min, max, 10).unwrap();
            let direct = BucketMatrix::build(part, coll.intervals());
            assert_eq!(prepared.matrices[c], direct, "collection {c}");
        }
        assert_eq!(prepared.granules, 10);
        assert!(prepared.stats_metrics.total_shuffle_records() >= 2);
    }

    #[test]
    fn independent_of_map_task_count() {
        let c0 = coll(0, &(0..200).map(|i| (i, i + 10)).collect::<Vec<_>>());
        let few = collect_statistics(
            vec![c0.clone()],
            8,
            &ClusterConfig { map_slots: 1, ..Default::default() },
        )
        .unwrap();
        let many =
            collect_statistics(vec![c0], 8, &ClusterConfig { map_slots: 16, ..Default::default() })
                .unwrap();
        assert_eq!(few.matrices, many.matrices);
    }

    #[test]
    fn rejects_non_dense_ids() {
        let bad = coll(5, &[(0, 1)]);
        assert!(collect_statistics(vec![bad], 4, &ClusterConfig::default()).is_err());
        assert!(collect_statistics(vec![], 4, &ClusterConfig::default()).is_err());
    }

    #[test]
    fn updates_keep_matrix_consistent() {
        let c0 = coll(0, &[(0, 10), (20, 30), (55, 60)]);
        let mut prepared = collect_statistics(vec![c0], 6, &ClusterConfig::default()).unwrap();
        let added = Interval::new(77, 21, 29).unwrap();
        prepared.insert(0, added);
        assert_eq!(prepared.matrices[0].total(), 4);
        let rebuilt = BucketMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.matrices[0], rebuilt, "insert matches rebuild");

        let removed = prepared.remove(0, 77).unwrap();
        assert_eq!(removed, added);
        let rebuilt = BucketMatrix::build(
            prepared.matrices[0].partitioning(),
            prepared.collections[0].intervals(),
        );
        assert_eq!(prepared.matrices[0], rebuilt, "remove matches rebuild");
        assert!(prepared.remove(0, 999).is_none());
    }
}
