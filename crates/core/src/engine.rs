//! The TKIJ engine: orchestration of the full pipeline of paper Fig. 5
//! and the [`ExecutionReport`] the evaluation section reads its numbers
//! from.

use crate::combos::{ComboSet, TopBucketsStats};
use crate::config::{DistributionPolicy, LocalJoinBackend, Strategy, SweepScanKind, TkijConfig};
use crate::distribute::{distribute, Assignment};
use crate::localjoin::{IndexPools, LocalJoinStats};
use crate::merge::run_merge_phase;
use crate::stats::{collect_statistics, PreparedDataset};
use crate::topbuckets::run_topbuckets;
use std::time::Duration;
use tkij_mapreduce::{ClusterConfig, JobMetrics, ShuffleMode, ShuffleStats, SpillSinkKind};
use tkij_temporal::collection::IntervalCollection;
use tkij_temporal::error::TemporalError;
use tkij_temporal::query::Query;
use tkij_temporal::result::MatchTuple;

/// The TKIJ query engine.
///
/// ```
/// use tkij_core::{Tkij, TkijConfig};
/// use tkij_datagen::uniform_collections;
/// use tkij_temporal::params::PredicateParams;
/// use tkij_temporal::query::table1;
///
/// let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4));
/// let dataset = engine.prepare(uniform_collections(3, 200, 42)).unwrap();
/// let query = table1::q_om(PredicateParams::P1);
/// let report = engine.execute(&dataset, &query, 10).unwrap();
/// assert_eq!(report.results.len(), 10);
/// assert!(report.results.windows(2).all(|w| w[0].score >= w[1].score));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tkij {
    /// Algorithmic configuration.
    pub config: TkijConfig,
    /// Simulated cluster shape.
    pub cluster: ClusterConfig,
}

impl Tkij {
    /// An engine with the given configuration and the paper's default
    /// cluster (6 workers, 24 reducers).
    pub fn new(config: TkijConfig) -> Self {
        Tkij { config, cluster: ClusterConfig::default() }
    }

    /// An engine with an explicit cluster shape.
    pub fn with_cluster(config: TkijConfig, cluster: ClusterConfig) -> Self {
        Tkij { config, cluster }
    }

    /// The probe-stream sharding plan this engine hands the join phase:
    /// chunk length and bound switch from [`TkijConfig`]. `threads` is
    /// deliberately left 0 — the join phase always derives the effective
    /// chunk-worker count from the cluster's nested thread budget and the
    /// actual reduce-task count, so a caller-side value would only be
    /// discarded (or, worse, mistaken for what executes).
    pub fn intra_join(&self) -> crate::localjoin::IntraJoin {
        crate::localjoin::IntraJoin {
            threads: 0,
            chunk_items: self.config.probe_chunk_items,
            shared_bound: self.config.intra_shared_bound,
        }
    }

    /// The cluster shape engine jobs actually run on: the configured
    /// cluster, with [`TkijConfig::shuffle_spill_threshold_bytes`]
    /// overriding the shuffle transport when set. Spilled segments live
    /// in memory — the engine's out-of-core knob exercises the
    /// serialization/spill/merge machinery without inheriting filesystem
    /// failure modes; `ClusterConfig::shuffle` can still select
    /// [`SpillSinkKind::TempDir`] directly.
    pub fn job_cluster(&self) -> ClusterConfig {
        match self.config.shuffle_spill_threshold_bytes {
            None => self.cluster,
            Some(spill_threshold_bytes) => ClusterConfig {
                shuffle: ShuffleMode::Serialized {
                    spill_threshold_bytes,
                    sink: SpillSinkKind::Memory,
                },
                ..self.cluster
            },
        }
    }

    /// Offline phase: collects statistics for a dataset (paper §3.2).
    pub fn prepare(
        &self,
        collections: Vec<IntervalCollection>,
    ) -> Result<PreparedDataset, TemporalError> {
        collect_statistics(collections, self.config.granules, &self.job_cluster())
    }

    /// Online phase: evaluates an RTJ query, returning the exact top-k and
    /// the full execution report. Equivalent to [`Tkij::plan_query`]
    /// followed by [`Tkij::execute_planned`] — the serving layer
    /// ([`crate::serving::TkijServer`]) splits the two so repeated query
    /// shapes reuse the plan.
    pub fn execute(
        &self,
        dataset: &PreparedDataset,
        query: &Query,
        k: usize,
    ) -> Result<ExecutionReport, TemporalError> {
        self.validate(dataset, query, k)?;
        let plan = self.plan_unchecked(dataset, query, k);
        Ok(self.execute_planned_impl(dataset, query, k, &plan, None))
    }

    /// Rejects queries the engine cannot evaluate against `dataset`:
    /// `k = 0`, or a vertex referencing a collection the dataset does not
    /// hold. Planning and execution are infallible afterwards.
    pub(crate) fn validate(
        &self,
        dataset: &PreparedDataset,
        query: &Query,
        k: usize,
    ) -> Result<(), TemporalError> {
        if k == 0 {
            return Err(TemporalError::InvalidQuery("k must be ≥ 1".into()));
        }
        for cid in &query.vertices {
            if cid.0 as usize >= dataset.collections.len() {
                return Err(TemporalError::InvalidQuery(format!(
                    "query references {} but the dataset has {} collections",
                    cid,
                    dataset.collections.len()
                )));
            }
        }
        Ok(())
    }

    /// The driver-side planning phases on an already-validated query;
    /// see [`Tkij::plan_query`].
    fn plan_unchecked(&self, dataset: &PreparedDataset, query: &Query, k: usize) -> QueryPlan {
        // (b) TopBuckets: bound and prune bucket combinations. The
        // ablation switch keeps the bounds (for ordering and runtime
        // termination) but retains every combination.
        let effective_k = if self.config.pruning { k as u64 } else { u64::MAX };
        let (selected, topbuckets) = run_topbuckets(
            query,
            &dataset.matrices,
            effective_k,
            self.config.strategy,
            &self.config.solver,
            self.config.topbuckets_workers,
        );

        // (c) Workload distribution.
        let assignment = distribute(
            &selected,
            self.config.distribution,
            self.config.reducers,
            query,
            &dataset.matrices,
        );

        QueryPlan { selected, topbuckets, assignment }
    }

    /// Planning phase: validates the query, then runs the driver-side
    /// phases — TopBuckets (paper Fig. 5b) and workload distribution
    /// (Fig. 5c) — producing an immutable [`QueryPlan`] that
    /// [`Tkij::execute_planned`] can evaluate any number of times.
    ///
    /// Planning reads only the dataset's statistics (never the interval
    /// data) and is bit-deterministic: the same (dataset, query, k,
    /// config) always yields the same plan, which is what makes the
    /// serving layer's plan cache sound.
    pub fn plan_query(
        &self,
        dataset: &PreparedDataset,
        query: &Query,
        k: usize,
    ) -> Result<QueryPlan, TemporalError> {
        self.validate(dataset, query, k)?;
        Ok(self.plan_unchecked(dataset, query, k))
    }

    /// Execution phase: evaluates a previously planned query — the
    /// distributed join (paper Fig. 5d) and merge (Fig. 5e) — and
    /// assembles the full [`ExecutionReport`].
    ///
    /// `plan` must come from [`Tkij::plan_query`] on the same (dataset,
    /// query, k, config); the report is then bit-identical to what
    /// [`Tkij::execute`] would produce (the plan's recorded TopBuckets
    /// and distribution wall times are replayed verbatim — timings are
    /// never part of determinism fingerprints).
    pub fn execute_planned(
        &self,
        dataset: &PreparedDataset,
        query: &Query,
        k: usize,
        plan: &QueryPlan,
    ) -> Result<ExecutionReport, TemporalError> {
        self.validate(dataset, query, k)?;
        Ok(self.execute_planned_impl(dataset, query, k, plan, None))
    }

    /// [`Tkij::execute_planned`] after validation, with the serving
    /// layer's optional shared index pool.
    pub(crate) fn execute_planned_impl(
        &self,
        dataset: &PreparedDataset,
        query: &Query,
        k: usize,
        plan: &QueryPlan,
        pools: Option<&IndexPools>,
    ) -> ExecutionReport {
        let QueryPlan { selected, topbuckets, assignment } = plan;

        // (d) Distributed local joins (probe streams sharded per the
        // engine's intra-join plan; threads come from the cluster's
        // nested budget inside the join phase). Serving runs pass a
        // shared index pool; results and counters are identical either
        // way.
        let cluster = self.job_cluster();
        let (outputs, join_metrics) = match pools {
            None => crate::joinphase::run_join_phase_with(
                dataset,
                query,
                selected,
                assignment,
                k,
                &cluster,
                self.config.local_backend,
                self.config.sweep_scan,
                None,
                self.intra_join(),
            ),
            Some(pools) => crate::joinphase::run_join_phase_pooled(
                dataset,
                query,
                selected,
                assignment,
                k,
                &cluster,
                self.config.local_backend,
                self.config.sweep_scan,
                None,
                self.intra_join(),
                pools,
            ),
        };

        // (e) Merge.
        let (results, merge_metrics) = run_merge_phase(&outputs, k, &cluster);

        let mut local_stats = Vec::with_capacity(outputs.len());
        let mut reducer_kth_scores = Vec::new();
        for o in outputs {
            if !o.results.is_empty() {
                reducer_kth_scores.push(o.stats.kth_score);
            }
            local_stats.push(o.stats);
        }

        ExecutionReport {
            query_name: query.name(),
            k,
            granules: dataset.granules,
            strategy: self.config.strategy,
            policy: self.config.distribution,
            backend: self.config.local_backend,
            sweep_scan: self.config.sweep_scan,
            topbuckets: topbuckets.clone(),
            distribution: DistributionSummary {
                policy: self.config.distribution,
                duration: assignment.duration,
                replication_factor: assignment.replication_factor,
                estimated_shuffle_records: assignment.estimated_shuffle_records,
                result_imbalance: assignment.result_imbalance(),
                assignments_scored: assignment.assignments_scored,
                cap_fallbacks: assignment.cap_fallbacks,
            },
            join: join_metrics,
            merge: merge_metrics,
            local_stats,
            reducer_kth_scores,
            results,
        }
    }

    /// Consumes the engine and a prepared dataset into a shareable
    /// [`crate::serving::TkijServer`] for concurrent querying.
    pub fn serve(self, dataset: PreparedDataset) -> crate::serving::TkijServer {
        crate::serving::TkijServer::new(self, dataset)
    }
}

/// An immutable driver-side execution plan for one (query, k) shape: the
/// selected combinations `Ω_{k,S}` from TopBuckets, the phase's
/// telemetry, and the reducer assignment the distribution policy chose.
///
/// Produced by [`Tkij::plan_query`], consumed (any number of times) by
/// [`Tkij::execute_planned`]. The serving layer caches plans per query
/// shape — see [`crate::serving::TkijServer`] — which is sound because
/// planning is a pure, deterministic function of (dataset statistics,
/// query, k, config).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The selected bucket-combination set `Ω_{k,S}` (TopBuckets output).
    pub selected: ComboSet,
    /// TopBuckets telemetry recorded when the plan was made (its
    /// `duration` is the original planning wall time, replayed verbatim
    /// into every report built from this plan).
    pub topbuckets: TopBucketsStats,
    /// The (combo → reducer) assignment and its shuffle plan.
    pub assignment: Assignment,
}

/// Summary of the distribution phase.
#[derive(Debug, Clone)]
pub struct DistributionSummary {
    /// Policy used (DTB or LPT).
    pub policy: DistributionPolicy,
    /// Wall time of the assignment computation.
    pub duration: Duration,
    /// Average number of reducers each needed record ships to.
    pub replication_factor: f64,
    /// Records the join shuffle will move.
    pub estimated_shuffle_records: u64,
    /// Worst-case `max/avg` potential-result imbalance.
    pub result_imbalance: f64,
    /// (combo, reducer) candidacies scored while assigning (deterministic
    /// work counter; see `Assignment::assignments_scored`).
    pub assignments_scored: u64,
    /// Times the `2 × avgRes` cap excluded every reducer.
    pub cap_fallbacks: u64,
}

/// Everything one TKIJ execution produces: the exact top-k plus the
/// telemetry each figure of the paper's evaluation is built from.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Paper-style query name.
    pub query_name: String,
    /// Result budget.
    pub k: usize,
    /// Granules the statistics were collected with.
    pub granules: u32,
    /// TopBuckets strategy used.
    pub strategy: Strategy,
    /// Distribution policy used.
    pub policy: DistributionPolicy,
    /// Local-join candidate-source backend used.
    pub backend: LocalJoinBackend,
    /// Sweep run-scan kind used (configuration echo, like `backend`;
    /// never part of determinism fingerprints — the kinds are
    /// counter-identical by contract, so nothing else in this report
    /// may depend on it).
    pub sweep_scan: SweepScanKind,
    /// TopBuckets telemetry (Fig. 9 black box, Fig. 10c pruning curve).
    pub topbuckets: TopBucketsStats,
    /// Distribution telemetry (shuffle cost comparisons of §4.2.2).
    pub distribution: DistributionSummary,
    /// Join-phase job metrics (Fig. 8b max reducer time, Fig. 10b
    /// imbalance).
    pub join: JobMetrics,
    /// Merge-phase job metrics.
    pub merge: JobMetrics,
    /// Per-reducer local join telemetry.
    pub local_stats: Vec<LocalJoinStats>,
    /// `kth` (minimum) local score per non-empty reducer (Fig. 8c).
    pub reducer_kth_scores: Vec<f64>,
    /// The exact top-k, best first.
    pub results: Vec<MatchTuple>,
}

impl ExecutionReport {
    /// Measured wall time of the online phases.
    pub fn total_wall(&self) -> Duration {
        self.topbuckets.duration + self.distribution.duration + self.join.wall + self.merge.wall
    }

    /// Simulated cluster running time: TopBuckets and distribution run on
    /// the driver; the two Map-Reduce jobs are list-scheduled onto the
    /// cluster's slots (see `tkij-mapreduce`).
    pub fn simulated_total(&self, cluster: &ClusterConfig) -> Duration {
        self.topbuckets.duration
            + self.distribution.duration
            + self.join.simulated_runtime(cluster)
            + self.merge.simulated_runtime(cluster)
    }

    /// Minimum score of the k-th result across reducers (Fig. 8c).
    pub fn min_kth_score(&self) -> f64 {
        self.reducer_kth_scores.iter().copied().fold(f64::INFINITY, f64::min).min(1.0)
    }

    /// Total tuples materialized by all reducers ("intermediate results").
    pub fn tuples_scored(&self) -> u64 {
        self.local_stats.iter().map(|s| s.tuples_scored).sum()
    }

    /// Total window probes issued against the local-join indexes.
    pub fn index_probes(&self) -> u64 {
        self.local_stats.iter().map(|s| s.index_probes).sum()
    }

    /// Total stored items the indexes examined serving those probes —
    /// the per-backend scan-effort the bench harnesses compare.
    pub fn items_scanned(&self) -> u64 {
        self.local_stats.iter().map(|s| s.items_scanned).sum()
    }

    /// Reducer buckets indexed with the R-tree across all reducers (under
    /// [`LocalJoinBackend::Auto`]: the selector's choices; with a fixed
    /// backend: all or none).
    pub fn buckets_rtree(&self) -> u64 {
        self.local_stats.iter().map(|s| s.buckets_rtree).sum()
    }

    /// Reducer buckets indexed with the sweeping store across reducers.
    pub fn buckets_sweep(&self) -> u64 {
        self.local_stats.iter().map(|s| s.buckets_sweep).sum()
    }

    /// Probe chunks evaluated across all reducers — the scheduling unit
    /// of the intra-reducer sharded join (a deficit against the nominal
    /// chunk count witnesses per-chunk early termination).
    pub fn probe_chunks(&self) -> u64 {
        self.local_stats.iter().map(|s| s.probe_chunks).sum()
    }

    /// Largest chunk-worker count any reducer's wave actually ran with
    /// (`0` = every chunk was evaluated sequentially). An execution-shape
    /// record: deterministic per configuration, but — unlike every other
    /// counter — it legitimately varies with the thread knobs.
    pub fn intra_threads_used(&self) -> u64 {
        self.local_stats.iter().map(|s| s.intra_threads_used).max().unwrap_or(0)
    }

    /// Combined serialized-shuffle spill accounting of the online jobs
    /// (join + merge): summed spill counters, xor-folded checksum.
    /// All-zero when both jobs ran the in-memory transport.
    pub fn shuffle_stats(&self) -> ShuffleStats {
        self.join.shuffle.merged(&self.merge.shuffle)
    }

    /// Share of the potential result space pruned by TopBuckets (Fig 10c).
    pub fn pruned_pct(&self) -> f64 {
        self.topbuckets.pruned_pct()
    }

    /// One-line phase breakdown (Fig. 9 / Fig. 10c style).
    pub fn phase_line(&self) -> String {
        format!(
            "TopBuckets {:>8.3}s | DTB {:>8.3}s | Join {:>8.3}s | Merge {:>8.3}s",
            self.topbuckets.duration.as_secs_f64(),
            self.distribution.duration.as_secs_f64(),
            self.join.wall.as_secs_f64(),
            self.merge.wall.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_topk;
    use tkij_datagen::uniform_collections;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn engine(g: u32, r: usize) -> Tkij {
        Tkij::new(TkijConfig::default().with_granules(g).with_reducers(r))
    }

    /// Exactness in the paper's sense: the returned score sequence equals
    /// the oracle's, and every returned tuple is genuine (its recomputed
    /// score matches). Tuple *ids* may differ from the oracle only among
    /// equal scores: TopBuckets legitimately prunes combinations that can
    /// merely tie the k-th score.
    fn assert_exact(
        name: &str,
        q: &Query,
        dataset: &crate::stats::PreparedDataset,
        report: &ExecutionReport,
        k: usize,
    ) {
        let refs: Vec<_> = q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
        let expected = naive_topk(q, &refs, k);
        assert_eq!(report.results.len(), expected.len(), "{name}");
        for (g, e) in report.results.iter().zip(&expected) {
            assert!((g.score - e.score).abs() < 1e-9, "{name}: {g:?} vs {e:?}");
            // Returned tuples must be genuine.
            let tuple: Vec<_> = g
                .ids
                .iter()
                .zip(&q.vertices)
                .map(|(id, c)| {
                    *dataset.collections[c.0 as usize]
                        .intervals()
                        .iter()
                        .find(|iv| iv.id == *id)
                        .unwrap_or_else(|| panic!("{name}: unknown id {id}"))
                })
                .collect();
            let rescored = q.score_tuple(&tuple);
            assert!((rescored - g.score).abs() < 1e-9, "{name}: reported score is wrong");
        }
    }

    #[test]
    fn end_to_end_matches_naive_all_queries() {
        let tk = engine(6, 5);
        let dataset = tk.prepare(uniform_collections(3, 50, 2024)).unwrap();
        let avg = dataset.collections[0].avg_length();
        for (name, q) in table1::all(PredicateParams::P1, avg) {
            let report = tk.execute(&dataset, &q, 7).unwrap();
            assert_exact(name, &q, &dataset, &report, 7);
        }
    }

    #[test]
    fn all_strategy_policy_backend_combinations_agree() {
        let base = uniform_collections(3, 40, 99);
        let q = table1::q_sm(PredicateParams::P2);
        let mut reference: Option<Vec<f64>> = None;
        for (_, strategy) in Strategy::all() {
            for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
                for (bname, backend) in LocalJoinBackend::all() {
                    let tk = Tkij::new(
                        TkijConfig::default()
                            .with_granules(5)
                            .with_reducers(3)
                            .with_strategy(strategy)
                            .with_distribution(policy)
                            .with_local_backend(backend),
                    );
                    let dataset = tk.prepare(base.clone()).unwrap();
                    let report = tk.execute(&dataset, &q, 9).unwrap();
                    assert_eq!(report.backend, backend);
                    let scores: Vec<f64> = report.results.iter().map(|t| t.score).collect();
                    match &reference {
                        None => reference = Some(scores),
                        Some(r) => {
                            let tag = format!("{}/{policy:?}/{bname}", strategy.name());
                            assert_eq!(r.len(), scores.len(), "{tag}");
                            for (a, b) in r.iter().zip(&scores) {
                                assert!((a - b).abs() < 1e-9, "{tag}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn report_telemetry_is_consistent() {
        let tk = engine(8, 6);
        let dataset = tk.prepare(uniform_collections(3, 80, 7)).unwrap();
        let q = table1::q_oo(PredicateParams::P1);
        let report = tk.execute(&dataset, &q, 5).unwrap();
        assert_eq!(report.results.len(), 5);
        assert!(report.results.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(report.local_stats.len(), 6, "one stats record per reducer");
        assert!(report.topbuckets.selected > 0);
        assert!(report.topbuckets.selected <= report.topbuckets.candidates);
        assert!(report.distribution.replication_factor >= 1.0);
        assert!(report.min_kth_score() <= 1.0);
        assert!(report.total_wall() >= report.topbuckets.duration);
        assert!(!report.phase_line().is_empty());
        assert!(report.pruned_pct() >= 0.0 && report.pruned_pct() <= 100.0);
        assert_eq!(report.backend, LocalJoinBackend::Sweep, "default backend");
        assert_eq!(
            report.sweep_scan,
            SweepScanKind::from_env().unwrap_or(SweepScanKind::Chunked),
            "scan-kind echo follows the config default"
        );
        assert!(report.index_probes() > 0, "probes are counted");
        assert!(report.items_scanned() > 0, "scan effort is counted");
        assert!(report.probe_chunks() > 0, "probe chunks are counted");
        assert_eq!(report.intra_threads_used(), 0, "sequential default spawns no chunk workers");
        // Phase-level work counters are filled and self-consistent.
        assert!(report.distribution.assignments_scored > 0, "distribution work is counted");
        assert_eq!(report.distribution.cap_fallbacks, 0);
        assert_eq!(
            report.topbuckets.candidates
                - report.topbuckets.pruned_local
                - report.topbuckets.pruned_merge,
            report.topbuckets.selected,
            "TopBuckets pruning counters account for every candidate"
        );
        assert!(report.topbuckets.worker_groups >= 1);
        // The fixed sweep backend indexes every bucket with the sweep.
        assert!(report.buckets_sweep() > 0);
        assert_eq!(report.buckets_rtree(), 0);
        // The join shuffle matches the assignment estimate.
        assert_eq!(
            report.join.total_shuffle_records(),
            report.distribution.estimated_shuffle_records
        );
    }

    #[test]
    fn auto_backend_end_to_end_matches_naive_and_records_choices() {
        let tk = Tkij::new(
            TkijConfig::default()
                .with_granules(6)
                .with_reducers(4)
                .with_local_backend(LocalJoinBackend::Auto),
        );
        let dataset = tk.prepare(uniform_collections(3, 70, 1234)).unwrap();
        let q = table1::q_om(PredicateParams::P1);
        let report = tk.execute(&dataset, &q, 8).unwrap();
        assert_exact("auto", &q, &dataset, &report, 8);
        assert_eq!(report.backend, LocalJoinBackend::Auto);
        assert!(
            report.buckets_rtree() + report.buckets_sweep() > 0,
            "auto records a choice per indexed bucket"
        );
    }

    #[test]
    fn scan_kind_is_echoed_and_counter_invariant() {
        // The engine-level version of the lanes contract: flipping
        // `sweep_scan` changes the report's configuration echo and
        // nothing else — results (ids included) and every work counter
        // are bit-identical.
        let base = uniform_collections(3, 50, 321);
        let q = table1::q_om(PredicateParams::P1);
        let mut reports = Vec::new();
        for (_, scan) in SweepScanKind::all() {
            let tk = Tkij::new(
                TkijConfig::default().with_granules(5).with_reducers(3).with_sweep_scan(scan),
            );
            let dataset = tk.prepare(base.clone()).unwrap();
            let report = tk.execute(&dataset, &q, 8).unwrap();
            assert_eq!(report.sweep_scan, scan, "report echoes the configured kind");
            reports.push(report);
        }
        let (a, b) = (&reports[0], &reports[1]);
        assert_eq!(a.items_scanned(), b.items_scanned());
        assert_eq!(a.index_probes(), b.index_probes());
        assert_eq!(a.tuples_scored(), b.tuples_scored());
        assert_eq!(a.probe_chunks(), b.probe_chunks());
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.ids, y.ids, "scan kinds may not exchange tie tuples");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let tk = engine(4, 2);
        let dataset = tk.prepare(uniform_collections(2, 10, 1)).unwrap();
        let q3 = table1::q_bb(PredicateParams::P1); // needs 3 collections
        assert!(tk.execute(&dataset, &q3, 5).is_err());
        let q2 = {
            use tkij_temporal::{
                aggregate::Aggregation, collection::CollectionId, query::QueryEdge,
            };
            Query::new(
                vec![CollectionId(0), CollectionId(1)],
                vec![QueryEdge {
                    src: 0,
                    dst: 1,
                    predicate: tkij_temporal::predicate::TemporalPredicate::before(
                        PredicateParams::P1,
                    ),
                }],
                Aggregation::NormalizedSum,
            )
            .unwrap()
        };
        assert!(tk.execute(&dataset, &q2, 0).is_err(), "k = 0 rejected");
        assert!(tk.execute(&dataset, &q2, 3).is_ok());
    }

    #[test]
    fn no_pruning_ablation_same_results_more_work() {
        let collections = uniform_collections(3, 60, 500);
        let q = table1::q_om(PredicateParams::P1);
        let pruned = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4));
        let unpruned =
            Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4).without_pruning());
        let d1 = pruned.prepare(collections.clone()).unwrap();
        let d2 = unpruned.prepare(collections).unwrap();
        let r1 = pruned.execute(&d1, &q, 5).unwrap();
        let r2 = unpruned.execute(&d2, &q, 5).unwrap();
        // Same exact answers...
        let s1: Vec<f64> = r1.results.iter().map(|t| t.score).collect();
        let s2: Vec<f64> = r2.results.iter().map(|t| t.score).collect();
        for (a, b) in s1.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-9);
        }
        // ...but the ablation keeps every combination and ships more.
        assert_eq!(r2.topbuckets.selected, r2.topbuckets.candidates);
        assert!(r1.topbuckets.selected <= r2.topbuckets.selected);
        assert!(
            r1.distribution.estimated_shuffle_records <= r2.distribution.estimated_shuffle_records
        );
    }

    #[test]
    fn k_exceeding_result_space_returns_everything() {
        let tk = engine(3, 2);
        let dataset = tk.prepare(uniform_collections(3, 4, 13)).unwrap();
        let q = table1::q_bb(PredicateParams::P1);
        let report = tk.execute(&dataset, &q, 1000).unwrap();
        assert_eq!(report.results.len(), 64, "4³ tuples exist");
    }

    #[test]
    fn spill_knob_is_result_and_counter_transparent() {
        // The out-of-core knob reroutes every job through the serialized
        // transport: identical results (ids included) and work counters,
        // with the spill counters lighting up.
        let q = table1::q_om(PredicateParams::P1);
        let base = TkijConfig::default().with_granules(5).with_reducers(4);
        let in_mem = Tkij::with_cluster(base.clone(), ClusterConfig::default());
        // Pin the reference transport: under the CI env hook the default
        // cluster may already serialize, which this test must not inherit.
        let in_mem = Tkij {
            cluster: ClusterConfig { shuffle: ShuffleMode::InMemory, ..in_mem.cluster },
            ..in_mem
        };
        let spilled =
            Tkij { config: base.with_shuffle_spill_threshold_bytes(0), cluster: in_mem.cluster };
        assert_eq!(in_mem.job_cluster().shuffle, ShuffleMode::InMemory);
        assert_eq!(
            spilled.job_cluster().shuffle,
            ShuffleMode::Serialized { spill_threshold_bytes: 0, sink: SpillSinkKind::Memory }
        );
        let d1 = in_mem.prepare(uniform_collections(3, 60, 555)).unwrap();
        let d2 = spilled.prepare(uniform_collections(3, 60, 555)).unwrap();
        assert_eq!(d1.matrices, d2.matrices, "statistics survive the spill path");
        assert_eq!(d1.densities, d2.densities);
        let r1 = in_mem.execute(&d1, &q, 6).unwrap();
        let r2 = spilled.execute(&d2, &q, 6).unwrap();
        let a: Vec<_> = r1.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect();
        let b: Vec<_> = r2.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect();
        assert_eq!(a, b, "spilling may not change a result bit");
        assert_eq!(r1.join.shuffle_records, r2.join.shuffle_records);
        assert_eq!(r1.join.shuffle_bytes, r2.join.shuffle_bytes);
        assert_eq!(r1.merge.shuffle_records, r2.merge.shuffle_records);
        assert_eq!(r1.shuffle_stats(), ShuffleStats::default(), "in-memory spills nothing");
        let spilled_stats = r2.shuffle_stats();
        assert_eq!(
            spilled_stats.records_spilled,
            r2.join.total_shuffle_records() + r2.merge.total_shuffle_records(),
            "threshold 0 serializes every shuffled record"
        );
        assert!(spilled_stats.spill_segments > 0);
        assert!(spilled_stats.spill_bytes > 0);
        assert!(
            d2.stats_metrics.shuffle.records_spilled > 0,
            "prepare routes through the spill path too"
        );
    }

    #[test]
    fn deterministic_across_runs_and_worker_threads() {
        let q = table1::q_sfm(PredicateParams::P1);
        let mut reports = Vec::new();
        for threads in [0, 3] {
            let tk = Tkij::with_cluster(
                TkijConfig::default().with_granules(5).with_reducers(4),
                ClusterConfig { worker_threads: threads, ..Default::default() },
            );
            let dataset = tk.prepare(uniform_collections(3, 60, 555)).unwrap();
            let report = tk.execute(&dataset, &q, 6).unwrap();
            reports.push(report);
        }
        let a: Vec<_> = reports[0].results.iter().map(|t| (t.ids.clone(), t.score)).collect();
        let b: Vec<_> = reports[1].results.iter().map(|t| (t.ids.clone(), t.score)).collect();
        assert_eq!(a, b);
    }
}
