//! The distributed join phase (paper Fig. 5c–d): one Map-Reduce job that
//! ships every interval to the reducers whose bucket combinations need
//! it, then runs the local top-k join on each reducer.
//!
//! "For each input interval x, a mapper computes the bucket b in which x
//! falls. Then x is communicated to all reducers r_j that received b."

use crate::combos::ComboSet;
use crate::config::{LocalJoinBackend, SweepScanKind};
use crate::distribute::Assignment;
use crate::localjoin::{IndexPools, IntraJoin, LocalJoinStats};
use crate::stats::PreparedDataset;
use std::collections::BTreeMap;
use tkij_mapreduce::{
    run_map_reduce, ClusterConfig, CodecError, FrameReader, JobMetrics, Record, SizeOf,
};
use tkij_temporal::bucket::BucketId;
use tkij_temporal::interval::Interval;
use tkij_temporal::query::Query;
use tkij_temporal::result::MatchTuple;

/// The output of one reducer: its local top-k and telemetry.
#[derive(Debug, Clone)]
pub struct ReducerOutput {
    /// Reducer index.
    pub reducer: u32,
    /// Local top-k results (unsorted accumulator dump, merge-phase input).
    pub results: Vec<MatchTuple>,
    /// Local join telemetry.
    pub stats: LocalJoinStats,
}

/// Shuffle record: an interval tagged with the query vertex it plays.
struct VRec(u16, Interval);

impl SizeOf for VRec {
    fn size_bytes(&self) -> usize {
        2 + 24 // vertex tag + (id, start, end)
    }
}

impl Record for VRec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.id.encode(out);
        self.1.start.encode(out);
        self.1.end.encode(out);
    }

    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let v = u16::decode(reader)?;
        let id = u64::decode(reader)?;
        let start = i64::decode(reader)?;
        let end = i64::decode(reader)?;
        let iv = Interval::new(id, start, end)
            .map_err(|e| CodecError { detail: format!("invalid interval in VRec: {e}") })?;
        Ok(VRec(v, iv))
    }
}

/// Runs the join phase with the default local-join backend. `combos`
/// must be the selected `Ω_{k,S}` that `assignment` distributes.
pub fn run_join_phase(
    dataset: &PreparedDataset,
    query: &Query,
    combos: &ComboSet,
    assignment: &Assignment,
    k: usize,
    cluster: &ClusterConfig,
) -> (Vec<ReducerOutput>, JobMetrics) {
    run_join_phase_with(
        dataset,
        query,
        combos,
        assignment,
        k,
        cluster,
        LocalJoinBackend::default(),
        SweepScanKind::default(),
        None,
        IntraJoin::default(),
    )
}

/// [`run_join_phase`] on an explicit candidate-source backend, with an
/// optional attribute filter (hybrid queries).
///
/// With [`LocalJoinBackend::Auto`] the phase plans, **once, from the
/// collected statistics** (`PreparedDataset::bucket_profile` →
/// `tkij_core::localjoin::select_backend`), which fixed backend serves
/// each (vertex, bucket) the assignment ships, and every reducer indexes
/// its buckets per that plan — replicated buckets are not re-profiled
/// per reducer. The choices are recorded in each reducer's
/// [`LocalJoinStats`] (`buckets_rtree` / `buckets_sweep`) and surface in
/// the `ExecutionReport` aggregates.
///
/// `intra` carries the probe-stream sharding plan (chunk length, shared
/// bound); its *thread* count is recomputed here from the cluster's
/// nested thread budget so that concurrent reduce tasks × chunk workers
/// can never oversubscribe the host, whatever the caller passed.
///
/// `scan` is the sweep store's run-scan kind (`TkijConfig::sweep_scan`),
/// threaded to every reducer like `backend`; the kinds are bit-identical
/// in results and counters, so it is a pure wall-clock knob.
#[allow(clippy::too_many_arguments)]
pub fn run_join_phase_with(
    dataset: &PreparedDataset,
    query: &Query,
    combos: &ComboSet,
    assignment: &Assignment,
    k: usize,
    cluster: &ClusterConfig,
    backend: LocalJoinBackend,
    scan: SweepScanKind,
    filter: Option<&dyn crate::localjoin::TupleFilter>,
    intra: IntraJoin,
) -> (Vec<ReducerOutput>, JobMetrics) {
    run_join_phase_impl(
        dataset, query, combos, assignment, k, cluster, backend, scan, filter, intra, None,
    )
}

/// [`run_join_phase_with`] serving reducer bucket indexes from a shared
/// [`IndexPools`] (the serving layer's read-only per-(collection, bucket)
/// index cache) instead of building them per reducer. Results and every
/// work counter are bit-identical to the unpooled entry — pooling
/// amortizes only the index *build* work across queries (see
/// [`crate::localjoin::local_topk_join_pooled`]).
#[allow(clippy::too_many_arguments)]
pub fn run_join_phase_pooled(
    dataset: &PreparedDataset,
    query: &Query,
    combos: &ComboSet,
    assignment: &Assignment,
    k: usize,
    cluster: &ClusterConfig,
    backend: LocalJoinBackend,
    scan: SweepScanKind,
    filter: Option<&dyn crate::localjoin::TupleFilter>,
    intra: IntraJoin,
    pools: &IndexPools,
) -> (Vec<ReducerOutput>, JobMetrics) {
    run_join_phase_impl(
        dataset,
        query,
        combos,
        assignment,
        k,
        cluster,
        backend,
        scan,
        filter,
        intra,
        Some(pools),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_join_phase_impl(
    dataset: &PreparedDataset,
    query: &Query,
    combos: &ComboSet,
    assignment: &Assignment,
    k: usize,
    cluster: &ClusterConfig,
    backend: LocalJoinBackend,
    scan: SweepScanKind,
    filter: Option<&dyn crate::localjoin::TupleFilter>,
    intra: IntraJoin,
    pools: Option<&IndexPools>,
) -> (Vec<ReducerOutput>, JobMetrics) {
    // Map input: the intervals of every collection some vertex reads.
    let mut used = vec![false; dataset.collections.len()];
    for cid in &query.vertices {
        used[cid.0 as usize] = true;
    }
    let mut inputs: Vec<(u32, Interval)> = Vec::new();
    for (c, coll) in dataset.collections.iter().enumerate() {
        if used[c] {
            inputs.extend(coll.intervals().iter().map(|iv| (c as u32, *iv)));
        }
    }
    // vertex lists per collection (vertices sharing a collection each get
    // their own shipment role).
    let mut vertices_of: Vec<Vec<u16>> = vec![Vec::new(); dataset.collections.len()];
    for (v, cid) in query.vertices.iter().enumerate() {
        vertices_of[cid.0 as usize].push(v as u16);
    }
    let plan = query.plan();
    // Nested thread budget: the reduce wave's actual concurrency caps
    // how many chunk workers each reduce task may spawn (hard-asserted
    // inside `intra_join_plan`). Thread count never changes results or
    // counters — only the execution of the fixed chunk schedule.
    let intra =
        IntraJoin { threads: cluster.intra_join_plan(assignment.num_reducers.max(1)), ..intra };
    // Auto: plan the per-bucket backend once from the collected
    // statistics; every shipped (vertex, bucket) is a bucket_map key.
    let choices: Option<crate::localjoin::BackendChoices> = (backend == LocalJoinBackend::Auto)
        .then(|| {
            assignment
                .bucket_map
                .keys()
                .map(|&(v, b)| {
                    let c = query.vertices[v as usize].0 as usize;
                    ((v, b), crate::localjoin::select_backend(&dataset.bucket_profile(c, b)))
                })
                .collect()
        });

    run_map_reduce(
        &inputs,
        cluster.map_slots.max(1) * 2,
        assignment.num_reducers,
        |_, chunk, em| {
            for (c, iv) in chunk {
                let matrix = &dataset.matrices[*c as usize];
                let bucket = matrix.bucket_of(iv);
                for &v in &vertices_of[*c as usize] {
                    if let Some(reducers) = assignment.bucket_map.get(&(v, bucket)) {
                        for &r in reducers {
                            em.emit(r, VRec(v, *iv));
                        }
                    }
                }
            }
        },
        |r| *r as usize,
        |p, groups| {
            // Reassemble this reducer's (vertex, bucket) → intervals map.
            let mut data: BTreeMap<(u16, BucketId), Vec<Interval>> = BTreeMap::new();
            for (r, records) in groups {
                debug_assert_eq!(r as usize, p);
                for VRec(v, iv) in records {
                    let matrix = &dataset.matrices[query.vertices[v as usize].0 as usize];
                    data.entry((v, matrix.bucket_of(&iv))).or_default().push(iv);
                }
            }
            for bucket in data.values_mut() {
                bucket.sort_unstable_by_key(|iv| (iv.start, iv.end, iv.id));
            }
            let (topk, stats) = match pools {
                None => crate::localjoin::local_topk_join_planned(
                    backend,
                    scan,
                    query,
                    &plan,
                    k,
                    combos,
                    &assignment.reducer_combos[p],
                    &data,
                    filter,
                    choices.as_ref(),
                    intra,
                ),
                Some(pools) => crate::localjoin::local_topk_join_pooled(
                    backend,
                    scan,
                    query,
                    &plan,
                    k,
                    combos,
                    &assignment.reducer_combos[p],
                    &data,
                    filter,
                    choices.as_ref(),
                    intra,
                    pools,
                ),
            };
            vec![ReducerOutput { reducer: p as u32, results: topk.into_sorted_vec(), stats }]
        },
        cluster,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DistributionPolicy, Strategy};
    use crate::distribute::distribute;
    use crate::naive::naive_topk;
    use crate::stats::collect_statistics;
    use crate::topbuckets::run_topbuckets;
    use tkij_datagen::uniform_collections;
    use tkij_solver::SolverConfig;
    use tkij_temporal::collection::IntervalCollection;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn run_pipeline(
        collections: Vec<IntervalCollection>,
        query: &Query,
        k: usize,
        g: u32,
        reducers: usize,
        policy: DistributionPolicy,
    ) -> (Vec<ReducerOutput>, JobMetrics, Vec<MatchTuple>) {
        let cluster = ClusterConfig::default();
        let dataset = collect_statistics(collections, g, &cluster).unwrap();
        let (selected, _) = run_topbuckets(
            query,
            &dataset.matrices,
            k as u64,
            Strategy::Loose,
            &SolverConfig::default(),
            2,
        );
        let assignment = distribute(&selected, policy, reducers, query, &dataset.matrices);
        let (outputs, metrics) =
            run_join_phase(&dataset, query, &selected, &assignment, k, &cluster);
        let refs: Vec<&IntervalCollection> =
            query.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
        let expected = naive_topk(query, &refs, k);
        (outputs, metrics, expected)
    }

    #[test]
    fn reducers_jointly_cover_the_exact_topk() {
        let collections = uniform_collections(3, 60, 77);
        let q = table1::q_om(PredicateParams::P1);
        let k = 8;
        for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
            let (outputs, metrics, expected) =
                run_pipeline(collections.clone(), &q, k, 6, 4, policy);
            // Globally merge local top-ks; must equal the oracle.
            let mut all = tkij_temporal::result::TopK::new(k);
            for o in &outputs {
                for t in &o.results {
                    all.offer(t.clone());
                }
            }
            let got = all.into_sorted_vec();
            assert_eq!(got.len(), expected.len(), "{policy:?}");
            for (g, e) in got.iter().zip(&expected) {
                // Score sequences must match exactly; ids may differ only
                // among equal scores (ties prunable by TopBuckets).
                assert!((g.score - e.score).abs() < 1e-9, "{policy:?}: {g:?} vs {e:?}");
            }
            assert_eq!(metrics.reduce_durations.len(), 4);
            assert!(metrics.total_shuffle_records() > 0);
        }
    }

    #[test]
    fn auto_backend_pipeline_covers_the_exact_topk() {
        // The join phase with Auto: reducers choose per bucket, results
        // stay exact, and every indexed bucket has exactly one recorded
        // choice.
        let collections = uniform_collections(3, 60, 77);
        let q = table1::q_om(PredicateParams::P1);
        let k = 8;
        let cluster = ClusterConfig::default();
        let dataset = collect_statistics(collections, 6, &cluster).unwrap();
        let (selected, _) = run_topbuckets(
            &q,
            &dataset.matrices,
            k as u64,
            Strategy::Loose,
            &SolverConfig::default(),
            2,
        );
        let assignment = distribute(&selected, DistributionPolicy::Dtb, 4, &q, &dataset.matrices);
        let (outputs, _) = run_join_phase_with(
            &dataset,
            &q,
            &selected,
            &assignment,
            k,
            &cluster,
            crate::config::LocalJoinBackend::Auto,
            SweepScanKind::default(),
            None,
            IntraJoin::default(),
        );
        let mut all = tkij_temporal::result::TopK::new(k);
        let (mut sweep_chosen, mut total_chosen) = (0u64, 0u64);
        for o in &outputs {
            sweep_chosen += o.stats.buckets_sweep;
            total_chosen += o.stats.buckets_rtree + o.stats.buckets_sweep;
            for t in &o.results {
                all.offer(t.clone());
            }
        }
        assert!(total_chosen > 0, "choices recorded");
        // The recorded choices are exactly the statistics-planned ones:
        // each shipped (vertex, bucket) counts once per reducer holding
        // it, with the backend select_backend picks for its profile.
        let expect_sweep: u64 = assignment
            .bucket_map
            .iter()
            .map(|(&(v, b), reducers)| {
                let c = q.vertices[v as usize].0 as usize;
                let choice = crate::localjoin::select_backend(&dataset.bucket_profile(c, b));
                if choice == crate::config::LocalJoinBackend::Sweep {
                    reducers.len() as u64
                } else {
                    0
                }
            })
            .sum();
        assert_eq!(sweep_chosen, expect_sweep, "reducers follow the statistics-derived plan");
        let refs: Vec<&IntervalCollection> =
            q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
        let expected = naive_topk(&q, &refs, k);
        let got = all.into_sorted_vec();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g.score - e.score).abs() < 1e-9, "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn shuffle_matches_assignment_estimate() {
        let collections = uniform_collections(2, 40, 5);
        let p = PredicateParams::P2;
        let q = Query::new(
            vec![
                tkij_temporal::collection::CollectionId(0),
                tkij_temporal::collection::CollectionId(1),
            ],
            vec![tkij_temporal::query::QueryEdge {
                src: 0,
                dst: 1,
                predicate: tkij_temporal::predicate::TemporalPredicate::before(p),
            }],
            tkij_temporal::aggregate::Aggregation::NormalizedSum,
        )
        .unwrap();
        let cluster = ClusterConfig::default();
        let dataset = collect_statistics(collections, 5, &cluster).unwrap();
        let (selected, _) =
            run_topbuckets(&q, &dataset.matrices, 4, Strategy::Loose, &SolverConfig::default(), 1);
        let assignment = distribute(&selected, DistributionPolicy::Dtb, 3, &q, &dataset.matrices);
        let (_, metrics) = run_join_phase(&dataset, &q, &selected, &assignment, 4, &cluster);
        assert_eq!(
            metrics.total_shuffle_records(),
            assignment.estimated_shuffle_records,
            "mapper shipment must equal DTB's estimate"
        );
    }

    #[test]
    fn self_join_ships_per_vertex_roles() {
        // Both vertices read collection 0: every needed interval is
        // shipped once per vertex role.
        let collections = uniform_collections(1, 30, 9);
        let q = Query::new(
            vec![
                tkij_temporal::collection::CollectionId(0),
                tkij_temporal::collection::CollectionId(0),
            ],
            vec![tkij_temporal::query::QueryEdge {
                src: 0,
                dst: 1,
                predicate: tkij_temporal::predicate::TemporalPredicate::meets(PredicateParams::P1),
            }],
            tkij_temporal::aggregate::Aggregation::NormalizedSum,
        )
        .unwrap();
        let cluster = ClusterConfig::default();
        let dataset = collect_statistics(collections, 4, &cluster).unwrap();
        let (selected, _) =
            run_topbuckets(&q, &dataset.matrices, 5, Strategy::Loose, &SolverConfig::default(), 1);
        let assignment = distribute(&selected, DistributionPolicy::Dtb, 2, &q, &dataset.matrices);
        let (outputs, _) = run_join_phase(&dataset, &q, &selected, &assignment, 5, &cluster);
        let mut all = tkij_temporal::result::TopK::new(5);
        for o in outputs {
            for t in o.results {
                all.offer(t);
            }
        }
        let refs = vec![&dataset.collections[0], &dataset.collections[0]];
        let expected = naive_topk(&q, &refs, 5);
        let got = all.into_sorted_vec();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g.score - e.score).abs() < 1e-9, "{g:?} vs {e:?}");
        }
    }
}
