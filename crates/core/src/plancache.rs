//! The serving layer's bounded plan cache: LRU over [`PlanKey`]s with a
//! **monotone logical access stamp** — no wall clock, no thread
//! identity, so the eviction sequence is a pure function of the access
//! sequence.
//!
//! Every access (hit or insert) happens under one mutex and advances a
//! logical clock; each entry remembers the stamp of its latest access.
//! When an insert pushes the map past the configured capacity, the
//! entry with the *smallest* stamp — the least recently used — is
//! evicted and counted. Under a serial access order the victim sequence
//! is therefore deterministic (stamps are unique, so there are no
//! ties), which is what `tests/serving_shape_churn.rs` locks; under
//! concurrent access the stamps follow the lock-acquisition order, so
//! eviction choices may vary with interleaving but the bound
//! `len() ≤ capacity` and the result bits of every served query never
//! do.
//!
//! Eviction is safe mid-planning: a querier holds an `Arc` to its
//! entry's [`OnceLock`] slot, so evicting the map entry never
//! invalidates a plan being computed or replayed — the shape merely has
//! to be re-planned (a fresh miss) when it is requested again.

use crate::engine::QueryPlan;
use crate::serving::PlanKey;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A bounded, LRU-evicting map from query shape to (lazily computed)
/// plan slot. Capacity `0` means unbounded — the cache never evicts.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: BTreeMap<PlanKey, CacheEntry>,
    /// Logical access clock: advanced on every [`PlanCache::slot`]
    /// call, under the mutex, so stamps are unique and strictly
    /// increasing in lock-acquisition order.
    clock: u64,
    evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    slot: Arc<OnceLock<QueryPlan>>,
    /// Stamp of this entry's latest access (insert or lookup).
    last_use: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` distinct shapes
    /// (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        PlanCache { capacity, inner: Mutex::new(CacheInner::default()) }
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The slot for `key`: marks the entry most-recently-used, creating
    /// it on first sight and evicting the least-recently-used *other*
    /// entry when the capacity would be exceeded. The slot itself is
    /// initialized by the caller (outside this lock), so concurrent
    /// first requests for one shape serialize on the slot's
    /// [`OnceLock`], never on the map.
    pub fn slot(&self, key: PlanKey) -> Arc<OnceLock<QueryPlan>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let is_new = !inner.entries.contains_key(&key);
        let slot = {
            let entry = inner
                .entries
                .entry(key)
                .or_insert_with(|| CacheEntry { slot: Arc::new(OnceLock::new()), last_use: 0 });
            entry.last_use = stamp;
            Arc::clone(&entry.slot)
        };
        if is_new && self.capacity != 0 && inner.entries.len() > self.capacity {
            // The just-inserted key carries the largest stamp, so the
            // minimum is always an *other* entry (capacity ≥ 1) and,
            // stamps being unique, the victim is unambiguous.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity is non-empty");
            inner.entries.remove(&victim);
            inner.evictions += 1;
        }
        slot
    }

    /// Distinct shapes currently cached (always ≤ capacity when
    /// bounded).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TkijConfig;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn key(k: usize) -> PlanKey {
        PlanKey::for_server(&TkijConfig::default(), &table1::q_om(PredicateParams::P1), k)
    }

    #[test]
    fn stays_within_capacity_and_counts_evictions() {
        let cache = PlanCache::new(3);
        for k in 1..=10 {
            cache.slot(key(k));
            assert!(cache.len() <= 3, "len {} exceeds capacity after k={k}", cache.len());
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 7);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = PlanCache::new(2);
        let a = cache.slot(key(1));
        cache.slot(key(2));
        // Touch A: B becomes the LRU entry.
        cache.slot(key(1));
        cache.slot(key(3)); // evicts B
        assert_eq!(cache.evictions(), 1);
        // A survived: its slot is the same allocation as before.
        assert!(Arc::ptr_eq(&a, &cache.slot(key(1))));
        // B was evicted: re-requesting it makes a fresh slot and, A
        // having just been touched, evicts C as the new LRU entry.
        let b = cache.slot(key(2));
        assert_eq!(cache.evictions(), 2);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn zero_capacity_never_evicts() {
        let cache = PlanCache::new(0);
        for k in 1..=50 {
            cache.slot(key(k));
        }
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn eviction_sequence_is_deterministic_under_serial_order() {
        let run = || {
            let cache = PlanCache::new(3);
            // A churn pattern mixing repeats and fresh shapes.
            for k in [1, 2, 3, 1, 4, 5, 2, 6, 1, 7, 3, 3, 8] {
                cache.slot(key(k));
            }
            (cache.len(), cache.evictions())
        };
        assert_eq!(run(), run());
        let (len, evictions) = run();
        assert_eq!(len, 3);
        assert!(evictions > 0, "the churn pattern must actually evict");
    }

    #[test]
    fn capacity_one_holds_the_latest_shape() {
        let cache = PlanCache::new(1);
        cache.slot(key(1));
        cache.slot(key(2));
        cache.slot(key(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 2);
        // The surviving entry is the most recent: touching it evicts
        // nothing.
        cache.slot(key(3));
        assert_eq!(cache.evictions(), 2);
    }
}
