//! The final merge phase (paper Fig. 5e): a Map-Reduce job collapsing the
//! per-reducer local top-k lists into the global top-k.

use crate::joinphase::ReducerOutput;
use tkij_mapreduce::{
    run_map_reduce, ClusterConfig, CodecError, FrameReader, JobMetrics, Record, SizeOf,
};
use tkij_temporal::result::{MatchTuple, TopK};

/// Shuffle record wrapping one local result tuple.
struct TupleMsg(MatchTuple);

impl SizeOf for TupleMsg {
    fn size_bytes(&self) -> usize {
        8 * self.0.ids.len() + 8 // ids + score
    }
}

impl Record for TupleMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        for id in &self.0.ids {
            id.encode(out);
        }
        self.0.score.encode(out);
    }

    // The id count carries no prefix: a tuple is the frame's whole value,
    // so the arity is `(remaining − score) / 8`.
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let rem = reader.remaining();
        if rem < 8 || rem % 8 != 0 {
            return Err(CodecError {
                detail: format!("TupleMsg payload of {rem} bytes is not ids + score"),
            });
        }
        let arity = rem / 8 - 1;
        let mut ids = Vec::with_capacity(arity);
        for _ in 0..arity {
            ids.push(u64::decode(reader)?);
        }
        let score = f64::decode(reader)?;
        if !score.is_finite() {
            return Err(CodecError { detail: format!("non-finite tuple score {score}") });
        }
        Ok(TupleMsg(MatchTuple::new(ids, score)))
    }
}

/// Merges the reducer outputs into the exact global top-k (best first).
pub fn run_merge_phase(
    outputs: &[ReducerOutput],
    k: usize,
    cluster: &ClusterConfig,
) -> (Vec<MatchTuple>, JobMetrics) {
    let (merged, metrics) = run_map_reduce(
        outputs,
        cluster.map_slots.max(1),
        1,
        |_, chunk, em| {
            for out in chunk {
                for t in &out.results {
                    em.emit(0u8, TupleMsg(t.clone()));
                }
            }
        },
        |_| 0,
        |_, groups| {
            let mut top = TopK::new(k);
            for (_, msgs) in groups {
                for TupleMsg(t) in msgs {
                    top.offer(t);
                }
            }
            top.into_sorted_vec()
        },
        cluster,
    );
    (merged, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localjoin::LocalJoinStats;

    fn output(reducer: u32, scores: &[f64]) -> ReducerOutput {
        ReducerOutput {
            reducer,
            results: scores
                .iter()
                .enumerate()
                .map(|(i, s)| MatchTuple::new(vec![reducer as u64 * 100 + i as u64], *s))
                .collect(),
            stats: LocalJoinStats::default(),
        }
    }

    #[test]
    fn merges_to_global_best() {
        let outputs = vec![output(0, &[0.9, 0.5, 0.1]), output(1, &[0.8, 0.7]), output(2, &[])];
        let (merged, metrics) = run_merge_phase(&outputs, 3, &ClusterConfig::default());
        let scores: Vec<f64> = merged.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![0.9, 0.8, 0.7]);
        assert_eq!(metrics.total_shuffle_records(), 5);
    }

    #[test]
    fn deterministic_tie_break_across_reducers() {
        let outputs = vec![output(1, &[0.5]), output(0, &[0.5])];
        let (merged, _) = run_merge_phase(&outputs, 1, &ClusterConfig::default());
        assert_eq!(merged[0].ids, vec![0], "smaller ids win ties");
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let (merged, _) = run_merge_phase(&[], 5, &ClusterConfig::default());
        assert!(merged.is_empty());
    }
}
