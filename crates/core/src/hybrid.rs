//! Hybrid queries: temporal predicates plus attribute constraints.
//!
//! The paper's conclusion names this as future work: "the integration of
//! interval attributes (e.g. IP address for a connection) in the join
//! conditions, to build hybrid queries". This module implements it on top
//! of the TKIJ machinery:
//!
//! * every query vertex carries an attribute table (interval id →
//!   attribute value, e.g. the client IP of a connection);
//! * edge-level [`AttrConstraint`]s require equality or inequality of the
//!   joined intervals' attributes;
//! * evaluation reuses the full distribution + local-join pipeline with a
//!   monotone [`TupleFilter`], rejecting partial tuples as soon as a
//!   constraint between bound vertices fails.
//!
//! **Pruning note.** TopBuckets score bounds do not model attribute
//! selectivity: a pruned combination's k cover tuples might all be
//! filtered out, which would break exactness. Hybrid execution therefore
//! keeps the *ordering* benefits of bounds (UB-descending access, runtime
//! early termination — both remain sound on filtered subsets) but skips
//! the static `getTopBuckets` pruning. Making bounds selectivity-aware is
//! the natural next step the paper alludes to.

use crate::config::TkijConfig;
use crate::distribute::distribute;
use crate::engine::{DistributionSummary, ExecutionReport, Tkij};
use crate::joinphase::run_join_phase_with;
use crate::localjoin::TupleFilter;
use crate::merge::run_merge_phase;
use crate::stats::PreparedDataset;
use crate::topbuckets::run_topbuckets;
use std::collections::BTreeMap;
use tkij_temporal::error::TemporalError;
use tkij_temporal::interval::Interval;
use tkij_temporal::query::Query;

/// Comparison applied to the two attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrPredicate {
    /// Attributes must be equal (e.g. same server IP).
    Equal,
    /// Attributes must differ (e.g. requests from different countries, as
    /// in the paper's introduction).
    NotEqual,
}

/// One attribute constraint between two query vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrConstraint {
    /// First vertex.
    pub src: usize,
    /// Second vertex.
    pub dst: usize,
    /// Required relation.
    pub predicate: AttrPredicate,
}

/// Attribute tables per *collection* (interval id → attribute value).
pub type AttributeTables = Vec<BTreeMap<u64, u64>>;

struct AttrFilter<'a> {
    query: &'a Query,
    tables: &'a AttributeTables,
    constraints: &'a [AttrConstraint],
}

impl AttrFilter<'_> {
    fn attr(&self, vertex: usize, iv: &Interval) -> Option<u64> {
        let c = self.query.vertices[vertex].0 as usize;
        self.tables[c].get(&iv.id).copied()
    }
}

impl TupleFilter for AttrFilter<'_> {
    fn admits(&self, tuple: &[Option<Interval>]) -> bool {
        for c in self.constraints {
            let (Some(x), Some(y)) = (&tuple[c.src], &tuple[c.dst]) else { continue };
            let (Some(a), Some(b)) = (self.attr(c.src, x), self.attr(c.dst, y)) else {
                return false; // missing attribute: reject conservatively
            };
            let ok = match c.predicate {
                AttrPredicate::Equal => a == b,
                AttrPredicate::NotEqual => a != b,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Executes a hybrid query: the exact top-k among tuples satisfying every
/// attribute constraint, ranked by the temporal score.
pub fn execute_hybrid(
    engine: &Tkij,
    dataset: &PreparedDataset,
    query: &Query,
    tables: &AttributeTables,
    constraints: &[AttrConstraint],
    k: usize,
) -> Result<ExecutionReport, TemporalError> {
    if k == 0 {
        return Err(TemporalError::InvalidQuery("k must be ≥ 1".into()));
    }
    if tables.len() != dataset.collections.len() {
        return Err(TemporalError::InvalidQuery(
            "one attribute table per collection is required".into(),
        ));
    }
    for c in constraints {
        if c.src >= query.n() || c.dst >= query.n() || c.src == c.dst {
            return Err(TemporalError::InvalidQuery(format!(
                "attribute constraint ({}, {}) is out of range",
                c.src, c.dst
            )));
        }
    }

    // Bound all combinations (k = MAX disables static pruning, see the
    // module docs) but keep the UB ordering for early termination.
    let cfg: &TkijConfig = &engine.config;
    let (selected, mut topbuckets) = run_topbuckets(
        query,
        &dataset.matrices,
        u64::MAX,
        cfg.strategy,
        &cfg.solver,
        cfg.topbuckets_workers,
    );
    topbuckets.selected = selected.len();

    let assignment =
        distribute(&selected, cfg.distribution, cfg.reducers, query, &dataset.matrices);
    let filter = AttrFilter { query, tables, constraints };
    let (outputs, join_metrics) = run_join_phase_with(
        dataset,
        query,
        &selected,
        &assignment,
        k,
        &engine.cluster,
        cfg.local_backend,
        cfg.sweep_scan,
        Some(&filter),
        engine.intra_join(),
    );
    let (results, merge_metrics) = run_merge_phase(&outputs, k, &engine.cluster);

    let mut local_stats = Vec::with_capacity(outputs.len());
    let mut reducer_kth_scores = Vec::new();
    for o in outputs {
        if !o.results.is_empty() {
            reducer_kth_scores.push(o.stats.kth_score);
        }
        local_stats.push(o.stats);
    }
    Ok(ExecutionReport {
        query_name: format!("{}+{}attr", query.name(), constraints.len()),
        k,
        granules: dataset.granules,
        strategy: cfg.strategy,
        policy: cfg.distribution,
        backend: cfg.local_backend,
        sweep_scan: cfg.sweep_scan,
        topbuckets,
        distribution: DistributionSummary {
            policy: cfg.distribution,
            duration: assignment.duration,
            replication_factor: assignment.replication_factor,
            estimated_shuffle_records: assignment.estimated_shuffle_records,
            result_imbalance: assignment.result_imbalance(),
            assignments_scored: assignment.assignments_scored,
            cap_fallbacks: assignment.cap_fallbacks,
        },
        join: join_metrics,
        merge: merge_metrics,
        local_stats,
        reducer_kth_scores,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TkijConfig;
    use crate::naive::naive_topk_where;
    use tkij_datagen::uniform_collections;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    /// Attribute = interval id modulo `m` (deterministic, collection-wide).
    fn mod_tables(dataset: &PreparedDataset, m: u64) -> AttributeTables {
        dataset
            .collections
            .iter()
            .map(|c| c.intervals().iter().map(|iv| (iv.id, iv.id % m)).collect())
            .collect()
    }

    fn engine() -> Tkij {
        Tkij::new(TkijConfig::default().with_granules(5).with_reducers(3))
    }

    #[test]
    fn equal_attr_matches_filtered_naive() {
        let tk = engine();
        let dataset = tk.prepare(uniform_collections(3, 30, 321)).unwrap();
        let q = table1::q_om(PredicateParams::P1);
        let tables = mod_tables(&dataset, 3);
        let constraints = [AttrConstraint { src: 0, dst: 1, predicate: AttrPredicate::Equal }];
        let report = execute_hybrid(&tk, &dataset, &q, &tables, &constraints, 6).unwrap();
        let refs: Vec<_> = q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
        let expected = naive_topk_where(&q, &refs, 6, |t| t[0].id % 3 == t[1].id % 3);
        assert_eq!(report.results.len(), expected.len());
        for (g, e) in report.results.iter().zip(&expected) {
            assert!((g.score - e.score).abs() < 1e-9, "{g:?} vs {e:?}");
            // Returned tuples must satisfy the attribute constraint.
            assert_eq!(g.ids[0] % 3, g.ids[1] % 3);
        }
    }

    #[test]
    fn not_equal_attr_matches_filtered_naive() {
        let tk = engine();
        let dataset = tk.prepare(uniform_collections(3, 24, 654)).unwrap();
        let q = table1::q_bb(PredicateParams::P1);
        let tables = mod_tables(&dataset, 2);
        let constraints = [
            AttrConstraint { src: 0, dst: 1, predicate: AttrPredicate::NotEqual },
            AttrConstraint { src: 1, dst: 2, predicate: AttrPredicate::NotEqual },
        ];
        let report = execute_hybrid(&tk, &dataset, &q, &tables, &constraints, 5).unwrap();
        let refs: Vec<_> = q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
        let expected = naive_topk_where(&q, &refs, 5, |t| {
            t[0].id % 2 != t[1].id % 2 && t[1].id % 2 != t[2].id % 2
        });
        assert_eq!(report.results.len(), expected.len());
        for (g, e) in report.results.iter().zip(&expected) {
            assert!((g.score - e.score).abs() < 1e-9, "{g:?} vs {e:?}");
            assert_ne!(g.ids[0] % 2, g.ids[1] % 2);
            assert_ne!(g.ids[1] % 2, g.ids[2] % 2);
        }
    }

    #[test]
    fn no_constraints_degenerates_to_plain_rtj() {
        let tk = engine();
        let dataset = tk.prepare(uniform_collections(3, 20, 11)).unwrap();
        let q = table1::q_sm(PredicateParams::P2);
        let tables = mod_tables(&dataset, 5);
        let hybrid = execute_hybrid(&tk, &dataset, &q, &tables, &[], 4).unwrap();
        let plain = tk.execute(&dataset, &q, 4).unwrap();
        assert_eq!(hybrid.results.len(), plain.results.len());
        for (h, p) in hybrid.results.iter().zip(&plain.results) {
            assert!((h.score - p.score).abs() < 1e-9);
        }
    }

    #[test]
    fn validates_inputs() {
        let tk = engine();
        let dataset = tk.prepare(uniform_collections(2, 10, 1)).unwrap();
        let q = {
            use tkij_temporal::{
                aggregate::Aggregation, collection::CollectionId, query::QueryEdge,
            };
            Query::new(
                vec![CollectionId(0), CollectionId(1)],
                vec![QueryEdge {
                    src: 0,
                    dst: 1,
                    predicate: tkij_temporal::predicate::TemporalPredicate::before(
                        PredicateParams::P1,
                    ),
                }],
                Aggregation::NormalizedSum,
            )
            .unwrap()
        };
        let tables = mod_tables(&dataset, 2);
        let bad = [AttrConstraint { src: 0, dst: 0, predicate: AttrPredicate::Equal }];
        assert!(execute_hybrid(&tk, &dataset, &q, &tables, &bad, 3).is_err());
        assert!(execute_hybrid(&tk, &dataset, &q, &tables[..1].to_vec(), &[], 3).is_err());
        assert!(execute_hybrid(&tk, &dataset, &q, &tables, &[], 0).is_err());
    }

    #[test]
    fn missing_attributes_reject_conservatively() {
        let tk = engine();
        let dataset = tk.prepare(uniform_collections(2, 10, 77)).unwrap();
        let q = {
            use tkij_temporal::{
                aggregate::Aggregation, collection::CollectionId, query::QueryEdge,
            };
            Query::new(
                vec![CollectionId(0), CollectionId(1)],
                vec![QueryEdge {
                    src: 0,
                    dst: 1,
                    predicate: tkij_temporal::predicate::TemporalPredicate::before(
                        PredicateParams::P1,
                    ),
                }],
                Aggregation::NormalizedSum,
            )
            .unwrap()
        };
        // Empty tables: with a constraint, nothing qualifies.
        let tables: AttributeTables = vec![BTreeMap::new(), BTreeMap::new()];
        let constraints = [AttrConstraint { src: 0, dst: 1, predicate: AttrPredicate::Equal }];
        let report = execute_hybrid(&tk, &dataset, &q, &tables, &constraints, 3).unwrap();
        assert!(report.results.is_empty());
    }
}
