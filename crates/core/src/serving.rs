//! The serving layer: many concurrent queries over one shared,
//! immutable [`PreparedDataset`].
//!
//! The paper's pipeline evaluates one query end-to-end; a production
//! deployment amortizes the offline work across millions of requests.
//! This module splits the engine's lifecycle accordingly:
//!
//! * **Prepare once** — [`Tkij::prepare`] collects statistics; wrapping
//!   the result in a [`TkijServer`] freezes dataset, configuration, and
//!   cluster shape into shared immutable state.
//! * **Query many** — any number of threads call [`TkijServer::query`]
//!   (or clone a cheap [`QueryHandle`]) concurrently. Each query gets
//!   its own top-k heap, work counters, and [`ExecutionReport`]; the
//!   *shared* state is strictly read-only.
//!
//! Two caches make repeated shapes cheap without touching a single
//! result bit:
//!
//! * a **bounded plan cache** ([`crate::plancache::PlanCache`]) keyed
//!   by [`PlanKey`] — the canonical query graph, `k`, and the server's
//!   (strategy, backend, scan kind) — so repeated query shapes skip
//!   TopBuckets planning and distribution entirely. Planning is a pure
//!   deterministic function of (dataset statistics, query, k, config),
//!   so a cached [`QueryPlan`](crate::engine::QueryPlan) is
//!   bit-identical to a freshly computed
//!   one. [`TkijConfig::plan_cache_capacity`] bounds the cache against
//!   adversarial shape churn: beyond it the least-recently-used shape
//!   is evicted (deterministic LRU on a monotone logical access stamp)
//!   and simply re-planned when requested again.
//! * a shared **index pool** ([`IndexPools`]) holding one immutable
//!   index per (collection, bucket): reducers of every query reuse them
//!   instead of rebuilding. Pool contents are query-independent (each
//!   entry indexes the full canonical bucket slice), so probe order and
//!   every examined-item counter match a per-query build exactly.
//!
//! The determinism contract therefore extends to serving: a query's
//! results and work-counter fingerprint are bit-identical whether it
//! runs solo through [`Tkij::execute`], repeated through a server, or
//! interleaved with other queries from any number of threads — locked
//! by `tests/serving_determinism.rs`, `tests/serving_shape_churn.rs`,
//! and the `bench_serving` harness's in-binary assertions. Only the
//! serving counters themselves ([`ServingStats`]) are new, and they are
//! deterministic too: with the cache enabled and no evictions, misses
//! equal the number of *distinct* served shapes and hits the remainder,
//! regardless of thread interleaving; under churn past the capacity,
//! every counter is still an exact function of the serial access order.
//!
//! The paper frames its whole evaluation (§4) in per-query response
//! time, so the server also keeps **latency observability**: each
//! query's wall latency lands in a fixed log-spaced-bucket histogram
//! ([`LatencySnapshot`] extracts p50/p95/p99). Latency is the one
//! deliberately *non*-deterministic artifact here — it feeds only
//! `*_ms` report keys, never a result, counter, or gate.

use crate::config::TkijConfig;
use crate::engine::{ExecutionReport, Tkij};
use crate::localjoin::IndexPools;
use crate::plancache::PlanCache;
use crate::stats::PreparedDataset;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tkij_temporal::error::TemporalError;
use tkij_temporal::query::Query;

/// The plan-cache key: one entry per served query *shape*.
///
/// The query graph is keyed by its canonical `Debug` rendering —
/// `Query` carries `f64` predicate parameters (no `Eq`/`Ord`), and
/// Rust's float `Debug` prints the shortest round-tripping decimal, so
/// the rendering is injective: equal strings ⇔ structurally equal
/// queries. Strategy, backend, and scan kind are fixed per server but
/// included so a key names the full plan-determining tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    /// Canonical rendering of the query graph (vertices, edges,
    /// predicates, aggregation).
    pub query_graph: String,
    /// Result budget the plan was made for (TopBuckets prunes against
    /// it, so different `k` need different plans).
    pub k: usize,
    /// TopBuckets strategy name (config echo).
    pub strategy: &'static str,
    /// Local-join backend name (config echo).
    pub backend: &'static str,
    /// Sweep run-scan kind name (config echo; never plan-relevant — the
    /// kinds are bit-identical by contract).
    pub scan: &'static str,
}

impl PlanKey {
    /// The key under which `server` caches plans for `(query, k)`.
    pub fn for_server(config: &TkijConfig, query: &Query, k: usize) -> Self {
        PlanKey {
            query_graph: format!("{query:?}"),
            k,
            strategy: config.strategy.name(),
            backend: config.local_backend.name(),
            scan: config.sweep_scan.name(),
        }
    }
}

/// Snapshot of a server's serving counters ([`TkijServer::stats`]).
///
/// All three are deterministic work counters (never timings): for a
/// given multiset of served queries they are independent of thread
/// count and interleaving, so the bench gate pins them exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Queries served (successful [`TkijServer::query`] calls;
    /// validation rejects are not counted).
    pub queries: u64,
    /// Served queries whose plan came from the cache. With the cache
    /// enabled this is exactly `queries − distinct shapes`, however the
    /// callers interleave.
    pub plan_cache_hits: u64,
    /// Served queries that computed a fresh plan — one per distinct
    /// [`PlanKey`] while no shape has been evicted (or every query,
    /// with the cache disabled); an evicted shape misses again on its
    /// next request.
    pub plan_cache_misses: u64,
    /// Shapes evicted from the bounded plan cache (LRU order). Always
    /// `0` while distinct served shapes stay within
    /// [`TkijConfig::plan_cache_capacity`]; under churn past the bound
    /// it is an exact function of the serial access order.
    pub plan_cache_evictions: u64,
}

/// How many log-spaced latency buckets the serving histogram keeps:
/// powers of two from 1 µs up (the last bucket is open-ended), covering
/// ~1 µs to ~9 minutes in fixed space.
pub const LATENCY_BUCKETS: usize = 40;

/// Per-query wall-latency percentiles extracted from the server's
/// fixed log-spaced-bucket histogram ([`TkijServer::latency`]).
///
/// Each percentile is the *upper bound* of the histogram bucket holding
/// that rank (conservative: never under-reports), in milliseconds.
/// Latency is wall-clock telemetry — an artifact, never part of the
/// determinism contract: `bench_serving` emits these as `*_ms` keys,
/// which the bench gate and the fingerprints ignore by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySnapshot {
    /// Median per-query latency (bucket upper bound), ms.
    pub p50_ms: f64,
    /// 95th-percentile latency (bucket upper bound), ms.
    pub p95_ms: f64,
    /// 99th-percentile latency (bucket upper bound), ms.
    pub p99_ms: f64,
    /// Queries recorded (equals [`ServingStats::queries`]).
    pub samples: u64,
}

/// Fixed log-spaced histogram of per-query wall latencies: bucket `i`
/// spans `(2^(i−1), 2^i]` µs, the last bucket is open-ended. Plain
/// `u64` counts behind the one serving mutex that is not on the query
/// hot path's lock-free counters — recording is one lock + one
/// increment per served query, negligible against the query itself.
#[derive(Debug)]
struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    samples: u64,
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram { counts: [0; LATENCY_BUCKETS], samples: 0 }
    }

    fn record(&mut self, micros: u128) {
        // First bucket whose upper bound 2^i µs holds `micros` — i.e.
        // `⌈log₂ micros⌉`; everything past the range lands in the
        // open-ended last bucket.
        let ceil_log2 = if micros <= 1 { 0 } else { 128 - (micros - 1).leading_zeros() as usize };
        self.counts[ceil_log2.min(LATENCY_BUCKETS - 1)] += 1;
        self.samples += 1;
    }

    /// Upper bound (ms) of the bucket containing the `q`-quantile rank.
    fn quantile_ms(&self, q: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let rank = ((q * self.samples as f64).ceil() as u64).clamp(1, self.samples);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Bucket i's upper bound is 2^i µs.
                return 2f64.powi(i as i32) / 1e3;
            }
        }
        unreachable!("ranks are clamped to the recorded sample count")
    }

    fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            p50_ms: self.quantile_ms(0.50),
            p95_ms: self.quantile_ms(0.95),
            p99_ms: self.quantile_ms(0.99),
            samples: self.samples,
        }
    }
}

/// Shared immutable state behind a server and all its handles.
#[derive(Debug)]
struct ServerInner {
    engine: Tkij,
    dataset: PreparedDataset,
    /// Bounded plan cache: each key's slot is created (and the LRU
    /// bookkeeping done) under the cache's own lock, but the
    /// (expensive) plan is computed inside the slot's `OnceLock` —
    /// concurrent first requests for one shape serialize on the slot,
    /// exactly one computes (the miss), and the cache lock is never
    /// held across planning.
    plans: PlanCache,
    pools: IndexPools,
    /// Per-query wall-latency histogram — pure observability; see
    /// [`LatencySnapshot`].
    latency: Mutex<LatencyHistogram>,
    // Monotone event counters. Relaxed ordering suffices for all three:
    // each is independently incremented and only ever read as a
    // point-in-time snapshot (`stats`); no other memory is published
    // through them, and their totals are interleaving-independent by
    // the OnceLock construction above (as long as nothing is evicted;
    // under eviction churn they follow the serial access order).
    queries: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
}

impl ServerInner {
    fn query(&self, query: &Query, k: usize) -> Result<ExecutionReport, TemporalError> {
        self.engine.validate(&self.dataset, query, k)?;
        // Ordering rationale: Relaxed — monotone counter, see field docs.
        self.queries.fetch_add(1, Ordering::Relaxed);
        // tkij-lint: allow(DET002) -- wall latency feeds only the LatencySnapshot artifact (serving_p50_ms/serving_p95_ms/serving_p99_ms), never a result, counter, or gate
        let started = std::time::Instant::now();

        let report = if self.engine.config.plan_cache {
            let slot = self.plans.slot(PlanKey::for_server(&self.engine.config, query, k));
            let mut fresh = false;
            let plan = slot.get_or_init(|| {
                fresh = true;
                self.engine.plan_query(&self.dataset, query, k).expect("validated above")
            });
            // Ordering rationale: Relaxed — monotone counters, see field
            // docs. `get_or_init` guarantees exactly one closure run per
            // slot, so misses = distinct shapes deterministically.
            if fresh {
                self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
            } else {
                self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            self.engine.execute_planned_impl(&self.dataset, query, k, plan, Some(&self.pools))
        } else {
            // Ordering rationale: Relaxed — monotone counter, see field
            // docs. Cache disabled: every query plans fresh.
            self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
            let plan = self.engine.plan_query(&self.dataset, query, k).expect("validated above");
            self.engine.execute_planned_impl(&self.dataset, query, k, &plan, Some(&self.pools))
        };
        self.latency.lock().record(started.elapsed().as_micros());
        Ok(report)
    }

    fn stats(&self) -> ServingStats {
        // Ordering rationale: Relaxed loads — point-in-time snapshot of
        // independent monotone counters, see field docs.
        ServingStats {
            queries: self.queries.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            plan_cache_evictions: self.plans.evictions(),
        }
    }
}

/// A prepared, immutable TKIJ serving instance: one engine
/// configuration + cluster shape + [`PreparedDataset`], shared by any
/// number of concurrent queriers.
///
/// ```
/// use std::sync::Arc;
/// use tkij_core::serving::TkijServer;
/// use tkij_core::{Tkij, TkijConfig};
/// use tkij_datagen::uniform_collections;
/// use tkij_temporal::params::PredicateParams;
/// use tkij_temporal::query::table1;
///
/// let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4));
/// let dataset = engine.prepare(uniform_collections(3, 120, 42)).unwrap();
/// let server = Arc::new(engine.serve(dataset));
///
/// // Any number of threads may query concurrently; results are
/// // bit-identical to running each query alone.
/// let query = table1::q_om(PredicateParams::P1);
/// std::thread::scope(|scope| {
///     for _ in 0..2 {
///         let server = Arc::clone(&server);
///         let query = query.clone();
///         scope.spawn(move || {
///             let report = server.query(&query, 5).unwrap();
///             assert_eq!(report.results.len(), 5);
///         });
///     }
/// });
/// let stats = server.stats();
/// assert_eq!(stats.queries, 2);
/// assert_eq!(stats.plan_cache_misses, 1, "one distinct shape");
/// assert_eq!(stats.plan_cache_hits, 1);
/// ```
#[derive(Debug)]
pub struct TkijServer {
    inner: Arc<ServerInner>,
}

impl TkijServer {
    /// Freezes an engine and a prepared dataset into a serving instance
    /// (also reachable as [`Tkij::serve`]). Caches start empty and fill
    /// lazily as queries arrive.
    pub fn new(engine: Tkij, dataset: PreparedDataset) -> Self {
        let capacity = engine.config.plan_cache_capacity;
        TkijServer {
            inner: Arc::new(ServerInner {
                engine,
                dataset,
                plans: PlanCache::new(capacity),
                pools: IndexPools::new(),
                latency: Mutex::new(LatencyHistogram::new()),
                queries: AtomicU64::new(0),
                plan_cache_hits: AtomicU64::new(0),
                plan_cache_misses: AtomicU64::new(0),
            }),
        }
    }

    /// Serves one query: plans (or replays a cached plan), runs the
    /// distributed join and merge, and returns the full
    /// [`ExecutionReport`] — bit-identical, results and work counters,
    /// to [`Tkij::execute`] on the same inputs.
    pub fn query(&self, query: &Query, k: usize) -> Result<ExecutionReport, TemporalError> {
        self.inner.query(query, k)
    }

    /// A cheap cloneable handle sharing this server's state — the thing
    /// to hand each worker thread of a request loop.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle { inner: Arc::clone(&self.inner) }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServingStats {
        self.inner.stats()
    }

    /// The shared prepared dataset queries run against.
    pub fn dataset(&self) -> &PreparedDataset {
        &self.inner.dataset
    }

    /// The frozen engine configuration.
    pub fn config(&self) -> &TkijConfig {
        &self.inner.engine.config
    }

    /// Distinct query shapes currently in the plan cache — never more
    /// than [`TkijConfig::plan_cache_capacity`] when that bound is set.
    pub fn plan_cache_len(&self) -> usize {
        self.inner.plans.len()
    }

    /// The plan cache's configured capacity (`0` = unbounded).
    pub fn plan_cache_capacity(&self) -> usize {
        self.inner.plans.capacity()
    }

    /// Per-query wall-latency percentiles recorded so far (p50/p95/p99
    /// over every query served by this server, all handles included).
    pub fn latency(&self) -> LatencySnapshot {
        self.inner.latency.lock().snapshot()
    }

    /// Indexes currently in the shared (collection, bucket) pool.
    pub fn index_pool_len(&self) -> usize {
        self.inner.pools.len()
    }
}

/// A cheap cloneable query handle onto a [`TkijServer`] — all clones
/// share the server's dataset, plan cache, index pool, and counters.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    inner: Arc<ServerInner>,
}

impl QueryHandle {
    /// [`TkijServer::query`] through the handle.
    pub fn query(&self, query: &Query, k: usize) -> Result<ExecutionReport, TemporalError> {
        self.inner.query(query, k)
    }

    /// [`TkijServer::stats`] through the handle.
    pub fn stats(&self) -> ServingStats {
        self.inner.stats()
    }

    /// [`TkijServer::latency`] through the handle.
    pub fn latency(&self) -> LatencySnapshot {
        self.inner.latency.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_datagen::uniform_collections;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn server() -> TkijServer {
        let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4));
        let dataset = engine.prepare(uniform_collections(3, 80, 7)).unwrap();
        engine.serve(dataset)
    }

    #[test]
    fn served_query_matches_solo_execute() {
        let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4));
        let dataset = engine.prepare(uniform_collections(3, 80, 7)).unwrap();
        let q = table1::q_om(PredicateParams::P1);
        let solo = engine.execute(&dataset, &q, 6).unwrap();
        let srv = engine.serve(dataset);
        for _ in 0..2 {
            let served = srv.query(&q, 6).unwrap();
            assert_eq!(served.results.len(), solo.results.len());
            for (a, b) in served.results.iter().zip(&solo.results) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.ids, b.ids);
            }
            assert_eq!(served.local_stats, solo.local_stats);
            assert_eq!(served.topbuckets.selected, solo.topbuckets.selected);
        }
        assert_eq!(
            srv.stats(),
            ServingStats {
                queries: 2,
                plan_cache_hits: 1,
                plan_cache_misses: 1,
                plan_cache_evictions: 0
            }
        );
        assert_eq!(srv.plan_cache_len(), 1);
        assert!(srv.index_pool_len() > 0, "the pool filled");
    }

    #[test]
    fn distinct_shapes_miss_distinctly() {
        let srv = server();
        let q1 = table1::q_om(PredicateParams::P1);
        let q2 = table1::q_oo(PredicateParams::P1);
        srv.query(&q1, 5).unwrap();
        srv.query(&q2, 5).unwrap();
        srv.query(&q1, 5).unwrap();
        srv.query(&q1, 6).unwrap(); // same graph, different k: its own plan
        let stats = srv.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.plan_cache_misses, 3);
        assert_eq!(stats.plan_cache_hits, 1);
        assert_eq!(srv.plan_cache_len(), 3);
    }

    #[test]
    fn disabled_cache_counts_every_query_as_miss() {
        let engine =
            Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4).without_plan_cache());
        let dataset = engine.prepare(uniform_collections(3, 60, 9)).unwrap();
        let srv = engine.serve(dataset);
        let q = table1::q_om(PredicateParams::P1);
        let first = srv.query(&q, 5).unwrap();
        let second = srv.query(&q, 5).unwrap();
        assert_eq!(first.results, second.results);
        assert_eq!(
            srv.stats(),
            ServingStats {
                queries: 2,
                plan_cache_hits: 0,
                plan_cache_misses: 2,
                plan_cache_evictions: 0
            }
        );
        assert_eq!(srv.plan_cache_len(), 0);
    }

    #[test]
    fn invalid_queries_are_rejected_and_uncounted() {
        let srv = server();
        let q = table1::q_om(PredicateParams::P1);
        assert!(srv.query(&q, 0).is_err(), "k = 0 rejected");
        assert_eq!(srv.stats(), ServingStats::default());
    }

    #[test]
    fn handles_share_state() {
        let srv = server();
        let handle = srv.handle();
        let q = table1::q_sm(PredicateParams::P2);
        handle.query(&q, 4).unwrap();
        handle.clone().query(&q, 4).unwrap();
        assert_eq!(srv.stats(), handle.stats());
        assert_eq!(srv.stats().plan_cache_hits, 1);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(3); // bucket 2: (2, 4] µs
        }
        for _ in 0..5 {
            h.record(1000); // bucket 10: (512, 1024] µs
        }
        let snap = h.snapshot();
        assert_eq!(snap.samples, 105);
        assert_eq!(snap.p50_ms, 0.004, "median in the 4 µs bucket");
        assert_eq!(snap.p95_ms, 0.004, "rank 100 still in the 4 µs bucket");
        assert_eq!(snap.p99_ms, 1.024, "rank 104 reaches the 1024 µs bucket");
    }

    #[test]
    fn histogram_edges() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencySnapshot::default(), "empty snapshot is all zeros");
        h.record(0); // sub-µs: first bucket
        h.record(1);
        h.record(2);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        h.record(u128::MAX); // far past the range: open-ended last bucket
        assert_eq!(h.counts[LATENCY_BUCKETS - 1], 1);
        let single = {
            let mut h = LatencyHistogram::new();
            h.record(300);
            h.snapshot()
        };
        // One sample: every percentile is its bucket's upper bound.
        assert_eq!((single.p50_ms, single.p95_ms, single.p99_ms), (0.512, 0.512, 0.512));
    }

    #[test]
    fn server_records_latency_for_every_query() {
        let srv = server();
        let q = table1::q_om(PredicateParams::P1);
        for _ in 0..3 {
            srv.query(&q, 5).unwrap();
        }
        let snap = srv.latency();
        assert_eq!(snap.samples, srv.stats().queries);
        assert!(snap.p50_ms > 0.0, "a real query takes measurable time");
        assert!(snap.p50_ms <= snap.p95_ms && snap.p95_ms <= snap.p99_ms);
        assert_eq!(srv.handle().latency(), snap, "handles see the shared histogram");
    }

    #[test]
    fn bounded_cache_evicts_lru_shapes() {
        let engine = Tkij::new(
            TkijConfig::default().with_granules(6).with_reducers(4).with_plan_cache_capacity(2),
        );
        let dataset = engine.prepare(uniform_collections(3, 80, 7)).unwrap();
        let srv = engine.serve(dataset);
        assert_eq!(srv.plan_cache_capacity(), 2);
        let q = table1::q_om(PredicateParams::P1);
        for k in 1..=4 {
            srv.query(&q, k).unwrap();
            assert!(srv.plan_cache_len() <= 2);
        }
        let stats = srv.stats();
        assert_eq!(stats.plan_cache_misses, 4, "four distinct shapes");
        assert_eq!(stats.plan_cache_evictions, 2, "k=1 and k=2 were evicted");
        // k=4 is the most recent shape: a repeat hits...
        srv.query(&q, 4).unwrap();
        assert_eq!(srv.stats().plan_cache_hits, 1);
        // ... while the evicted k=1 misses again (and re-enters).
        srv.query(&q, 1).unwrap();
        let stats = srv.stats();
        assert_eq!(stats.plan_cache_misses, 5);
        assert_eq!(stats.plan_cache_evictions, 3);
    }

    #[test]
    fn plan_key_is_injective_across_table1() {
        let config = TkijConfig::default();
        let avg = 40;
        let mut keys = std::collections::BTreeSet::new();
        for (_, q) in table1::all(PredicateParams::P1, avg) {
            keys.insert(PlanKey::for_server(&config, &q, 10));
        }
        assert_eq!(keys.len(), table1::all(PredicateParams::P1, avg).len());
        // Parameter changes change the key too.
        let a = PlanKey::for_server(&config, &table1::q_om(PredicateParams::P1), 10);
        let b = PlanKey::for_server(&config, &table1::q_om(PredicateParams::P2), 10);
        assert_ne!(a, b);
    }
}
