//! Bucket combinations `ω` and the candidate space `Ω` (paper §3.3).
//!
//! A combination assigns one bucket to every query vertex;
//! `ω.nbRes = Π |b_i|` counts the result tuples it can generate. `Ω` can
//! be large (`O(g^{2n})`), so combinations are stored in a compact
//! struct-of-arrays [`ComboSet`] and manipulated through index vectors.

use std::time::Duration;
use tkij_temporal::bucket::{BucketId, BucketMatrix};
use tkij_temporal::query::Query;

/// The non-empty buckets of one query vertex (bucket id, cardinality),
/// in deterministic (row-major) order.
#[derive(Debug, Clone)]
pub struct VertexBuckets {
    /// Bucket ids.
    pub ids: Vec<BucketId>,
    /// Cardinalities aligned with `ids`.
    pub counts: Vec<u64>,
}

impl VertexBuckets {
    /// Extracts the non-empty buckets of a matrix.
    pub fn from_matrix(matrix: &BucketMatrix) -> Self {
        let mut ids = Vec::new();
        let mut counts = Vec::new();
        for (b, c) in matrix.nonempty() {
            ids.push(b);
            counts.push(c);
        }
        VertexBuckets { ids, counts }
    }

    /// Number of non-empty buckets.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the vertex has no data (an empty collection).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A compact column-oriented set of bucket combinations.
#[derive(Debug, Clone, Default)]
pub struct ComboSet {
    n: usize,
    buckets: Vec<BucketId>,
    nb_res: Vec<u64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
}

impl ComboSet {
    /// An empty set for `n`-vertex combinations.
    pub fn new(n: usize) -> Self {
        ComboSet { n, buckets: Vec::new(), nb_res: Vec::new(), lb: Vec::new(), ub: Vec::new() }
    }

    /// Appends a combination; returns its index.
    pub fn push(&mut self, buckets: &[BucketId], nb_res: u64, lb: f64, ub: f64) -> usize {
        debug_assert_eq!(buckets.len(), self.n);
        self.buckets.extend_from_slice(buckets);
        self.nb_res.push(nb_res);
        self.lb.push(lb);
        self.ub.push(ub);
        self.nb_res.len() - 1
    }

    /// Number of combinations.
    pub fn len(&self) -> usize {
        self.nb_res.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.nb_res.is_empty()
    }

    /// Combination arity (query vertices).
    pub fn arity(&self) -> usize {
        self.n
    }

    /// Buckets of combination `i`, indexed by query vertex.
    #[inline]
    pub fn buckets(&self, i: usize) -> &[BucketId] {
        &self.buckets[i * self.n..(i + 1) * self.n]
    }

    /// `ω.nbRes` of combination `i`.
    #[inline]
    pub fn nb_res(&self, i: usize) -> u64 {
        self.nb_res[i]
    }

    /// Score lower bound of combination `i`.
    #[inline]
    pub fn lb(&self, i: usize) -> f64 {
        self.lb[i]
    }

    /// Score upper bound of combination `i`.
    #[inline]
    pub fn ub(&self, i: usize) -> f64 {
        self.ub[i]
    }

    /// Overwrites the bounds of combination `i` (two-phase refinement).
    pub fn set_bounds(&mut self, i: usize, lb: f64, ub: f64) {
        self.lb[i] = lb;
        self.ub[i] = ub;
    }

    /// Σ `nbRes` over all combinations (u128: products saturate u64 but
    /// sums must not overflow).
    pub fn total_results(&self) -> u128 {
        self.nb_res.iter().map(|&c| c as u128).sum()
    }

    /// A new set holding the given combinations, in the order of
    /// `indices`.
    pub fn subset(&self, indices: &[u32]) -> ComboSet {
        let mut out = ComboSet::new(self.n);
        for &i in indices {
            let i = i as usize;
            out.push(self.buckets(i), self.nb_res[i], self.lb[i], self.ub[i]);
        }
        out
    }

    /// Merges another set (same arity) into this one.
    pub fn extend(&mut self, other: &ComboSet) {
        assert_eq!(self.n, other.n);
        self.buckets.extend_from_slice(&other.buckets);
        self.nb_res.extend_from_slice(&other.nb_res);
        self.lb.extend_from_slice(&other.lb);
        self.ub.extend_from_slice(&other.ub);
    }

    /// Indices `0..len` sorted by descending upper bound, ties broken by
    /// descending lower bound then ascending buckets (fully
    /// deterministic).
    pub fn indices_by_ub_desc(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            self.ub[b]
                .total_cmp(&self.ub[a])
                .then_with(|| self.lb[b].total_cmp(&self.lb[a]))
                .then_with(|| self.buckets(a).cmp(self.buckets(b)))
        });
        idx
    }

    /// Indices sorted by descending lower bound (Algorithm 1, line 1).
    pub fn indices_by_lb_desc(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            self.lb[b]
                .total_cmp(&self.lb[a])
                .then_with(|| self.ub[b].total_cmp(&self.ub[a]))
                .then_with(|| self.buckets(a).cmp(self.buckets(b)))
        });
        idx
    }

    /// Indices sorted by descending `nbRes` (LPT order).
    pub fn indices_by_nbres_desc(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            self.nb_res[b].cmp(&self.nb_res[a]).then_with(|| self.buckets(a).cmp(self.buckets(b)))
        });
        idx
    }
}

/// Enumerates the cartesian product of per-vertex bucket choices,
/// optionally restricted on vertex 0 (for the partitioned multi-worker
/// TopBuckets of §4, "we split the set of buckets B₁ into 6 equal-sized
/// groups"). Calls `visit(indices)` with the per-vertex bucket *indices*.
pub fn enumerate_combos(
    per_vertex: &[VertexBuckets],
    vertex0_range: std::ops::Range<usize>,
    mut visit: impl FnMut(&[usize]),
) {
    let n = per_vertex.len();
    assert!(n >= 1);
    if per_vertex.iter().any(VertexBuckets::is_empty) || vertex0_range.is_empty() {
        return;
    }
    let mut odometer = vec![0usize; n];
    odometer[0] = vertex0_range.start;
    loop {
        visit(&odometer);
        // Advance the odometer, least-significant vertex last.
        let mut v = n - 1;
        loop {
            odometer[v] += 1;
            let limit = if v == 0 { vertex0_range.end } else { per_vertex[v].len() };
            if odometer[v] < limit {
                break;
            }
            if v == 0 {
                return;
            }
            odometer[v] = 0;
            v -= 1;
        }
    }
}

/// Telemetry of one TopBuckets execution (paper Fig. 9's solid box, Fig.
/// 10c's "%results pruned").
#[derive(Debug, Clone, Default)]
pub struct TopBucketsStats {
    /// `|Ω|`: combinations considered (examined by a bound computation).
    pub candidates: usize,
    /// `|Ω_{k,S}|`: combinations selected.
    pub selected: usize,
    /// Solver invocations (pairs and/or n-ary).
    pub solver_calls: usize,
    /// Combinations pruned by the per-group local `getTopBuckets`
    /// selections (before the merge).
    pub pruned_local: usize,
    /// Combinations pruned at the merge selection(s) — including the
    /// two-phase post-refinement re-selection.
    pub pruned_merge: usize,
    /// Worker groups the candidate space was partitioned into.
    pub worker_groups: usize,
    /// Σ nbRes over Ω.
    pub total_results: u128,
    /// Σ nbRes over Ω_{k,S}.
    pub selected_results: u128,
    /// Wall time of the whole TopBuckets phase.
    pub duration: Duration,
}

impl TopBucketsStats {
    /// Share of potential results pruned, in percent (Fig. 10c).
    pub fn pruned_pct(&self) -> f64 {
        if self.total_results == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.selected_results as f64 / self.total_results as f64)
    }
}

/// Builds `nbRes` for a choice of per-vertex bucket indices.
pub fn nb_res_of(per_vertex: &[VertexBuckets], indices: &[usize]) -> u64 {
    let mut acc: u64 = 1;
    for (v, &i) in indices.iter().enumerate() {
        acc = acc.saturating_mul(per_vertex[v].counts[i]);
    }
    acc
}

/// The query-vertex matrices view: vertex `v` uses the matrix of its
/// collection.
pub fn vertex_buckets(query: &Query, matrices: &[BucketMatrix]) -> Vec<VertexBuckets> {
    query.vertices.iter().map(|cid| VertexBuckets::from_matrix(&matrices[cid.0 as usize])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::granule::TimePartitioning;
    use tkij_temporal::interval::Interval;

    fn matrix(points: &[(i64, i64)]) -> BucketMatrix {
        let part = TimePartitioning::from_range(0, 99, 10).unwrap();
        let intervals: Vec<Interval> = points
            .iter()
            .enumerate()
            .map(|(i, (s, e))| Interval::new(i as u64, *s, *e).unwrap())
            .collect();
        BucketMatrix::build(part, &intervals)
    }

    #[test]
    fn vertex_buckets_counts() {
        let m = matrix(&[(5, 8), (7, 15), (5, 9), (95, 99)]);
        let vb = VertexBuckets::from_matrix(&m);
        assert_eq!(vb.len(), 3);
        assert_eq!(vb.counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn comboset_roundtrip_and_sorts() {
        let mut set = ComboSet::new(2);
        let b1 = [BucketId::new(0, 0), BucketId::new(1, 1)];
        let b2 = [BucketId::new(0, 1), BucketId::new(1, 2)];
        set.push(&b1, 10, 0.2, 0.9);
        set.push(&b2, 5, 0.5, 0.7);
        assert_eq!(set.len(), 2);
        assert_eq!(set.buckets(1), &b2);
        assert_eq!(set.total_results(), 15);
        assert_eq!(set.indices_by_ub_desc(), vec![0, 1]);
        assert_eq!(set.indices_by_lb_desc(), vec![1, 0]);
        assert_eq!(set.indices_by_nbres_desc(), vec![0, 1]);
        let sub = set.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.buckets(0), &b2);
        assert_eq!(sub.nb_res(0), 5);
    }

    #[test]
    fn set_bounds_overwrites() {
        let mut set = ComboSet::new(1);
        set.push(&[BucketId::new(0, 0)], 1, 0.0, 1.0);
        set.set_bounds(0, 0.3, 0.6);
        assert_eq!((set.lb(0), set.ub(0)), (0.3, 0.6));
    }

    #[test]
    fn enumeration_is_full_cartesian_product() {
        let m1 = matrix(&[(5, 8), (15, 18), (25, 28)]);
        let m2 = matrix(&[(5, 8), (45, 48)]);
        let per_vertex = vec![VertexBuckets::from_matrix(&m1), VertexBuckets::from_matrix(&m2)];
        let mut seen = Vec::new();
        enumerate_combos(&per_vertex, 0..3, |idx| seen.push(idx.to_vec()));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 0]);
        assert_eq!(seen[5], vec![2, 1]);
        // All distinct.
        let uniq: std::collections::BTreeSet<_> = seen.iter().cloned().collect();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    fn enumeration_vertex0_restriction() {
        let m = matrix(&[(5, 8), (15, 18), (25, 28), (35, 38)]);
        let per_vertex = vec![VertexBuckets::from_matrix(&m); 2];
        let mut count = 0;
        enumerate_combos(&per_vertex, 1..3, |idx| {
            assert!((1..3).contains(&idx[0]));
            count += 1;
        });
        assert_eq!(count, 2 * 4);
    }

    #[test]
    fn enumeration_empty_cases() {
        let m = matrix(&[(5, 8)]);
        let empty = VertexBuckets { ids: vec![], counts: vec![] };
        let mut count = 0;
        enumerate_combos(&[VertexBuckets::from_matrix(&m), empty], 0..1, |_| count += 1);
        assert_eq!(count, 0);
        let per_vertex = vec![VertexBuckets::from_matrix(&m)];
        enumerate_combos(&per_vertex, 0..0, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn nb_res_saturates() {
        let vb = VertexBuckets { ids: vec![BucketId::new(0, 0)], counts: vec![u64::MAX / 2] };
        let per_vertex = vec![vb.clone(), vb];
        assert_eq!(nb_res_of(&per_vertex, &[0, 0]), u64::MAX);
    }

    #[test]
    fn pruned_pct_math() {
        let stats =
            TopBucketsStats { total_results: 200, selected_results: 50, ..Default::default() };
        assert!((stats.pruned_pct() - 75.0).abs() < 1e-12);
        assert_eq!(TopBucketsStats::default().pruned_pct(), 0.0);
    }
}
