//! RCCIS — the Boolean colocation-join competitor (Chawda et al.,
//! EDBT'14), adapted to top-k as in the paper's §4.2.5.
//!
//! RCCIS ("reduce-side cascaded colocation interval strategy") evaluates
//! multi-way *colocation* queries — every edge predicate implies the two
//! intervals share at least one timestamp (`meets`, `overlaps`, `starts`,
//! `equals`, `finishedBy`, `contains`) — as a **cascade of binary
//! Map-Reduce joins** over a shared granule partitioning:
//!
//! * each stage replicates its left input (intermediate tuples, keyed by
//!   the anchor interval) and the next collection to every granule they
//!   overlap;
//! * a reducer joins within its granule, checking the Boolean predicate
//!   and de-duplicating by the *reference granule* rule: a pair is
//!   reported only in the granule containing `max(x̲, y̲)` — a timestamp
//!   guaranteed to lie in both intervals of any colocation match, so each
//!   pair is emitted exactly once;
//! * the earlier stages are exactly the paper's "first Map-Reduce phase
//!   \[that\] builds intermediate results", whose cost grows with `|C_i|`
//!   (the behavior Fig. 11b attributes to RCCIS);
//! * the final stage checks any remaining (cycle) edges, and its
//!   reducers stop after emitting `k` matches, as the paper imposes.

use crate::common::{granule_span, shared_partitioning, BaselineReport};
use tkij_mapreduce::{run_map_reduce, ClusterConfig, CodecError, FrameReader, Record, SizeOf};
use tkij_temporal::collection::IntervalCollection;
use tkij_temporal::granule::TimePartitioning;
use tkij_temporal::interval::Interval;
use tkij_temporal::predicate::PredicateClass;
use tkij_temporal::query::Query;
use tkij_temporal::result::MatchTuple;

/// Shuffle record of one cascade stage: either an intermediate tuple
/// (tagged by its anchor interval) or a probe interval of the new vertex.
enum StageRec {
    /// Partial tuple: intervals bound so far (by plan order).
    Tuple(Vec<Interval>),
    /// An interval of the vertex being joined in.
    Probe(Interval),
}

impl SizeOf for StageRec {
    fn size_bytes(&self) -> usize {
        match self {
            StageRec::Tuple(t) => 1 + t.len() * 24,
            StageRec::Probe(_) => 1 + 24,
        }
    }
}

fn encode_interval(iv: &Interval, out: &mut Vec<u8>) {
    iv.id.encode(out);
    iv.start.encode(out);
    iv.end.encode(out);
}

fn decode_interval(reader: &mut FrameReader<'_>) -> Result<Interval, CodecError> {
    let id = u64::decode(reader)?;
    let start = i64::decode(reader)?;
    let end = i64::decode(reader)?;
    Interval::new(id, start, end)
        .map_err(|e| CodecError { detail: format!("invalid interval in StageRec: {e}") })
}

impl Record for StageRec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StageRec::Tuple(t) => {
                out.push(0);
                for iv in t {
                    encode_interval(iv, out);
                }
            }
            StageRec::Probe(iv) => {
                out.push(1);
                encode_interval(iv, out);
            }
        }
    }

    // A tuple's arity carries no prefix: the record is the frame's whole
    // value, so the bound-interval count is `remaining / 24`.
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(reader)? {
            0 => {
                let rem = reader.remaining();
                if rem % 24 != 0 {
                    return Err(CodecError {
                        detail: format!("StageRec tuple payload of {rem} bytes is not intervals"),
                    });
                }
                let mut tuple = Vec::with_capacity(rem / 24);
                for _ in 0..rem / 24 {
                    tuple.push(decode_interval(reader)?);
                }
                Ok(StageRec::Tuple(tuple))
            }
            1 => Ok(StageRec::Probe(decode_interval(reader)?)),
            tag => Err(CodecError { detail: format!("invalid StageRec tag {tag}") }),
        }
    }
}

/// Runs RCCIS on a colocation query. `g` granules (the paper sets
/// `g = 24`, one reducer per granule). `k` caps each final reducer's
/// output. Collections are indexed by the query's collection ids.
pub fn run_rccis(
    query: &Query,
    collections: &[IntervalCollection],
    k: usize,
    g: u32,
    cluster: &ClusterConfig,
) -> Result<BaselineReport, String> {
    for e in &query.edges {
        if e.predicate.class() != PredicateClass::Colocation {
            return Err(format!(
                "RCCIS handles only colocation predicates; {} is not",
                e.predicate
            ));
        }
    }
    let plan = query.plan();
    let part = shared_partitioning(
        query.vertices.iter().map(|c| collections[c.0 as usize].time_range()),
        g,
    );
    let mut phases = Vec::new();

    // Seed: single-interval "tuples" of the first plan vertex, in a map
    // keyed by the vertex order bound so far.
    let first_vertex = plan.steps[0].vertex;
    let mut bound_order = vec![first_vertex];
    let mut intermediates: Vec<Vec<Interval>> = collections
        [query.vertices[first_vertex].0 as usize]
        .intervals()
        .iter()
        .map(|iv| vec![*iv])
        .collect();

    for (stage, step) in plan.steps.iter().enumerate().skip(1) {
        let anchor = step.anchor.expect("cascade steps have anchors");
        let anchor_pos = bound_order
            .iter()
            .position(|&v| v == anchor.bound_vertex)
            .expect("anchor already bound");
        let probe_coll = &collections[query.vertices[step.vertex].0 as usize];
        let is_final = stage == plan.steps.len() - 1;
        let edge = &query.edges[anchor.edge];
        // Check edges whose endpoints are all bound after this stage.
        let checks: Vec<usize> = step.checks.clone();
        let bound_order_snapshot = bound_order.clone();

        // Build the stage's mixed input.
        let mut inputs: Vec<StageRec> = intermediates.drain(..).map(StageRec::Tuple).collect();
        inputs.extend(probe_coll.intervals().iter().map(|iv| StageRec::Probe(*iv)));

        let (outputs, metrics) = run_map_reduce(
            &inputs,
            cluster.map_slots.max(1) * 2,
            g as usize,
            |_, chunk, em| {
                for rec in chunk {
                    match rec {
                        StageRec::Tuple(t) => {
                            let (lo, hi) = granule_span(&part, &t[anchor_pos]);
                            for l in lo..=hi {
                                em.emit(l, StageRec::Tuple(t.clone()));
                            }
                        }
                        StageRec::Probe(iv) => {
                            let (lo, hi) = granule_span(&part, iv);
                            for l in lo..=hi {
                                em.emit(l, StageRec::Probe(*iv));
                            }
                        }
                    }
                }
            },
            |l| *l as usize,
            |granule, groups| {
                let mut tuples: Vec<Vec<Interval>> = Vec::new();
                let mut probes: Vec<Interval> = Vec::new();
                for (_, recs) in groups {
                    for rec in recs {
                        match rec {
                            StageRec::Tuple(t) => tuples.push(t),
                            StageRec::Probe(iv) => probes.push(iv),
                        }
                    }
                }
                // Deterministic order regardless of shuffle interleaving.
                tuples.sort_by(|a, b| {
                    a.iter()
                        .map(|i| i.id)
                        .collect::<Vec<_>>()
                        .cmp(&b.iter().map(|i| i.id).collect::<Vec<_>>())
                });
                probes.sort_by_key(|iv| iv.id);
                let mut out: Vec<Vec<Interval>> = Vec::new();
                'outer: for t in &tuples {
                    let x = &t[anchor_pos];
                    for y in &probes {
                        let (a, b) = match anchor.anchor_side {
                            tkij_temporal::expr::Side::Left => (x, y),
                            tkij_temporal::expr::Side::Right => (y, x),
                        };
                        if !edge.predicate.holds(a, b) {
                            continue;
                        }
                        // Reference-granule de-duplication.
                        let reference = part.granule_of(x.start.max(y.start));
                        if reference != granule as u32 {
                            continue;
                        }
                        let mut extended = t.clone();
                        extended.push(*y);
                        // Remaining (cycle) edges among bound vertices.
                        let ok = checks.iter().all(|&ce| {
                            let e = &query.edges[ce];
                            let find = |v: usize| -> &Interval {
                                if v == step.vertex {
                                    extended.last().expect("just pushed")
                                } else {
                                    let pos = bound_order_snapshot
                                        .iter()
                                        .position(|&b| b == v)
                                        .expect("check endpoints bound");
                                    &extended[pos]
                                }
                            };
                            e.predicate.holds(find(e.src), find(e.dst))
                        });
                        if !ok {
                            continue;
                        }
                        out.push(extended);
                        if is_final && out.len() >= k {
                            break 'outer; // stop-at-k (paper's adaptation)
                        }
                    }
                }
                out
            },
            cluster,
        );
        phases.push((format!("join-stage-{stage}"), metrics));
        bound_order.push(step.vertex);
        intermediates = outputs;
    }

    // Final merge: cap at k and normalize tuple order to query-vertex
    // order (like TKIJ's merge phase).
    let results = finalize(query, &bound_order, intermediates, k, &part);
    Ok(BaselineReport { algorithm: "RCCIS", results, phases })
}

/// Reorders tuples from plan order to vertex order, converts them into
/// score-1.0 [`MatchTuple`]s, sorts deterministically and caps at `k`.
fn finalize(
    query: &Query,
    bound_order: &[usize],
    tuples: Vec<Vec<Interval>>,
    k: usize,
    _part: &TimePartitioning,
) -> Vec<MatchTuple> {
    let mut out: Vec<MatchTuple> = tuples
        .into_iter()
        .map(|t| {
            let mut ids = vec![0u64; query.n()];
            for (pos, &v) in bound_order.iter().enumerate() {
                ids[v] = t[pos].id;
            }
            MatchTuple::new(ids, 1.0)
        })
        .collect();
    out.sort_by(MatchTuple::rank_cmp);
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_core::naive_boolean;
    use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
    use tkij_temporal::collection::CollectionId;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn boolean_ids(report: &BaselineReport) -> Vec<Vec<u64>> {
        let mut ids: Vec<Vec<u64>> = report.results.iter().map(|t| t.ids.clone()).collect();
        ids.sort();
        ids
    }

    /// Dense collections (short time range) so colocation matches exist.
    fn dense_collections(m: usize, size: usize, seed: u64) -> Vec<IntervalCollection> {
        (0..m as u32)
            .map(|i| {
                uniform_collection(
                    CollectionId(i),
                    &SyntheticConfig { size, start_range: (0, 1500), length_range: (1, 100), seed },
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_boolean_on_colocation_queries() {
        let collections = dense_collections(3, 120, 31);
        let cluster = ClusterConfig::default();
        for (name, q) in [
            ("Qo,o", table1::q_oo(PredicateParams::PB)),
            ("Qf,f", table1::q_ff(PredicateParams::PB)),
            ("Qs,s", table1::q_ss(PredicateParams::PB)),
            ("Qs,f,m", table1::q_sfm(PredicateParams::PB)),
            ("Qm*", table1::q_m_star(3, PredicateParams::PB)),
        ] {
            let refs: Vec<_> = q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
            let expected = naive_boolean(&q, &refs);
            let report = run_rccis(&q, &collections, usize::MAX, 8, &cluster).expect(name);
            assert_eq!(boolean_ids(&report), expected, "{name}");
        }
    }

    #[test]
    fn duplicate_free_across_granule_counts() {
        let collections = dense_collections(3, 80, 7);
        let q = table1::q_oo(PredicateParams::PB);
        let cluster = ClusterConfig::default();
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for g in [1, 4, 24] {
            let report = run_rccis(&q, &collections, usize::MAX, g, &cluster).unwrap();
            let ids = boolean_ids(&report);
            let dedup: std::collections::HashSet<_> = ids.iter().cloned().collect();
            assert_eq!(dedup.len(), ids.len(), "g={g}: duplicates emitted");
            match &reference {
                None => reference = Some(ids),
                Some(r) => assert_eq!(&ids, r, "g={g}"),
            }
        }
    }

    #[test]
    fn rejects_sequence_predicates() {
        let collections = dense_collections(3, 10, 1);
        let q = table1::q_bb(PredicateParams::PB);
        assert!(run_rccis(&q, &collections, 5, 4, &ClusterConfig::default()).is_err());
    }

    #[test]
    fn stop_at_k_caps_results() {
        let collections = dense_collections(3, 150, 3);
        let q = table1::q_oo(PredicateParams::PB);
        let report = run_rccis(&q, &collections, 5, 8, &ClusterConfig::default()).unwrap();
        assert_eq!(report.results.len(), 5);
        assert!(report.results.iter().all(|t| t.score == 1.0));
        assert!(!report.phases.is_empty());
        assert!(report.total_wall() > std::time::Duration::ZERO);
    }
}
