//! # tkij-baselines — the Boolean competitors of the TKIJ evaluation
//!
//! The paper compares TKIJ against the Map-Reduce interval-join
//! algorithms of Chawda et al. (EDBT'14), adapted to top-k exactly as
//! §4.2.5 describes: "we use these algorithms to return only results that
//! satisfy all the Boolean predicates of a RTJ query … we also impose
//! reducers to stop join processing if k results are found", followed by
//! a TKIJ-style merge.
//!
//! * [`run_rccis`] — cascaded colocation joins with reference-granule
//!   de-duplication (`overlaps`, `meets`, `starts`, …).
//! * [`run_all_matrix`] — start-granule signature partitioning for
//!   sequence queries (`before`, `justBefore`, …), one reducer per
//!   feasible signature (20 reducers at `g = 4`, `n = 3`, as the paper
//!   reports).
//!
//! Both are verified against the exhaustive Boolean oracle of
//! `tkij-core::naive`.

pub mod allmatrix;
pub mod common;
pub mod rccis;

pub use allmatrix::{feasible_signatures, run_all_matrix};
pub use common::BaselineReport;
pub use rccis::run_rccis;
