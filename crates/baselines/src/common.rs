//! Shared helpers for the Boolean competitors of Chawda et al. (EDBT'14),
//! as summarized in the TKIJ paper (§4.2.5, §5).

use std::time::Duration;
use tkij_mapreduce::JobMetrics;
use tkij_temporal::granule::TimePartitioning;
use tkij_temporal::interval::Interval;
use tkij_temporal::result::MatchTuple;

/// Result of a baseline execution: Boolean matches presented as
/// score-1.0 tuples (the paper caps them at `k` and merges like TKIJ).
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Algorithm name (`RCCIS` or `All-Matrix`).
    pub algorithm: &'static str,
    /// Up to `k` Boolean matches (score 1.0), deterministically ordered.
    pub results: Vec<MatchTuple>,
    /// Per-phase Map-Reduce metrics, in execution order.
    pub phases: Vec<(String, JobMetrics)>,
}

impl BaselineReport {
    /// Total measured wall time across phases.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|(_, m)| m.wall).sum()
    }

    /// Simulated cluster running time (see `tkij-mapreduce`).
    pub fn simulated_total(&self, cluster: &tkij_mapreduce::ClusterConfig) -> Duration {
        self.phases.iter().map(|(_, m)| m.simulated_runtime(cluster)).sum()
    }
}

/// The granules a closed interval overlaps under a partitioning, as an
/// inclusive index range.
pub fn granule_span(part: &TimePartitioning, iv: &Interval) -> (u32, u32) {
    (part.granule_of(iv.start), part.granule_of(iv.end))
}

/// A global partitioning covering several collections' time ranges.
pub fn shared_partitioning(
    ranges: impl IntoIterator<Item = (i64, i64)>,
    g: u32,
) -> TimePartitioning {
    let (min, max) =
        ranges.into_iter().fold((i64::MAX, i64::MIN), |acc, r| (acc.0.min(r.0), acc.1.max(r.1)));
    TimePartitioning::from_range(min, max, g).expect("non-empty joint range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_covers_overlapped_granules() {
        let part = TimePartitioning::from_range(0, 99, 10).unwrap();
        let iv = Interval::new(0, 15, 37).unwrap();
        assert_eq!(granule_span(&part, &iv), (1, 3));
        let point = Interval::new(1, 50, 50).unwrap();
        assert_eq!(granule_span(&part, &point), (5, 5));
    }

    #[test]
    fn shared_partitioning_spans_all_ranges() {
        let p = shared_partitioning([(0, 50), (200, 300)], 10);
        assert_eq!(p.origin, 0);
        assert!(p.end() >= 300);
        assert_eq!(p.g(), 10);
    }
}
