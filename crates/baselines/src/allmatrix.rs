//! All-Matrix — the Boolean sequence-join competitor (Chawda et al.,
//! EDBT'14), adapted to top-k as in the paper's §4.2.5.
//!
//! Sequence queries (`before`-style edges) imply unavoidable replication,
//! so All-Matrix focuses on load balancing: each collection is
//! range-partitioned by **start granule**, and one reducer is created per
//! feasible granule signature — a tuple `(l_1, …, l_n)` with `l_i ≤ l_j`
//! for every sequence edge `(i, j)` (with `g = 4` granules and `n = 3`
//! chain queries this yields the paper's 20 reducers). Every result tuple
//! has exactly one signature, so no de-duplication is needed; reducers
//! run a Boolean nested-loop join and stop at `k` results.

use crate::common::{shared_partitioning, BaselineReport};
use tkij_mapreduce::{run_map_reduce, ClusterConfig, CodecError, FrameReader, Record, SizeOf};
use tkij_temporal::collection::IntervalCollection;
use tkij_temporal::interval::Interval;
use tkij_temporal::predicate::PredicateClass;
use tkij_temporal::query::Query;
use tkij_temporal::result::MatchTuple;

/// Shuffle record: an interval tagged with its query vertex.
struct VRec(u16, Interval);

impl SizeOf for VRec {
    fn size_bytes(&self) -> usize {
        2 + 24
    }
}

impl Record for VRec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.id.encode(out);
        self.1.start.encode(out);
        self.1.end.encode(out);
    }

    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let v = u16::decode(reader)?;
        let id = u64::decode(reader)?;
        let start = i64::decode(reader)?;
        let end = i64::decode(reader)?;
        let iv = Interval::new(id, start, end)
            .map_err(|e| CodecError { detail: format!("invalid interval in VRec: {e}") })?;
        Ok(VRec(v, iv))
    }
}

/// Enumerates the feasible granule signatures: all `(l_1, …, l_n)` in
/// `[0, g)^n` with `l_i ≤ l_j` for every edge `(i, j)`.
pub fn feasible_signatures(query: &Query, g: u32) -> Vec<Vec<u32>> {
    let n = query.n();
    let mut out = Vec::new();
    let mut sig = vec![0u32; n];
    loop {
        let ok = query.edges.iter().all(|e| sig[e.src] <= sig[e.dst]);
        if ok {
            out.push(sig.clone());
        }
        // Odometer.
        let mut v = n - 1;
        loop {
            sig[v] += 1;
            if sig[v] < g {
                break;
            }
            sig[v] = 0;
            if v == 0 {
                return out;
            }
            v -= 1;
        }
    }
}

/// Runs All-Matrix on a sequence query with `g` start-granules per
/// collection (the paper uses `g = 4` for `n = 3`). `k` caps each
/// reducer's output.
pub fn run_all_matrix(
    query: &Query,
    collections: &[IntervalCollection],
    k: usize,
    g: u32,
    cluster: &ClusterConfig,
) -> Result<BaselineReport, String> {
    for e in &query.edges {
        if e.predicate.class() != PredicateClass::Sequence {
            return Err(format!(
                "All-Matrix handles only sequence predicates; {} is not",
                e.predicate
            ));
        }
    }
    let n = query.n();
    let part = shared_partitioning(
        query.vertices.iter().map(|c| collections[c.0 as usize].time_range()),
        g,
    );
    let signatures = feasible_signatures(query, g);
    // (vertex, granule) → reducers whose signature has that granule there.
    let mut routing: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); g as usize]; n];
    for (r, sig) in signatures.iter().enumerate() {
        for (v, &l) in sig.iter().enumerate() {
            routing[v][l as usize].push(r as u32);
        }
    }

    let mut inputs: Vec<(u16, Interval)> = Vec::new();
    for (v, cid) in query.vertices.iter().enumerate() {
        inputs.extend(collections[cid.0 as usize].intervals().iter().map(|iv| (v as u16, *iv)));
    }

    let (tuples, metrics) = run_map_reduce(
        &inputs,
        cluster.map_slots.max(1) * 2,
        signatures.len().max(1),
        |_, chunk, em| {
            for (v, iv) in chunk {
                let l = part.granule_of(iv.start);
                for &r in &routing[*v as usize][l as usize] {
                    em.emit(r, VRec(*v, *iv));
                }
            }
        },
        |r| *r as usize,
        |_, groups| {
            let mut per_vertex: Vec<Vec<Interval>> = vec![Vec::new(); n];
            for (_, recs) in groups {
                for VRec(v, iv) in recs {
                    per_vertex[v as usize].push(iv);
                }
            }
            for list in &mut per_vertex {
                list.sort_unstable_by_key(|iv| (iv.id, iv.start));
            }
            // Boolean nested-loop join, stop at k.
            let mut out: Vec<Vec<u64>> = Vec::new();
            let mut tuple: Vec<Interval> = Vec::with_capacity(n);
            boolean_join(query, &per_vertex, &mut tuple, &mut out, k);
            out
        },
        cluster,
    );

    let mut results: Vec<MatchTuple> =
        tuples.into_iter().map(|ids| MatchTuple::new(ids, 1.0)).collect();
    results.sort_by(MatchTuple::rank_cmp);
    results.truncate(k);
    Ok(BaselineReport {
        algorithm: "All-Matrix",
        results,
        phases: vec![("join".to_string(), metrics)],
    })
}

/// Depth-first Boolean join in vertex order, checking every edge as soon
/// as both endpoints are bound; stops once `k` results are collected.
fn boolean_join(
    query: &Query,
    per_vertex: &[Vec<Interval>],
    tuple: &mut Vec<Interval>,
    out: &mut Vec<Vec<u64>>,
    k: usize,
) {
    if out.len() >= k {
        return;
    }
    let v = tuple.len();
    if v == query.n() {
        out.push(tuple.iter().map(|iv| iv.id).collect());
        return;
    }
    'cand: for iv in &per_vertex[v] {
        for e in &query.edges {
            // Edges fully bound once vertex v is assigned.
            let hi = e.src.max(e.dst);
            if hi != v {
                continue;
            }
            let (x, y) = if e.src == v { (iv, &tuple[e.dst]) } else { (&tuple[e.src], iv) };
            if !e.predicate.holds(x, y) {
                continue 'cand;
            }
        }
        tuple.push(*iv);
        boolean_join(query, per_vertex, tuple, out, k);
        tuple.pop();
        if out.len() >= k {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_core::naive_boolean;
    use tkij_datagen::uniform_collections;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn boolean_ids(report: &BaselineReport) -> Vec<Vec<u64>> {
        let mut ids: Vec<Vec<u64>> = report.results.iter().map(|t| t.ids.clone()).collect();
        ids.sort();
        ids
    }

    #[test]
    fn paper_reducer_count_g4_n3() {
        let q = table1::q_bb(PredicateParams::PB);
        // Chain l1 ≤ l2 ≤ l3 over 4 granules: C(4+2, 3) = 20 reducers.
        assert_eq!(feasible_signatures(&q, 4).len(), 20);
    }

    #[test]
    fn star_signature_count() {
        let q = table1::q_b_star(3, PredicateParams::PB);
        // l1 ≤ l2 and l1 ≤ l3 (no order among leaves):
        // Σ_{l1} (g - l1)² = 16 + 9 + 4 + 1 = 30.
        assert_eq!(feasible_signatures(&q, 4).len(), 30);
    }

    #[test]
    fn matches_naive_boolean_on_sequence_queries() {
        let collections = uniform_collections(3, 60, 17);
        let avg = collections[0].avg_length();
        let cluster = ClusterConfig::default();
        for (name, q) in [
            ("Qb,b", table1::q_bb(PredicateParams::PB)),
            ("Qb*", table1::q_b_star(3, PredicateParams::PB)),
            ("QjB,jB", table1::q_jbjb(PredicateParams::PB, avg)),
            ("QsM,sM", table1::q_smsm(PredicateParams::PB, avg)),
        ] {
            let refs: Vec<_> = q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
            let expected = naive_boolean(&q, &refs);
            let report = run_all_matrix(&q, &collections, usize::MAX, 4, &cluster).expect(name);
            assert_eq!(boolean_ids(&report), expected, "{name}");
        }
    }

    #[test]
    fn no_duplicates_across_granularities() {
        let collections = uniform_collections(3, 50, 29);
        let q = table1::q_bb(PredicateParams::PB);
        let cluster = ClusterConfig::default();
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for g in [1, 2, 5] {
            let report = run_all_matrix(&q, &collections, usize::MAX, g, &cluster).unwrap();
            let ids = boolean_ids(&report);
            let dedup: std::collections::HashSet<_> = ids.iter().cloned().collect();
            assert_eq!(dedup.len(), ids.len(), "g={g}");
            match &reference {
                None => reference = Some(ids),
                Some(r) => assert_eq!(&ids, r, "g={g}"),
            }
        }
    }

    #[test]
    fn rejects_colocation_predicates() {
        let collections = uniform_collections(3, 10, 1);
        let q = table1::q_oo(PredicateParams::PB);
        assert!(run_all_matrix(&q, &collections, 5, 4, &ClusterConfig::default()).is_err());
    }

    #[test]
    fn stop_at_k_caps_results() {
        let collections = uniform_collections(3, 100, 13);
        let q = table1::q_bb(PredicateParams::PB);
        let report = run_all_matrix(&q, &collections, 7, 4, &ClusterConfig::default()).unwrap();
        assert_eq!(report.results.len(), 7);
    }
}
