//! Figure 11 — Synthetic Data, scalability against the Boolean
//! competitors.
//!
//! Paper setup: g = 40, k = 100, loose; |Ci| ∈ 1M..5M.
//! (11a) Qb,b: All-Matrix-PB vs TKIJ-PB vs TKIJ-P1 — TKIJ nearly constant
//! (TopBuckets selects a single combination) while All-Matrix grows.
//! (11b) Qo,o: RCCIS-PB vs TKIJ-PB vs TKIJ-P1 — TKIJ grows linearly and
//! overtakes RCCIS at scale (RCCIS's first phase grows with |Ci|).
//! (11c) Qs,m: RCCIS first phase is cheaper (few intermediates) while
//! TKIJ-P1 pays for tolerance-widened intermediate results.

use tkij_baselines::{run_all_matrix, run_rccis};
use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{Tkij, TkijConfig};
use tkij_datagen::uniform_collections;
use tkij_mapreduce::ClusterConfig;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 11 — Synthetic Data: scalability vs RCCIS / All-Matrix",
        "g = 40, k = 100, loose; |Ci| = 1M..5M",
        "Qb,b: TKIJ flat, All-Matrix grows; Qo,o: TKIJ overtakes RCCIS at scale; Qs,m: RCCIS phase-1 cheap",
    );
    let sizes: Vec<(usize, usize)> = [1_000_000usize, 2_000_000, 3_000_000, 4_000_000, 5_000_000]
        .iter()
        .map(|&s| (s, scale.size(s)))
        .collect();
    let k = scale.k(100);
    let cluster = ClusterConfig::default();

    let run_tkij = |q: &tkij_temporal::query::Query, size: usize, seed: u64| {
        let tk = Tkij::new(TkijConfig::default().with_granules(40));
        let dataset = tk.prepare(uniform_collections(3, size, seed)).expect("prepare");
        tk.execute(&dataset, q, k).expect("execute").total_wall()
    };

    // (11a) Qb,b.
    println!("(11a) Qb,b — All-Matrix-PB vs TKIJ-PB vs TKIJ-P1:");
    let mut rows = Vec::new();
    for (paper, size) in &sizes {
        let collections = uniform_collections(3, *size, 7001);
        let am = run_all_matrix(&table1::q_bb(PredicateParams::PB), &collections, k, 4, &cluster)
            .expect("All-Matrix")
            .total_wall();
        let pb = run_tkij(&table1::q_bb(PredicateParams::PB), *size, 7001);
        let p1 = run_tkij(&table1::q_bb(PredicateParams::P1), *size, 7001);
        rows.push(vec![format!("{paper}->{size}"), secs(am), secs(pb), secs(p1)]);
    }
    print_table(&["|Ci| paper->run", "AllMatrix-PB", "TKIJ-PB", "TKIJ-P1"], &rows);

    // (11b) Qo,o and (11c) Qs,m.
    for (fig, qname, q_pb, q_p1) in [
        ("(11b)", "Qo,o", table1::q_oo(PredicateParams::PB), table1::q_oo(PredicateParams::P1)),
        ("(11c)", "Qs,m", table1::q_sm(PredicateParams::PB), table1::q_sm(PredicateParams::P1)),
    ] {
        println!("\n{fig} {qname} — RCCIS-PB vs TKIJ-PB vs TKIJ-P1:");
        let mut rows = Vec::new();
        for (paper, size) in &sizes {
            let collections = uniform_collections(3, *size, 7002);
            let rc = run_rccis(&q_pb, &collections, k, 24, &cluster).expect("RCCIS").total_wall();
            let pb = run_tkij(&q_pb, *size, 7002);
            let p1 = run_tkij(&q_p1, *size, 7002);
            rows.push(vec![format!("{paper}->{size}"), secs(rc), secs(pb), secs(p1)]);
        }
        print_table(&["|Ci| paper->run", "RCCIS-PB", "TKIJ-PB", "TKIJ-P1"], &rows);
    }
}
