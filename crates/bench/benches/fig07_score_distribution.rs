//! Figure 7 — Synthetic Data, Score Distribution.
//!
//! Paper setup: |Ci| = 10⁴, P = P1; all (x1, x2) pairs scored under
//! s-before, s-overlaps, s-meets, s-starts; the top-50 000 scores are
//! plotted. Expectation: |high(before)| ≥ |high(overlaps)| ≥
//! |high(meets)| ≥ |high(starts)| — inequality-only predicates yield far
//! more high-scoring results than equality-based ones.

use tkij_bench::{header, print_table, Scale};
use tkij_core::all_pair_scores;
use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::predicate::TemporalPredicate;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size(10_000);
    header(
        "Figure 7 — Synthetic Data: Score Distribution",
        "|Ci| = 10^4, P = P1, top-50000 pair scores per predicate",
        "s-before >> s-overlaps > s-meets > s-starts in high-scoring results",
    );
    let p = PredicateParams::P1;
    let c1 = uniform_collection(CollectionId(0), &SyntheticConfig::paper(size, 71));
    let c2 = uniform_collection(CollectionId(1), &SyntheticConfig::paper(size, 72));
    let window = ((50_000.0 * (size as f64 / 10_000.0).powi(2)) as usize).max(100);

    let predicates = [
        ("s-before", TemporalPredicate::before(p)),
        ("s-overlaps", TemporalPredicate::overlaps(p)),
        ("s-meets", TemporalPredicate::meets(p)),
        ("s-starts", TemporalPredicate::starts(p)),
    ];

    println!("|Ci| = {size}, pairs = {}, plotted window = top-{window}", size * size);
    let ranks: Vec<usize> = vec![1, window / 8, window / 4, window / 2, (3 * window) / 4, window];
    let mut rows = Vec::new();
    let mut perfect_counts = Vec::new();
    for (name, pred) in &predicates {
        let scores = all_pair_scores(pred, &c1, &c2);
        let perfect = scores.iter().take_while(|&&s| s >= 1.0 - 1e-12).count();
        perfect_counts.push((name.to_string(), perfect));
        let mut row = vec![name.to_string(), perfect.to_string()];
        for &r in &ranks {
            let idx = r.saturating_sub(1).min(scores.len().saturating_sub(1));
            row.push(format!("{:.3}", scores.get(idx).copied().unwrap_or(0.0)));
        }
        rows.push(row);
    }
    let rank_cols: Vec<String> = ranks.iter().map(|r| format!("rank {r}")).collect();
    let mut cols: Vec<&str> = vec!["predicate", "#score=1.0"];
    cols.extend(rank_cols.iter().map(String::as_str));
    print_table(&cols, &rows);

    println!("\nshape check (paper: fewer high scores as equality constraints increase):");
    for w in perfect_counts.windows(2) {
        let ok = w[0].1 >= w[1].1;
        println!(
            "  #1.0({}) = {} {} #1.0({}) = {}   [{}]",
            w[0].0,
            w[0].1,
            if ok { ">=" } else { "<" },
            w[1].0,
            w[1].1,
            if ok { "OK" } else { "MISMATCH" }
        );
    }
}
