//! §4 "Statistics collection" — offline statistics timing.
//!
//! Paper report: "Statistics collection lasted between 28 s for
//! |Ci| = 2·10⁵ and 36 s for |Ci| = 5·10⁶" — i.e. it grows very slowly
//! with the collection size (the job is scan + tiny matrices) and only
//! |Ci| matters (g does not).

use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::collect_statistics;
use tkij_datagen::uniform_collections;
use tkij_mapreduce::ClusterConfig;

fn main() {
    let scale = Scale::from_env();
    header(
        "Statistics collection (offline) — timing vs |Ci| and g",
        "28 s at |Ci| = 2*10^5 up to 36 s at 5*10^6 (only |Ci| matters)",
        "sub-linear growth in |Ci|; insensitive to g",
    );
    let sizes: Vec<(usize, usize)> = [200_000usize, 1_000_000, 2_000_000, 5_000_000]
        .iter()
        .map(|&s| (s, scale.size(s)))
        .collect();
    let cluster = ClusterConfig::default();
    let mut rows = Vec::new();
    for (paper, size) in &sizes {
        for &g in &[20u32, 40] {
            let collections = uniform_collections(3, *size, 31415);
            let (dataset, took) =
                tkij_bench::timed(|| collect_statistics(collections, g, &cluster).expect("stats"));
            rows.push(vec![
                format!("{paper}->{size}"),
                format!("g={g}"),
                secs(took),
                dataset.matrices[0].nonempty_len().to_string(),
                dataset.stats_metrics.total_shuffle_records().to_string(),
            ]);
        }
    }
    print_table(&["|Ci| paper->run", "g", "time", "buckets(C1)", "shuffled matrices"], &rows);
}
