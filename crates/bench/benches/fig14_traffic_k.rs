//! Figure 14 — Network Traffic Data, effect of k.
//!
//! Paper setup: |Ci| = 1.03·10⁶ (a fixed log sample), g = 40, P = P3,
//! loose; k swept over [10, 10⁵]; the 7 traffic queries.
//! Expectations: nearly flat up to k ≈ 5000, then a slow increase (more
//! intermediate results before termination); Qo,o jumps when |Ω_{k,S}|
//! grows (643 → 41 272 combinations in the paper).

use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{Tkij, TkijConfig};
use tkij_datagen::{
    build_connections, connections_to_collection, generate_packets, sample_packets, TrafficConfig,
};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let scale = Scale::from_env();
    let sessions = scale.size(3_600_000);
    header(
        "Figure 14 — Network Traffic Data: effect of k",
        "|Ci| = 1.03M sample, g = 40, P = P3, loose; k in [10, 10^5]",
        "nearly constant to k~5000, then slow growth; |Omega_k,S| jumps drive Qo,o",
    );
    let cfg = TrafficConfig::calibrated(sessions, 717);
    let packets = generate_packets(&cfg);
    // The paper's 1.03M sample is ≈ 28 % of its log.
    let sampled = sample_packets(&packets, 0.28, 5);
    let conns = build_connections(&sampled);
    let (base, _) = connections_to_collection(CollectionId(0), &conns);
    let collections =
        vec![base.clone(), base.copy_as(CollectionId(1)), base.copy_as(CollectionId(2))];
    let avg = base.avg_length();
    println!("|Ci| -> {}", base.len());
    let tk = Tkij::new(TkijConfig::default().with_granules(40));
    let dataset = tk.prepare(collections).expect("prepare");

    // k = 10^5 against a heavily scaled-down dataset is disproportionately
    // deep (the paper's 10^5 sits against |Ci| = 1.03M); keep it for
    // paper-scale runs.
    let ks: &[usize] =
        if scale.full { &[10, 100, 1_000, 10_000, 100_000] } else { &[10, 100, 1_000, 10_000] };
    let queries = vec![
        ("Qb,b", table1::q_bb(PredicateParams::P3)),
        ("Qf,b", table1::q_fb(PredicateParams::P3)),
        ("Qo,o", table1::q_oo(PredicateParams::P3)),
        ("Qo,m", table1::q_om(PredicateParams::P3)),
        ("Qs,f,m", table1::q_sfm(PredicateParams::P3)),
        ("QjB,jB", table1::q_jbjb(PredicateParams::P3, avg)),
        ("QsM,sM", table1::q_smsm(PredicateParams::P3, avg)),
    ];
    let mut rows = Vec::new();
    for (name, q) in &queries {
        for &k in ks {
            let report = tk.execute(&dataset, q, k).expect("execute");
            println!(
                "  [row] {} k={}: total {} |Omega_k,S|={}",
                name,
                k,
                tkij_bench::secs(report.total_wall()),
                report.topbuckets.selected
            );
            rows.push(vec![
                name.to_string(),
                k.to_string(),
                secs(report.total_wall()),
                report.topbuckets.selected.to_string(),
                report.results.len().to_string(),
            ]);
        }
    }
    print_table(&["query", "k", "total", "|Omega_k,S|", "returned"], &rows);
}
