//! §4.2.6 — Synthetic Data, effect of k (text-only experiment).
//!
//! Paper setup: |Ci| = 2·10⁶, k ∈ [10, 10⁵]; queries Qb,b Qo,o Qs,f,m
//! Qf,b Qo,m. Reported result: "TKIJ is almost constant on all queries
//! and all values of k. Actually, a large number (> 10¹³) of potential
//! results fall in each bucket combination. Thus, the set of selected
//! bucket combinations remains the same for k ∈ [10, 10⁵]."

use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{Tkij, TkijConfig};
use tkij_datagen::uniform_collections;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size(2_000_000);
    header(
        "Section 4.2.6 — Synthetic Data: effect of k",
        "|Ci| = 2*10^6, k in [10, 10^5]; Qb,b Qo,o Qs,f,m Qf,b Qo,m",
        "running time nearly constant; |Omega_k,S| identical across k",
    );
    println!("|Ci| -> {size}\n");
    let tk = Tkij::new(TkijConfig::default().with_granules(40));
    let dataset = tk.prepare(uniform_collections(3, size, 2626)).expect("prepare");
    let queries = vec![
        ("Qb,b", table1::q_bb(PredicateParams::P1)),
        ("Qo,o", table1::q_oo(PredicateParams::P1)),
        ("Qs,f,m", table1::q_sfm(PredicateParams::P1)),
        ("Qf,b", table1::q_fb(PredicateParams::P1)),
        ("Qo,m", table1::q_om(PredicateParams::P1)),
    ];
    let ks: &[usize] =
        if scale.full { &[10, 100, 1_000, 10_000, 100_000] } else { &[10, 100, 1_000, 10_000] };
    let mut rows = Vec::new();
    let mut stability_ok = true;
    for (name, q) in &queries {
        let mut omegas = Vec::new();
        for &k in ks {
            let report = tk.execute(&dataset, q, k).expect("execute");
            println!(
                "  [row] {} k={}: total {} |Omega_k,S|={}",
                name,
                k,
                tkij_bench::secs(report.total_wall()),
                report.topbuckets.selected
            );
            omegas.push(report.topbuckets.selected);
            rows.push(vec![
                name.to_string(),
                k.to_string(),
                secs(report.total_wall()),
                report.topbuckets.selected.to_string(),
            ]);
        }
        // Paper: the selected set is stable over the whole k sweep (every
        // combination covers a huge number of potential results).
        let first = omegas[0];
        if !omegas.iter().all(|&o| o == first || o <= first * 4) {
            stability_ok = false;
        }
    }
    print_table(&["query", "k", "total", "|Omega_k,S|"], &rows);
    println!(
        "\nshape check: |Omega_k,S| stable over k sweep  [{}]",
        if stability_ok { "OK" } else { "MISMATCH" }
    );
}
