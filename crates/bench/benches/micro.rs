//! Criterion micro-benchmarks of TKIJ's building blocks, including the
//! ablations DESIGN.md calls out (R-tree vs grid vs scan access path;
//! DTB vs LPT assignment cost).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use tkij_core::{distribute, get_top_buckets, ComboSet, DistributionPolicy};
use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij_index::{threshold_candidates, GridIndex, RTree, Window};
use tkij_solver::{nary_bounds, pair_bounds, SolverConfig};
use tkij_temporal::aggregate::Aggregation;
use tkij_temporal::bucket::{BucketId, BucketMatrix};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::expr::{EndpointBox, Side};
use tkij_temporal::granule::TimePartitioning;
use tkij_temporal::interval::Interval;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::predicate::TemporalPredicate;
use tkij_temporal::query::{table1, Query, QueryEdge};
use tkij_temporal::result::{MatchTuple, TopK};

fn sample_intervals(n: usize, seed: u64) -> Vec<Interval> {
    uniform_collection(CollectionId(0), &SyntheticConfig::paper(n, seed)).intervals().to_vec()
}

fn bench_scoring(c: &mut Criterion) {
    let p = PredicateParams::P1;
    let preds = [
        TemporalPredicate::before(p),
        TemporalPredicate::overlaps(p),
        TemporalPredicate::starts(p),
        TemporalPredicate::sparks(p, 10),
    ];
    let x = Interval::new(0, 100, 180).unwrap();
    let y = Interval::new(1, 120, 260).unwrap();
    c.bench_function("scoring/4_predicates_pair", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for pred in &preds {
                acc += pred.score(black_box(&x), black_box(&y));
            }
            acc
        })
    });
}

fn bench_solver(c: &mut Criterion) {
    let cfg = SolverConfig::default();
    let p = PredicateParams::new(4, 8, 0, 10);
    let meets = TemporalPredicate::meets(p);
    let left = EndpointBox::new((0, 2499), (0, 2499));
    let right = EndpointBox::new((2500, 4999), (2500, 4999));
    c.bench_function("solver/pair_bounds_meets", |b| {
        b.iter(|| pair_bounds(black_box(&meets), left, right, &cfg))
    });
    let q = table1::q_sfm(PredicateParams::P1);
    let boxes = vec![
        EndpointBox::new((0, 249), (0, 249)),
        EndpointBox::new((0, 249), (250, 499)),
        EndpointBox::new((250, 499), (250, 499)),
    ];
    c.bench_function("solver/nary_bounds_qsfm", |b| {
        b.iter(|| nary_bounds(black_box(&q), boxes.clone(), &cfg))
    });
}

fn bench_index_ablation(c: &mut Criterion) {
    let items = sample_intervals(20_000, 5);
    let tree = RTree::bulk_load(items.clone());
    let grid = GridIndex::build(items.clone(), 512);
    let pred = TemporalPredicate::meets(PredicateParams::P1);
    let anchor = Interval::new(99_999, 40_000, 50_000).unwrap();
    let window: Window = pred.threshold_window(&anchor, Side::Left, 0.8).into();
    let mut group = c.benchmark_group("index/threshold_window_20k");
    group.bench_function("rtree", |b| {
        b.iter(|| {
            let mut n = 0usize;
            tree.window_query(black_box(&window), |_| n += 1);
            n
        })
    });
    group.bench_function("grid", |b| {
        b.iter(|| {
            let mut n = 0usize;
            grid.window_query(black_box(&window), |_| n += 1);
            n
        })
    });
    group.bench_function("scan", |b| {
        b.iter(|| items.iter().filter(|iv| window.contains(iv)).count())
    });
    group.finish();
    c.bench_function("index/bulk_load_20k", |b| {
        b.iter_batched(|| items.clone(), RTree::bulk_load, BatchSize::SmallInput)
    });
    c.bench_function("index/threshold_candidates_exact", |b| {
        b.iter(|| {
            let mut n = 0usize;
            threshold_candidates(&tree, &pred, &anchor, Side::Left, 0.8, |cand| {
                if pred.score(&anchor, cand) >= 0.8 {
                    n += 1;
                }
            });
            n
        })
    });
}

fn synthetic_combos(count: usize) -> ComboSet {
    let mut set = ComboSet::new(2);
    for i in 0..count {
        let b = BucketId::new((i % 64) as u32, ((i / 64) % 64) as u32);
        let ub = 1.0 - (i as f64 / count as f64);
        set.push(&[b, b], (i % 97 + 1) as u64, ub * 0.5, ub);
    }
    set
}

fn bench_topbuckets(c: &mut Criterion) {
    let set = synthetic_combos(50_000);
    c.bench_function("topbuckets/get_top_buckets_50k", |b| {
        b.iter(|| get_top_buckets(black_box(1000), &set).len())
    });
}

fn assignment_fixture() -> (Query, Vec<BucketMatrix>, ComboSet) {
    let part = TimePartitioning::from_range(0, 64 * 100 - 1, 64).unwrap();
    let intervals: Vec<Interval> = (0..64)
        .map(|g| Interval::new(g, g as i64 * 100 + 1, g as i64 * 100 + 50).unwrap())
        .collect();
    let m = BucketMatrix::build(part, &intervals);
    let q = Query::new(
        vec![CollectionId(0), CollectionId(0)],
        vec![QueryEdge {
            src: 0,
            dst: 1,
            predicate: TemporalPredicate::meets(PredicateParams::P1),
        }],
        Aggregation::NormalizedSum,
    )
    .unwrap();
    (q, vec![m], synthetic_combos(10_000))
}

fn bench_distribute(c: &mut Criterion) {
    let (q, matrices, combos) = assignment_fixture();
    let mut group = c.benchmark_group("distribute/10k_combos_24_reducers");
    group.bench_function("dtb", |b| {
        b.iter(|| distribute(black_box(&combos), DistributionPolicy::Dtb, 24, &q, &matrices))
    });
    group.bench_function("lpt", |b| {
        b.iter(|| distribute(black_box(&combos), DistributionPolicy::Lpt, 24, &q, &matrices))
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let tuples: Vec<MatchTuple> = (0..100_000u64)
        .map(|i| MatchTuple::new(vec![i, i ^ 0x5555], ((i * 2654435761) % 1000) as f64 / 1000.0))
        .collect();
    c.bench_function("topk/offer_100k_k100", |b| {
        b.iter(|| {
            let mut top = TopK::new(100);
            for t in &tuples {
                top.offer(t.clone());
            }
            top.len()
        })
    });
}

fn bench_local_join(c: &mut Criterion) {
    // One reducer joining two 2 000-interval buckets under s-meets.
    let part = TimePartitioning::from_range(0, 99_999, 10).unwrap();
    let left = sample_intervals(2_000, 11);
    let right = sample_intervals(2_000, 12);
    let q = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge {
            src: 0,
            dst: 1,
            predicate: TemporalPredicate::meets(PredicateParams::P1),
        }],
        Aggregation::NormalizedSum,
    )
    .unwrap();
    let plan = q.plan();
    let matrix = BucketMatrix::build(part, &left);
    let mut combos = ComboSet::new(2);
    let mut data: BTreeMap<(u16, BucketId), Vec<Interval>> = BTreeMap::new();
    for iv in &left {
        data.entry((0, matrix.bucket_of(iv))).or_default().push(*iv);
    }
    for iv in &right {
        data.entry((1, matrix.bucket_of(iv))).or_default().push(*iv);
    }
    let mut seen = std::collections::BTreeSet::new();
    for iv in &left {
        let b = matrix.bucket_of(iv);
        if seen.insert(b) {
            combos.push(&[b, b], 1_000, 0.0, 1.0);
        }
    }
    let indices: Vec<u32> = (0..combos.len() as u32).collect();
    c.bench_function("localjoin/meets_2000x2000_k100", |b| {
        b.iter(|| {
            tkij_core::local_topk_join(&q, &plan, 100, &combos, &indices, &data).1.tuples_scored
        })
    });
}

fn configured() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_scoring, bench_solver, bench_index_ablation, bench_topbuckets,
              bench_distribute, bench_topk, bench_local_join
}
criterion_main!(benches);
