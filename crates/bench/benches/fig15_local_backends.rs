//! Figure 15 (extension) — local-join candidate-source backends across
//! selectivities.
//!
//! Not a figure of the TKIJ paper: this harness quantifies the swap of
//! the reducer-local R-tree for the sweeping-based endpoint store
//! (Piatov et al., "Cache-Efficient Sweeping-Based Interval Joins"),
//! holding the join logic fixed (both backends run the identical generic
//! rank-join) and varying workload density — and with it the selectivity
//! of the score-threshold windows the join issues.
//!
//! Expectation: at paper density (startpoints over 10⁵) windows are
//! sparse and the backends are close; as density grows the R-tree
//! examines entire STR slice stripes per probe while the sweep store
//! examines essentially only the true candidates, so its advantage
//! widens. Join-level speedup is bounded by the backend-independent
//! scoring/sorting share (Amdahl); probe-level speedup shows the raw
//! index gap.

use std::time::{Duration, Instant};
use tkij_bench::{header, print_table, Scale};
use tkij_core::{LocalJoinBackend, Tkij, TkijConfig};
use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij_index::{threshold_candidates, CandidateSource, RTree, SweepIndex, SweepScanKind};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::expr::Side;
use tkij_temporal::interval::Interval;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::predicate::TemporalPredicate;
use tkij_temporal::query::table1;

/// Best-of repetitions for each timed section.
const RUNS: usize = 3;

struct JoinRun {
    best: Duration,
    probes: u64,
    scanned: u64,
    buckets_rtree: u64,
    buckets_sweep: u64,
}

fn join_time(backend: LocalJoinBackend, size: usize, span: i64, seed: u64) -> JoinRun {
    let cfg = SyntheticConfig { size, start_range: (0, span), length_range: (1, 100), seed };
    let collections: Vec<_> =
        (0..3u32).map(|i| uniform_collection(CollectionId(i), &cfg)).collect();
    let engine = Tkij::new(
        TkijConfig::default().with_granules(20).with_reducers(4).with_local_backend(backend),
    );
    let dataset = engine.prepare(collections).expect("prepare");
    let query = table1::q_om(PredicateParams::P1);
    let mut run =
        JoinRun { best: Duration::MAX, probes: 0, scanned: 0, buckets_rtree: 0, buckets_sweep: 0 };
    for rep in 0..=RUNS {
        let report = engine.execute(&dataset, &query, 100).expect("execute");
        if rep == 0 {
            continue; // warm-up
        }
        run.best = run.best.min(report.join.reduce_durations.iter().sum());
        run.probes = report.index_probes();
        run.scanned = report.items_scanned();
        run.buckets_rtree = report.buckets_rtree();
        run.buckets_sweep = report.buckets_sweep();
    }
    run
}

fn probe_time<C: CandidateSource>(
    size: usize,
    span: i64,
    seed: u64,
    build: impl FnOnce(Vec<Interval>) -> C,
) -> (Duration, u64) {
    let cfg = SyntheticConfig { size, start_range: (0, span), length_range: (1, 100), seed };
    let items = uniform_collection(CollectionId(0), &cfg).intervals().to_vec();
    let anchors: Vec<_> = items.iter().step_by(10).copied().collect();
    let index = build(items);
    let pred = TemporalPredicate::meets(PredicateParams::P1);
    let mut best = Duration::MAX;
    let mut scanned = 0u64;
    for rep in 0..=RUNS {
        let mut s = 0u64;
        let t = Instant::now();
        for a in &anchors {
            s += threshold_candidates(&index, &pred, a, Side::Left, 0.8, |_| {});
        }
        if rep > 0 {
            best = best.min(t.elapsed());
        }
        scanned = s;
    }
    (best, scanned)
}

fn ms(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let scale = Scale::from_env();
    let size = scale.size(300_000).min(60_000);
    header(
        "Figure 15 (extension) — local-join backends across selectivities",
        "Qo,m, k = 100, P = P1, g = 20, r = 4; startpoint span swept (density sweep)",
        "backends tie when sparse; sweep pulls ahead as density (window population) grows",
    );
    println!("|Ci| -> {size}; spans swept: 100000 (paper), 40000, 20000, 10000\n");

    let mut join_rows = Vec::new();
    let mut probe_rows = Vec::new();
    let mut worst_auto_ratio = 0.0f64;
    for &span in &[100_000i64, 40_000, 20_000, 10_000] {
        let density = size as f64 * 50.5 / span as f64; // avg concurrent intervals
        let rt = join_time(LocalJoinBackend::RTree, size, span, 7);
        let sw = join_time(LocalJoinBackend::Sweep, size, span, 7);
        let auto = join_time(LocalJoinBackend::Auto, size, span, 7);
        // The auto-selection acceptance bound: per density point, Auto's
        // scan effort must track the better fixed backend within 10%.
        let better = rt.scanned.min(sw.scanned);
        let ratio = auto.scanned as f64 / better.max(1) as f64;
        worst_auto_ratio = worst_auto_ratio.max(ratio);
        join_rows.push(vec![
            format!("{span}"),
            format!("{density:.0}"),
            ms(rt.best),
            ms(sw.best),
            ms(auto.best),
            format!("{:.2}x", rt.best.as_secs_f64() / sw.best.as_secs_f64().max(1e-12)),
            format!("{}", rt.scanned),
            format!("{}", sw.scanned),
            format!("{}", auto.scanned),
            format!("{:.3}", ratio),
            format!("{}/{}", auto.buckets_sweep, auto.buckets_rtree),
        ]);
        let (rtp, rtp_scanned) = probe_time(size, span, 7, RTree::bulk_load);
        let (swp, swp_scanned) =
            probe_time(size, span, 7, |i| SweepIndex::build_with_scan(i, SweepScanKind::Chunked));
        let (scp, scp_scanned) =
            probe_time(size, span, 7, |i| SweepIndex::build_with_scan(i, SweepScanKind::Scalar));
        // The scan-kind axis: identical work by contract, so the scan
        // counts must agree and only the times may differ.
        assert_eq!(scp_scanned, swp_scanned, "scan kinds diverge on examined items");
        probe_rows.push(vec![
            format!("{span}"),
            ms(rtp),
            ms(swp),
            ms(scp),
            format!("{:.2}x", rtp.as_secs_f64() / swp.as_secs_f64().max(1e-12)),
            format!("{:.2}x", scp.as_secs_f64() / swp.as_secs_f64().max(1e-12)),
            format!("{rtp_scanned}"),
            format!("{swp_scanned}"),
        ]);
    }
    println!("(15a) Join-phase reduce time and scan effort per backend (same exact top-k):");
    print_table(
        &[
            "span",
            "~density",
            "rtree",
            "sweep",
            "auto",
            "speedup",
            "rt scanned",
            "sw scanned",
            "auto scanned",
            "auto/best",
            "auto sw/rt",
        ],
        &join_rows,
    );
    println!("\n(15b) Probe-level s-meets threshold retrieval (v = 0.8), scan-kind axis:");
    print_table(
        &[
            "span",
            "rtree",
            "sweep(chunked)",
            "sweep(scalar)",
            "rt/sw spd",
            "chunk spd",
            "rtree scanned",
            "sweep scanned",
        ],
        &probe_rows,
    );
    let last = &probe_rows[probe_rows.len() - 1];
    println!(
        "\nshape check: dense-regime probe speedup {} with sweep examining {} items vs rtree {}; \
         chunked-lane speedup over the scalar scan {}",
        last[4], last[7], last[6], last[5]
    );
    println!(
        "auto-selection check: worst auto/best scan ratio {worst_auto_ratio:.3} \
         (must stay ≤ 1.10 at every density point)"
    );
    assert!(
        worst_auto_ratio <= 1.10,
        "Auto examined {worst_auto_ratio:.3}x the better fixed backend's items"
    );
}
