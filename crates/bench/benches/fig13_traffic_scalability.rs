//! Figure 13 — Network Traffic Data, scalability.
//!
//! Paper setup: g = 40, k = 100, P = P3, loose; connection collections
//! built from 5 %–35 % samples of the packet log (|Ci| from 0.58M to
//! 2.31M), copied 3× for 3-way queries; queries Qb,b Qf,b Qo,o Qo,m
//! Qs,f,m QjB,jB QsM,sM.
//! Expectations: time grows faster than on synthetic data (non-empty
//! buckets grow with the sample: 151 → 296 in the paper); Qs,f,m is
//! dominated by TopBuckets; Qb,b ≈ Qo,o on real data (long intervals
//! let TopBuckets keep few combinations).

use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{Tkij, TkijConfig};
use tkij_datagen::{
    build_connections, connections_to_collection, generate_packets, sample_packets, TrafficConfig,
};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let scale = Scale::from_env();
    let sessions = scale.size(3_600_000);
    header(
        "Figure 13 — Network Traffic Data: scalability over log samples",
        "g = 40, k = 100, P = P3, loose; 5%..35% packet samples, 3 copies",
        "time rises with sample size (more non-empty buckets); TopBuckets dominates Qs,f,m",
    );
    let cfg = TrafficConfig::calibrated(sessions, 313);
    let packets = generate_packets(&cfg);
    println!("simulated packets: {}", packets.len());

    let fractions = [0.05, 0.15, 0.25, 0.35];
    let k = scale.k(100);
    let mut rows = Vec::new();
    for &f in &fractions {
        let sampled = sample_packets(&packets, f, 999);
        let conns = build_connections(&sampled);
        if conns.is_empty() {
            continue;
        }
        let (base, _) = connections_to_collection(CollectionId(0), &conns);
        let collections =
            vec![base.clone(), base.copy_as(CollectionId(1)), base.copy_as(CollectionId(2))];
        let avg = base.avg_length();
        let tk = Tkij::new(TkijConfig::default().with_granules(40));
        let dataset = tk.prepare(collections).expect("prepare");
        let buckets = dataset.matrices[0].nonempty_len();
        let queries = vec![
            ("Qb,b", table1::q_bb(PredicateParams::P3)),
            ("Qf,b", table1::q_fb(PredicateParams::P3)),
            ("Qo,o", table1::q_oo(PredicateParams::P3)),
            ("Qo,m", table1::q_om(PredicateParams::P3)),
            ("Qs,f,m", table1::q_sfm(PredicateParams::P3)),
            ("QjB,jB", table1::q_jbjb(PredicateParams::P3, avg)),
            ("QsM,sM", table1::q_smsm(PredicateParams::P3, avg)),
        ];
        for (name, q) in queries {
            let report = tk.execute(&dataset, &q, k).expect("execute");
            // Stream rows as they land (the aligned table repeats them at
            // the end) so wall-capped runs still record their progress.
            println!(
                "  [row] sample={:.0}% |Ci|={} {}: total {} (TopBuckets {}, {:.1}% pruned)",
                f * 100.0,
                base.len(),
                name,
                tkij_bench::secs(report.total_wall()),
                tkij_bench::secs(report.topbuckets.duration),
                report.pruned_pct()
            );
            rows.push(vec![
                format!("{:.0}%", f * 100.0),
                format!("{}", base.len()),
                buckets.to_string(),
                name.to_string(),
                secs(report.total_wall()),
                secs(report.topbuckets.duration),
                format!("{:.1}%", report.pruned_pct()),
            ]);
        }
    }
    print_table(&["sample", "|Ci|", "buckets", "query", "total", "TopBuckets", "%pruned"], &rows);
    println!(
        "\nshape check: non-empty buckets grow with the sample (paper: 151 -> 296) and Qs,f,m's TopBuckets share dominates."
    );
}
