//! Figure 9 — Synthetic Data, detailed execution time of all TopBuckets
//! strategies.
//!
//! Paper setup: g = 15, k = 100, |Ci| = 2·10⁵, P = P1; queries Qb*, Qo*,
//! Qm* with n ∈ {3, 4, 5}; strategies brute-force / two-phase / loose;
//! runs above one hour are not reported.
//! Expectations: brute-force explodes with n; two-phase only beats
//! brute-force on Qb* (its first phase prunes > 99 % there); loose is the
//! most efficient and scales with n.

use std::time::Duration;
use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{Strategy, Tkij, TkijConfig};
use tkij_datagen::uniform_collections;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

/// Cap standing in for the paper's 1-hour limit: estimated brute-force
/// solver invocations beyond this are reported as "> cap".
const BRUTE_FORCE_COMBO_CAP: u128 = 150_000;
const LOOSE_COMBO_CAP: u128 = 20_000_000;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size(200_000);
    let max_n = if scale.full { 5 } else { 4 };
    header(
        "Figure 9 — Synthetic Data: TopBuckets strategies, detailed time",
        "g = 15, k = 100, |Ci| = 2*10^5, P = P1; Qb*/Qo*/Qm*, n = 3..5",
        "brute-force blows up with n; two-phase helps only on Qb*; loose wins and scales",
    );
    println!("|Ci| -> {size}; n up to {max_n} (n = 5 under TKIJ_FULL=1)\n");

    type StarQuery = (&'static str, fn(usize, PredicateParams) -> tkij_temporal::query::Query);
    let star_queries: Vec<StarQuery> =
        vec![("Qb*", table1::q_b_star), ("Qo*", table1::q_o_star), ("Qm*", table1::q_m_star)];
    let k = scale.k(100);

    for (qname, build) in star_queries {
        println!("--- {qname} ---");
        let mut rows = Vec::new();
        for n in 3..=max_n {
            let q = build(n, PredicateParams::P1);
            let tk = Tkij::new(TkijConfig::default().with_granules(15));
            let dataset = tk.prepare(uniform_collections(n, size, 1312)).expect("prepare");
            // Estimate |Ω| to honor the paper's time cap.
            let buckets_per_vertex: Vec<u128> =
                (0..n).map(|v| dataset.matrices[v].nonempty_len() as u128).collect();
            let omega: u128 = buckets_per_vertex.iter().product();
            for (sname, strategy) in Strategy::all() {
                let cap = match strategy {
                    Strategy::BruteForce => BRUTE_FORCE_COMBO_CAP,
                    _ => LOOSE_COMBO_CAP,
                };
                if omega > cap {
                    rows.push(vec![
                        format!("n={n}"),
                        sname.to_string(),
                        format!("> cap (|Omega| = {omega})"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
                let tk = Tkij::new(TkijConfig::default().with_granules(15).with_strategy(strategy));
                let report = tk.execute(&dataset, &q, k).expect("execute");
                rows.push(vec![
                    format!("n={n}"),
                    sname.to_string(),
                    secs(report.topbuckets.duration),
                    secs(report.distribution.duration),
                    secs(report.join.wall),
                    secs(report.merge.wall),
                    secs(
                        report.topbuckets.duration
                            + report.distribution.duration
                            + report.join.wall
                            + report.merge.wall,
                    ),
                ]);
            }
        }
        print_table(&["n", "strategy", "TopBuckets", "DTB", "Join", "Merge", "total"], &rows);
        // Shape check: loose TopBuckets time <= brute-force where both ran.
        let mut by_key: std::collections::HashMap<(String, String), Duration> =
            std::collections::HashMap::new();
        for r in &rows {
            if r[2].starts_with('>') {
                continue;
            }
            let tb: f64 = r[2].trim_end_matches('s').parse().unwrap_or(f64::NAN);
            by_key.insert((r[0].clone(), r[1].clone()), Duration::from_secs_f64(tb));
        }
        for n in 3..=max_n {
            let key_l = (format!("n={n}"), "loose".to_string());
            let key_b = (format!("n={n}"), "brute-force".to_string());
            if let (Some(l), Some(b)) = (by_key.get(&key_l), by_key.get(&key_b)) {
                println!(
                    "  n={n}: loose TopBuckets {} vs brute-force {}  [{}]",
                    secs(*l),
                    secs(*b),
                    if l <= b { "OK" } else { "MISMATCH" }
                );
            }
        }
        println!();
    }
}
