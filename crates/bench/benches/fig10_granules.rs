//! Figure 10 — Synthetic Data, effect of the number of granules g.
//!
//! Paper setup: k = 100, |Ci| = 2·10⁶, P = P1, loose; queries Qb,b Qf,b
//! Qo,o Qo,m Qs,f,m; g swept to 160.
//! Expectations: (10a) small g hurts equality-heavy queries (poor
//! distribution, weak pruning); large g slows TopBuckets — sweet spot
//! g ≈ 40. (10b) imbalance shrinks and stabilizes as g grows.
//! (10c, Qo,m) join time falls and "% results pruned" rises with g
//! (81 % at g = 20 → 96 % at g = 100) while TopBuckets time rises.

use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{Tkij, TkijConfig};
use tkij_datagen::uniform_collections;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let scale = Scale::from_env();
    let size = scale.size(2_000_000);
    header(
        "Figure 10 — Synthetic Data: effect of the number of granules g",
        "k = 100, |Ci| = 2*10^6, P = P1, loose; g in 5..160",
        "running time U-shaped in g (sweet spot ~40); pruning % grows with g; imbalance shrinks",
    );
    let g_values: &[u32] =
        if scale.full { &[5, 10, 20, 40, 80, 160] } else { &[5, 10, 20, 40, 80] };
    println!("|Ci| -> {size}; g sweep {g_values:?}\n");
    let queries = vec![
        ("Qb,b", table1::q_bb(PredicateParams::P1)),
        ("Qf,b", table1::q_fb(PredicateParams::P1)),
        ("Qo,o", table1::q_oo(PredicateParams::P1)),
        ("Qo,m", table1::q_om(PredicateParams::P1)),
        ("Qs,f,m", table1::q_sfm(PredicateParams::P1)),
    ];
    let k = scale.k(100);

    let mut rows_time = Vec::new();
    let mut rows_imb = Vec::new();
    let mut rows_detail = Vec::new();
    // The paper's own figure leaves these configurations blank ("Run.
    // Time > 1h"): coarse statistics starve the distribution and pruning.
    let paper_timeout = |g: u32, name: &str| -> bool {
        (g <= 5 && matches!(name, "Qo,o" | "Qo,m" | "Qs,f,m")) || (g > 140 && name == "Qs,f,m")
    };
    for &g in g_values {
        let tk = Tkij::new(TkijConfig::default().with_granules(g));
        let dataset = tk.prepare(uniform_collections(3, size, 99)).expect("prepare");
        for (name, q) in &queries {
            if paper_timeout(g, name) {
                rows_time.push(vec![format!("g={g}"), name.to_string(), "> 1h (paper)".into()]);
                rows_imb.push(vec![format!("g={g}"), name.to_string(), "-".into()]);
                continue;
            }
            let report = tk.execute(&dataset, q, k).expect("execute");
            let total = report.total_wall();
            println!(
                "  [row] g={g} {name}: total {} imbalance {:.2} pruned {:.1}%",
                secs(total),
                report.join.imbalance(),
                report.pruned_pct()
            );
            rows_time.push(vec![format!("g={g}"), name.to_string(), secs(total)]);
            rows_imb.push(vec![
                format!("g={g}"),
                name.to_string(),
                format!("{:.2}", report.join.imbalance()),
            ]);
            if *name == "Qo,m" {
                rows_detail.push(vec![
                    format!("g={g}"),
                    secs(report.topbuckets.duration),
                    secs(report.distribution.duration),
                    secs(report.join.wall),
                    secs(report.merge.wall),
                    format!("{:.1}%", report.pruned_pct()),
                ]);
            }
        }
    }
    println!("(10a) Total running time:");
    print_table(&["g", "query", "total"], &rows_time);
    println!("\n(10b) Join-phase imbalance (max/avg reducer time):");
    print_table(&["g", "query", "imbalance"], &rows_imb);
    println!("\n(10c) Qo,m detailed running time and pruning:");
    print_table(&["g", "TopBuckets", "Distribution", "Join", "Merge", "%pruned"], &rows_detail);
    // Shape check: pruning grows with g for Qo,m.
    let pruned: Vec<f64> = rows_detail
        .iter()
        .map(|r| r[5].trim_end_matches('%').parse::<f64>().unwrap_or(0.0))
        .collect();
    let monotone = pruned.windows(2).all(|w| w[1] >= w[0] - 2.0);
    println!(
        "\nshape check: %pruned grows with g: {pruned:?}  [{}]",
        if monotone { "OK" } else { "MISMATCH" }
    );
}
