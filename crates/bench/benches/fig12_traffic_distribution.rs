//! Figure 12 — Network Traffic Data Distribution.
//!
//! Paper data: one day of firewall logs, 3,636,814 connections with
//! lengths (min, avg, max) = (1, 54, 86459) seconds; Fig. 12a shows the
//! skewed start-point distribution, Fig. 12b the heavy-tailed length
//! distribution (log scale). This harness regenerates both histograms
//! from the traffic simulator standing in for the proprietary log
//! (see DESIGN.md substitutions).

use tkij_bench::{header, print_table, Scale};
use tkij_datagen::{percent_histogram, traffic_collection, TrafficConfig};
use tkij_temporal::collection::CollectionId;

fn main() {
    let scale = Scale::from_env();
    let sessions = scale.size(3_600_000);
    header(
        "Figure 12 — Network Traffic Data Distribution",
        "3.64M connections; lengths (min, avg, max) = (1, 54, 86459) s",
        "start points skewed by daily activity; lengths heavy-tailed over ~5 decades",
    );
    let cfg = TrafficConfig::calibrated(sessions, 2016);
    let (coll, _) = traffic_collection(&cfg, 1.0, CollectionId(0));
    let stats = coll.stats();
    println!(
        "connections = {}; length (min, avg, max) = ({}, {}, {})  [paper: (1, 54, 86459)]",
        stats.len, stats.min_length, stats.avg_length, stats.max_length
    );

    println!("\n(12a) Start-point distribution (% of max):");
    let starts: Vec<i64> = coll.intervals().iter().map(|iv| iv.start).collect();
    let rows: Vec<Vec<String>> = percent_histogram(&starts, 12)
        .iter()
        .map(|b| {
            vec![
                format!("<= {:>5.1}%", b.upper_pct),
                format!("{:6.2}%", b.tuples_pct),
                "#".repeat((b.tuples_pct.round() as usize).min(60)),
            ]
        })
        .collect();
    print_table(&["start point", "#tuples", ""], &rows);

    println!("\n(12b) Length distribution (% of max, log-scale y):");
    let lengths: Vec<i64> = coll.intervals().iter().map(|iv| iv.length().max(1)).collect();
    let rows: Vec<Vec<String>> = percent_histogram(&lengths, 10)
        .iter()
        .map(|b| {
            let pct = b.tuples_pct;
            let log_bar = if pct > 0.0 {
                // log10 scale: 100% → 7 marks, 0.00001% → 0.
                (((pct.log10() + 5.0).max(0.0)) as usize).min(10)
            } else {
                0
            };
            vec![format!("<= {:>5.1}%", b.upper_pct), format!("{:>9.5}%", pct), "#".repeat(log_bar)]
        })
        .collect();
    print_table(&["length", "#tuples", "(log)"], &rows);

    let head = percent_histogram(&lengths, 10)[0].tuples_pct;
    println!(
        "\nshape check: first length bin holds {head:.2}% of tuples (paper: ~all mass at short lengths)  [{}]",
        if head > 95.0 { "OK" } else { "MISMATCH" }
    );
}
