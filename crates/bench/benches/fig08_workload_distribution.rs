//! Figure 8 — Synthetic Data, Workload Distribution (DTB vs LPT).
//!
//! Paper setup: g = 20, k = 1000, P = P2, loose strategy;
//! |Ci| ∈ {1M, 1.2M, 1.4M, 1.6M}; queries Qb,b Qo,o Qf,f Qs,s Qs,f,m.
//! Expectations: (8a) DTB ≤ LPT join time (equal on Qb,b); (8b) DTB max
//! reducer time < LPT; (8c) min k-th score per reducer higher with DTB;
//! LPT ships ≈ 43 % more shuffle volume on average.

use tkij_bench::{header, print_table, secs, Scale};
use tkij_core::{DistributionPolicy, Strategy, Tkij, TkijConfig};
use tkij_datagen::uniform_collections;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 8 — Synthetic Data: Workload Distribution (LPT vs DTB)",
        "g = 20, k = 1000, P = P2, loose; |Ci| in 1M..1.6M; 5 queries",
        "DTB <= LPT on join time and max-reducer time; DTB yields higher k-th scores; LPT ships ~43% more",
    );
    let sizes: Vec<(usize, usize)> = [1_000_000usize, 1_200_000, 1_400_000, 1_600_000]
        .iter()
        .map(|&s| (s, scale.size(s)))
        .collect();
    let queries = |p| {
        vec![
            ("Qb,b", table1::q_bb(p)),
            ("Qo,o", table1::q_oo(p)),
            ("Qf,f", table1::q_ff(p)),
            ("Qs,s", table1::q_ss(p)),
            ("Qs,f,m", table1::q_sfm(p)),
        ]
    };
    // Each of the 24 reducers fills a k-deep heap before pruning engages;
    // the paper's k = 1000 against 2 %-scale collections would be
    // disproportionately deep, so scale k with the data.
    let k = if scale.full { 1000 } else { ((1000.0 * scale.fraction * 5.0) as usize).max(100) };
    let mut rows_time = Vec::new();
    let mut rows_max = Vec::new();
    let mut rows_kth = Vec::new();
    let mut shuffle_ratio_acc = Vec::new();

    for (paper_size, size) in &sizes {
        for (name, q) in queries(PredicateParams::P2) {
            let mut per_policy = Vec::new();
            for policy in [DistributionPolicy::Lpt, DistributionPolicy::Dtb] {
                eprintln!("[fig08] |Ci|={size} {name} {}", policy.name());
                let tk = Tkij::new(
                    TkijConfig::default()
                        .with_granules(20)
                        .with_strategy(Strategy::Loose)
                        .with_distribution(policy),
                );
                let dataset = tk.prepare(uniform_collections(q.n(), *size, 4242)).expect("prepare");
                let report = tk.execute(&dataset, &q, k).expect("execute");
                per_policy.push((
                    policy.name(),
                    report.join.reduce_makespan(24),
                    report.join.max_reduce(),
                    report.min_kth_score(),
                    report.join.total_shuffle_bytes(),
                ));
            }
            let (lpt, dtb) = (&per_policy[0], &per_policy[1]);
            println!(
                "  [row] |Ci|={size} {name}: join LPT {} vs DTB {}; max-reducer LPT {} vs DTB {}; kth LPT {:.3} vs DTB {:.3}",
                secs(lpt.1), secs(dtb.1), secs(lpt.2), secs(dtb.2), lpt.3, dtb.3
            );
            rows_time.push(vec![
                format!("{paper_size}->{size}"),
                name.to_string(),
                secs(lpt.1),
                secs(dtb.1),
            ]);
            rows_max.push(vec![
                format!("{paper_size}->{size}"),
                name.to_string(),
                secs(lpt.2),
                secs(dtb.2),
            ]);
            rows_kth.push(vec![
                format!("{paper_size}->{size}"),
                name.to_string(),
                format!("{:.4}", lpt.3),
                format!("{:.4}", dtb.3),
            ]);
            if dtb.4 > 0 {
                shuffle_ratio_acc.push(lpt.4 as f64 / dtb.4 as f64);
            }
        }
    }

    println!("\n(8a) Join running time (reduce-wave makespan on 24 slots):");
    print_table(&["|Ci| paper->run", "query", "LPT", "DTB"], &rows_time);
    println!("\n(8b) Max running time of reducers:");
    print_table(&["|Ci| paper->run", "query", "LPT", "DTB"], &rows_max);
    println!("\n(8c) Min score of k-th result across reducers:");
    print_table(&["|Ci| paper->run", "query", "LPT", "DTB"], &rows_kth);
    let avg_ratio = shuffle_ratio_acc.iter().sum::<f64>() / shuffle_ratio_acc.len().max(1) as f64;
    println!("\nshuffle volume LPT/DTB = {:.2}x (paper: ~1.43x on average)", avg_ratio);
}
