//! Quick engine-timing probe: one DTB/loose execution per representative
//! query at fig-8-like settings, printing the phase breakdown. Handy when
//! tuning harness scales (`cargo run --release -p tkij-bench --bin
//! timing_probe`).

use tkij_core::{DistributionPolicy, Strategy, Tkij, TkijConfig};
use tkij_datagen::uniform_collections;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    for (name, q) in [
        ("Qo,o", table1::q_oo(PredicateParams::P2)),
        ("Qs,s", table1::q_ss(PredicateParams::P2)),
        ("Qs,f,m", table1::q_sfm(PredicateParams::P2)),
    ] {
        let tk = Tkij::new(
            TkijConfig::default()
                .with_granules(20)
                .with_strategy(Strategy::Loose)
                .with_distribution(DistributionPolicy::Dtb),
        );
        let dataset = tk.prepare(uniform_collections(q.n(), 20_000, 4242)).unwrap();
        let t = std::time::Instant::now();
        let r = tk.execute(&dataset, &q, 100).unwrap();
        println!("{name}: total {:?} | {}", t.elapsed(), r.phase_line());
    }
}
