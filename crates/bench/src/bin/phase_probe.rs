//! Per-phase timing probe for harness-scale tuning.
use std::time::Instant;
use tkij_core::*;
use tkij_datagen::uniform_collections;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::table1;

fn main() {
    let q = table1::q_oo(PredicateParams::P2);
    let cfg = TkijConfig::default().with_granules(20);
    let cluster = tkij_mapreduce::ClusterConfig::default();
    let t = Instant::now();
    let dataset = collect_statistics(uniform_collections(3, 20_000, 4242), 20, &cluster).unwrap();
    eprintln!("prepare: {:?}", t.elapsed());
    let t = Instant::now();
    let (selected, stats) =
        run_topbuckets(&q, &dataset.matrices, 100, Strategy::Loose, &cfg.solver, 6);
    eprintln!(
        "topbuckets: {:?} candidates={} selected={} solver_calls={}",
        t.elapsed(),
        stats.candidates,
        stats.selected,
        stats.solver_calls
    );
    let t = Instant::now();
    let assignment = distribute(&selected, DistributionPolicy::Dtb, 24, &q, &dataset.matrices);
    eprintln!("distribute: {:?} shuffle={}", t.elapsed(), assignment.estimated_shuffle_records);
    let t = Instant::now();
    let (outputs, _m) = run_join_phase(&dataset, &q, &selected, &assignment, 100, &cluster);
    eprintln!("join: {:?}", t.elapsed());
    let scored: u64 = outputs.iter().map(|o| o.stats.tuples_scored).sum();
    let cands: u64 = outputs.iter().map(|o| o.stats.candidates_visited).sum();
    eprintln!("tuples_scored={scored} candidates_visited={cands}");
}
