//! CI perf probe: a pinned dense synthetic workload run through both
//! local-join backends, emitting a flat JSON report on stdout.
//!
//! The workload is fully deterministic (fixed sizes, seeds and engine
//! knobs, no env scaling), so the work counters (`*_index_probes`,
//! `*_items_scanned`, `*_candidates_visited`, `tuples_scored`) are exact
//! run-to-run; the timing metrics take the best of [`RUNS`] repetitions
//! to damp scheduler noise. `bench_check` compares this output against
//! the committed `BENCH_BASELINE.json` and fails CI on >25% regressions.
//!
//! Refresh the baseline with:
//! `cargo run --release -p tkij_bench --bin bench_smoke > BENCH_BASELINE.json`

use std::time::{Duration, Instant};
use tkij_core::{LocalJoinBackend, Tkij, TkijConfig};
use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij_index::{threshold_candidates, CandidateSource, RTree, SweepIndex};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::expr::Side;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::predicate::TemporalPredicate;
use tkij_temporal::query::table1;

/// Timed repetitions per backend (best-of, after one warm-up).
const RUNS: usize = 3;
/// Intervals per collection.
const SIZE: usize = 6_000;
/// Startpoint span: ~30 concurrent intervals per timestamp — the dense
/// regime where index probe cost dominates the reducers.
const START_SPAN: i64 = 20_000;
const SEED: u64 = 4242;
const GRANULES: u32 = 20;
const REDUCERS: usize = 4;
const K: usize = 100;

struct BackendRun {
    reduce_ms: f64,
    index_probes: u64,
    items_scanned: u64,
    candidates_visited: u64,
    tuples_scored: u64,
}

fn run_backend(backend: LocalJoinBackend) -> BackendRun {
    let cfg = SyntheticConfig {
        size: SIZE,
        start_range: (0, START_SPAN),
        length_range: (1, 100),
        seed: SEED,
    };
    let collections: Vec<_> =
        (0..3u32).map(|i| uniform_collection(CollectionId(i), &cfg)).collect();
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(GRANULES)
            .with_reducers(REDUCERS)
            .with_local_backend(backend),
    );
    let dataset = engine.prepare(collections).expect("prepare");
    let query = table1::q_om(PredicateParams::P1);

    let mut best_reduce = Duration::MAX;
    let mut out = None;
    // One warm-up + RUNS timed repetitions; keep the best (least-noise)
    // reduce-wave time. Counters are identical across repetitions.
    for rep in 0..=RUNS {
        let report = engine.execute(&dataset, &query, K).expect("execute");
        let reduce: Duration = report.join.reduce_durations.iter().sum();
        if rep == 0 {
            continue;
        }
        if reduce < best_reduce {
            best_reduce = reduce;
        }
        out = Some(BackendRun {
            reduce_ms: 0.0,
            index_probes: report.index_probes(),
            items_scanned: report.items_scanned(),
            candidates_visited: report.local_stats.iter().map(|s| s.candidates_visited).sum(),
            tuples_scored: report.tuples_scored(),
        });
    }
    let mut run = out.expect("at least one timed run");
    run.reduce_ms = best_reduce.as_secs_f64() * 1e3;
    run
}

/// Probe-level microbench: the same score-threshold window set against
/// both backends over one dense bucket — the pure candidate-source
/// comparison, free of the backend-independent scoring/sorting work the
/// reducers do around it.
struct ProbeRun {
    probe_ms: f64,
    scanned: u64,
    hits: u64,
}

fn probe_microbench<C: CandidateSource>() -> ProbeRun {
    let cfg = SyntheticConfig {
        size: 20_000,
        start_range: (0, START_SPAN),
        length_range: (1, 100),
        seed: SEED,
    };
    let items = uniform_collection(CollectionId(0), &cfg).intervals().to_vec();
    let anchors: Vec<_> = items.iter().step_by(10).copied().collect();
    let index = C::build(items);
    let pred = TemporalPredicate::meets(PredicateParams::P1);
    let mut best = Duration::MAX;
    let (mut scanned, mut hits) = (0u64, 0u64);
    for _ in 0..=RUNS {
        let (mut s, mut h) = (0u64, 0u64);
        let t = Instant::now();
        for a in &anchors {
            s += threshold_candidates(&index, &pred, a, Side::Left, 0.8, |_| h += 1);
        }
        best = best.min(t.elapsed());
        (scanned, hits) = (s, h);
    }
    ProbeRun { probe_ms: best.as_secs_f64() * 1e3, scanned, hits }
}

fn main() {
    let rtree = run_backend(LocalJoinBackend::RTree);
    let sweep = run_backend(LocalJoinBackend::Sweep);
    let join_speedup = rtree.reduce_ms / sweep.reduce_ms.max(1e-9);
    let rtree_probe = probe_microbench::<RTree>();
    let sweep_probe = probe_microbench::<SweepIndex>();
    let speedup = rtree_probe.probe_ms / sweep_probe.probe_ms.max(1e-9);
    assert_eq!(rtree_probe.hits, sweep_probe.hits, "backends must agree on candidate sets");

    println!("{{");
    println!("  \"schema\": 1,");
    println!(
        "  \"workload\": {{ \"collections\": 3, \"size\": {SIZE}, \"start_span\": {START_SPAN}, \
         \"granules\": {GRANULES}, \"reducers\": {REDUCERS}, \"k\": {K}, \"seed\": {SEED}, \
         \"query\": \"q_om\" }},"
    );
    println!("  \"metrics\": {{");
    println!("    \"rtree_probe_ms\": {:.3},", rtree_probe.probe_ms);
    println!("    \"sweep_probe_ms\": {:.3},", sweep_probe.probe_ms);
    println!("    \"sweep_speedup\": {speedup:.3},");
    println!("    \"rtree_probe_scanned\": {},", rtree_probe.scanned);
    println!("    \"sweep_probe_scanned\": {},", sweep_probe.scanned);
    println!("    \"probe_hits\": {},", sweep_probe.hits);
    println!("    \"rtree_join_reduce_ms\": {:.3},", rtree.reduce_ms);
    println!("    \"sweep_join_reduce_ms\": {:.3},", sweep.reduce_ms);
    println!("    \"join_speedup\": {join_speedup:.3},");
    println!("    \"rtree_index_probes\": {},", rtree.index_probes);
    println!("    \"sweep_index_probes\": {},", sweep.index_probes);
    println!("    \"rtree_items_scanned\": {},", rtree.items_scanned);
    println!("    \"sweep_items_scanned\": {},", sweep.items_scanned);
    println!("    \"rtree_candidates_visited\": {},", rtree.candidates_visited);
    println!("    \"sweep_candidates_visited\": {},", sweep.candidates_visited);
    println!("    \"rtree_tuples_scored\": {},", rtree.tuples_scored);
    println!("    \"sweep_tuples_scored\": {}", sweep.tuples_scored);
    println!("  }}");
    println!("}}");
}
