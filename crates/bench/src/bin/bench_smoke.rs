//! CI perf probe: a pinned dense synthetic workload run through the
//! local-join backends, emitting a flat JSON report on stdout.
//!
//! The workload is fully deterministic (fixed sizes, seeds and engine
//! knobs, no env scaling), so the work counters (`*_index_probes`,
//! `*_items_scanned`, `*_candidates_visited`, `*_tuples_scored`,
//! `*_buckets_*`, and the TopBuckets/distribution phase counters) are
//! exact run-to-run; the timing metrics take the best of [`RUNS`]
//! repetitions to damp scheduler noise. `bench_check` compares this
//! output against the committed `BENCH_BASELINE.json` and fails CI on
//! >25% regressions.
//!
//! Usage: `bench_smoke [backend...]` — backend names (`rtree`, `sweep`,
//! `auto`) parsed with the `FromStr` registry; no arguments runs all
//! three (the gated configuration). The probe-level microbench and the
//! backend speedup ratios are emitted only when both fixed backends run;
//! the microbench also times the sweep store under both scan kinds and
//! emits `chunked_probe_speedup` (chunked lanes vs the scalar
//! reference — a pure wall-clock ratio: the kinds' hit and scan counts
//! are asserted identical in-binary).
//! A single-reducer hot-bucket workload (`granules = 1`, one combination)
//! always runs, sequentially and with intra-join chunk workers: it
//! asserts the sharding contract (bit-identical scores and counters) and
//! emits `intra_join_speedup` plus the `hot_*` counters.
//!
//! Refresh the baseline with:
//! `cargo run --release -p tkij_bench --bin bench_smoke > BENCH_BASELINE.json`

use std::time::{Duration, Instant};
use tkij_core::{ExecutionReport, LocalJoinBackend, Tkij, TkijConfig};
use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij_index::{threshold_candidates, CandidateSource, RTree, SweepIndex, SweepScanKind};
use tkij_mapreduce::ClusterConfig;
use tkij_temporal::collection::CollectionId;
use tkij_temporal::expr::Side;
use tkij_temporal::interval::Interval;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::predicate::TemporalPredicate;
use tkij_temporal::query::table1;

/// Timed repetitions per backend (best-of, after one warm-up).
const RUNS: usize = 3;
/// Intervals per collection.
const SIZE: usize = 6_000;
/// Startpoint span: ~30 concurrent intervals per timestamp — the dense
/// regime where index probe cost dominates the reducers.
const START_SPAN: i64 = 20_000;
const SEED: u64 = 4242;
const GRANULES: u32 = 20;
const REDUCERS: usize = 4;
const K: usize = 100;

/// Intervals per collection of the single-reducer hot-bucket workload.
const HOT_SIZE: usize = 4_000;
/// Startpoint span of the hot workload: sparse enough that the top-100
/// does not saturate at perfect scores (which would let mid-run early
/// termination skip the very waves the probe is meant to exercise).
const HOT_SPAN: i64 = 120_000;
/// Chunk workers of the hot workload's parallel run.
const HOT_INTRA_THREADS: usize = 4;

/// One backend's measurement: the best-of reduce time plus the full
/// (repetition-invariant) report every emitted counter derives from.
struct BackendRun {
    reduce_ms: f64,
    report: ExecutionReport,
}

impl BackendRun {
    fn candidates_visited(&self) -> u64 {
        self.report.local_stats.iter().map(|s| s.candidates_visited).sum()
    }

    fn score_bits(&self) -> Vec<u64> {
        self.report.results.iter().map(|t| t.score.to_bits()).collect()
    }
}

/// The shared measurement harness: one warm-up + [`RUNS`] timed
/// repetitions of the prepared query; keeps the best (least-noise)
/// reduce-wave time. Counters are identical across repetitions. Both the
/// per-backend runs and the hot-bucket runs go through this, so their
/// speedup ratios stay mutually comparable by construction.
fn measure(engine: &Tkij, dataset: &tkij_core::PreparedDataset) -> BackendRun {
    let query = table1::q_om(PredicateParams::P1);
    let mut best_reduce = Duration::MAX;
    let mut out = None;
    for rep in 0..=RUNS {
        let report = engine.execute(dataset, &query, K).expect("execute");
        let reduce: Duration = report.join.reduce_durations.iter().sum();
        if rep == 0 {
            continue;
        }
        if reduce < best_reduce {
            best_reduce = reduce;
        }
        out = Some(report);
    }
    BackendRun { reduce_ms: best_reduce.as_secs_f64() * 1e3, report: out.expect("timed run") }
}

fn run_backend(backend: LocalJoinBackend) -> BackendRun {
    let cfg = SyntheticConfig {
        size: SIZE,
        start_range: (0, START_SPAN),
        length_range: (1, 100),
        seed: SEED,
    };
    let collections: Vec<_> =
        (0..3u32).map(|i| uniform_collection(CollectionId(i), &cfg)).collect();
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(GRANULES)
            .with_reducers(REDUCERS)
            .with_local_backend(backend),
    );
    let dataset = engine.prepare(collections).expect("prepare");
    measure(&engine, &dataset)
}

/// Single-reducer hot-bucket workload: `granules = 1` collapses every
/// collection into one bucket, so TopBuckets yields exactly one
/// combination and the entire join is one reducer grinding through one
/// candidate run — the worst case for reducer-level parallelism and
/// precisely the regime the intra-join probe sharding targets. Run once
/// sequentially and once with [`HOT_INTRA_THREADS`] chunk workers; the
/// work counters and score bits are asserted identical (the sharding
/// contract), so only the timing ratio distinguishes the two.
fn run_hot(intra_threads: usize) -> BackendRun {
    let cfg = SyntheticConfig {
        size: HOT_SIZE,
        start_range: (0, HOT_SPAN),
        length_range: (1, 100),
        seed: SEED,
    };
    let collections: Vec<_> =
        (0..3u32).map(|i| uniform_collection(CollectionId(i), &cfg)).collect();
    let engine = Tkij::with_cluster(
        TkijConfig::default().with_granules(1).with_reducers(1),
        ClusterConfig::default().with_intra_join_threads(intra_threads),
    );
    let dataset = engine.prepare(collections).expect("prepare hot");
    measure(&engine, &dataset)
}

/// Probe-level microbench: the same score-threshold window set against
/// both backends over one dense bucket — the pure candidate-source
/// comparison, free of the backend-independent scoring/sorting work the
/// reducers do around it.
struct ProbeRun {
    probe_ms: f64,
    scanned: u64,
    hits: u64,
}

fn probe_microbench<C: CandidateSource>(build: impl FnOnce(Vec<Interval>) -> C) -> ProbeRun {
    let cfg = SyntheticConfig {
        size: 20_000,
        start_range: (0, START_SPAN),
        length_range: (1, 100),
        seed: SEED,
    };
    let items = uniform_collection(CollectionId(0), &cfg).intervals().to_vec();
    let anchors: Vec<_> = items.iter().step_by(10).copied().collect();
    let index = build(items);
    let pred = TemporalPredicate::meets(PredicateParams::P1);
    let mut best = Duration::MAX;
    let (mut scanned, mut hits) = (0u64, 0u64);
    for _ in 0..=RUNS {
        let (mut s, mut h) = (0u64, 0u64);
        let t = Instant::now();
        for a in &anchors {
            s += threshold_candidates(&index, &pred, a, Side::Left, 0.8, |_| h += 1);
        }
        best = best.min(t.elapsed());
        (scanned, hits) = (s, h);
    }
    ProbeRun { probe_ms: best.as_secs_f64() * 1e3, scanned, hits }
}

fn main() {
    // Flag-selected backends (FromStr registry); default: all three.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backends: Vec<LocalJoinBackend> = if args.is_empty() {
        LocalJoinBackend::all().iter().map(|&(_, b)| b).collect()
    } else {
        args.iter()
            .map(|a| a.parse::<LocalJoinBackend>().unwrap_or_else(|e| panic!("{e}")))
            .collect()
    };

    let runs: Vec<(LocalJoinBackend, BackendRun)> =
        backends.iter().map(|&b| (b, run_backend(b))).collect();
    // Every backend must produce the identical top-k score multiset.
    for (b, run) in &runs[1..] {
        assert_eq!(
            run.score_bits(),
            runs[0].1.score_bits(),
            "{}: results diverge from {}",
            b.name(),
            backends[0].name()
        );
    }

    let both_fixed =
        backends.contains(&LocalJoinBackend::RTree) && backends.contains(&LocalJoinBackend::Sweep);
    let find = |b: LocalJoinBackend| runs.iter().find(|(rb, _)| *rb == b).map(|(_, r)| r);

    // Flat "key": number metric lines, in emission order.
    let mut metrics: Vec<(String, String)> = Vec::new();
    let mut push = |key: &str, value: String| metrics.push((key.to_string(), value));

    if both_fixed {
        let rtree_probe = probe_microbench(RTree::bulk_load);
        let sweep_probe =
            probe_microbench(|items| SweepIndex::build_with_scan(items, SweepScanKind::Chunked));
        let scalar_probe =
            probe_microbench(|items| SweepIndex::build_with_scan(items, SweepScanKind::Scalar));
        let speedup = rtree_probe.probe_ms / sweep_probe.probe_ms.max(1e-9);
        assert_eq!(rtree_probe.hits, sweep_probe.hits, "backends must agree on candidate sets");
        // The scan kinds must be indistinguishable in everything but
        // time: same hits, same examined-items telemetry.
        assert_eq!(scalar_probe.hits, sweep_probe.hits, "scan kinds must agree on hits");
        assert_eq!(scalar_probe.scanned, sweep_probe.scanned, "scan kinds must agree on scans");
        // Per-kind probe speedup of the chunked lane scan over the
        // scalar reference (same index contents, same window set).
        let chunked_speedup = scalar_probe.probe_ms / sweep_probe.probe_ms.max(1e-9);
        push("rtree_probe_ms", format!("{:.3}", rtree_probe.probe_ms));
        push("sweep_probe_ms", format!("{:.3}", sweep_probe.probe_ms));
        push("sweep_scalar_probe_ms", format!("{:.3}", scalar_probe.probe_ms));
        push("sweep_speedup", format!("{speedup:.3}"));
        push("chunked_probe_speedup", format!("{chunked_speedup:.3}"));
        push("rtree_probe_scanned", rtree_probe.scanned.to_string());
        push("sweep_probe_scanned", sweep_probe.scanned.to_string());
        push("probe_hits", sweep_probe.hits.to_string());
        let rt = find(LocalJoinBackend::RTree).expect("rtree ran");
        let sw = find(LocalJoinBackend::Sweep).expect("sweep ran");
        let join_speedup = rt.reduce_ms / sw.reduce_ms.max(1e-9);
        push("join_speedup", format!("{join_speedup:.3}"));
    }
    for (b, run) in &runs {
        let n = b.name();
        push(&format!("{n}_join_reduce_ms"), format!("{:.3}", run.reduce_ms));
        push(&format!("{n}_index_probes"), run.report.index_probes().to_string());
        push(&format!("{n}_items_scanned"), run.report.items_scanned().to_string());
        push(&format!("{n}_candidates_visited"), run.candidates_visited().to_string());
        push(&format!("{n}_tuples_scored"), run.report.tuples_scored().to_string());
        push(&format!("{n}_buckets_rtree"), run.report.buckets_rtree().to_string());
        push(&format!("{n}_buckets_sweep"), run.report.buckets_sweep().to_string());
        push(&format!("{n}_probe_chunks"), run.report.probe_chunks().to_string());
    }
    // Phase-level work counters (backend-independent: TopBuckets and
    // distribution run before the join; take them from the first run and
    // assert the independence).
    let phase = &runs[0].1.report;
    for (_, run) in &runs[1..] {
        assert_eq!(
            run.report.topbuckets.candidates, phase.topbuckets.candidates,
            "phase counters must not depend on the join backend"
        );
        assert_eq!(
            run.report.distribution.assignments_scored, phase.distribution.assignments_scored,
            "phase counters must not depend on the join backend"
        );
    }
    push("topbuckets_candidates", phase.topbuckets.candidates.to_string());
    push("topbuckets_selected", phase.topbuckets.selected.to_string());
    push("topbuckets_solver_calls", phase.topbuckets.solver_calls.to_string());
    push("topbuckets_pruned_local", phase.topbuckets.pruned_local.to_string());
    push("topbuckets_pruned_merge", phase.topbuckets.pruned_merge.to_string());
    push("dtb_assignments_scored", phase.distribution.assignments_scored.to_string());
    push("dtb_cap_fallbacks", phase.distribution.cap_fallbacks.to_string());
    push("dtb_shuffle_records", phase.distribution.estimated_shuffle_records.to_string());
    push("dtb_replication_factor", format!("{:.6}", phase.distribution.replication_factor));
    push("dtb_result_imbalance", format!("{:.6}", phase.distribution.result_imbalance));

    // Single-reducer hot-bucket probe: the gate's evidence that the
    // intra-join sharding (a) actually parallelizes the one regime
    // reducer-level parallelism cannot touch and (b) does so without
    // changing a single score bit or work counter.
    let hot_seq = run_hot(0);
    let hot_par = run_hot(HOT_INTRA_THREADS);
    assert_eq!(
        hot_par.score_bits(),
        hot_seq.score_bits(),
        "intra-join threads changed hot-workload results"
    );
    for (label, seq, par) in [
        ("index_probes", hot_seq.report.index_probes(), hot_par.report.index_probes()),
        ("items_scanned", hot_seq.report.items_scanned(), hot_par.report.items_scanned()),
        ("tuples_scored", hot_seq.report.tuples_scored(), hot_par.report.tuples_scored()),
        ("probe_chunks", hot_seq.report.probe_chunks(), hot_par.report.probe_chunks()),
    ] {
        assert_eq!(seq, par, "intra-join threads changed the hot {label} counter");
    }
    assert!(
        hot_par.report.intra_threads_used() >= 2,
        "the hot workload must actually run parallel waves"
    );
    let intra_speedup = hot_seq.reduce_ms / hot_par.reduce_ms.max(1e-9);
    push("intra_join_speedup", format!("{intra_speedup:.3}"));
    push("hot_seq_reduce_ms", format!("{:.3}", hot_seq.reduce_ms));
    push("hot_par_reduce_ms", format!("{:.3}", hot_par.reduce_ms));
    push("hot_probe_chunks", hot_par.report.probe_chunks().to_string());
    push("hot_intra_threads_used", hot_par.report.intra_threads_used().to_string());
    push("hot_index_probes", hot_par.report.index_probes().to_string());
    push("hot_items_scanned", hot_par.report.items_scanned().to_string());
    push("hot_tuples_scored", hot_par.report.tuples_scored().to_string());

    // Out-of-core leg: the same gated workload on the default backend,
    // forced through the serialized spill transport at threshold 0 (every
    // shuffled record lands in its own checksummed segment — the
    // worst-case spill schedule). Results and work counters must be
    // bit-identical to the in-memory runs above; the spill counters are
    // exact and become gated baseline keys, so any codec, segmentation,
    // or checksum drift fails the bench gate.
    let spill = {
        let cfg = SyntheticConfig {
            size: SIZE,
            start_range: (0, START_SPAN),
            length_range: (1, 100),
            seed: SEED,
        };
        let collections: Vec<_> =
            (0..3u32).map(|i| uniform_collection(CollectionId(i), &cfg)).collect();
        let engine = Tkij::new(
            TkijConfig::default()
                .with_granules(GRANULES)
                .with_reducers(REDUCERS)
                .with_local_backend(LocalJoinBackend::Sweep)
                .with_shuffle_spill_threshold_bytes(0),
        );
        let dataset = engine.prepare(collections).expect("prepare spill");
        measure(&engine, &dataset)
    };
    assert_eq!(spill.score_bits(), runs[0].1.score_bits(), "spilling changed the top-k");
    if let Some(sw) = find(LocalJoinBackend::Sweep) {
        assert_eq!(spill.report.index_probes(), sw.report.index_probes(), "spill leg probes");
        assert_eq!(spill.report.items_scanned(), sw.report.items_scanned(), "spill leg scans");
        assert_eq!(spill.report.tuples_scored(), sw.report.tuples_scored(), "spill leg tuples");
        assert_eq!(
            spill.report.join.total_shuffle_records(),
            sw.report.join.total_shuffle_records(),
            "serialization must not change shuffle record accounting"
        );
        assert_eq!(
            spill.report.join.total_shuffle_bytes(),
            sw.report.join.total_shuffle_bytes(),
            "serialization must not change shuffle byte accounting"
        );
    }
    let spill_stats = spill.report.shuffle_stats();
    assert!(spill_stats.records_spilled > 0, "the spill leg must actually spill");
    assert_eq!(
        spill_stats.records_spilled,
        spill.report.join.total_shuffle_records() + spill.report.merge.total_shuffle_records(),
        "threshold 0 serializes every online shuffle record"
    );
    push("shuffle_records_spilled", spill_stats.records_spilled.to_string());
    push("shuffle_spill_segments", spill_stats.spill_segments.to_string());
    push("shuffle_spill_bytes", spill_stats.spill_bytes.to_string());
    push("shuffle_checksum", spill_stats.checksum.to_string());

    let names: Vec<&str> = backends.iter().map(|b| b.name()).collect();
    println!("{{");
    println!("  \"schema\": 3,");
    println!(
        "  \"workload\": {{ \"collections\": 3, \"size\": {SIZE}, \"start_span\": {START_SPAN}, \
         \"granules\": {GRANULES}, \"reducers\": {REDUCERS}, \"k\": {K}, \"seed\": {SEED}, \
         \"query\": \"q_om\", \"backends\": \"{}\" }},",
        names.join("+")
    );
    println!("  \"metrics\": {{");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        println!("    \"{key}\": {value}{comma}");
    }
    println!("  }}");
    println!("}}");
}
