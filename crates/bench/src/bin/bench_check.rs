//! Bench-regression gate: compares a fresh `bench_smoke` JSON report
//! against the committed baseline and exits non-zero if any tracked
//! metric regressed by more than the tolerance. No network, no JSON
//! dependency — both files are the flat `"key": number` format
//! `bench_smoke` emits, parsed with a tiny scanner.
//!
//! Usage: `bench_check <BENCH_BASELINE.json> <current.json> [tolerance]`
//!
//! * every numeric key of the *baseline* is tracked (the current report
//!   may carry extra, untracked metrics — e.g. machine-dependent absolute
//!   timings that only exist for the artifact);
//! * higher is worse by default; keys containing `speedup`, `pruned`,
//!   or `qps` invert (lower is worse: a speedup, pruning, or throughput
//!   collapse is the regression);
//! * a zero baseline gates exactly: any growth from 0 fails (degenerate-
//!   case counters are tracked to catch leaving the degenerate regime);
//! * `tolerance` is the allowed relative regression, default `0.25`.

use std::process::ExitCode;

/// Extracts every `"key": <number>` pair from a flat JSON text.
fn parse_metrics(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = text[i + 1..].find('"').map(|o| i + 1 + o) else { break };
        let key = &text[i + 1..close];
        let mut j = close + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b':' {
            i = close + 1;
            continue;
        }
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let num_start = j;
        while j < bytes.len() && matches!(bytes[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            j += 1;
        }
        if let Ok(v) = text[num_start..j].parse::<f64>() {
            out.push((key.to_string(), v));
        }
        i = close + 1;
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_check <baseline.json> <current.json> [tolerance]");
        return ExitCode::from(2);
    }
    let tolerance: f64 = args.get(3).map_or(0.25, |t| t.parse().expect("numeric tolerance"));
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline = parse_metrics(&read(&args[1]));
    let current = parse_metrics(&read(&args[2]));
    if baseline.is_empty() {
        eprintln!("baseline {} holds no numeric metrics", args[1]);
        return ExitCode::from(2);
    }

    let mut failed = false;
    println!(
        "{:<28} {:>14} {:>14} {:>9}  status   (tolerance {:.0}%)",
        "metric",
        "baseline",
        "current",
        "delta",
        tolerance * 100.0
    );
    for (key, base) in &baseline {
        // Structural keys describe the workload, not a measurement, and
        // absolute timings (`*_ms`) are machine-dependent: they ride
        // along in the artifact but only dimensionless ratios and exact
        // work counters gate CI.
        if matches!(key.as_str(), "schema") || !key.contains('_') || key.ends_with("_ms") {
            continue;
        }
        let Some((_, cur)) = current.iter().find(|(k, _)| k == key) else {
            println!("{key:<28} {base:>14.3} {:>14} {:>9}  MISSING", "-", "-");
            failed = true;
            continue;
        };
        // Regression direction: higher is worse, except speedup ratios,
        // pruning counters, and throughput (`qps`) metrics, where bigger
        // is better (a pruning or throughput collapse, not an
        // improvement, is the regression).
        let lower_is_worse =
            key.contains("speedup") || key.contains("pruned") || key.contains("qps");
        // A zero baseline has no meaningful relative delta: any growth
        // from 0 is an infinite regression (degenerate-case counters
        // like cap fallbacks are tracked precisely so that leaving the
        // degenerate regime fails loudly).
        let delta = if *base == 0.0 {
            if *cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur - base) / base
        };
        let regressed = if lower_is_worse { delta < -tolerance } else { delta > tolerance };
        println!(
            "{key:<28} {base:>14.3} {cur:>14.3} {:>8.1}%  {}",
            delta * 100.0,
            if regressed { "REGRESSED" } else { "ok" }
        );
        failed |= regressed;
    }
    if failed {
        eprintln!("\nbench_check: tracked metrics regressed beyond {:.0}%", tolerance * 100.0);
        ExitCode::FAILURE
    } else {
        println!("\nbench_check: all tracked metrics within tolerance");
        ExitCode::SUCCESS
    }
}
