//! Bench-regression gate: compares a fresh harness JSON report (or a
//! concatenation of several — CI gates `bench_smoke` + `bench_serving`
//! in one call) against the committed baseline and exits non-zero if
//! any tracked metric regressed. No network, no JSON dependency — the
//! comparison rules live in [`tkij_bench::gate`], where they are
//! unit-tested.
//!
//! Usage: `bench_check <BENCH_BASELINE.json> <current.json> [tolerance]`
//!
//! * every tracked key of the *baseline*'s `"metrics"` object gates
//!   (the current report may carry extra, untracked metrics);
//! * a tracked key appearing **twice** in either input is a usage error
//!   (exit 2): first-match lookup would silently shadow one value;
//! * keys whose baseline and current values are **both integral** — and
//!   that are not `speedup`/`qps` ratios — are deterministic work
//!   counters and must match **bit-for-bit in both directions** (a
//!   downward drift is a stale baseline, not an improvement);
//! * everything else gates with the relative `tolerance` (default
//!   `0.25`), inverted for better-higher `speedup`/`pruned`/`qps` keys,
//!   with any growth from a zero baseline failing;
//! * `*_ms` timings and structural keys never gate.
//!
//! Exit codes: `0` all green, `1` a tracked metric regressed or
//! mismatched, `2` usage/input error (bad arguments, unreadable or
//! metric-less files, duplicate keys).

use std::process::ExitCode;
use tkij_bench::gate::{duplicate_keys, evaluate, is_exact, parse_metrics, Verdict};

const USAGE: &str = "usage: bench_check <baseline.json> <current.json> [tolerance]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let tolerance: f64 = match args.get(3).map(|t| t.parse()) {
        None => 0.25,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("bench_check: tolerance `{}` is not a number\n{USAGE}", args[3]);
            return ExitCode::from(2);
        }
    };
    let mut unreadable = false;
    let mut read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_check: cannot read {path}: {e}");
            unreadable = true;
            String::new()
        })
    };
    let baseline = parse_metrics(&read(&args[1]));
    let current = parse_metrics(&read(&args[2]));
    if unreadable {
        return ExitCode::from(2);
    }
    if baseline.is_empty() {
        eprintln!("baseline {} holds no numeric metrics", args[1]);
        return ExitCode::from(2);
    }
    // A duplicated tracked key means two reports emitted the same
    // metric: lookups would silently shadow one of the values (and with
    // it a possible regression), so the gate refuses to run at all.
    let mut duplicated = false;
    for (which, path, metrics) in
        [("baseline", &args[1], &baseline), ("current", &args[2], &current)]
    {
        for key in duplicate_keys(metrics) {
            eprintln!("bench_check: duplicate metric key `{key}` in {which} report {path}");
            duplicated = true;
        }
    }
    if duplicated {
        return ExitCode::from(2);
    }

    let rows = evaluate(&baseline, &current, tolerance);
    let mut failed = false;
    println!(
        "{:<28} {:>14} {:>14} {:>9}  status   (tolerance {:.0}%, exact counters bit-for-bit)",
        "metric",
        "baseline",
        "current",
        "delta",
        tolerance * 100.0
    );
    for row in &rows {
        match row.verdict {
            Verdict::Missing => {
                println!("{:<28} {:>14.3} {:>14} {:>9}  MISSING", row.key, row.base, "-", "-");
            }
            verdict => {
                let cur = row.cur.expect("non-missing rows carry a current value");
                let status = match verdict {
                    Verdict::Ok if is_exact(&row.key, row.base, cur) => "ok (exact)",
                    Verdict::Ok => "ok",
                    Verdict::Regressed => "REGRESSED",
                    Verdict::ExactMismatch => "EXACT MISMATCH",
                    Verdict::Missing => unreachable!(),
                };
                println!(
                    "{:<28} {:>14.3} {cur:>14.3} {:>8.1}%  {status}",
                    row.key,
                    row.base,
                    row.delta * 100.0
                );
            }
        }
        failed |= row.verdict != Verdict::Ok;
    }
    if failed {
        eprintln!(
            "\nbench_check: tracked metrics regressed beyond {:.0}% or drifted off an exact \
             counter",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("\nbench_check: all tracked metrics within tolerance");
        ExitCode::SUCCESS
    }
}
