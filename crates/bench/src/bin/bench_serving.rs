//! CI serving-throughput probe: a pinned synthetic workload served as a
//! mixed stream of `table1` query families from fixed concurrent
//! threads against one shared `TkijServer`, emitting a flat JSON report
//! on stdout (the same shape as `bench_smoke`).
//!
//! Before timing anything, every query shape is run solo through
//! `Tkij::execute` and each served report is asserted **bit-identical**
//! to its solo reference — results (ids and score bits) and every work
//! counter — so the throughput number can never be bought with a
//! correctness or determinism regression. The serving counters
//! (`serving_queries`, `serving_plan_cache_hits`,
//! `serving_plan_cache_misses`, `serving_plan_cache_evictions`) are
//! exact by construction: misses equal the number of distinct shapes —
//! far below the default plan-cache capacity, so evictions pin at 0 —
//! however the threads interleave, and are gated exactly (integral
//! counters gate bit-for-bit); `serving_qps` (served queries per
//! second, best-of [`TIMED_REPS`] timed repetitions) is the wall-clock
//! throughput metric, gated with a generous floor (`bench_check` knows
//! `qps` keys are better-higher). The per-query latency percentiles
//! (`serving_p50_ms`/`serving_p95_ms`/`serving_p99_ms`, from the
//! server's log-spaced-bucket histogram over every served query) are
//! machine-dependent wall-clock artifacts: the `*_ms` suffix keeps them
//! out of the gate and the fingerprints by construction.
//!
//! Usage: `bench_serving` (no arguments; the gated configuration).
//!
//! Refresh the baseline by re-running both harnesses and re-gating —
//! see the "Serving layer" section of the README.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tkij_core::{ExecutionReport, LocalJoinStats, Tkij, TkijConfig, TkijServer};
use tkij_datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij_temporal::collection::CollectionId;
use tkij_temporal::params::PredicateParams;
use tkij_temporal::query::{table1, Query};

/// Timed repetitions of the threaded serve phase (best-of).
const TIMED_REPS: usize = 3;
/// Concurrent query threads (fixed: the gated configuration).
const THREADS: usize = 4;
/// Full passes over the query mix each thread makes per repetition.
const ROUNDS: usize = 2;
/// Intervals per collection.
const SIZE: usize = 3_000;
/// Startpoint span (dense enough that probe work dominates).
const START_SPAN: i64 = 15_000;
const SEED: u64 = 4242;
const GRANULES: u32 = 12;
const REDUCERS: usize = 4;
const K: usize = 50;

/// The mixed `table1` query families every thread rotates through.
fn query_mix() -> Vec<(&'static str, Query)> {
    vec![
        ("q_om", table1::q_om(PredicateParams::P1)),
        ("q_oo", table1::q_oo(PredicateParams::P1)),
        ("q_sm", table1::q_sm(PredicateParams::P2)),
        ("q_ss", table1::q_ss(PredicateParams::P1)),
        ("q_ff", table1::q_ff(PredicateParams::P1)),
        ("q_bb", table1::q_bb(PredicateParams::P3)),
    ]
}

/// The bit-comparable essence of one execution: results plus every
/// deterministic work counter.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    results: Vec<(Vec<u64>, u64)>,
    local_stats: Vec<LocalJoinStats>,
    topbuckets_selected: usize,
    topbuckets_solver_calls: usize,
    assignments_scored: u64,
    shuffle_records: u64,
    buckets: (u64, u64),
}

fn fingerprint(report: &ExecutionReport) -> Fingerprint {
    Fingerprint {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        local_stats: report.local_stats.clone(),
        topbuckets_selected: report.topbuckets.selected,
        topbuckets_solver_calls: report.topbuckets.solver_calls,
        assignments_scored: report.distribution.assignments_scored,
        shuffle_records: report.join.total_shuffle_records(),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
    }
}

/// One timed repetition: every thread serves the full mix [`ROUNDS`]
/// times (offset rotation, so shapes interleave across threads), each
/// report checked against its solo reference. Returns the wall time.
fn serve_rep(
    server: &Arc<TkijServer>,
    queries: &[(&'static str, Query)],
    solo: &[Fingerprint],
) -> Duration {
    let started = Instant::now();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let handle = server.handle();
            workers.push(scope.spawn(move || {
                for round in 0..ROUNDS {
                    for i in 0..queries.len() {
                        let qi = (i + t + round) % queries.len();
                        let report = handle.query(&queries[qi].1, K).expect("serve");
                        assert_eq!(
                            fingerprint(&report),
                            solo[qi],
                            "served {} diverges from its solo reference",
                            queries[qi].0
                        );
                    }
                }
            }));
        }
        for worker in workers {
            worker.join().expect("serving thread");
        }
    });
    started.elapsed()
}

fn main() {
    let cfg = SyntheticConfig {
        size: SIZE,
        start_range: (0, START_SPAN),
        length_range: (1, 100),
        seed: SEED,
    };
    let collections: Vec<_> =
        (0..3u32).map(|i| uniform_collection(CollectionId(i), &cfg)).collect();
    let engine = Tkij::new(TkijConfig::default().with_granules(GRANULES).with_reducers(REDUCERS));
    let dataset = engine.prepare(collections).expect("prepare");

    // Solo references: each shape end-to-end through the single-query
    // engine path (also the warm-up).
    let queries = query_mix();
    let solo: Vec<Fingerprint> = queries
        .iter()
        .map(|(_, q)| fingerprint(&engine.execute(&dataset, q, K).expect("solo")))
        .collect();

    let server = Arc::new(engine.serve(dataset));
    let mut best = Duration::MAX;
    for _ in 0..TIMED_REPS {
        best = best.min(serve_rep(&server, &queries, &solo));
    }

    let stats = server.stats();
    let per_rep = (THREADS * ROUNDS * queries.len()) as u64;
    let shapes = queries.len() as u64;
    // The serving counters are deterministic: one miss per distinct
    // shape (the plan-cache OnceLock construction), hits for every
    // repeat, regardless of thread interleaving — and the mix is far
    // below the default cache capacity, so nothing is ever evicted.
    assert_eq!(stats.queries, per_rep * TIMED_REPS as u64, "every query counted");
    assert_eq!(stats.plan_cache_misses, shapes, "one miss per distinct shape");
    assert_eq!(stats.plan_cache_hits, stats.queries - shapes, "hits are the repeats");
    assert_eq!(stats.plan_cache_evictions, 0, "the mix fits the bounded cache");
    assert!(shapes <= server.plan_cache_capacity() as u64, "the gated mix must fit the cache");
    assert_eq!(server.plan_cache_len(), queries.len());
    assert!(server.index_pool_len() > 0, "the shared index pool filled");
    let latency = server.latency();
    assert_eq!(latency.samples, stats.queries, "every served query lands in the histogram");
    assert!(
        latency.p50_ms <= latency.p95_ms && latency.p95_ms <= latency.p99_ms,
        "percentiles are monotone"
    );

    let wall_ms = best.as_secs_f64() * 1e3;
    let qps = per_rep as f64 / best.as_secs_f64().max(1e-9);

    let mut metrics: Vec<(String, String)> = Vec::new();
    let mut push = |key: &str, value: String| metrics.push((key.to_string(), value));
    push("serving_qps", format!("{qps:.3}"));
    push("serving_wall_ms", format!("{wall_ms:.3}"));
    push("serving_queries", stats.queries.to_string());
    push("serving_plan_cache_hits", stats.plan_cache_hits.to_string());
    push("serving_plan_cache_misses", stats.plan_cache_misses.to_string());
    push("serving_plan_cache_evictions", stats.plan_cache_evictions.to_string());
    // Latency percentiles: artifact-only (`*_ms` keys never gate and
    // never enter a fingerprint) — the paper's §4 response-time view of
    // the same runs the counters above pin exactly.
    push("serving_p50_ms", format!("{:.3}", latency.p50_ms));
    push("serving_p95_ms", format!("{:.3}", latency.p95_ms));
    push("serving_p99_ms", format!("{:.3}", latency.p99_ms));

    let names: Vec<&str> = queries.iter().map(|(n, _)| *n).collect();
    println!("{{");
    println!("  \"schema\": 3,");
    println!(
        "  \"workload\": {{ \"collections\": 3, \"size\": {SIZE}, \"start_span\": {START_SPAN}, \
         \"granules\": {GRANULES}, \"reducers\": {REDUCERS}, \"k\": {K}, \"seed\": {SEED}, \
         \"threads\": {THREADS}, \"rounds\": {ROUNDS}, \"reps\": {TIMED_REPS}, \
         \"queries\": \"{}\" }},",
        names.join("+")
    );
    println!("  \"metrics\": {{");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        println!("    \"{key}\": {value}{comma}");
    }
    println!("  }}");
    println!("}}");
}
