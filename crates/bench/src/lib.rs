//! # tkij-bench — experiment harnesses for every table and figure
//!
//! Each `benches/figXX_*.rs` target regenerates one figure (or text-level
//! experiment) of the paper's evaluation (§4) and prints the same
//! rows/series the paper plots, alongside the paper's qualitative
//! expectation so the shape comparison is auditable. `benches/micro.rs`
//! holds criterion micro-benchmarks of the core building blocks.
//!
//! ## Scaling
//!
//! The paper ran on a 6-worker Hadoop cluster with collections of up to
//! 5 M intervals. The harnesses default to a reduced sweep sized for a
//! small machine and print the mapping to the paper's parameters; set
//!
//! * `TKIJ_SCALE=<f64>` — fraction of the paper's collection sizes
//!   (default `0.02`);
//! * `TKIJ_FULL=1` — run the paper-scale sizes (hours on a laptop).
//!
//! Experiment *shapes* (who wins, crossovers, trends in `g`, `k`, `n`,
//! strategy) are scale-stable because they derive from pruning ratios and
//! assignment policy; see EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.

use std::time::{Duration, Instant};

pub mod gate;

/// Scaling knobs read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fraction of paper collection sizes.
    pub fraction: f64,
    /// Whether full paper scale was requested.
    pub full: bool,
}

impl Scale {
    /// Reads `TKIJ_SCALE` / `TKIJ_FULL`.
    pub fn from_env() -> Self {
        let full = std::env::var("TKIJ_FULL").is_ok_and(|v| v == "1" || v == "true");
        let fraction = if full {
            1.0
        } else {
            std::env::var("TKIJ_SCALE")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|f| *f > 0.0 && *f <= 1.0)
                .unwrap_or(0.02)
        };
        Scale { fraction, full }
    }

    /// Scales a paper-sized collection cardinality (minimum 500).
    pub fn size(&self, paper: usize) -> usize {
        ((paper as f64 * self.fraction) as usize).max(500)
    }

    /// Scales a k value (kept unscaled: the figures vary k explicitly).
    pub fn k(&self, paper: usize) -> usize {
        paper
    }
}

/// Prints the standard harness header.
pub fn header(figure: &str, paper_setup: &str, expectation: &str) {
    let scale = Scale::from_env();
    println!("================================================================");
    println!("{figure}");
    println!("  paper setup : {paper_setup}");
    println!(
        "  this run    : scale={} ({})",
        scale.fraction,
        if scale.full { "paper-scale" } else { "scaled-down; TKIJ_FULL=1 for paper sizes" }
    );
    println!("  paper shape : {expectation}");
    println!("----------------------------------------------------------------");
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Renders a simple aligned table: a header row then data rows.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let body: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("  {}", body.join("  "));
    };
    line(columns.iter().map(|c| c.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale { fraction: 0.02, full: false };
        assert_eq!(s.size(1_000_000), 20_000);
        assert_eq!(s.size(1_000), 500, "floors at 500");
        assert_eq!(s.k(100), 100);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
    }
}
