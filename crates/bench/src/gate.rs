//! The bench-regression gate's comparison logic, extracted from the
//! `bench_check` binary so every rule is unit-testable.
//!
//! Both inputs are reports of the shape the harnesses emit — an outer
//! JSON object whose `"metrics"` object holds flat `"key": number`
//! pairs. A *concatenation* of several reports (CI gates
//! `bench_smoke` + `bench_serving` in one call) is parsed as the union
//! of all its `"metrics"` objects; keys outside a metrics object
//! (`schema`, the `workload` echo) never gate and are not parsed.
//!
//! Gating rules, in order:
//!
//! 1. **Duplicate keys are a hard error** ([`duplicate_keys`]): a
//!    tracked key appearing twice in one input means two reports
//!    emitted the same metric — first-match lookup would silently
//!    shadow one of them, so the gate refuses to run at all (exit 2).
//! 2. **Untracked keys are skipped** ([`is_tracked`]): `*_ms` wall
//!    timings are machine-dependent artifacts, and keys without an
//!    underscore (`schema`) are structural.
//! 3. **Exact counters gate exactly** ([`is_exact`]): a key whose
//!    baseline *and* current values are both integral — and that is not
//!    a `speedup`/`qps` ratio, which may legitimately be integral by
//!    coincidence — is a deterministic work counter and must match
//!    bit-for-bit in **both** directions. Upward drift is a regression;
//!    downward drift means the committed baseline is stale, which is a
//!    behavior change to investigate, not an improvement to pocket.
//! 4. Everything else gates with the relative `tolerance`, inverted for
//!    better-higher keys ([`lower_is_worse`]); a zero baseline admits
//!    no growth at all.

/// Extracts every `"key": <number>` pair from each `"metrics"` object
/// of `text` (a report, or a concatenation of reports).
pub fn parse_metrics(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"metrics\"") {
        let after = &rest[pos + "\"metrics\"".len()..];
        let Some(open) = after.find('{') else { break };
        // A metrics object is flat: scan to its closing brace.
        let body = &after[open + 1..];
        let end = body.find('}').unwrap_or(body.len());
        parse_flat_pairs(&body[..end], &mut out);
        rest = &body[end..];
    }
    out
}

/// Scans flat `"key": <number>` pairs out of `text`.
fn parse_flat_pairs(text: &str, out: &mut Vec<(String, f64)>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = text[i + 1..].find('"').map(|o| i + 1 + o) else { break };
        let key = &text[i + 1..close];
        let mut j = close + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b':' {
            i = close + 1;
            continue;
        }
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let num_start = j;
        while j < bytes.len() && matches!(bytes[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            j += 1;
        }
        if let Ok(v) = text[num_start..j].parse::<f64>() {
            out.push((key.to_string(), v));
        }
        i = close + 1;
    }
}

/// Whether a key gates at all. Structural keys (no underscore, e.g.
/// `schema`) describe the workload, not a measurement; absolute timings
/// (`*_ms`) are machine-dependent and ride along in the artifact only.
pub fn is_tracked(key: &str) -> bool {
    key.contains('_') && !key.ends_with("_ms")
}

/// Regression direction: higher is worse, except speedup ratios,
/// pruning counters, and throughput (`qps`) metrics, where bigger is
/// better (a pruning or throughput collapse, not an improvement, is the
/// regression).
pub fn lower_is_worse(key: &str) -> bool {
    key.contains("speedup") || key.contains("pruned") || key.contains("qps")
}

/// Whether a tracked key's pair of values gates exactly: both integral
/// (a deterministic work counter on both sides) and not a
/// `speedup`/`qps` ratio, which is continuous no matter what value a
/// particular run happens to land on.
pub fn is_exact(key: &str, base: f64, cur: f64) -> bool {
    let integral = |v: f64| v.is_finite() && v == v.trunc();
    !key.contains("speedup") && !key.contains("qps") && integral(base) && integral(cur)
}

/// Tracked keys appearing more than once, in first-appearance order.
pub fn duplicate_keys(metrics: &[(String, f64)]) -> Vec<String> {
    let mut dups = Vec::new();
    for (i, (key, _)) in metrics.iter().enumerate() {
        if !is_tracked(key) || dups.iter().any(|d| d == key) {
            continue;
        }
        if metrics[i + 1..].iter().any(|(k, _)| k == key) {
            dups.push(key.clone());
        }
    }
    dups
}

/// One gated key's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or exactly equal, for exact counters).
    Ok,
    /// Beyond the relative tolerance in the regression direction.
    Regressed,
    /// An exact counter differs from the baseline (either direction).
    ExactMismatch,
    /// The key is absent from the current report.
    Missing,
}

/// One row of the gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The gated key.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Current value (`None` when missing).
    pub cur: Option<f64>,
    /// Relative delta `(cur − base) / base` (`∞` for growth from 0).
    pub delta: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Runs the gate: every tracked baseline key is checked against
/// `current`. The caller must reject duplicate keys (in either input)
/// *before* evaluating — [`Row`] lookups take the first occurrence.
pub fn evaluate(baseline: &[(String, f64)], current: &[(String, f64)], tolerance: f64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (key, base) in baseline {
        if !is_tracked(key) {
            continue;
        }
        let Some((_, cur)) = current.iter().find(|(k, _)| k == key) else {
            rows.push(Row {
                key: key.clone(),
                base: *base,
                cur: None,
                delta: f64::INFINITY,
                verdict: Verdict::Missing,
            });
            continue;
        };
        // A zero baseline has no meaningful relative delta: any growth
        // from 0 is an infinite regression (degenerate-case counters
        // like cap fallbacks are tracked precisely so that leaving the
        // degenerate regime fails loudly).
        let delta = if *base == 0.0 {
            if *cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur - base) / base
        };
        let verdict = if is_exact(key, *base, *cur) {
            if base == cur {
                Verdict::Ok
            } else {
                Verdict::ExactMismatch
            }
        } else if lower_is_worse(key) {
            if delta < -tolerance {
                Verdict::Regressed
            } else {
                Verdict::Ok
            }
        } else if delta > tolerance {
            Verdict::Regressed
        } else {
            Verdict::Ok
        };
        rows.push(Row { key: key.clone(), base: *base, cur: Some(*cur), delta, verdict });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(pairs: &str) -> String {
        format!("{{\n  \"schema\": 3,\n  \"metrics\": {{\n{pairs}\n  }}\n}}\n")
    }

    fn verdict_of(rows: &[Row], key: &str) -> Verdict {
        rows.iter().find(|r| r.key == key).unwrap_or_else(|| panic!("no row for {key}")).verdict
    }

    #[test]
    fn parses_only_metrics_objects() {
        let text = wrap("    \"a_count\": 3,\n    \"b_ratio\": 1.5");
        let got = parse_metrics(&text);
        assert_eq!(got, vec![("a_count".into(), 3.0), ("b_ratio".into(), 1.5)]);
    }

    #[test]
    fn concatenated_reports_union_their_metrics() {
        let text = format!(
            "{}{}",
            wrap("    \"a_count\": 3"),
            wrap("    \"serving_x\": 7,\n    \"serving_y_ms\": 12.5")
        );
        let got = parse_metrics(&text);
        assert_eq!(
            got,
            vec![("a_count".into(), 3.0), ("serving_x".into(), 7.0), ("serving_y_ms".into(), 12.5)]
        );
        // The structural keys outside the metrics objects never parse:
        // `schema` appears twice in the concatenation, yet is no
        // duplicate because it is not a metric.
        assert!(got.iter().all(|(k, _)| k != "schema"));
        assert_eq!(duplicate_keys(&got), Vec::<String>::new());
    }

    #[test]
    fn duplicate_tracked_keys_are_detected() {
        let text = format!("{}{}", wrap("    \"a_count\": 3"), wrap("    \"a_count\": 4"));
        assert_eq!(duplicate_keys(&parse_metrics(&text)), vec!["a_count".to_string()]);
        // Reported once, however often it repeats.
        let text3 = format!("{}{}", text, wrap("    \"a_count\": 5"));
        assert_eq!(duplicate_keys(&parse_metrics(&text3)), vec!["a_count".to_string()]);
    }

    #[test]
    fn duplicate_untracked_keys_are_ignored() {
        // `*_ms` artifacts and no-underscore keys may repeat freely —
        // they never gate, so shadowing cannot hide a regression.
        let text = format!("{}{}", wrap("    \"probe_ms\": 3.0"), wrap("    \"probe_ms\": 4.0"));
        assert_eq!(duplicate_keys(&parse_metrics(&text)), Vec::<String>::new());
    }

    #[test]
    fn exact_counters_mismatch_in_both_directions() {
        let base = vec![("tuples_scored".to_string(), 100.0)];
        let up = vec![("tuples_scored".to_string(), 101.0)];
        let down = vec![("tuples_scored".to_string(), 99.0)];
        let same = vec![("tuples_scored".to_string(), 100.0)];
        // +1% and −1% are far inside the 25% tolerance — the exact rule
        // must catch both anyway.
        assert_eq!(
            verdict_of(&evaluate(&base, &up, 0.25), "tuples_scored"),
            Verdict::ExactMismatch
        );
        assert_eq!(
            verdict_of(&evaluate(&base, &down, 0.25), "tuples_scored"),
            Verdict::ExactMismatch
        );
        assert_eq!(verdict_of(&evaluate(&base, &same, 0.25), "tuples_scored"), Verdict::Ok);
    }

    #[test]
    fn ratio_keys_stay_on_tolerance_even_when_integral() {
        // A qps/speedup baseline is often committed as a round floor
        // (e.g. 12.0): integral by coincidence, continuous by nature.
        let base = vec![("serving_qps".to_string(), 12.0), ("join_speedup".to_string(), 2.0)];
        let cur = vec![("serving_qps".to_string(), 54.0), ("join_speedup".to_string(), 1.9)];
        let rows = evaluate(&base, &cur, 0.25);
        assert_eq!(verdict_of(&rows, "serving_qps"), Verdict::Ok);
        assert_eq!(verdict_of(&rows, "join_speedup"), Verdict::Ok);
        // ... and the inversion still fires on a real collapse.
        let collapsed = vec![("serving_qps".to_string(), 5.0), ("join_speedup".to_string(), 0.5)];
        let rows = evaluate(&base, &collapsed, 0.25);
        assert_eq!(verdict_of(&rows, "serving_qps"), Verdict::Regressed);
        assert_eq!(verdict_of(&rows, "join_speedup"), Verdict::Regressed);
    }

    #[test]
    fn shuffle_spill_counters_gate_exactly_both_ways() {
        // The out-of-core shuffle counters are deterministic work
        // counters: integral on both sides, no `speedup`/`qps` marker —
        // so every one of them must fall under the two-sided exact rule.
        // The checksum is the load-bearing case: a 32-bit CRC fold is
        // exactly representable as an f64 integer, so any codec or
        // segmentation drift flips it and fails the gate bit-for-bit.
        let base = vec![
            ("shuffle_records_spilled".to_string(), 58_000.0),
            ("shuffle_spill_segments".to_string(), 58_000.0),
            ("shuffle_spill_bytes".to_string(), 2_400_000.0),
            ("shuffle_checksum".to_string(), 3_405_691_582.0),
        ];
        for (key, value) in &base {
            assert!(is_tracked(key), "{key} must gate");
            assert!(is_exact(key, *value, *value), "{key} must gate exactly");
            assert!(!lower_is_worse(key), "{key} is not a ratio");
        }
        let rows = evaluate(&base, &base, 0.25);
        assert!(rows.iter().all(|r| r.verdict == Verdict::Ok));
        // One record more or less, one flipped checksum bit: both
        // directions are exact mismatches despite the 25% tolerance.
        for (i, _) in base.iter().enumerate() {
            for delta in [-1.0, 1.0] {
                let mut cur = base.clone();
                cur[i].1 += delta;
                let rows = evaluate(&base, &cur, 0.25);
                assert_eq!(
                    verdict_of(&rows, &base[i].0),
                    Verdict::ExactMismatch,
                    "{} drifted by {delta} and must fail",
                    base[i].0
                );
            }
        }
    }

    #[test]
    fn non_integral_values_gate_with_tolerance() {
        let base = vec![("dtb_replication_factor".to_string(), 3.819944)];
        let within = vec![("dtb_replication_factor".to_string(), 3.9)];
        let beyond = vec![("dtb_replication_factor".to_string(), 5.0)];
        assert_eq!(
            verdict_of(&evaluate(&base, &within, 0.25), "dtb_replication_factor"),
            Verdict::Ok
        );
        assert_eq!(
            verdict_of(&evaluate(&base, &beyond, 0.25), "dtb_replication_factor"),
            Verdict::Regressed
        );
    }

    #[test]
    fn zero_baseline_admits_no_growth() {
        let base = vec![("dtb_cap_fallbacks".to_string(), 0.0)];
        let grown = vec![("dtb_cap_fallbacks".to_string(), 1.0)];
        let still = vec![("dtb_cap_fallbacks".to_string(), 0.0)];
        // Growth from 0 is an exact mismatch (both integral) — and the
        // tolerance path would flag it as an infinite regression too.
        assert_eq!(
            verdict_of(&evaluate(&base, &grown, 0.25), "dtb_cap_fallbacks"),
            Verdict::ExactMismatch
        );
        assert_eq!(verdict_of(&evaluate(&base, &still, 0.25), "dtb_cap_fallbacks"), Verdict::Ok);
    }

    #[test]
    fn ms_and_structural_keys_never_gate() {
        let base = vec![
            ("probe_ms".to_string(), 10.0),
            ("schema".to_string(), 3.0),
            ("real_counter".to_string(), 5.0),
        ];
        let cur = vec![("real_counter".to_string(), 5.0)];
        let rows = evaluate(&base, &cur, 0.25);
        // Only the tracked key produced a row: the missing `probe_ms`
        // and `schema` were skipped, not reported missing.
        assert_eq!(rows.len(), 1);
        assert_eq!(verdict_of(&rows, "real_counter"), Verdict::Ok);
    }

    #[test]
    fn missing_tracked_keys_fail() {
        let base = vec![("a_count".to_string(), 3.0)];
        let rows = evaluate(&base, &[], 0.25);
        assert_eq!(verdict_of(&rows, "a_count"), Verdict::Missing);
    }
}
