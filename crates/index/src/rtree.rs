//! A static, bulk-loaded R-tree over interval endpoints.
//!
//! Intervals are points `(start, end)` in the endpoint plane. TKIJ's local
//! join (paper §4, "Distributed join processing") keeps each bucket's
//! intervals "in memory \[in\] R-Trees" and retrieves, for an anchor
//! interval and a score threshold `v`, only the intervals that can score
//! at least `v` — which the predicate layer translates into an
//! axis-aligned window (see [`crate::threshold_candidates`]).
//!
//! The tree is packed with the Sort-Tile-Recursive (STR) algorithm: for a
//! static, known-in-advance point set this yields near-optimal leaves with
//! a trivial build. Fanout is fixed at [`FANOUT`].

use tkij_temporal::interval::Interval;

/// Maximum entries per node.
pub const FANOUT: usize = 16;

/// Inclusive rectangle in the (start, end) plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Minimum (start, end).
    pub min: (i64, i64),
    /// Maximum (start, end).
    pub max: (i64, i64),
}

impl Rect {
    fn of_point(iv: &Interval) -> Rect {
        Rect { min: (iv.start, iv.end), max: (iv.start, iv.end) }
    }

    fn union(self, other: Rect) -> Rect {
        Rect {
            min: (self.min.0.min(other.min.0), self.min.1.min(other.min.1)),
            max: (self.max.0.max(other.max.0), self.max.1.max(other.max.1)),
        }
    }

    fn intersects_window(&self, w: &Window) -> bool {
        (self.min.0 as f64) <= w.start.1
            && (self.max.0 as f64) >= w.start.0
            && (self.min.1 as f64) <= w.end.1
            && (self.max.1 as f64) >= w.end.0
    }

    /// Whether a concrete point rect is fully inside the window.
    fn inside_window(&self, w: &Window) -> bool {
        (self.min.0 as f64) >= w.start.0
            && (self.max.0 as f64) <= w.start.1
            && (self.min.1 as f64) >= w.end.0
            && (self.max.1 as f64) <= w.end.1
    }
}

/// A query window: inclusive `[lo, hi]` ranges on start and end
/// coordinates (possibly infinite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Range for the start coordinate.
    pub start: (f64, f64),
    /// Range for the end coordinate.
    pub end: (f64, f64),
}

impl Window {
    /// The window admitting every point.
    pub fn all() -> Self {
        Window {
            start: (f64::NEG_INFINITY, f64::INFINITY),
            end: (f64::NEG_INFINITY, f64::INFINITY),
        }
    }

    /// Whether an interval's endpoint point lies inside.
    #[inline]
    pub fn contains(&self, iv: &Interval) -> bool {
        let s = iv.start as f64;
        let e = iv.end as f64;
        s >= self.start.0 && s <= self.start.1 && e >= self.end.0 && e <= self.end.1
    }

    /// Whether the window is trivially empty.
    pub fn is_empty(&self) -> bool {
        self.start.0 > self.start.1 || self.end.0 > self.end.1
    }
}

impl From<tkij_temporal::predicate::ThresholdWindow> for Window {
    fn from(w: tkij_temporal::predicate::ThresholdWindow) -> Self {
        Window { start: w.start, end: w.end }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    /// Range into the packed items array.
    Leaf { lo: u32, hi: u32 },
    /// Child node indexes.
    Internal { children: Vec<u32> },
}

#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    kind: NodeKind,
}

/// A static R-tree over a set of intervals.
#[derive(Debug, Clone)]
pub struct RTree {
    items: Vec<Interval>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

impl RTree {
    /// Bulk-loads the tree with STR packing. The input order does not
    /// matter; queries visit items in packed (deterministic) order.
    pub fn bulk_load(mut items: Vec<Interval>) -> Self {
        if items.is_empty() {
            return RTree { items, nodes: Vec::new(), root: None };
        }
        // STR: sort by start, tile into √(n/FANOUT) vertical slices, sort
        // each slice by end, pack runs of FANOUT into leaves.
        items.sort_unstable_by_key(|iv| (iv.start, iv.end, iv.id));
        let n = items.len();
        let num_leaves = n.div_ceil(FANOUT);
        let slices = (num_leaves as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slices.max(1));
        for chunk in items.chunks_mut(slice_size.max(1)) {
            chunk.sort_unstable_by_key(|iv| (iv.end, iv.start, iv.id));
        }

        let mut nodes: Vec<Node> = Vec::with_capacity(2 * num_leaves);
        let mut level: Vec<u32> = Vec::with_capacity(num_leaves);
        let mut idx = 0usize;
        while idx < n {
            let hi = (idx + FANOUT).min(n);
            let rect = items[idx..hi]
                .iter()
                .map(Rect::of_point)
                .reduce(Rect::union)
                .expect("non-empty leaf");
            nodes.push(Node { rect, kind: NodeKind::Leaf { lo: idx as u32, hi: hi as u32 } });
            level.push((nodes.len() - 1) as u32);
            idx = hi;
        }
        // Build internal levels bottom-up.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
            for group in level.chunks(FANOUT) {
                let rect = group
                    .iter()
                    .map(|&c| nodes[c as usize].rect)
                    .reduce(Rect::union)
                    .expect("non-empty group");
                nodes.push(Node { rect, kind: NodeKind::Internal { children: group.to_vec() } });
                next.push((nodes.len() - 1) as u32);
            }
            level = next;
        }
        let root = Some(level[0]);
        RTree { items, nodes, root }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All indexed intervals in packed order.
    pub fn items(&self) -> &[Interval] {
        &self.items
    }

    /// Average concurrency of the indexed set
    /// ([`crate::endpoint_density`]) — the statistic per-bucket backend
    /// auto-selection keys on.
    pub fn density(&self) -> f64 {
        crate::endpoint_density(&self.items)
    }

    /// Visits every interval whose endpoint point lies in the window and
    /// returns the number of stored items examined (items of every leaf
    /// the traversal touched) — the backend's scan-effort telemetry.
    pub fn window_query<'t>(&'t self, window: &Window, mut visit: impl FnMut(&'t Interval)) -> u64 {
        if window.is_empty() {
            return 0;
        }
        let Some(root) = self.root else { return 0 };
        let mut examined = 0u64;
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if !node.rect.intersects_window(window) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { lo, hi } => {
                    let slice = &self.items[*lo as usize..*hi as usize];
                    examined += slice.len() as u64;
                    if node.rect.inside_window(window) {
                        // Whole leaf covered: no per-item test needed.
                        for iv in slice {
                            visit(iv);
                        }
                    } else {
                        for iv in slice {
                            if window.contains(iv) {
                                visit(iv);
                            }
                        }
                    }
                }
                NodeKind::Internal { children } => {
                    stack.extend(children.iter().rev().copied());
                }
            }
        }
        examined
    }

    /// Collects matching intervals (window query convenience).
    pub fn window_collect(&self, window: &Window) -> Vec<Interval> {
        let mut out = Vec::new();
        self.window_query(window, |iv| out.push(*iv));
        out
    }

    /// Height of the tree (0 for empty), for structure tests.
    pub fn height(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut h = 1;
        let mut ni = root;
        loop {
            match &self.nodes[ni as usize].kind {
                NodeKind::Leaf { .. } => return h,
                NodeKind::Internal { children } => {
                    h += 1;
                    ni = children[0];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    fn sample(n: u64) -> Vec<Interval> {
        (0..n)
            .map(|i| iv(i, (i as i64 * 37) % 500, (i as i64 * 37) % 500 + (i as i64 % 40)))
            .collect()
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let t = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.window_collect(&Window::all()), vec![]);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn full_window_returns_everything() {
        let items = sample(100);
        let t = RTree::bulk_load(items.clone());
        let mut got = t.window_collect(&Window::all());
        got.sort_by_key(|i| i.id);
        let mut want = items;
        want.sort_by_key(|i| i.id);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_window_returns_nothing() {
        let t = RTree::bulk_load(sample(50));
        let w = Window { start: (10.0, 5.0), end: (0.0, 100.0) };
        assert!(w.is_empty());
        assert_eq!(t.window_collect(&w).len(), 0);
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        assert_eq!(RTree::bulk_load(sample(10)).height(), 1);
        let t = RTree::bulk_load(sample(1000));
        // 1000 items / 16 = 63 leaves → 2 internal levels.
        assert!(t.height() <= 3, "height {}", t.height());
    }

    #[test]
    fn window_query_half_open_infinities() {
        let t = RTree::bulk_load(vec![iv(0, 0, 5), iv(1, 10, 15), iv(2, 20, 25)]);
        let w = Window { start: (9.0, f64::INFINITY), end: (f64::NEG_INFINITY, f64::INFINITY) };
        let got = t.window_collect(&w);
        assert_eq!(got.iter().map(|i| i.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    proptest! {
        /// R-tree window queries agree exactly with a linear scan.
        #[test]
        fn matches_linear_scan(
            points in proptest::collection::vec((0i64..200, 0i64..60), 0..300),
            ws in 0i64..200, ww in 0i64..100,
            we in 0i64..260, wh in 0i64..100,
        ) {
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let t = RTree::bulk_load(items.clone());
            let w = Window {
                start: (ws as f64, (ws + ww) as f64),
                end: (we as f64, (we + wh) as f64),
            };
            let mut got = t.window_collect(&w);
            got.sort_by_key(|i| i.id);
            let mut want: Vec<Interval> =
                items.iter().filter(|i| w.contains(i)).copied().collect();
            want.sort_by_key(|i| i.id);
            prop_assert_eq!(got, want);
        }
    }
}
