//! A uniform grid over the endpoint plane — the simple alternative access
//! path used as an ablation against the R-tree (and as a correctness
//! oracle in tests).

use crate::rtree::Window;
use tkij_temporal::interval::Interval;

/// A fixed-resolution grid index over interval endpoint points.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: i64,
    origin: (i64, i64),
    cols: usize,
    rows: usize,
    /// Per-cell interval lists, row-major.
    cells: Vec<Vec<Interval>>,
    len: usize,
}

impl GridIndex {
    /// Builds a grid with the given cell width (≥ 1).
    pub fn build(items: Vec<Interval>, cell: i64) -> Self {
        let cell = cell.max(1);
        if items.is_empty() {
            return GridIndex {
                cell,
                origin: (0, 0),
                cols: 1,
                rows: 1,
                cells: vec![Vec::new()],
                len: 0,
            };
        }
        let min_s = items.iter().map(|i| i.start).min().expect("non-empty");
        let max_s = items.iter().map(|i| i.start).max().expect("non-empty");
        let min_e = items.iter().map(|i| i.end).min().expect("non-empty");
        let max_e = items.iter().map(|i| i.end).max().expect("non-empty");
        let cols = ((max_s - min_s) / cell + 1) as usize;
        let rows = ((max_e - min_e) / cell + 1) as usize;
        let mut cells = vec![Vec::new(); cols * rows];
        let len = items.len();
        for iv in items {
            let c = ((iv.start - min_s) / cell) as usize;
            let r = ((iv.end - min_e) / cell) as usize;
            cells[r * cols + c].push(iv);
        }
        // Deterministic within-cell order.
        for v in &mut cells {
            v.sort_unstable_by_key(|i| (i.start, i.end, i.id));
        }
        GridIndex { cell, origin: (min_s, min_e), cols, rows, cells, len }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visits every interval in the window and returns the number of
    /// stored items examined (items of every scanned cell).
    pub fn window_query<'t>(&'t self, w: &Window, mut visit: impl FnMut(&'t Interval)) -> u64 {
        if w.is_empty() || self.len == 0 {
            return 0;
        }
        let clamp_col = |x: f64| -> usize {
            let rel = (x - self.origin.0 as f64) / self.cell as f64;
            rel.floor().clamp(0.0, (self.cols - 1) as f64) as usize
        };
        let clamp_row = |y: f64| -> usize {
            let rel = (y - self.origin.1 as f64) / self.cell as f64;
            rel.floor().clamp(0.0, (self.rows - 1) as f64) as usize
        };
        let c0 = clamp_col(w.start.0);
        let c1 = clamp_col(w.start.1);
        let r0 = clamp_row(w.end.0);
        let r1 = clamp_row(w.end.1);
        let mut examined = 0u64;
        for r in r0..=r1 {
            for c in c0..=c1 {
                let cell = &self.cells[r * self.cols + c];
                examined += cell.len() as u64;
                for iv in cell {
                    if w.contains(iv) {
                        visit(iv);
                    }
                }
            }
        }
        examined
    }

    /// Collects matching intervals.
    pub fn window_collect(&self, w: &Window) -> Vec<Interval> {
        let mut out = Vec::new();
        self.window_query(w, |iv| out.push(*iv));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn empty_grid() {
        let g = GridIndex::build(vec![], 16);
        assert!(g.is_empty());
        assert_eq!(g.window_collect(&Window::all()), vec![]);
    }

    #[test]
    fn finds_expected_cells() {
        let g = GridIndex::build(vec![iv(0, 0, 10), iv(1, 50, 60), iv(2, 100, 200)], 32);
        let w = Window { start: (40.0, 110.0), end: (0.0, 70.0) };
        let got = g.window_collect(&w);
        assert_eq!(got.iter().map(|i| i.id).collect::<Vec<_>>(), vec![1]);
    }

    proptest! {
        /// Grid queries agree with a linear scan for arbitrary windows,
        /// including unbounded ones.
        #[test]
        fn matches_linear_scan(
            points in proptest::collection::vec((-100i64..100, 0i64..50), 0..150),
            cell in 1i64..64,
            ws in -120i64..120, ww in 0i64..120,
            unbounded in proptest::bool::ANY,
        ) {
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let g = GridIndex::build(items.clone(), cell);
            let w = Window {
                start: (ws as f64, (ws + ww) as f64),
                end: if unbounded {
                    (f64::NEG_INFINITY, f64::INFINITY)
                } else {
                    (ws as f64 - 10.0, (ws + ww) as f64 + 30.0)
                },
            };
            let mut got = g.window_collect(&w);
            got.sort_by_key(|i| i.id);
            let mut want: Vec<Interval> =
                items.iter().filter(|i| w.contains(i)).copied().collect();
            want.sort_by_key(|i| i.id);
            prop_assert_eq!(got, want);
        }
    }
}
