//! # tkij-index — access paths for TKIJ's local joins
//!
//! Each reducer of the join phase evaluates the RTJ query on the buckets
//! it received. The paper's implementation "uses R-Trees to access
//! intervals in memory: for an interval `x_i` and a score value `v`, it
//! queries the R-Tree and returns only intervals `x_j` s.t.
//! `s-p(i,j)(x_i, x_j) ≥ v`" (§4). This crate provides:
//!
//! * [`RTree`] — a static STR bulk-loaded R-tree over endpoint points,
//! * [`SweepIndex`] — the sweeping-based, endpoint-sorted store (Piatov
//!   et al.): gapless structure-of-arrays lanes, binary-searched runs,
//!   sequential sweeps — the cache-friendly default of the local-join
//!   hot path, scanning runs with the chunked-mask or scalar kind of
//!   [`lanes`] ([`SweepScanKind`], bit-identical by contract),
//! * [`GridIndex`] — a uniform-grid alternative (ablation / oracle),
//! * [`CandidateSource`] — the access-path abstraction the local join is
//!   generic over, so backends are swappable without touching join logic,
//! * [`threshold_candidates`] — the predicate-to-window translation that
//!   implements the quoted retrieval: the score constraint becomes an
//!   axis-aligned window (conservative when a primitive compares derived
//!   quantities, e.g. `sparks`' lengths), and candidates are re-checked
//!   exactly by the caller.

pub mod grid;
pub mod lanes;
pub mod rtree;
pub mod sweep;

pub use grid::GridIndex;
pub use lanes::{EndpointLanes, SweepScanKind, LANE_WIDTH, SCAN_KIND_ENV};
pub use rtree::{RTree, Rect, Window, FANOUT};
pub use sweep::SweepIndex;

use tkij_temporal::expr::Side;
use tkij_temporal::interval::Interval;
use tkij_temporal::predicate::TemporalPredicate;

/// An access path over one bucket's intervals, answering the endpoint-
/// plane window queries of the score-threshold retrieval.
///
/// Every backend must visit *exactly* the stored intervals whose
/// `(start, end)` point lies in the window (property-tested against each
/// other and a linear scan) — visit *order* is backend-specific but
/// deterministic.
pub trait CandidateSource: Sync {
    /// Builds the index from a bucket's intervals (input order is
    /// irrelevant).
    fn build(items: Vec<Interval>) -> Self
    where
        Self: Sized;

    /// All indexed intervals, in the backend's deterministic order.
    fn items(&self) -> &[Interval];

    /// Visits every interval in the window; returns the number of stored
    /// items *examined* (scan-effort telemetry, ≥ the number visited).
    fn probe<'t>(&'t self, window: &Window, visit: &mut dyn FnMut(&'t Interval)) -> u64;

    /// Number of indexed intervals.
    fn len(&self) -> usize {
        self.items().len()
    }

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.items().is_empty()
    }

    /// Deterministic fixed-size chunk views over the backend's item
    /// order — the probe-stream sharding unit of the intra-reducer
    /// parallel join. Chunk boundaries depend only on the backend's
    /// deterministic item order and `chunk_items` (clamped to ≥ 1), never
    /// on thread count, so chunked evaluation is reproducible; the
    /// chunks concatenate back to exactly [`CandidateSource::items`].
    fn item_chunks(&self, chunk_items: usize) -> std::slice::Chunks<'_, Interval> {
        self.items().chunks(chunk_items.max(1))
    }
}

/// The density of an interval set: average number of concurrent
/// intervals over its occupied span, `Σ (end − start + 1) / (max_end −
/// min_start + 1)`; `0.0` for an empty set.
///
/// This is the statistic backend auto-selection keys on — the sweeping
/// store's probe advantage over the R-tree grows with exactly this
/// quantity (window population scales with concurrency; see the fig15
/// density sweep). Both backends expose it as [`RTree::density`] /
/// [`SweepIndex::density`], and the engine computes the identical figure
/// per bucket during statistics collection.
pub fn endpoint_density(items: &[Interval]) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    let mut duration: u64 = 0;
    let mut min_start = i64::MAX;
    let mut max_end = i64::MIN;
    for iv in items {
        duration += (iv.end - iv.start + 1) as u64;
        min_start = min_start.min(iv.start);
        max_end = max_end.max(iv.end);
    }
    duration as f64 / (max_end - min_start + 1) as f64
}

impl CandidateSource for RTree {
    fn build(items: Vec<Interval>) -> Self {
        RTree::bulk_load(items)
    }

    fn items(&self) -> &[Interval] {
        RTree::items(self)
    }

    fn probe<'t>(&'t self, window: &Window, visit: &mut dyn FnMut(&'t Interval)) -> u64 {
        self.window_query(window, visit)
    }
}

impl CandidateSource for SweepIndex {
    fn build(items: Vec<Interval>) -> Self {
        SweepIndex::build(items)
    }

    fn items(&self) -> &[Interval] {
        SweepIndex::items(self)
    }

    fn probe<'t>(&'t self, window: &Window, visit: &mut dyn FnMut(&'t Interval)) -> u64 {
        self.window_query(window, visit)
    }
}

/// A shared (`Arc`-held) index is itself a candidate source: the serving
/// layer builds each (collection, bucket) index once and hands clones of
/// the `Arc` to every concurrent query's reducers. Probing through the
/// `Arc` delegates to the inner backend, so visit order and the examined
/// -item count are bit-identical to probing an owned index.
impl<C: CandidateSource + Send> CandidateSource for std::sync::Arc<C> {
    fn build(items: Vec<Interval>) -> Self {
        std::sync::Arc::new(C::build(items))
    }

    fn items(&self) -> &[Interval] {
        (**self).items()
    }

    fn probe<'t>(&'t self, window: &Window, visit: &mut dyn FnMut(&'t Interval)) -> u64 {
        (**self).probe(window, visit)
    }
}

/// Visits the intervals of `index` that *may* satisfy
/// `s-p(anchor, ·) ≥ v` (or `s-p(·, anchor) ≥ v` when the anchor plays the
/// right side). Returns the number of stored items the backend examined.
///
/// Every interval actually scoring `≥ v` against the anchor is visited
/// (soundness, property-tested); visited intervals still need an exact
/// score check because the window is a conservative box.
pub fn threshold_candidates<'t, C: CandidateSource>(
    index: &'t C,
    predicate: &TemporalPredicate,
    anchor: &Interval,
    anchor_side: Side,
    v: f64,
    mut visit: impl FnMut(&'t Interval),
) -> u64 {
    let window: Window = predicate.threshold_window(anchor, anchor_side, v).into();
    index.probe(&window, &mut visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::predicate::PredicateKind;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn meets_threshold_prunes_far_intervals() {
        // Anchor ends at 100; s-meets (λ=4, ρ=8) at v=1.0 admits only
        // intervals starting in [96, 104].
        let p = PredicateParams::new(4, 8, 0, 0);
        let pred = TemporalPredicate::meets(p);
        let items: Vec<Interval> =
            (0..100).map(|i| iv(i, i as i64 * 3, i as i64 * 3 + 50)).collect();
        let tree = RTree::bulk_load(items.clone());
        let anchor = iv(1000, 0, 100);
        let mut got = Vec::new();
        threshold_candidates(&tree, &pred, &anchor, Side::Left, 1.0, |c| got.push(*c));
        assert!(!got.is_empty());
        for c in &got {
            assert!((96..=104).contains(&c.start), "candidate {c:?} outside window");
        }
        // Every true scorer is among the candidates.
        for c in &items {
            if pred.score(&anchor, c) >= 1.0 {
                assert!(got.contains(c));
            }
        }
    }

    #[test]
    fn zero_threshold_scans_everything() {
        let pred = TemporalPredicate::before(PredicateParams::P1);
        let items: Vec<Interval> = (0..20).map(|i| iv(i, i as i64, i as i64 + 5)).collect();
        let tree = RTree::bulk_load(items);
        let mut count = 0;
        threshold_candidates(&tree, &pred, &iv(99, 0, 1), Side::Left, 0.0, |_| count += 1);
        assert_eq!(count, 20);
    }

    proptest! {
        /// Soundness across predicates, sides and thresholds: every
        /// interval scoring ≥ v is visited.
        #[test]
        fn candidates_superset_of_scorers(
            kind_idx in 0usize..16,
            points in proptest::collection::vec((0i64..120, 0i64..40), 1..80),
            a_s in 0i64..120, a_w in 0i64..40,
            v in 0.05f64..1.0,
            anchor_left in proptest::bool::ANY,
        ) {
            let kind = PredicateKind::all()[kind_idx];
            let pred = TemporalPredicate::from_kind(kind, PredicateParams::P3, 6);
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let tree = RTree::bulk_load(items.clone());
            let anchor = iv(9999, a_s, a_s + a_w);
            let side = if anchor_left { Side::Left } else { Side::Right };
            let mut seen = std::collections::BTreeSet::new();
            threshold_candidates(&tree, &pred, &anchor, side, v, |c| {
                seen.insert(c.id);
            });
            for c in &items {
                let score = match side {
                    Side::Left => pred.score(&anchor, c),
                    Side::Right => pred.score(c, &anchor),
                };
                if score >= v {
                    prop_assert!(
                        seen.contains(&c.id),
                        "{kind:?}: interval {c:?} scores {score} ≥ {v} but was pruned"
                    );
                }
            }
        }

        /// Sweep and R-tree agree on threshold candidate sets for random
        /// score-threshold windows across every predicate kind and side.
        #[test]
        fn sweep_rtree_agree_on_threshold_windows(
            kind_idx in 0usize..16,
            points in proptest::collection::vec((0i64..200, 0i64..50), 1..120),
            a_s in 0i64..200, a_w in 0i64..50,
            v in 0.0f64..1.0,
            anchor_left in proptest::bool::ANY,
        ) {
            let kind = PredicateKind::all()[kind_idx];
            let pred = TemporalPredicate::from_kind(kind, PredicateParams::P2, 8);
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let tree = RTree::bulk_load(items.clone());
            let sweep = SweepIndex::build(items);
            let anchor = iv(9999, a_s, a_s + a_w);
            let side = if anchor_left { Side::Left } else { Side::Right };
            let mut a = Vec::new();
            let mut b = Vec::new();
            threshold_candidates(&tree, &pred, &anchor, side, v, |c| a.push(*c));
            threshold_candidates(&sweep, &pred, &anchor, side, v, |c| b.push(*c));
            a.sort_by_key(|i| i.id);
            b.sort_by_key(|i| i.id);
            prop_assert_eq!(a, b, "{:?} side={:?} v={}", kind, side, v);
        }

        /// Grid and R-tree agree on threshold candidate sets.
        #[test]
        fn grid_rtree_agree(
            points in proptest::collection::vec((0i64..200, 0i64..50), 1..100),
            a_s in 0i64..200, a_w in 0i64..50,
            v in 0.1f64..1.0,
        ) {
            let pred = TemporalPredicate::overlaps(PredicateParams::P1);
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let tree = RTree::bulk_load(items.clone());
            let grid = GridIndex::build(items, 16);
            let anchor = iv(9999, a_s, a_s + a_w);
            let window: Window = pred.threshold_window(&anchor, Side::Left, v).into();
            let mut a = tree.window_collect(&window);
            let mut b = grid.window_collect(&window);
            a.sort_by_key(|i| i.id);
            b.sort_by_key(|i| i.id);
            prop_assert_eq!(a, b);
        }
    }
}
