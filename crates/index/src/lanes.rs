//! Vectorized sweep lanes: the chunked, structure-of-arrays in-window
//! scan behind [`crate::SweepIndex`]'s hot loop.
//!
//! A sweep probe binary-searches an endpoint run and then tests the
//! *other* coordinate of every item in the run against the window. Since
//! PR 2 that test was one scalar, branchy compare per item; this module
//! replaces it with the batched formulation Piatov-style sweep joins
//! exploit: the run's filter coordinates live in a gapless
//! structure-of-arrays lane, scanned in fixed-width chunks of
//! [`LANE_WIDTH`] values. Each chunk is compared branch-free into a hit
//! *mask* (one bit per lane slot, assembled with integer shifts), and
//! matching slots are drained from the mask in ascending bit order; a
//! trailing partial chunk falls back to an explicit scalar tail. The
//! chunk body is a fixed-trip-count, branch-free loop over `[f64;
//! LANE_WIDTH]` — exactly the shape LLVM's autovectorizer turns into
//! packed `cmppd`/`vcmppd` compares on every x86-64 baseline.
//!
//! # Why `f64` key lanes (and not raw `u64` endpoint keys)
//!
//! The reference semantics every backend must reproduce is
//! [`Window::contains`]: `(endpoint as f64)` compared against `f64`
//! window bounds (which may be infinite). Storing the *cast* endpoint in
//! the lane makes the chunked compare bit-identical to the scalar
//! reference by construction — the cast is performed once at build time
//! instead of per probe, and no bound-to-integer conversion (with its
//! rounding edge cases near `2^63`) is ever needed. Packed `f64`
//! compares are also the portably vectorizable choice: SSE2 has
//! `cmppd`, while 64-bit integer compares only arrive with SSE4.2.
//!
//! # Determinism contract
//!
//! [`SweepScanKind::Scalar`] and [`SweepScanKind::Chunked`] visit the
//! **same slots in the same ascending order** and examine the same run
//! (the caller's `items_scanned` telemetry is the run length for both).
//! The kinds differ only in instruction schedule — wall clock moves,
//! counters cannot. `tests/sweep_scan_equivalence.rs` locks this with a
//! scalar-oracle battery over every tail path.
//!
//! [`Window::contains`]: crate::rtree::Window::contains

use std::ops::Range;
use std::str::FromStr;
use tkij_temporal::error::ParseVariantError;

/// Lane slots per fixed-width chunk of the chunked scan — 8 × 64-bit
/// values, one 64-byte cache line per chunk load. The chunked scan's
/// mask loop has this fixed trip count, and the scalar tail handles at
/// most `LANE_WIDTH - 1` trailing slots.
pub const LANE_WIDTH: usize = 8;

/// Environment variable forcing a scan kind (`scalar` / `chunked`)
/// onto `TkijConfig::default()` — the CI hook that re-runs the
/// equivalence and determinism suites with the scalar reference.
pub const SCAN_KIND_ENV: &str = "TKIJ_SWEEP_SCAN";

/// How [`crate::SweepIndex`] tests a swept run against the window: the
/// scalar reference (one branchy compare per item, PR-2 behavior) or
/// the chunked lane scan ([`LANE_WIDTH`]-wide hit masks with a scalar
/// tail). Both kinds visit the identical set in the identical order and
/// report the identical scan count — the knob trades nothing but wall
/// clock, which is why `Chunked` is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepScanKind {
    /// One compare-and-branch per run item — the bit-identical
    /// reference the equivalence battery checks `Chunked` against.
    Scalar,
    /// Fixed-width `[f64; LANE_WIDTH]` compares producing a hit mask,
    /// drained in ascending bit order, with an explicit scalar tail.
    #[default]
    Chunked,
}

impl SweepScanKind {
    /// All scan kinds with display names, for harness sweeps.
    pub fn all() -> [(&'static str, SweepScanKind); 2] {
        [("scalar", SweepScanKind::Scalar), ("chunked", SweepScanKind::Chunked)]
    }

    /// Display name of the scan kind.
    pub fn name(&self) -> &'static str {
        match self {
            SweepScanKind::Scalar => "scalar",
            SweepScanKind::Chunked => "chunked",
        }
    }

    /// The kind forced through [`SCAN_KIND_ENV`], if set.
    ///
    /// # Panics
    ///
    /// Panics on an unparsable value: a CI leg that *means* to force the
    /// scalar reference must never silently run the default.
    pub fn from_env() -> Option<SweepScanKind> {
        std::env::var(SCAN_KIND_ENV)
            .ok()
            .map(|v| v.parse().unwrap_or_else(|e| panic!("{SCAN_KIND_ENV}: {e}")))
    }
}

impl FromStr for SweepScanKind {
    type Err = ParseVariantError;

    /// Parses a scan-kind display name (case-insensitive), so bench bins
    /// and the CI env hook can select kinds by flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(SweepScanKind::Scalar),
            "chunked" => Ok(SweepScanKind::Chunked),
            _ => Err(ParseVariantError {
                what: "sweep scan kind",
                input: s.to_string(),
                expected: &["scalar", "chunked"],
            }),
        }
    }
}

/// One endpoint order of a sweep store, as gapless structure-of-arrays
/// lanes: a sorted **key** lane (binary-search target) and an aligned
/// **filter** lane holding the other coordinate of the same item (sweep
/// test). Both lanes store the `as f64` cast of the endpoint, computed
/// once at build time, so probes compare exactly what
/// [`Window::contains`] would — see the module docs.
///
/// [`Window::contains`]: crate::rtree::Window::contains
#[derive(Debug, Clone, Default)]
pub struct EndpointLanes {
    keys: Vec<f64>,
    filters: Vec<f64>,
}

impl EndpointLanes {
    /// Builds the lanes from aligned `(key, filter)` endpoint pairs.
    /// `keys` must be non-decreasing (the caller sorts items).
    pub fn new(keys: Vec<f64>, filters: Vec<f64>) -> Self {
        debug_assert_eq!(keys.len(), filters.len());
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "key lane must be sorted");
        EndpointLanes { keys, filters }
    }

    /// Number of lane slots.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the lanes are empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The contiguous run of slots whose key lies in `[lo, hi]`. Always
    /// a well-formed (possibly empty) range: reversed bounds (`lo > hi`)
    /// clamp to an empty run, so the result can be sliced or iterated
    /// directly.
    pub fn run(&self, lo: f64, hi: f64) -> Range<usize> {
        let i0 = self.keys.partition_point(|&k| k < lo);
        let i1 = self.keys.partition_point(|&k| k <= hi);
        i0..i1.max(i0)
    }

    /// Sweeps `run` of the filter lane for values in `[lo, hi]`,
    /// invoking `on_hit` with each matching **absolute** slot index in
    /// ascending order. The visit set, order, and (caller-counted) run
    /// length are identical for both kinds.
    #[inline]
    pub fn sweep(
        &self,
        kind: SweepScanKind,
        run: Range<usize>,
        lo: f64,
        hi: f64,
        mut on_hit: impl FnMut(usize),
    ) {
        let base = run.start;
        let lane = &self.filters[run];
        match kind {
            SweepScanKind::Scalar => scan_scalar(lane, lo, hi, |i| on_hit(base + i)),
            SweepScanKind::Chunked => scan_chunked(lane, lo, hi, |i| on_hit(base + i)),
        }
    }
}

/// The scalar reference scan: one compare-and-branch per slot, in slot
/// order — byte-for-byte the PR-2 sweep loop.
#[inline]
pub fn scan_scalar(lane: &[f64], lo: f64, hi: f64, mut on_hit: impl FnMut(usize)) {
    for (i, &v) in lane.iter().enumerate() {
        if v >= lo && v <= hi {
            on_hit(i);
        }
    }
}

/// The chunked lane scan: full [`LANE_WIDTH`]-slot chunks are compared
/// branch-free into a hit mask (bit `j` ⇔ slot `base + j` inside the
/// window) whose set bits are drained in ascending order; the trailing
/// partial chunk runs the explicit scalar tail. Equivalent to
/// [`scan_scalar`] in visit set *and* order for every input — the
/// property the scalar-oracle battery pins.
#[inline]
pub fn scan_chunked(lane: &[f64], lo: f64, hi: f64, mut on_hit: impl FnMut(usize)) {
    let mut chunks = lane.chunks_exact(LANE_WIDTH);
    let mut base = 0usize;
    for chunk in chunks.by_ref() {
        let c: &[f64; LANE_WIDTH] = chunk.try_into().expect("chunks_exact yields full chunks");
        // Fixed trip count, no data-dependent branches: `>=`/`<=` fold
        // to packed compares and the mask assembles with shifts — the
        // autovectorizer-friendly shape. NaN bounds compare false, so a
        // degenerate window produces an all-zero mask, like the scalar
        // reference.
        let mut mask = 0u32;
        for (j, &v) in c.iter().enumerate() {
            mask |= (((v >= lo) & (v <= hi)) as u32) << j;
        }
        const FULL: u32 = (1 << LANE_WIDTH) - 1;
        if mask == FULL {
            // Saturated chunk — the common case in the dense regime,
            // where swept runs are nearly pure hit sets: visit straight
            // through without the bit-drain loop.
            for j in 0..LANE_WIDTH {
                on_hit(base + j);
            }
        } else {
            // Drain set bits lowest-first: visit order stays slot order.
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                on_hit(base + j);
                mask &= mask - 1;
            }
        }
        base += LANE_WIDTH;
    }
    // Explicit scalar tail: at most LANE_WIDTH - 1 trailing slots.
    scan_scalar(chunks.remainder(), lo, hi, |i| on_hit(base + i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hits(kind: SweepScanKind, lane: &[f64], lo: f64, hi: f64) -> Vec<usize> {
        let lanes = EndpointLanes::new(vec![0.0; lane.len()], lane.to_vec());
        let mut out = Vec::new();
        lanes.sweep(kind, 0..lane.len(), lo, hi, |i| out.push(i));
        out
    }

    #[test]
    fn names_round_trip_and_reject_unknowns() {
        for (name, kind) in SweepScanKind::all() {
            assert_eq!(name.parse::<SweepScanKind>().unwrap(), kind);
            assert_eq!(kind.name(), name);
        }
        assert_eq!("Chunked".parse::<SweepScanKind>().unwrap(), SweepScanKind::Chunked);
        assert_eq!("SCALAR".parse::<SweepScanKind>().unwrap(), SweepScanKind::Scalar);
        let err = "simd".parse::<SweepScanKind>().unwrap_err();
        assert_eq!(err.what, "sweep scan kind");
        assert!(err.to_string().contains("scalar, chunked"), "{err}");
        assert_eq!(SweepScanKind::default(), SweepScanKind::Chunked);
    }

    #[test]
    fn every_tail_length_matches_the_scalar_reference() {
        // Run lengths pinning each code path: empty, pure tail (1,
        // LANE_WIDTH-1), exactly one chunk, one chunk + 1-slot tail, and
        // many chunks + a 3-slot tail.
        for n in [0, 1, LANE_WIDTH - 1, LANE_WIDTH, LANE_WIDTH + 1, 8 * LANE_WIDTH + 3] {
            let lane: Vec<f64> = (0..n).map(|i| ((i * 7) % 10) as f64).collect();
            for (lo, hi) in [(2.0, 6.0), (0.0, 9.0), (11.0, 20.0), (5.0, 5.0), (6.0, 2.0)] {
                assert_eq!(
                    hits(SweepScanKind::Chunked, &lane, lo, hi),
                    hits(SweepScanKind::Scalar, &lane, lo, hi),
                    "n={n} window=[{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn infinite_and_nan_bounds_match_scalar() {
        let lane: Vec<f64> = (0..27).map(|i| i as f64 - 13.0).collect();
        let inf = f64::INFINITY;
        for (lo, hi) in [
            (-inf, inf),
            (-inf, 0.0),
            (0.0, inf),
            (inf, -inf), // inverted infinite bounds: no hits
            (f64::NAN, 5.0),
            (0.0, f64::NAN),
        ] {
            let chunked = hits(SweepScanKind::Chunked, &lane, lo, hi);
            assert_eq!(chunked, hits(SweepScanKind::Scalar, &lane, lo, hi), "[{lo}, {hi}]");
            if lo.is_nan() || hi.is_nan() {
                assert!(chunked.is_empty(), "NaN bounds admit nothing");
            }
        }
        assert_eq!(hits(SweepScanKind::Chunked, &lane, -inf, inf).len(), 27);
    }

    #[test]
    fn run_search_is_the_partition_point_pair() {
        let lanes =
            EndpointLanes::new(vec![0.0, 1.0, 1.0, 3.0, 7.0], vec![9.0, 8.0, 7.0, 6.0, 5.0]);
        assert_eq!(lanes.len(), 5);
        assert!(!lanes.is_empty());
        assert_eq!(lanes.run(1.0, 3.0), 1..4);
        assert_eq!(lanes.run(1.0, 1.0), 1..3);
        assert_eq!(lanes.run(4.0, 6.0), 4..4, "empty run between keys");
        let inverted = lanes.run(8.0, 2.0);
        assert!(inverted.is_empty(), "reversed bounds clamp to an empty run: {inverted:?}");
        assert_eq!((inverted.start, inverted.end), (5, 5));
        // A clamped (empty) run is safe to sweep directly.
        lanes.sweep(SweepScanKind::Chunked, inverted, 0.0, 10.0, |_| panic!("no slots"));
        assert!(EndpointLanes::default().is_empty());
        assert_eq!(EndpointLanes::default().run(f64::NEG_INFINITY, f64::INFINITY), 0..0);
    }

    #[test]
    fn sweep_reports_absolute_indices() {
        let filters: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let keys = filters.clone();
        let lanes = EndpointLanes::new(keys, filters);
        for kind in [SweepScanKind::Scalar, SweepScanKind::Chunked] {
            let mut out = Vec::new();
            lanes.sweep(kind, 10..20, 0.0, 14.0, |i| out.push(i));
            assert_eq!(out, vec![10, 11, 12, 13, 14], "{kind:?}");
        }
    }

    proptest! {
        /// Chunked and scalar scans agree on visit set AND order for
        /// arbitrary lanes and windows, at arbitrary run offsets.
        #[test]
        fn chunked_equals_scalar(
            lane in proptest::collection::vec(-50i64..50, 0..100),
            lo in -60i64..60,
            width in -10i64..60,
            cut in 0usize..100,
        ) {
            let lane: Vec<f64> = lane.into_iter().map(|v| v as f64).collect();
            let (lo, hi) = (lo as f64, (lo + width) as f64);
            prop_assert_eq!(
                hits(SweepScanKind::Chunked, &lane, lo, hi),
                hits(SweepScanKind::Scalar, &lane, lo, hi)
            );
            // Sub-runs starting mid-lane exercise misaligned chunk bases.
            let cut = cut.min(lane.len());
            let lanes = EndpointLanes::new(vec![0.0; lane.len()], lane);
            let mut a = Vec::new();
            let mut b = Vec::new();
            lanes.sweep(SweepScanKind::Chunked, cut..lanes.len(), lo, hi, |i| a.push(i));
            lanes.sweep(SweepScanKind::Scalar, cut..lanes.len(), lo, hi, |i| b.push(i));
            prop_assert_eq!(a, b);
        }
    }
}
