//! A sweeping-style, endpoint-sorted candidate store — the cache-friendly
//! alternative to the R-tree on the local-join hot path.
//!
//! Piatov et al. ("Cache-Efficient Sweeping-Based Interval Joins for
//! Extended Allen Relation Predicates") observe that for interval joins,
//! endpoint-sorted arrays scanned sequentially beat tree structures by
//! large factors: every probe touches a contiguous run of a flat lane
//! instead of chasing node pointers. TKIJ's local join only ever asks one
//! question of its per-bucket index — "which intervals lie inside an
//! axis-aligned window of the (start, end) endpoint plane?" (the
//! score-threshold window of [`crate::threshold_candidates`]) — which maps
//! directly onto that layout:
//!
//! * intervals are kept sorted by start; a parallel **gapless lane** of
//!   bare `i64` starts supports binary-searching the window's start range
//!   into one contiguous run;
//! * a second permutation sorted by end, with its own gapless end/start
//!   lanes, serves windows that constrain the end axis more tightly;
//! * a probe binary-searches both lanes, picks the *shorter* run, and
//!   sweeps it linearly, testing the other coordinate against the window.
//!
//! The lanes hold raw endpoints only (no ids, no padding), so a sweep
//! reads 8 bytes per examined item in strictly ascending addresses — the
//! access pattern hardware prefetchers are built for. Matching items are
//! resolved back to full [`Interval`]s on hit only.
//!
//! Since the vectorized-lanes rework, both endpoint orders live in
//! [`EndpointLanes`] — structure-of-arrays `f64` key/filter lanes (the
//! `as f64` cast [`Window::contains`] compares, hoisted to build time) —
//! and the in-window test of a swept run is delegated to the chunked or
//! scalar scan selected by [`SweepScanKind`] (see [`crate::lanes`] for
//! the mask protocol and the bit-identity contract between the kinds).

use crate::lanes::{EndpointLanes, SweepScanKind};
use crate::rtree::Window;
use tkij_temporal::interval::Interval;

/// An endpoint-sorted interval store answering window queries by lane
/// sweeping.
#[derive(Debug, Clone)]
pub struct SweepIndex {
    /// Intervals sorted by `(start, end, id)` — the primary order, also
    /// exposed through [`SweepIndex::items`].
    items: Vec<Interval>,
    /// Start-order lanes: keys = starts (sorted), filters = ends.
    by_start: EndpointLanes,
    /// Item indexes sorted by `(end, start, id)` — the end-axis sweep
    /// order.
    by_end: Vec<u32>,
    /// End-order lanes: keys = ends in `by_end` order (sorted), filters
    /// = starts in `by_end` order.
    end_lanes: EndpointLanes,
    /// How swept runs are tested against the window.
    scan: SweepScanKind,
}

impl SweepIndex {
    /// Builds the index with the default ([`SweepScanKind::Chunked`])
    /// scan kind. Input order does not matter; probes visit items in
    /// deterministic endpoint order.
    pub fn build(items: Vec<Interval>) -> Self {
        Self::build_with_scan(items, SweepScanKind::default())
    }

    /// Builds the index with an explicit scan kind. The kind cannot
    /// change what a probe visits, in which order, or how many items it
    /// examines — only how fast (see [`crate::lanes`]).
    pub fn build_with_scan(mut items: Vec<Interval>, scan: SweepScanKind) -> Self {
        items.sort_unstable_by_key(|iv| (iv.start, iv.end, iv.id));
        let by_start = EndpointLanes::new(
            items.iter().map(|iv| iv.start as f64).collect(),
            items.iter().map(|iv| iv.end as f64).collect(),
        );
        let mut by_end: Vec<u32> = (0..items.len() as u32).collect();
        by_end.sort_unstable_by_key(|&i| {
            let iv = &items[i as usize];
            (iv.end, iv.start, iv.id)
        });
        let end_lanes = EndpointLanes::new(
            by_end.iter().map(|&i| items[i as usize].end as f64).collect(),
            by_end.iter().map(|&i| items[i as usize].start as f64).collect(),
        );
        SweepIndex { items, by_start, by_end, end_lanes, scan }
    }

    /// The scan kind probes run with.
    pub fn scan_kind(&self) -> SweepScanKind {
        self.scan
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All indexed intervals in `(start, end, id)` order.
    pub fn items(&self) -> &[Interval] {
        &self.items
    }

    /// Average concurrency of the indexed set
    /// ([`crate::endpoint_density`]) — the statistic per-bucket backend
    /// auto-selection keys on.
    pub fn density(&self) -> f64 {
        crate::endpoint_density(&self.items)
    }

    /// Visits every interval whose endpoint point lies in the window and
    /// returns the number of stored items examined (the swept run
    /// length) — the backend's scan-effort telemetry.
    pub fn window_query<'t>(&'t self, window: &Window, mut visit: impl FnMut(&'t Interval)) -> u64 {
        if window.is_empty() || self.items.is_empty() {
            return 0;
        }
        let (s_lo, s_hi) = window.start;
        let (e_lo, e_hi) = window.end;
        // `i64 → f64` is monotone (non-decreasing), so binary-searching
        // the cast key lanes mirrors `Window::contains` exactly.
        let start_run = self.by_start.run(s_lo, s_hi);
        let end_run = self.end_lanes.run(e_lo, e_hi);
        if start_run.is_empty() || end_run.is_empty() {
            return 0;
        }
        if start_run.len() <= end_run.len() {
            // Start axis is the tighter constraint: sweep the start run.
            let scanned = start_run.len() as u64;
            self.by_start.sweep(self.scan, start_run, e_lo, e_hi, |i| visit(&self.items[i]));
            scanned
        } else {
            // End axis is tighter: sweep the end-sorted run.
            let scanned = end_run.len() as u64;
            self.end_lanes.sweep(self.scan, end_run, s_lo, s_hi, |j| {
                visit(&self.items[self.by_end[j] as usize])
            });
            scanned
        }
    }

    /// Collects matching intervals (window query convenience).
    pub fn window_collect(&self, window: &Window) -> Vec<Interval> {
        let mut out = Vec::new();
        self.window_query(window, |iv| out.push(*iv));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTree;
    use proptest::prelude::*;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    fn sample(n: u64) -> Vec<Interval> {
        (0..n)
            .map(|i| iv(i, (i as i64 * 37) % 500, (i as i64 * 37) % 500 + (i as i64 % 40)))
            .collect()
    }

    #[test]
    fn empty_index_queries_nothing() {
        let s = SweepIndex::build(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.window_collect(&Window::all()), vec![]);
    }

    #[test]
    fn full_window_returns_everything() {
        let items = sample(100);
        let s = SweepIndex::build(items.clone());
        let mut got = s.window_collect(&Window::all());
        got.sort_by_key(|i| i.id);
        let mut want = items;
        want.sort_by_key(|i| i.id);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_window_returns_nothing_and_scans_nothing() {
        let s = SweepIndex::build(sample(50));
        let w = Window { start: (10.0, 5.0), end: (0.0, 100.0) };
        assert!(w.is_empty());
        assert_eq!(s.window_query(&w, |_| panic!("no visits")), 0);
    }

    #[test]
    fn items_are_start_sorted() {
        let s = SweepIndex::build(sample(200));
        assert!(s
            .items()
            .windows(2)
            .all(|w| (w[0].start, w[0].end, w[0].id) <= (w[1].start, w[1].end, w[1].id)));
    }

    #[test]
    fn scan_count_is_the_shorter_run() {
        // 100 items, all ending at distinct points; a window constraining
        // starts to a 1-wide range must sweep at most that run.
        let items: Vec<Interval> = (0..100).map(|i| iv(i, i as i64, i as i64 + 500)).collect();
        let s = SweepIndex::build(items);
        let w = Window { start: (10.0, 11.0), end: (f64::NEG_INFINITY, f64::INFINITY) };
        let mut hits = 0;
        let scanned = s.window_query(&w, |_| hits += 1);
        assert_eq!(hits, 2);
        assert_eq!(scanned, 2, "start run is the tighter lane");
    }

    #[test]
    fn empty_index_scans_zero_for_any_window() {
        let s = SweepIndex::build(vec![]);
        for w in [
            Window::all(),
            Window { start: (5.0, 5.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            Window { start: (10.0, 0.0), end: (0.0, 10.0) }, // reversed
        ] {
            let mut visits = 0u32;
            let scanned = s.window_query(&w, |_| visits += 1);
            assert_eq!((visits, scanned), (0, 0), "{w:?}");
        }
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn zero_width_window_hits_exact_endpoint_only() {
        // Items with starts 0, 10, 10, 10, 20; a zero-width start window
        // at exactly 10 must visit precisely the three 10-starters and
        // examine exactly that run (it is the tighter lane).
        let s = SweepIndex::build(vec![
            iv(0, 0, 100),
            iv(1, 10, 40),
            iv(2, 10, 50),
            iv(3, 10, 60),
            iv(4, 20, 70),
        ]);
        let w = Window { start: (10.0, 10.0), end: (f64::NEG_INFINITY, f64::INFINITY) };
        let mut got = Vec::new();
        let scanned = s.window_query(&w, |i| got.push(i.id));
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(scanned, 3, "examines exactly the zero-width run");
        // Zero-width on the end axis, between runs: nothing visited,
        // nothing examined.
        let w = Window { start: (f64::NEG_INFINITY, f64::INFINITY), end: (45.0, 45.0) };
        let mut visits = 0u32;
        let scanned = s.window_query(&w, |_| visits += 1);
        assert_eq!((visits, scanned), (0, 0));
    }

    #[test]
    fn window_touching_exactly_one_endpoint_run() {
        // Three start runs at 0, 50, 100 (4 items each, distinct ends).
        // A window covering only the middle run — via either boundary
        // touch — visits all 4 members and examines exactly 4 items.
        let mut items = Vec::new();
        for (run, s0) in [(0u64, 0i64), (1, 50), (2, 100)] {
            for j in 0..4u64 {
                items.push(iv(run * 4 + j, s0, s0 + 200 + (run * 4 + j) as i64));
            }
        }
        let s = SweepIndex::build(items);
        for w in [
            Window { start: (50.0, 50.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            Window { start: (1.0, 99.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            Window { start: (50.0, 99.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            Window { start: (1.0, 50.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
        ] {
            let mut got = Vec::new();
            let scanned = s.window_query(&w, |i| got.push(i.id));
            got.sort_unstable();
            assert_eq!(got, vec![4, 5, 6, 7], "{w:?}");
            assert_eq!(scanned, 4, "{w:?}: examined exactly the touched run");
        }
    }

    #[test]
    fn reversed_and_degenerate_windows_scan_nothing() {
        let s = SweepIndex::build(sample(60));
        for w in [
            // Reversed start axis.
            Window { start: (20.0, 10.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            // Reversed end axis.
            Window { start: (f64::NEG_INFINITY, f64::INFINITY), end: (90.0, 2.0) },
            // Both reversed.
            Window { start: (5.0, 1.0), end: (9.0, 3.0) },
            // Disjoint from the data on the start axis.
            Window { start: (10_000.0, 20_000.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            // Inverted infinite bounds.
            Window { start: (f64::INFINITY, f64::NEG_INFINITY), end: (0.0, 100.0) },
        ] {
            let mut visits = 0u32;
            let scanned = s.window_query(&w, |_| visits += 1);
            assert_eq!(visits, 0, "{w:?}");
            assert_eq!(scanned, 0, "{w:?}: degenerate windows must not sweep");
        }
    }

    #[test]
    fn empty_build_is_total_under_both_scan_kinds() {
        // `build` on an empty Vec must leave every accessor and probe
        // path well-defined — density, collection, and the chunked scan
        // (whose chunk loop and tail both see zero slots).
        for (name, kind) in SweepScanKind::all() {
            let s = SweepIndex::build_with_scan(vec![], kind);
            assert!(s.is_empty(), "{name}");
            assert_eq!(s.len(), 0, "{name}");
            assert_eq!(s.scan_kind(), kind);
            assert_eq!(s.density(), 0.0, "{name}: empty density is 0");
            assert_eq!(s.window_collect(&Window::all()), vec![], "{name}");
            let mut visits = 0u32;
            let scanned = s.window_query(&Window::all(), |_| visits += 1);
            assert_eq!((visits, scanned), (0, 0), "{name}");
            assert!(s.items().is_empty());
        }
    }

    #[test]
    fn all_identical_endpoints_form_one_run() {
        // Every item at (5, 5): one endpoint run holds the whole index,
        // density equals the cardinality (n items covering a 1-wide
        // span), and both scan kinds visit everything in id order while
        // examining exactly the run.
        let n = 2 * crate::lanes::LANE_WIDTH + 3; // chunked path + tail
        let items: Vec<Interval> = (0..n as u64).map(|id| iv(id, 5, 5)).collect();
        for (name, kind) in SweepScanKind::all() {
            let s = SweepIndex::build_with_scan(items.clone(), kind);
            assert_eq!(s.density(), n as f64, "{name}: n concurrent over a 1-wide span");
            let hit = Window { start: (5.0, 5.0), end: (5.0, 5.0) };
            let got = s.window_collect(&hit);
            assert_eq!(got, items, "{name}: all visited, in (start, end, id) order");
            let mut visits = 0u32;
            let scanned = s.window_query(&hit, |_| visits += 1);
            assert_eq!((visits as usize, scanned as usize), (n, n), "{name}");
            // Zero-width windows just off the point: nothing visited,
            // nothing examined (the runs are empty).
            for w in [
                Window { start: (4.0, 4.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
                Window { start: (6.0, 6.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
                Window { start: (5.0, 5.0), end: (6.0, 6.0) },
            ] {
                let mut visits = 0u32;
                let scanned = s.window_query(&w, |_| visits += 1);
                assert_eq!((visits, scanned), (0, 0), "{name} {w:?}");
            }
        }
    }

    #[test]
    fn scan_kinds_agree_on_visits_order_and_scanned() {
        // Unit-level spot check of the bit-identity contract (the full
        // battery lives in tests/sweep_scan_equivalence.rs): same visit
        // sequence and scan count on a workload exercising both axes.
        let items = sample(150);
        let scalar = SweepIndex::build_with_scan(items.clone(), SweepScanKind::Scalar);
        let chunked = SweepIndex::build_with_scan(items, SweepScanKind::Chunked);
        for w in [
            Window::all(),
            Window { start: (40.0, 160.0), end: (f64::NEG_INFINITY, f64::INFINITY) },
            Window { start: (f64::NEG_INFINITY, f64::INFINITY), end: (100.0, 140.0) },
            Window { start: (30.0, 470.0), end: (55.0, 90.0) },
        ] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            let sa = scalar.window_query(&w, |i| a.push(i.id));
            let sb = chunked.window_query(&w, |i| b.push(i.id));
            assert_eq!(a, b, "{w:?}: visit sequences diverge");
            assert_eq!(sa, sb, "{w:?}: scan counts diverge");
        }
        assert_eq!(SweepIndex::build(sample(3)).scan_kind(), SweepScanKind::Chunked, "default");
    }

    #[test]
    fn density_accessor_matches_canonical_formula() {
        let items = vec![iv(0, 0, 9), iv(1, 5, 14), iv(2, 10, 19)];
        let s = SweepIndex::build(items.clone());
        // 3 × 10 covered timestamps over span [0, 19] → density 1.5.
        assert!((s.density() - 1.5).abs() < 1e-12);
        assert_eq!(s.density().to_bits(), crate::endpoint_density(&items).to_bits());
        assert_eq!(
            s.density().to_bits(),
            crate::rtree::RTree::bulk_load(items).density().to_bits(),
            "both backends expose the identical density statistic"
        );
    }

    #[test]
    fn item_chunks_partition_the_probe_stream() {
        use crate::CandidateSource;
        let s = SweepIndex::build(sample(100));
        // Every chunk size — including 1, a non-divisor, the exact run
        // length, longer than the run, and the degenerate 0 (clamped to
        // 1) — partitions items() exactly, in order.
        for chunk_items in [0usize, 1, 3, 64, 100, 1_000] {
            let chunks: Vec<&[Interval]> = s.item_chunks(chunk_items).collect();
            let rebuilt: Vec<Interval> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(rebuilt, s.items(), "chunk_items = {chunk_items}");
            let expect = 100usize.div_ceil(chunk_items.max(1));
            assert_eq!(chunks.len(), expect, "chunk_items = {chunk_items}");
            // Fixed-size contract: every chunk but the last is full.
            for c in &chunks[..chunks.len() - 1] {
                assert_eq!(c.len(), chunk_items.max(1));
            }
        }
        assert_eq!(SweepIndex::build(vec![]).item_chunks(8).count(), 0);
    }

    #[test]
    fn chunked_probing_equals_whole_run_probing() {
        use crate::CandidateSource;
        // Probing with every item of every chunk as an anchor visits the
        // same multiset, chunk by chunk, as iterating the whole run —
        // the equivalence the sharded local join rests on.
        let s = SweepIndex::build(sample(120));
        let w = Window { start: (40.0, 160.0), end: (f64::NEG_INFINITY, f64::INFINITY) };
        let mut whole = Vec::new();
        let whole_scanned = s.window_query(&w, |i| whole.push(i.id));
        for chunk_items in [1usize, 7, 50, 120, 500] {
            let mut ids = Vec::new();
            let mut anchors = 0usize;
            for chunk in s.item_chunks(chunk_items) {
                anchors += chunk.len();
                // Each chunk issues its own identical probe; results and
                // scan counts are per-probe properties, not per-chunk.
                let mut got = Vec::new();
                let scanned = s.window_query(&w, |i| got.push(i.id));
                assert_eq!(scanned, whole_scanned);
                assert_eq!(got, whole);
                ids.extend(chunk.iter().map(|i| i.id));
            }
            assert_eq!(anchors, s.len(), "chunks cover every probe anchor exactly once");
            let items_ids: Vec<u64> = s.items().iter().map(|i| i.id).collect();
            assert_eq!(ids, items_ids, "chunk order is the item order");
        }
    }

    #[test]
    fn half_open_infinite_windows() {
        let s = SweepIndex::build(vec![iv(0, 0, 5), iv(1, 10, 15), iv(2, 20, 25)]);
        let w = Window { start: (9.0, f64::INFINITY), end: (f64::NEG_INFINITY, f64::INFINITY) };
        let got = s.window_collect(&w);
        assert_eq!(got.iter().map(|i| i.id).collect::<Vec<_>>(), vec![1, 2]);
        let w = Window { start: (f64::NEG_INFINITY, f64::INFINITY), end: (f64::NEG_INFINITY, 6.0) };
        let got = s.window_collect(&w);
        assert_eq!(got.iter().map(|i| i.id).collect::<Vec<_>>(), vec![0]);
    }

    proptest! {
        /// Sweep window queries agree exactly with a linear scan.
        #[test]
        fn matches_linear_scan(
            points in proptest::collection::vec((0i64..200, 0i64..60), 0..300),
            ws in 0i64..200, ww in 0i64..100,
            we in 0i64..260, wh in 0i64..100,
        ) {
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let s = SweepIndex::build(items.clone());
            let w = Window {
                start: (ws as f64, (ws + ww) as f64),
                end: (we as f64, (we + wh) as f64),
            };
            let mut got = s.window_collect(&w);
            got.sort_by_key(|i| i.id);
            let mut want: Vec<Interval> =
                items.iter().filter(|i| w.contains(i)).copied().collect();
            want.sort_by_key(|i| i.id);
            prop_assert_eq!(got, want);
        }

        /// Sweep and R-tree agree on arbitrary windows, including
        /// unbounded axes (the shapes threshold_window produces).
        #[test]
        fn matches_rtree(
            points in proptest::collection::vec((0i64..200, 0i64..60), 0..250),
            ws in 0i64..200, ww in 0i64..100,
            we in 0i64..260, wh in 0i64..100,
            open_start in proptest::bool::ANY,
            open_end in proptest::bool::ANY,
        ) {
            let items: Vec<Interval> = points
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let sweep = SweepIndex::build(items.clone());
            let tree = RTree::bulk_load(items);
            let w = Window {
                start: if open_start {
                    (f64::NEG_INFINITY, f64::INFINITY)
                } else {
                    (ws as f64, (ws + ww) as f64)
                },
                end: if open_end {
                    (f64::NEG_INFINITY, f64::INFINITY)
                } else {
                    (we as f64, (we + wh) as f64)
                },
            };
            let mut a = sweep.window_collect(&w);
            let mut b = tree.window_collect(&w);
            a.sort_by_key(|i| i.id);
            b.sort_by_key(|i| i.id);
            prop_assert_eq!(a, b);
        }
    }
}
