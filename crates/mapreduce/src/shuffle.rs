//! The shuffle transports: in-memory gather vs. serialized spill.
//!
//! [`run_map_reduce`](crate::run_map_reduce) moves every mapper-emitted
//! `(K, V)` record to its reduce partition through a
//! [`ShuffleTransport`]. Two implementations exist:
//!
//! * [`InMemoryTransport`] — the default: records stay as `Vec<(K, V)>`
//!   buffers, the shuffle concatenates them in map-task order and
//!   stable-sorts each partition. Fast, but the whole shuffle must fit
//!   in RAM.
//! * [`SerializedTransport`] — the out-of-core path: each map task
//!   buffers per-partition records, and whenever a partition's buffered
//!   [`SizeOf`] total exceeds `spill_threshold_bytes` it stable-sorts
//!   the buffer by key and flushes it as one checksummed **segment** of
//!   length-prefixed [`Record`] frames (fixed little-endian layout whose
//!   encoded length equals `size_bytes` exactly). The reduce side streams
//!   each partition back through a k-way merge over its segments —
//!   ordered by `(key, segment)` with segments numbered in map-task
//!   order — which reproduces the in-memory concatenate-then-stable-sort
//!   order bit for bit. Segments live either in an in-memory byte store
//!   (unit tests, CI) or in a self-managed spill directory under the OS
//!   temp dir (real out-of-core runs; no `tempfile` dependency).
//!
//! Both transports produce identical grouped partitions and identical
//! `shuffle_records` / `shuffle_bytes` accounting; the serialized one
//! additionally fills [`ShuffleStats`] (records/segments/bytes spilled
//! plus a CRC-32 xor-fold over every record frame). Because xor is
//! commutative and every record is framed identically regardless of
//! which segment it lands in, `records_spilled` and `checksum` are
//! invariant across spill thresholds and worker-thread counts — only
//! the segment count and on-disk byte total vary with the threshold.

use crate::sizeof::SizeOf;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table generated at compile time — no dependencies.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE polynomial) of `bytes` — the per-frame integrity hash
/// whose xor-fold becomes the segment, partition and job checksums.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record codec: fixed little-endian frames whose length == SizeOf.
// ---------------------------------------------------------------------------

/// A decode failure: truncated input, an invalid tag, or malformed UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the decoder was reading and why it failed.
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record decode failed: {}", self.detail)
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over one record frame's bytes. Decoders pull
/// fixed-width prefixes with [`FrameReader::take`]; types whose element
/// count is implicit (no count prefix in their [`SizeOf`]) derive it
/// from [`FrameReader::remaining`].
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Wraps one frame's payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameReader { bytes, pos: 0 }
    }

    /// Bytes left in the frame.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes the next `n` bytes, or errors if the frame is short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError {
                detail: format!("wanted {n} bytes, frame has {} left", self.remaining()),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Asserts the frame was fully consumed (trailing bytes are a codec
    /// drift signal, not padding).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError {
                detail: format!("{} trailing bytes after decode", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Fixed little-endian encoding for shuffled records.
///
/// The contract every implementation must keep (and the `SizeOf`
/// coverage tests assert): **the encoded byte length equals
/// [`SizeOf::size_bytes`] exactly** — the estimator the engine's
/// `shuffle_bytes` accounting charges is the codec's real output size,
/// so the in-memory and serialized transports meter identical work.
pub trait Record: SizeOf {
    /// Appends this value's fixed little-endian encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the frame cursor.
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError>
    where
        Self: Sized;
}

macro_rules! int_record {
    ($($t:ty),*) => {$(
        impl Record for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
                let bytes = reader.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("take returned exact width")))
            }
        }
    )*};
}

int_record!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Record for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        Ok(f32::from_bits(u32::decode(reader)?))
    }
}

impl Record for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(reader)?))
    }
}

impl Record for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(reader)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError { detail: format!("invalid bool tag {tag}") }),
        }
    }
}

impl Record for char {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let raw = u32::decode(reader)?;
        char::from_u32(raw).ok_or_else(|| CodecError { detail: format!("invalid char {raw:#x}") })
    }
}

impl Record for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Record for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(reader)? as usize;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError { detail: format!("invalid utf-8 string: {e}") })
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(reader)? as usize;
        // Every element of a non-zero-sized type encodes to >= 1 byte,
        // so an honest count never exceeds the frame remainder — reject
        // absurd counts before the allocation below.
        if std::mem::size_of::<T>() > 0 && len > reader.remaining() {
            return Err(CodecError { detail: format!("vec count {len} exceeds frame") });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(reader)?);
        }
        Ok(out)
    }
}

impl<T: Record> Record for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(reader)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            tag => Err(CodecError { detail: format!("invalid option tag {tag}") }),
        }
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(reader)?, B::decode(reader)?))
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(reader: &mut FrameReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(reader)?, B::decode(reader)?, C::decode(reader)?))
    }
}

// ---------------------------------------------------------------------------
// Errors, stats, configuration.
// ---------------------------------------------------------------------------

/// Addresses one spill segment for error context: map task, reduce
/// partition, segment ordinal within that (task, partition) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentId {
    /// Map-task index that wrote the segment.
    pub task: usize,
    /// Reduce partition the segment belongs to.
    pub partition: usize,
    /// Flush ordinal within the (task, partition) pair.
    pub segment: u32,
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} partition {} segment {}", self.task, self.partition, self.segment)
    }
}

/// A structured serialized-shuffle failure. The engine's fallible entry
/// point surfaces these instead of panicking, so a corrupted or
/// truncated spill segment is a reportable error, never a silent wrong
/// answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleError {
    /// Spill store I/O failed (create/write/read of the spill dir).
    Io {
        /// The failing operation, e.g. `"write segment"`.
        op: &'static str,
        /// The underlying error rendered as text.
        detail: String,
    },
    /// A segment's framing is malformed: bad magic, impossible lengths,
    /// or a record count that does not match the frames present.
    Corrupt {
        /// Which segment failed validation.
        segment: SegmentId,
        /// What was wrong with it.
        detail: String,
    },
    /// The xor-folded CRC-32 recomputed over a segment's record frames
    /// does not match the checksum written at spill time.
    ChecksumMismatch {
        /// Which segment failed verification.
        segment: SegmentId,
        /// The checksum the segment header claims.
        expected: u32,
        /// The checksum recomputed from the frames read back.
        actual: u32,
    },
    /// A frame's payload failed typed decoding.
    Decode {
        /// Which segment the frame came from.
        segment: SegmentId,
        /// The codec-level failure.
        source: CodecError,
    },
}

impl fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuffleError::Io { op, detail } => write!(f, "spill store {op} failed: {detail}"),
            ShuffleError::Corrupt { segment, detail } => {
                write!(f, "corrupt spill segment ({segment}): {detail}")
            }
            ShuffleError::ChecksumMismatch { segment, expected, actual } => write!(
                f,
                "spill segment checksum mismatch ({segment}): \
                 expected {expected:#010x}, read back {actual:#010x}"
            ),
            ShuffleError::Decode { segment, source } => {
                write!(f, "spill segment decode failed ({segment}): {source}")
            }
        }
    }
}

impl std::error::Error for ShuffleError {}

/// Serialized-shuffle work counters, all-zero on the in-memory
/// transport. `records_spilled` and `checksum` are threshold- and
/// thread-invariant (every record is framed once, xor commutes);
/// `spill_segments` / `spill_bytes` describe the segmentation the
/// threshold produced and vary with it — but never with thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Records encoded into spill segments (the serialized transport
    /// frames *every* record: buffers always flush at task end).
    pub records_spilled: u64,
    /// Spill segments written.
    pub spill_segments: u64,
    /// Total bytes written to the spill store (headers, frame length
    /// prefixes and payloads).
    pub spill_bytes: u64,
    /// Xor-fold of every record frame's CRC-32 (a 32-bit value widened
    /// to `u64` so all stats fields share one emission shape).
    pub checksum: u64,
}

impl ShuffleStats {
    /// Combines two jobs' stats: sums the volume counters, xors the
    /// checksums.
    pub fn merged(&self, other: &ShuffleStats) -> ShuffleStats {
        ShuffleStats {
            records_spilled: self.records_spilled + other.records_spilled,
            spill_segments: self.spill_segments + other.spill_segments,
            spill_bytes: self.spill_bytes + other.spill_bytes,
            checksum: self.checksum ^ other.checksum,
        }
    }
}

/// Where the serialized transport keeps its spill segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SpillSinkKind {
    /// An in-process byte store — unit tests and CI need no filesystem.
    #[default]
    Memory,
    /// A self-managed directory under [`std::env::temp_dir`], removed
    /// when the transport drops.
    TempDir,
}

/// The env var forcing every [`crate::ClusterConfig::default`] onto
/// the serialized transport with the given spill threshold in bytes —
/// how CI runs the whole determinism suite through the spill path.
pub const SPILL_THRESHOLD_ENV: &str = "TKIJ_SPILL_THRESHOLD";

/// Which shuffle transport a job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleMode {
    /// In-memory `Vec` gather (the default).
    #[default]
    InMemory,
    /// Frame-encoded segments with size-triggered spilling.
    Serialized {
        /// Buffered bytes (by [`SizeOf`]) per (task, partition) above
        /// which the buffer flushes to a segment. `0` spills after
        /// every record; `u64::MAX` yields one segment per nonempty
        /// (task, partition).
        spill_threshold_bytes: u64,
        /// Segment storage backend.
        sink: SpillSinkKind,
    },
}

impl ShuffleMode {
    /// The mode forced through [`SPILL_THRESHOLD_ENV`], if set: the
    /// serialized transport over the in-memory byte store.
    ///
    /// # Panics
    ///
    /// Panics on an unparsable value: a CI leg that *means* to force
    /// the spill path must never silently run the in-memory default.
    pub fn from_env() -> Option<ShuffleMode> {
        std::env::var(SPILL_THRESHOLD_ENV).ok().map(|v| {
            let bytes = v
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|e| panic!("{SPILL_THRESHOLD_ENV}={v:?}: {e}"));
            ShuffleMode::Serialized { spill_threshold_bytes: bytes, sink: SpillSinkKind::Memory }
        })
    }
}

// ---------------------------------------------------------------------------
// Segment encode / verify / decode.
// ---------------------------------------------------------------------------

/// Segment header magic: "TKSG" little-endian.
const SEGMENT_MAGIC: u32 = 0x4753_4B54;
/// Header: magic, record count, payload length, checksum — 4 × u32.
const SEGMENT_HEADER_BYTES: usize = 16;
/// Per-frame length prefix.
const FRAME_PREFIX_BYTES: usize = 4;

/// Encodes sorted records into one segment; returns the bytes and the
/// segment's xor-folded frame CRC.
fn encode_segment<K: Record, V: Record>(records: &[(K, V)]) -> (Vec<u8>, u32) {
    let mut payload = Vec::new();
    let mut checksum = 0u32;
    let mut frame = Vec::new();
    for (k, v) in records {
        frame.clear();
        k.encode(&mut frame);
        v.encode(&mut frame);
        debug_assert_eq!(
            frame.len(),
            k.size_bytes() + v.size_bytes(),
            "Record encoding drifted from its SizeOf estimate"
        );
        let len = u32::try_from(frame.len()).expect("record frame exceeds u32 length");
        payload.extend_from_slice(&len.to_le_bytes());
        payload.extend_from_slice(&frame);
        checksum ^= crc32(&frame);
    }
    let mut bytes = Vec::with_capacity(SEGMENT_HEADER_BYTES + payload.len());
    bytes.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&(records.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes.extend_from_slice(&payload);
    (bytes, checksum)
}

/// A verified, sequentially decodable spill segment.
///
/// [`SegmentReader::open`] validates the full framing up front — magic,
/// lengths, record count, and the xor-folded CRC-32 recomputed over
/// every frame — so corruption surfaces as a structured
/// [`ShuffleError`] before any typed decoding happens.
pub struct SegmentReader<K, V> {
    bytes: Vec<u8>,
    pos: usize,
    left: u32,
    id: SegmentId,
    _records: std::marker::PhantomData<fn() -> (K, V)>,
}

fn header_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("sized header slice"))
}

impl<K: Record, V: Record> SegmentReader<K, V> {
    /// Validates `bytes` as a segment written by `encode_segment`.
    pub fn open(bytes: Vec<u8>, id: SegmentId) -> Result<Self, ShuffleError> {
        let corrupt = |detail: String| ShuffleError::Corrupt { segment: id, detail };
        if bytes.len() < SEGMENT_HEADER_BYTES {
            return Err(corrupt(format!("{} bytes is shorter than the header", bytes.len())));
        }
        if header_u32(&bytes, 0) != SEGMENT_MAGIC {
            return Err(corrupt(format!("bad magic {:#010x}", header_u32(&bytes, 0))));
        }
        let count = header_u32(&bytes, 4);
        let payload_len = header_u32(&bytes, 8) as usize;
        let expected = header_u32(&bytes, 12);
        if bytes.len() != SEGMENT_HEADER_BYTES + payload_len {
            return Err(corrupt(format!(
                "payload length {} does not match {} segment bytes",
                payload_len,
                bytes.len()
            )));
        }
        // Walk the frames once: count them and fold their CRCs.
        let mut pos = SEGMENT_HEADER_BYTES;
        let mut seen = 0u32;
        let mut actual = 0u32;
        while pos < bytes.len() {
            if bytes.len() - pos < FRAME_PREFIX_BYTES {
                return Err(corrupt(format!("truncated frame prefix at offset {pos}")));
            }
            let frame_len = header_u32(&bytes, pos) as usize;
            pos += FRAME_PREFIX_BYTES;
            if bytes.len() - pos < frame_len {
                return Err(corrupt(format!(
                    "frame of {frame_len} bytes at offset {pos} overruns the segment"
                )));
            }
            actual ^= crc32(&bytes[pos..pos + frame_len]);
            pos += frame_len;
            seen += 1;
        }
        if seen != count {
            return Err(corrupt(format!("header claims {count} records, found {seen}")));
        }
        if actual != expected {
            return Err(ShuffleError::ChecksumMismatch { segment: id, expected, actual });
        }
        Ok(SegmentReader {
            bytes,
            pos: SEGMENT_HEADER_BYTES,
            left: count,
            id,
            _records: std::marker::PhantomData,
        })
    }

    /// Decodes the next record, or `None` when the segment is drained.
    #[allow(clippy::type_complexity)]
    pub fn next_record(&mut self) -> Option<Result<(K, V), ShuffleError>> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        let frame_len = header_u32(&self.bytes, self.pos) as usize;
        let start = self.pos + FRAME_PREFIX_BYTES;
        self.pos = start + frame_len;
        let mut reader = FrameReader::new(&self.bytes[start..start + frame_len]);
        let decoded = (|| {
            let k = K::decode(&mut reader)?;
            let v = V::decode(&mut reader)?;
            reader.finish()?;
            Ok((k, v))
        })();
        Some(decoded.map_err(|source| ShuffleError::Decode { segment: self.id, source }))
    }
}

// ---------------------------------------------------------------------------
// Spill stores.
// ---------------------------------------------------------------------------

type SegmentKey = (usize, usize, u32);

/// A self-managed spill directory under the OS temp dir. Named by
/// process id plus a process-global counter (no clocks, no thread ids —
/// the determinism lint rules hold), removed on drop.
struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    fn create() -> Result<SpillDir, ShuffleError> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        // Relaxed ordering suffices: the counter only needs each
        // fetch_add to hand out a distinct value (atomicity), never to
        // order any other memory access — directory names don't race.
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("tkij-spill-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)
            .map_err(|e| ShuffleError::Io { op: "create spill dir", detail: e.to_string() })?;
        Ok(SpillDir { path })
    }

    fn segment_path(&self, (task, partition, segment): SegmentKey) -> PathBuf {
        self.path.join(format!("t{task}_p{partition}_s{segment}.seg"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Cleanup is best-effort: a leftover dir under temp is benign.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Segment storage shared by all of a transport's task sinks.
enum SegmentStore {
    Memory(Mutex<BTreeMap<SegmentKey, Vec<u8>>>),
    Dir(SpillDir),
}

impl SegmentStore {
    fn put(&self, key: SegmentKey, bytes: &[u8]) -> Result<(), ShuffleError> {
        match self {
            SegmentStore::Memory(map) => {
                map.lock().insert(key, bytes.to_vec());
                Ok(())
            }
            SegmentStore::Dir(dir) => std::fs::write(dir.segment_path(key), bytes)
                .map_err(|e| ShuffleError::Io { op: "write segment", detail: e.to_string() }),
        }
    }

    fn take(&self, key: SegmentKey) -> Result<Vec<u8>, ShuffleError> {
        match self {
            SegmentStore::Memory(map) => map.lock().remove(&key).ok_or(ShuffleError::Io {
                op: "read segment",
                detail: format!("segment {key:?} missing from the in-memory store"),
            }),
            SegmentStore::Dir(dir) => std::fs::read(dir.segment_path(key))
                .map_err(|e| ShuffleError::Io { op: "read segment", detail: e.to_string() }),
        }
    }
}

// ---------------------------------------------------------------------------
// Task sinks and transports.
// ---------------------------------------------------------------------------

/// One map task's record receiver. The [`Emitter`](crate::Emitter)
/// routes each emitted record here after partitioning; the sink is
/// object-safe so one mapper closure serves every transport.
pub trait TaskSink<K, V> {
    /// Accepts one record routed to `partition` (already range-checked
    /// by the emitter).
    fn accept(&mut self, partition: usize, key: K, value: V);
}

/// Moves records from map tasks to grouped reduce partitions. `sinks`
/// arrive in map-task order; [`ShuffleTransport::gather`] must
/// reproduce the engine's canonical partition order: records
/// concatenated in task order, stable-sorted by key, grouped by
/// adjacent equal keys.
pub trait ShuffleTransport<K, V>: Sync {
    /// The per-map-task record receiver.
    type Sink: TaskSink<K, V> + Send;

    /// Creates map task `task`'s sink.
    fn task_sink(&self, task: usize, num_partitions: usize) -> Self::Sink;

    /// Consumes every task's sink (task order) into grouped partitions
    /// plus the shuffle accounting.
    fn gather(
        &self,
        sinks: Vec<Self::Sink>,
        num_partitions: usize,
    ) -> Result<ShuffleOutput<K, V>, ShuffleError>;
}

/// What a shuffle produces: each partition's key-grouped records plus
/// the per-partition record/byte accounting and the spill stats.
pub struct ShuffleOutput<K, V> {
    /// Per partition: records grouped by key, keys ascending, values in
    /// map-task emission order.
    pub grouped: Vec<Vec<(K, Vec<V>)>>,
    /// Records shuffled into each partition.
    pub shuffle_records: Vec<u64>,
    /// [`SizeOf`] bytes shuffled into each partition.
    pub shuffle_bytes: Vec<u64>,
    /// Spill accounting (all-zero for the in-memory transport).
    pub stats: ShuffleStats,
}

/// The default transport: per-partition `Vec` buffers, gathered and
/// stable-sorted in memory — byte-identical to the engine's historical
/// shuffle.
pub struct InMemoryTransport;

/// The in-memory transport's sink: one record buffer per partition.
pub struct MemorySink<K, V> {
    buffers: Vec<Vec<(K, V)>>,
}

impl<K, V> MemorySink<K, V> {
    pub(crate) fn new(num_partitions: usize) -> Self {
        MemorySink { buffers: (0..num_partitions).map(|_| Vec::new()).collect() }
    }
}

impl<K, V> TaskSink<K, V> for MemorySink<K, V> {
    fn accept(&mut self, partition: usize, key: K, value: V) {
        self.buffers[partition].push((key, value));
    }
}

/// Stable-sorts one partition's records and groups adjacent equal keys
/// — the canonical partition order both transports must produce.
fn group_sorted<K: Ord, V>(mut records: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    // Stable sort keeps map-task emission order within equal keys,
    // which is itself deterministic (task-index order).
    records.sort_by(|a, b| a.0.cmp(&b.0));
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in records {
        match groups.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

impl<K, V> ShuffleTransport<K, V> for InMemoryTransport
where
    K: Ord + Send + SizeOf,
    V: Send + SizeOf,
{
    type Sink = MemorySink<K, V>;

    fn task_sink(&self, _task: usize, num_partitions: usize) -> MemorySink<K, V> {
        MemorySink::new(num_partitions)
    }

    fn gather(
        &self,
        sinks: Vec<MemorySink<K, V>>,
        num_partitions: usize,
    ) -> Result<ShuffleOutput<K, V>, ShuffleError> {
        let mut shuffle_records = vec![0u64; num_partitions];
        let mut shuffle_bytes = vec![0u64; num_partitions];
        let mut partitions: Vec<Vec<(K, V)>> = (0..num_partitions).map(|_| Vec::new()).collect();
        for sink in sinks {
            for (p, buf) in sink.buffers.into_iter().enumerate() {
                for (k, v) in buf {
                    shuffle_records[p] += 1;
                    shuffle_bytes[p] += (k.size_bytes() + v.size_bytes()) as u64;
                    partitions[p].push((k, v));
                }
            }
        }
        let grouped = partitions.into_iter().map(group_sorted).collect();
        Ok(ShuffleOutput {
            grouped,
            shuffle_records,
            shuffle_bytes,
            stats: ShuffleStats::default(),
        })
    }
}

/// The out-of-core transport: frame-encoded, checksummed spill segments
/// with size-triggered flushing and merge-sorted reduce-side reads.
pub struct SerializedTransport {
    spill_threshold_bytes: u64,
    store: Arc<SegmentStore>,
}

impl SerializedTransport {
    /// Builds the transport for the given sink kind (creating the spill
    /// directory when `sink` is [`SpillSinkKind::TempDir`]).
    pub fn new(spill_threshold_bytes: u64, sink: SpillSinkKind) -> Result<Self, ShuffleError> {
        let store = match sink {
            SpillSinkKind::Memory => SegmentStore::Memory(Mutex::new(BTreeMap::new())),
            SpillSinkKind::TempDir => SegmentStore::Dir(SpillDir::create()?),
        };
        Ok(SerializedTransport { spill_threshold_bytes, store: Arc::new(store) })
    }

    /// The filesystem-free variant unit tests use.
    pub fn in_memory(spill_threshold_bytes: u64) -> Self {
        SerializedTransport::new(spill_threshold_bytes, SpillSinkKind::Memory)
            .expect("the in-memory spill store cannot fail to construct")
    }
}

/// Per-(task, partition) spill accounting and the not-yet-flushed
/// record buffer.
struct PartitionBuffer<K, V> {
    records: Vec<(K, V)>,
    buffered_bytes: u64,
    /// `shuffle_records` contribution (== records framed: everything
    /// flushes by task end).
    records_total: u64,
    /// `shuffle_bytes` contribution ([`SizeOf`], matching the in-memory
    /// transport bit for bit).
    bytes_total: u64,
    segments: u32,
    spill_bytes: u64,
    checksum: u32,
}

impl<K, V> PartitionBuffer<K, V> {
    fn new() -> Self {
        PartitionBuffer {
            records: Vec::new(),
            buffered_bytes: 0,
            records_total: 0,
            bytes_total: 0,
            segments: 0,
            spill_bytes: 0,
            checksum: 0,
        }
    }
}

/// The serialized transport's sink: buffers per partition, flushing a
/// sorted, checksummed segment whenever the buffered [`SizeOf`] total
/// exceeds the spill threshold (and always at task end).
pub struct SerializedSink<K, V> {
    task: usize,
    threshold: u64,
    store: Arc<SegmentStore>,
    parts: Vec<PartitionBuffer<K, V>>,
    error: Option<ShuffleError>,
}

impl<K: Ord + Record, V: Record> SerializedSink<K, V> {
    fn flush(&mut self, partition: usize) {
        let pb = &mut self.parts[partition];
        if pb.records.is_empty() || self.error.is_some() {
            return;
        }
        // Sorting at flush time makes each segment a sorted run, which
        // is what lets the reduce side merge instead of re-sorting.
        pb.records.sort_by(|a, b| a.0.cmp(&b.0));
        let (bytes, checksum) = encode_segment(&pb.records);
        let key = (self.task, partition, pb.segments);
        if let Err(e) = self.store.put(key, &bytes) {
            self.error = Some(e);
            return;
        }
        pb.checksum ^= checksum;
        pb.spill_bytes += bytes.len() as u64;
        pb.segments += 1;
        pb.records.clear();
        pb.buffered_bytes = 0;
    }

    /// Flushes every partition's remaining buffer — called by
    /// [`SerializedTransport::gather`] before reading anything back.
    fn finish(&mut self) {
        for p in 0..self.parts.len() {
            self.flush(p);
        }
    }
}

impl<K: Ord + Record, V: Record> TaskSink<K, V> for SerializedSink<K, V> {
    fn accept(&mut self, partition: usize, key: K, value: V) {
        let size = (key.size_bytes() + value.size_bytes()) as u64;
        let pb = &mut self.parts[partition];
        pb.records_total += 1;
        pb.bytes_total += size;
        pb.buffered_bytes += size;
        pb.records.push((key, value));
        if pb.buffered_bytes > self.threshold {
            self.flush(partition);
        }
    }
}

/// One merge-front entry: ordered by `(key, source)` so equal keys pop
/// in segment order — segments are numbered in (task, flush) order, and
/// each is a stable-sorted run, which together reproduce the in-memory
/// concatenate-then-stable-sort order exactly.
struct MergeEntry<K, V> {
    key: K,
    value: V,
    src: usize,
}

impl<K: Ord, V> PartialEq for MergeEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.src == other.src
    }
}

impl<K: Ord, V> Eq for MergeEntry<K, V> {}

impl<K: Ord, V> PartialOrd for MergeEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, V> Ord for MergeEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then_with(|| self.src.cmp(&other.src))
    }
}

/// K-way merge over one partition's verified segments, grouping
/// adjacent equal keys.
#[allow(clippy::type_complexity)]
fn merge_segments<K: Ord + Record, V: Record>(
    mut readers: Vec<SegmentReader<K, V>>,
) -> Result<Vec<(K, Vec<V>)>, ShuffleError> {
    let mut heap: BinaryHeap<Reverse<MergeEntry<K, V>>> = BinaryHeap::with_capacity(readers.len());
    for (src, reader) in readers.iter_mut().enumerate() {
        if let Some(record) = reader.next_record() {
            let (key, value) = record?;
            heap.push(Reverse(MergeEntry { key, value, src }));
        }
    }
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    while let Some(Reverse(entry)) = heap.pop() {
        if let Some(record) = readers[entry.src].next_record() {
            let (key, value) = record?;
            heap.push(Reverse(MergeEntry { key, value, src: entry.src }));
        }
        match groups.last_mut() {
            Some((gk, vs)) if *gk == entry.key => vs.push(entry.value),
            _ => groups.push((entry.key, vec![entry.value])),
        }
    }
    Ok(groups)
}

impl<K, V> ShuffleTransport<K, V> for SerializedTransport
where
    K: Ord + Send + Record,
    V: Send + Record,
{
    type Sink = SerializedSink<K, V>;

    fn task_sink(&self, task: usize, num_partitions: usize) -> SerializedSink<K, V> {
        SerializedSink {
            task,
            threshold: self.spill_threshold_bytes,
            store: Arc::clone(&self.store),
            parts: (0..num_partitions).map(|_| PartitionBuffer::new()).collect(),
            error: None,
        }
    }

    fn gather(
        &self,
        mut sinks: Vec<SerializedSink<K, V>>,
        num_partitions: usize,
    ) -> Result<ShuffleOutput<K, V>, ShuffleError> {
        for sink in &mut sinks {
            sink.finish();
            if let Some(error) = sink.error.take() {
                return Err(error);
            }
        }
        let mut shuffle_records = vec![0u64; num_partitions];
        let mut shuffle_bytes = vec![0u64; num_partitions];
        let mut stats = ShuffleStats::default();
        let mut grouped = Vec::with_capacity(num_partitions);
        for partition in 0..num_partitions {
            let mut readers = Vec::new();
            for sink in &sinks {
                let pb = &sink.parts[partition];
                shuffle_records[partition] += pb.records_total;
                shuffle_bytes[partition] += pb.bytes_total;
                stats.records_spilled += pb.records_total;
                stats.spill_segments += pb.segments as u64;
                stats.spill_bytes += pb.spill_bytes;
                stats.checksum ^= pb.checksum as u64;
                for segment in 0..pb.segments {
                    let key = (sink.task, partition, segment);
                    let id = SegmentId { task: sink.task, partition, segment };
                    readers.push(SegmentReader::open(self.store.take(key)?, id)?);
                }
            }
            grouped.push(merge_segments(readers)?);
        }
        Ok(ShuffleOutput { grouped, shuffle_records, shuffle_bytes, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(value: &T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        assert_eq!(
            bytes.len(),
            value.size_bytes(),
            "encoded length must equal size_bytes for {value:?}"
        );
        let mut reader = FrameReader::new(&bytes);
        let back = T::decode(&mut reader).expect("decode");
        reader.finish().expect("fully consumed");
        assert_eq!(&back, value);
    }

    /// Satellite: `size_bytes` equals the actual encoded frame length
    /// for every type the shuffle serializes (and the codec round-trips
    /// them bit-identically).
    #[test]
    fn sizeof_matches_encoded_length_for_all_record_types() {
        roundtrip(&0xABu8);
        roundtrip(&0xABCDu16);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&0x0123_4567_89AB_CDEFu64);
        roundtrip(&123_456_789usize);
        roundtrip(&-5i8);
        roundtrip(&-500i16);
        roundtrip(&-70_000i32);
        roundtrip(&i64::MIN);
        roundtrip(&-42isize);
        roundtrip(&1.5f32);
        roundtrip(&-0.0f64);
        roundtrip(&f64::NAN.to_bits()); // NaN via bits; f64 below
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&'é');
        roundtrip(&());
        roundtrip(&String::new());
        roundtrip(&"héllo wörld".to_string());
        roundtrip(&Vec::<u64>::new());
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&vec!["a".to_string(), String::new()]);
        roundtrip(&None::<u32>);
        roundtrip(&Some(7u32));
        roundtrip(&(1u64, "pair".to_string()));
        roundtrip(&(1u8, 2u16, 3u32));
        // NaN keeps its exact bit pattern through the f64 codec.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut bytes = Vec::new();
        nan.encode(&mut bytes);
        assert_eq!(bytes.len(), nan.size_bytes());
        let back = f64::decode(&mut FrameReader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut bytes = Vec::new();
        7u64.encode(&mut bytes);
        let mut short = FrameReader::new(&bytes[..5]);
        assert!(u64::decode(&mut short).is_err());

        let mut reader = FrameReader::new(&[2u8]);
        assert!(bool::decode(&mut reader).is_err());
        let mut reader = FrameReader::new(&[9u8]);
        assert!(Option::<u8>::decode(&mut reader).is_err());

        // A string whose length prefix overruns the frame.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(b"short");
        assert!(String::decode(&mut FrameReader::new(&bytes)).is_err());
    }

    proptest! {
        /// Satellite: arbitrary `(K, V)` batches encode→decode
        /// bit-identically through whole segments — including empty
        /// batches, zero-length strings, and every segment-boundary
        /// split a random spill threshold induces.
        #[test]
        fn prop_segment_roundtrip(
            raw in proptest::collection::vec(
                (0u64..50, (proptest::collection::vec(0u8..128, 0..12),
                            proptest::collection::vec(0u32..1000, 0..4))),
                0..40,
            ),
            threshold in 0u64..256,
        ) {
            // The string strategy: arbitrary ASCII (always valid UTF-8),
            // length 0..12 — zero-length strings occur naturally.
            let records: Vec<(u64, (String, Vec<u32>))> = raw
                .into_iter()
                .map(|(k, (s, v))| (k, (String::from_utf8(s).expect("ascii"), v)))
                .collect();
            // Whole-batch segment round-trip.
            let (bytes, _) = encode_segment(&records);
            let id = SegmentId { task: 0, partition: 0, segment: 0 };
            let mut reader: SegmentReader<u64, (String, Vec<u32>)> =
                SegmentReader::open(bytes, id).expect("segment verifies");
            let mut back = Vec::new();
            while let Some(record) = reader.next_record() {
                back.push(record.expect("record decodes"));
            }
            prop_assert_eq!(&back, &records);

            // Threshold-split spill through the sink: the merged read
            // equals the stable-sorted batch, whatever the splits.
            let transport = SerializedTransport::in_memory(threshold);
            let mut sink: SerializedSink<u64, (String, Vec<u32>)> =
                ShuffleTransport::task_sink(&transport, 0, 1);
            for (k, v) in records.clone() {
                sink.accept(0, k, v);
            }
            let out = ShuffleTransport::gather(&transport, vec![sink], 1).expect("gather");
            let expected = group_sorted(records.clone());
            prop_assert_eq!(&out.grouped[0], &expected);
            prop_assert_eq!(out.shuffle_records[0] as usize, records.len());
            prop_assert_eq!(out.stats.records_spilled as usize, records.len());
        }

        /// The spill stats' threshold invariants: `records_spilled` and
        /// `checksum` never move with the threshold; the segmentation
        /// (`spill_segments`) shrinks monotonically as it grows.
        #[test]
        fn prop_checksum_invariant_across_thresholds(
            records in proptest::collection::vec((0u64..20, 0u64..1000), 1..60),
        ) {
            let mut stats = Vec::new();
            for threshold in [0u64, 64, u64::MAX] {
                let transport = SerializedTransport::in_memory(threshold);
                let mut sink: SerializedSink<u64, u64> =
                    ShuffleTransport::task_sink(&transport, 0, 2);
                for &(k, v) in &records {
                    sink.accept((k % 2) as usize, k, v);
                }
                let out = ShuffleTransport::gather(&transport, vec![sink], 2).expect("gather");
                stats.push(out.stats);
            }
            for s in &stats {
                prop_assert_eq!(s.records_spilled as usize, records.len());
                prop_assert_eq!(s.checksum, stats[0].checksum);
            }
            prop_assert!(stats[0].spill_segments >= stats[1].spill_segments);
            prop_assert!(stats[1].spill_segments >= stats[2].spill_segments);
        }
    }

    /// Satellite: one flipped byte in a spilled segment surfaces as a
    /// structured checksum error — not a panic, not a wrong answer.
    #[test]
    fn corruption_is_detected_as_a_structured_error() {
        let records: Vec<(u64, String)> =
            (0..20).map(|i| (i % 5, format!("payload-{i}"))).collect();
        let (bytes, _) = encode_segment(&records);
        let id = SegmentId { task: 1, partition: 2, segment: 3 };

        // Pristine bytes verify.
        assert!(SegmentReader::<u64, String>::open(bytes.clone(), id).is_ok());

        // Flip one payload byte: the recomputed frame CRC xor-fold must
        // disagree with the header.
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x40;
        match SegmentReader::<u64, String>::open(corrupted, id) {
            Err(ShuffleError::ChecksumMismatch { segment, expected, actual }) => {
                assert_eq!(segment, id);
                assert_ne!(expected, actual);
            }
            other => panic!("expected a checksum mismatch, got {:?}", other.map(|_| ())),
        }

        // Truncation is caught by the framing validation.
        let truncated = bytes[..bytes.len() - 3].to_vec();
        match SegmentReader::<u64, String>::open(truncated, id) {
            Err(ShuffleError::Corrupt { segment, .. }) => assert_eq!(segment, id),
            other => panic!("expected a corrupt-segment error, got {:?}", other.map(|_| ())),
        }

        // A flipped magic byte is framing corruption too.
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            SegmentReader::<u64, String>::open(bad_magic, id),
            Err(ShuffleError::Corrupt { .. })
        ));
    }

    /// The serialized gather must equal the in-memory gather bit for bit
    /// on grouped output and record/byte accounting, across thresholds
    /// and multi-task emission patterns (including duplicate keys whose
    /// within-key order is the stable-sort contract).
    #[test]
    fn serialized_gather_matches_in_memory() {
        let tasks: Vec<Vec<(u64, String)>> = vec![
            (0..30).map(|i| (i % 7, format!("t0-{i}"))).collect(),
            (0..20).map(|i| (i % 3, format!("t1-{i}"))).collect(),
            Vec::new(),
            (0..10).map(|i| (13 - i, format!("t3-{i}"))).collect(),
        ];
        let parts = 3;

        let in_mem = InMemoryTransport;
        let mut mem_sinks = Vec::new();
        for (t, records) in tasks.iter().enumerate() {
            let mut sink: MemorySink<u64, String> = ShuffleTransport::task_sink(&in_mem, t, parts);
            for (k, v) in records {
                sink.accept((*k % parts as u64) as usize, *k, v.clone());
            }
            mem_sinks.push(sink);
        }
        let reference = ShuffleTransport::gather(&in_mem, mem_sinks, parts).unwrap();

        for threshold in [0u64, 40, 200, u64::MAX] {
            let transport = SerializedTransport::in_memory(threshold);
            let mut sinks = Vec::new();
            for (t, records) in tasks.iter().enumerate() {
                let mut sink: SerializedSink<u64, String> =
                    ShuffleTransport::task_sink(&transport, t, parts);
                for (k, v) in records {
                    sink.accept((*k % parts as u64) as usize, *k, v.clone());
                }
                sinks.push(sink);
            }
            let out = ShuffleTransport::gather(&transport, sinks, parts).unwrap();
            assert_eq!(out.grouped, reference.grouped, "threshold {threshold}");
            assert_eq!(out.shuffle_records, reference.shuffle_records);
            assert_eq!(out.shuffle_bytes, reference.shuffle_bytes);
            assert_eq!(out.stats.records_spilled, 60);
            assert!(out.stats.spill_segments > 0);
        }
    }

    /// The temp-dir store round-trips segments through real files and
    /// produces stats identical to the in-memory store.
    #[test]
    fn temp_dir_store_matches_memory_store() {
        let run = |sink_kind: SpillSinkKind| {
            let transport = SerializedTransport::new(64, sink_kind).expect("transport");
            let mut sink: SerializedSink<u64, u64> = ShuffleTransport::task_sink(&transport, 0, 2);
            for i in 0..40u64 {
                sink.accept((i % 2) as usize, i % 5, i);
            }
            let out = ShuffleTransport::gather(&transport, vec![sink], 2).expect("gather");
            (out.grouped, out.stats)
        };
        let (mem_grouped, mem_stats) = run(SpillSinkKind::Memory);
        let (dir_grouped, dir_stats) = run(SpillSinkKind::TempDir);
        assert_eq!(dir_grouped, mem_grouped);
        assert_eq!(dir_stats, mem_stats);
        assert!(dir_stats.spill_bytes > 0);
    }

    /// The spill directory removes itself when the transport drops.
    #[test]
    fn spill_dir_cleans_up_on_drop() {
        let dir = SpillDir::create().expect("create");
        let path = dir.path.clone();
        std::fs::write(path.join("probe.seg"), b"x").unwrap();
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn shuffle_mode_env_parses() {
        // from_env reads the ambient env; only assert the unset path
        // here (tests run in one process — mutating env would race).
        if std::env::var(SPILL_THRESHOLD_ENV).is_err() {
            assert_eq!(ShuffleMode::from_env(), None);
        }
    }

    #[test]
    fn merged_stats_sum_and_xor() {
        let a = ShuffleStats {
            records_spilled: 3,
            spill_segments: 2,
            spill_bytes: 100,
            checksum: 0b1100,
        };
        let b = ShuffleStats {
            records_spilled: 5,
            spill_segments: 1,
            spill_bytes: 50,
            checksum: 0b1010,
        };
        let m = a.merged(&b);
        assert_eq!(m.records_spilled, 8);
        assert_eq!(m.spill_segments, 3);
        assert_eq!(m.spill_bytes, 150);
        assert_eq!(m.checksum, 0b0110);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
