//! Shuffle-size accounting.
//!
//! The engine charges each shuffled `(key, value)` record its
//! [`SizeOf::size_bytes`], approximating the serialized record size a real
//! Map-Reduce shuffle would move. TKIJ's input-cost optimization (DTB's
//! `inCost`) and the paper's "LPT incurs 43 % higher shuffle cost"
//! comparison are measured against this counter.

/// Approximate serialized size of a shuffled datum.
pub trait SizeOf {
    /// Size in bytes.
    fn size_bytes(&self) -> usize;
}

macro_rules! fixed_size {
    ($($t:ty),*) => {
        $(impl SizeOf for $t {
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

fixed_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, ());

impl<A: SizeOf, B: SizeOf> SizeOf for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: SizeOf, B: SizeOf, C: SizeOf> SizeOf for (A, B, C) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

impl<T: SizeOf> SizeOf for Vec<T> {
    fn size_bytes(&self) -> usize {
        // Length prefix plus elements.
        8 + self.iter().map(SizeOf::size_bytes).sum::<usize>()
    }
}

impl<T: SizeOf> SizeOf for Option<T> {
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, SizeOf::size_bytes)
    }
}

impl SizeOf for String {
    fn size_bytes(&self) -> usize {
        8 + self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_use_memory_size() {
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(7u8.size_bytes(), 1);
        assert_eq!(1.5f64.size_bytes(), 8);
    }

    #[test]
    fn composites_sum_parts() {
        assert_eq!((1u32, 2u64).size_bytes(), 12);
        assert_eq!((1u8, 2u8, 3u32).size_bytes(), 6);
        assert_eq!(vec![1u64, 2, 3].size_bytes(), 8 + 24);
        assert_eq!(Some(5u32).size_bytes(), 5);
        assert_eq!(None::<u32>.size_bytes(), 1);
        assert_eq!("abcd".to_string().size_bytes(), 12);
    }
}
