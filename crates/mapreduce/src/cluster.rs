//! Cluster shape: slots used for simulated scheduling and thread pool
//! sizing.

/// Describes the simulated cluster a job runs on.
///
/// The defaults mirror the paper's platform (§4): 6 workers and 24
/// reducers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Concurrent map slots (the paper's 6 workers).
    pub map_slots: usize,
    /// Reducer slots; the join phase runs one reduce task per partition
    /// and its wave makespan is computed over these slots.
    pub reduce_slots: usize,
    /// OS threads actually used to execute tasks; `0` runs tasks
    /// sequentially (deterministic timings on small hosts). Outputs are
    /// identical either way.
    pub worker_threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { map_slots: 6, reduce_slots: 24, worker_threads: 0 }
    }
}

impl ClusterConfig {
    /// A config with the given number of reducers, keeping paper defaults
    /// elsewhere.
    pub fn with_reducers(reducers: usize) -> Self {
        ClusterConfig { reduce_slots: reducers, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let c = ClusterConfig::default();
        assert_eq!(c.map_slots, 6);
        assert_eq!(c.reduce_slots, 24);
        assert_eq!(c.worker_threads, 0);
    }

    #[test]
    fn with_reducers_overrides_only_reducers() {
        let c = ClusterConfig::with_reducers(20);
        assert_eq!(c.reduce_slots, 20);
        assert_eq!(c.map_slots, 6);
    }
}
