//! Cluster shape: slots used for simulated scheduling and thread pool
//! sizing, plus the nested thread budget shared by the two parallelism
//! layers (task-level `worker_threads` × intra-join `intra_join_threads`)
//! and the shuffle-transport selection ([`ShuffleMode`]).

use crate::shuffle::ShuffleMode;

/// Describes the simulated cluster a job runs on.
///
/// The defaults mirror the paper's platform (§4): 6 workers and 24
/// reducers.
///
/// Two independent knobs control real OS-thread parallelism, and both
/// follow the same convention (`0` = sequential):
///
/// * [`worker_threads`](Self::worker_threads) executes whole map/reduce
///   *tasks* concurrently;
/// * [`intra_join_threads`](Self::intra_join_threads) parallelizes
///   *inside* one join-phase reduce task, sharding its probe stream
///   across chunk workers (`tkij_core::localjoin`).
///
/// When both are set, the layers nest: each concurrent reduce task may
/// spawn its own chunk workers. [`Self::thread_budget`] bounds the
/// product — the inner layer is throttled so `outer × inner` never
/// exceeds the budget (hard-asserted by
/// [`Self::assert_within_budget`]) — and neither knob ever changes
/// outputs or work counters, only who executes the fixed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Concurrent map slots (the paper's 6 workers).
    pub map_slots: usize,
    /// Reducer slots; the join phase runs one reduce task per partition
    /// and its wave makespan is computed over these slots.
    pub reduce_slots: usize,
    /// OS threads actually used to execute tasks; `0` runs tasks
    /// sequentially (deterministic timings on small hosts). Outputs are
    /// identical either way.
    pub worker_threads: usize,
    /// OS threads one join-phase reduce task may use to evaluate its
    /// probe chunks; `0` evaluates chunks sequentially on the task's own
    /// thread. Outputs and work counters are identical either way: the
    /// chunk schedule is fixed, threads only execute it.
    pub intra_join_threads: usize,
    /// Which shuffle transport jobs use (see [`ShuffleMode`]). The
    /// serialized spill path produces bit-identical outputs and
    /// record/byte accounting to the in-memory default; only the
    /// [`ShuffleStats`](crate::ShuffleStats) spill counters differ.
    pub shuffle: ShuffleMode,
}

impl Default for ClusterConfig {
    /// Paper platform defaults — with the shuffle transport overridable
    /// through [`SPILL_THRESHOLD_ENV`](crate::shuffle::SPILL_THRESHOLD_ENV),
    /// which is how CI forces entire determinism batteries through the
    /// spill path without touching their configs.
    fn default() -> Self {
        ClusterConfig {
            map_slots: 6,
            reduce_slots: 24,
            worker_threads: 0,
            intra_join_threads: 0,
            shuffle: ShuffleMode::from_env().unwrap_or(ShuffleMode::InMemory),
        }
    }
}

impl ClusterConfig {
    /// A config with the given number of reducers, keeping paper defaults
    /// elsewhere.
    pub fn with_reducers(reducers: usize) -> Self {
        ClusterConfig { reduce_slots: reducers, ..Default::default() }
    }

    /// Convenience: override the intra-join thread knob.
    pub fn with_intra_join_threads(mut self, threads: usize) -> Self {
        self.intra_join_threads = threads;
        self
    }

    /// Total OS-thread budget of the nested parallelism layers: the
    /// larger of the two knobs (each treated as 1 when 0 = sequential).
    /// The budget is what the operator sized the host for; nesting must
    /// never multiply past it.
    pub fn thread_budget(&self) -> usize {
        self.worker_threads.max(self.intra_join_threads).max(1)
    }

    /// Intra-join threads each of `outer` concurrently-executing tasks
    /// may use so that `outer × inner` stays within
    /// [`Self::thread_budget`]. Returns `0` (sequential chunk
    /// evaluation) when the knob is off or the outer wave already
    /// consumes the budget.
    pub fn intra_threads_for(&self, outer: usize) -> usize {
        if self.intra_join_threads == 0 {
            return 0;
        }
        let outer = outer.max(1);
        let inner = (self.thread_budget() / outer).min(self.intra_join_threads);
        if inner <= 1 {
            return 0; // a 1-thread scope is just sequential with overhead
        }
        self.assert_within_budget(outer, inner);
        inner
    }

    /// Hard-asserts that a nested `outer × inner` thread plan stays
    /// within [`Self::thread_budget`] (a sequential layer counts as 1 —
    /// its host thread). Panics in release builds too: oversubscription
    /// would silently destroy the timing fidelity every simulated-
    /// makespan figure depends on.
    pub fn assert_within_budget(&self, outer: usize, inner: usize) {
        let product = outer.max(1) * inner.max(1);
        assert!(
            product <= self.thread_budget(),
            "nested parallelism {outer} tasks × {inner} intra-join threads = {product} \
             oversubscribes the thread budget {} (worker_threads {}, intra_join_threads {})",
            self.thread_budget(),
            self.worker_threads,
            self.intra_join_threads,
        );
    }

    /// The effective intra-join thread count for a join phase running
    /// `reduce_tasks` reduce tasks under this config: the outer reduce
    /// wave's concurrency is what [`crate::run_map_reduce`] will actually
    /// use, and the inner count is budgeted against it.
    pub fn intra_join_plan(&self, reduce_tasks: usize) -> usize {
        let outer = if self.worker_threads <= 1 || reduce_tasks <= 1 {
            1
        } else {
            self.worker_threads.min(reduce_tasks)
        };
        let inner = self.intra_threads_for(outer);
        self.assert_within_budget(outer, inner);
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let c = ClusterConfig::default();
        assert_eq!(c.map_slots, 6);
        assert_eq!(c.reduce_slots, 24);
        assert_eq!(c.worker_threads, 0);
        assert_eq!(c.intra_join_threads, 0, "intra-join parallelism is opt-in");
        assert_eq!(c.thread_budget(), 1);
        // The shuffle default honors the CI spill-forcing env hook, like
        // TkijConfig::default() honors TKIJ_SWEEP_SCAN.
        assert_eq!(c.shuffle, ShuffleMode::from_env().unwrap_or(ShuffleMode::InMemory));
    }

    #[test]
    fn with_reducers_overrides_only_reducers() {
        let c = ClusterConfig::with_reducers(20);
        assert_eq!(c.reduce_slots, 20);
        assert_eq!(c.map_slots, 6);
        assert_eq!(c.intra_join_threads, 0);
    }

    #[test]
    fn budget_is_the_larger_knob() {
        let c = ClusterConfig::default().with_intra_join_threads(4);
        assert_eq!(c.thread_budget(), 4);
        let c = ClusterConfig { worker_threads: 6, ..c };
        assert_eq!(c.thread_budget(), 6);
    }

    #[test]
    fn inner_threads_throttle_under_outer_concurrency() {
        let c =
            ClusterConfig { worker_threads: 4, intra_join_threads: 4, ..ClusterConfig::default() };
        // Outer wave saturates the budget: chunks run sequentially.
        assert_eq!(c.intra_threads_for(4), 0);
        // A narrower outer wave frees budget for the inner layer.
        assert_eq!(c.intra_threads_for(2), 2);
        assert_eq!(c.intra_threads_for(1), 4);
        // Knob off: always sequential.
        let off = ClusterConfig { intra_join_threads: 0, ..c };
        assert_eq!(off.intra_threads_for(1), 0);
    }

    #[test]
    fn intra_join_plan_accounts_for_the_reduce_wave() {
        let c =
            ClusterConfig { worker_threads: 2, intra_join_threads: 8, ..ClusterConfig::default() };
        // 2 concurrent reduce tasks × 4 inner threads = the budget of 8.
        assert_eq!(c.intra_join_plan(24), 4);
        // A single reduce task gets the whole inner knob.
        assert_eq!(c.intra_join_plan(1), 8);
        // Sequential task execution: same.
        let seq = ClusterConfig { worker_threads: 0, ..c };
        assert_eq!(seq.intra_join_plan(24), 8);
    }

    #[test]
    #[should_panic(expected = "oversubscribes the thread budget")]
    fn oversubscribed_nesting_is_rejected_loudly() {
        let c =
            ClusterConfig { worker_threads: 4, intra_join_threads: 4, ..ClusterConfig::default() };
        // 4 × 4 = 16 > budget 4: a bogus hand-built plan must panic.
        c.assert_within_budget(4, 4);
    }
}
