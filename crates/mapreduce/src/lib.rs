//! # tkij-mapreduce — an in-process Map-Reduce engine
//!
//! TKIJ (paper §3) is specified as a sequence of Map-Reduce jobs on a
//! Hadoop cluster. This crate substitutes a small, deterministic,
//! in-process engine that preserves everything the paper's analysis
//! depends on:
//!
//! * the **dataflow**: per-split stateful mappers → map-side partitioning
//!   → a real shuffle stage → per-partition grouped reducers;
//! * the **cost counters** the paper reasons about: shuffle records and
//!   bytes per reducer (replication/input cost), per-task durations, the
//!   simulated makespan on a fixed number of reducer slots, and the
//!   max/avg reducer imbalance plotted in Fig. 10b;
//! * **determinism**: outputs are independent of the number of worker
//!   threads (partitions are sorted and grouped before reduction), so
//!   distributed execution order can never change query answers.
//!
//! Tasks can execute on a pool of OS threads
//! ([`ClusterConfig::worker_threads`]) or sequentially (`0`), which is the
//! default used by the benchmark harnesses: on a single-core host,
//! sequential execution gives unpolluted per-task timings, and wave
//! makespans are *computed* by list-scheduling the measured durations onto
//! the configured slots — see [`JobMetrics`].

pub mod cluster;
pub mod engine;
pub mod metrics;
pub mod sizeof;

pub use cluster::ClusterConfig;
pub use engine::{run_map_reduce, Emitter};
pub use metrics::{list_schedule_makespan, JobMetrics};
pub use sizeof::SizeOf;
