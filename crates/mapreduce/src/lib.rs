//! # tkij-mapreduce — an in-process Map-Reduce engine
//!
//! TKIJ (paper §3) is specified as a sequence of Map-Reduce jobs on a
//! Hadoop cluster. This crate substitutes a small, deterministic,
//! in-process engine that preserves everything the paper's analysis
//! depends on:
//!
//! * the **dataflow**: per-split stateful mappers → map-side partitioning
//!   → a real shuffle stage → per-partition grouped reducers;
//! * the **cost counters** the paper reasons about: shuffle records and
//!   bytes per reducer (replication/input cost), per-task durations, the
//!   simulated makespan on a fixed number of reducer slots, and the
//!   max/avg reducer imbalance plotted in Fig. 10b;
//! * **determinism**: outputs are independent of the number of worker
//!   threads (partitions are sorted and grouped before reduction), so
//!   distributed execution order can never change query answers.
//!
//! Two nested layers of real OS-thread parallelism are available, each
//! defaulting to sequential (`0`): whole tasks execute on a pool of
//! [`ClusterConfig::worker_threads`], and one join-phase reduce task may
//! additionally shard its probe stream across
//! [`ClusterConfig::intra_join_threads`] chunk workers (the intra-reducer
//! parallel join of `tkij_core::localjoin`). The layers share one
//! thread budget — [`ClusterConfig::thread_budget`] throttles the inner
//! layer so `outer × inner` never oversubscribes the host, and
//! [`ClusterConfig::assert_within_budget`] hard-asserts it. Sequential
//! execution remains the benchmark default: on a single-core host it
//! gives unpolluted per-task timings, and wave makespans are *computed*
//! by list-scheduling the measured durations onto the configured slots —
//! see [`JobMetrics`]. Neither knob can change outputs or work counters.

//!
//! Two **shuffle transports** sit behind [`ShuffleMode`]: the default
//! in-memory `Vec` gather, and a serialized out-of-core path
//! ([`shuffle::SerializedTransport`]) that frame-encodes records
//! ([`Record`]), spills checksummed segments once a configurable byte
//! threshold is exceeded, and merge-sorts them back on the reduce side —
//! bit-identical grouped partitions either way, with spill work surfaced
//! in [`ShuffleStats`].

pub mod cluster;
pub mod engine;
pub mod metrics;
pub mod shuffle;
pub mod sizeof;

pub use cluster::ClusterConfig;
pub use engine::{run_map_reduce, run_map_reduce_with, try_run_map_reduce, Emitter};
pub use metrics::{list_schedule_makespan, JobMetrics};
pub use shuffle::{
    CodecError, FrameReader, Record, ShuffleError, ShuffleMode, ShuffleStats, ShuffleTransport,
    SpillSinkKind, TaskSink, SPILL_THRESHOLD_ENV,
};
pub use sizeof::SizeOf;
