//! Job cost accounting: the counters the paper's evaluation reads off
//! Hadoop, measured here by the engine itself.

use crate::shuffle::ShuffleStats;
use std::time::Duration;

/// Execution metrics of one Map-Reduce job.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Wall-clock duration of each map task.
    pub map_durations: Vec<Duration>,
    /// Wall-clock duration of each reduce task (one per partition).
    pub reduce_durations: Vec<Duration>,
    /// Records shuffled into each partition.
    pub shuffle_records: Vec<u64>,
    /// Approximate bytes shuffled into each partition (see
    /// [`crate::SizeOf`]) — identical under either shuffle transport.
    pub shuffle_bytes: Vec<u64>,
    /// Serialized-shuffle spill accounting; all-zero when the job ran
    /// the in-memory transport.
    pub shuffle: ShuffleStats,
    /// Wall-clock time of the whole job as executed locally.
    pub wall: Duration,
}

impl JobMetrics {
    /// Total shuffled records.
    pub fn total_shuffle_records(&self) -> u64 {
        self.shuffle_records.iter().sum()
    }

    /// Total shuffled bytes (the job's "input cost" in the paper's I/O
    /// discussions).
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.shuffle_bytes.iter().sum()
    }

    /// Longest reduce task — Fig. 8b's "Max. Time Reducer".
    pub fn max_reduce(&self) -> Duration {
        self.reduce_durations.iter().copied().max().unwrap_or_default()
    }

    /// Mean reduce task duration.
    pub fn avg_reduce(&self) -> Duration {
        if self.reduce_durations.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.reduce_durations.iter().sum();
        total / self.reduce_durations.len() as u32
    }

    /// Load imbalance `max / avg` over reduce tasks — Fig. 10b. Returns
    /// `1.0` for degenerate (empty / all-zero) task sets.
    pub fn imbalance(&self) -> f64 {
        let avg = self.avg_reduce().as_secs_f64();
        if avg <= 0.0 {
            return 1.0;
        }
        self.max_reduce().as_secs_f64() / avg
    }

    /// Simulated duration of the map wave on `map_slots` parallel slots.
    pub fn map_makespan(&self, map_slots: usize) -> Duration {
        list_schedule_makespan(&self.map_durations, map_slots)
    }

    /// Simulated duration of the reduce wave on `reduce_slots` slots.
    pub fn reduce_makespan(&self, reduce_slots: usize) -> Duration {
        list_schedule_makespan(&self.reduce_durations, reduce_slots)
    }

    /// Simulated job runtime on the configured cluster: map wave followed
    /// by reduce wave (shuffle overlaps the map wave, as in Hadoop).
    pub fn simulated_runtime(&self, cfg: &crate::ClusterConfig) -> Duration {
        self.map_makespan(cfg.map_slots) + self.reduce_makespan(cfg.reduce_slots)
    }
}

/// Greedy list-scheduling makespan: tasks are assigned in order to the
/// least-loaded of `slots` machines. This mirrors how a Hadoop
/// job-tracker fills free slots and is how the harnesses translate
/// measured per-task durations into cluster-level running times on a
/// single-core host.
pub fn list_schedule_makespan(tasks: &[Duration], slots: usize) -> Duration {
    let slots = slots.max(1);
    let mut loads = vec![Duration::ZERO; slots];
    for &t in tasks {
        let min = loads.iter_mut().min_by_key(|d| **d).expect("slots ≥ 1");
        *min += t;
    }
    loads.into_iter().max().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn makespan_single_slot_is_sum() {
        let tasks = [ms(10), ms(20), ms(30)];
        assert_eq!(list_schedule_makespan(&tasks, 1), ms(60));
    }

    #[test]
    fn makespan_many_slots_is_max() {
        let tasks = [ms(10), ms(20), ms(30)];
        assert_eq!(list_schedule_makespan(&tasks, 3), ms(30));
        assert_eq!(list_schedule_makespan(&tasks, 10), ms(30));
    }

    #[test]
    fn makespan_greedy_two_slots() {
        // Order matters for list scheduling: 10 → slot A, 20 → slot B,
        // 30 → slot A (10 < 20) ⇒ loads (40, 20).
        let tasks = [ms(10), ms(20), ms(30)];
        assert_eq!(list_schedule_makespan(&tasks, 2), ms(40));
    }

    #[test]
    fn makespan_handles_empty_and_zero_slots() {
        assert_eq!(list_schedule_makespan(&[], 4), Duration::ZERO);
        assert_eq!(list_schedule_makespan(&[ms(5)], 0), ms(5), "slots clamp to 1");
    }

    #[test]
    fn imbalance_max_over_avg() {
        let m = JobMetrics { reduce_durations: vec![ms(10), ms(20), ms(30)], ..Default::default() };
        assert_eq!(m.max_reduce(), ms(30));
        assert_eq!(m.avg_reduce(), ms(20));
        assert!((m.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_degenerate_is_one() {
        let m = JobMetrics::default();
        assert_eq!(m.imbalance(), 1.0);
    }

    #[test]
    fn totals_sum_partitions() {
        let m = JobMetrics {
            shuffle_records: vec![3, 4],
            shuffle_bytes: vec![100, 250],
            ..Default::default()
        };
        assert_eq!(m.total_shuffle_records(), 7);
        assert_eq!(m.total_shuffle_bytes(), 350);
    }

    #[test]
    fn simulated_runtime_composes_waves() {
        let m = JobMetrics {
            map_durations: vec![ms(10), ms(10)],
            reduce_durations: vec![ms(30), ms(10)],
            ..Default::default()
        };
        let cfg = crate::ClusterConfig { map_slots: 2, reduce_slots: 2, ..Default::default() };
        assert_eq!(m.simulated_runtime(&cfg), ms(10) + ms(30));
    }
}
