//! The Map-Reduce execution engine.
//!
//! One job = per-split mappers emitting `(K, V)` records through a
//! map-side [`Emitter`] (which partitions immediately, like Hadoop's
//! map-side partitioner), a shuffle stage that gathers, counts, sorts and
//! groups each partition, and one reduce task per partition. Outputs are
//! concatenated in partition order, making the job deterministic for any
//! thread count.

use crate::cluster::ClusterConfig;
use crate::metrics::JobMetrics;
use crate::sizeof::SizeOf;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Map-side collector: routes each emitted record to its partition.
pub struct Emitter<'p, K, V> {
    partitioner: &'p (dyn Fn(&K) -> usize + Sync),
    buffers: Vec<Vec<(K, V)>>,
}

impl<'p, K, V> Emitter<'p, K, V> {
    fn new(num_partitions: usize, partitioner: &'p (dyn Fn(&K) -> usize + Sync)) -> Self {
        Emitter { partitioner, buffers: (0..num_partitions).map(|_| Vec::new()).collect() }
    }

    /// Emits one record; the partitioner must return an index `<`
    /// the configured number of partitions.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the partitioner strays out
    /// of range — in release builds too: a mis-partitioned record would
    /// otherwise surface as a bare slice-index panic far from the
    /// offending partitioner.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let p = (self.partitioner)(&key);
        assert!(
            p < self.buffers.len(),
            "partitioner returned partition {p} for a job with {} partitions",
            self.buffers.len()
        );
        self.buffers[p].push((key, value));
    }

    /// Records emitted so far (all partitions).
    pub fn emitted(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }
}

/// Runs `n` independent tasks on `threads` worker threads (sequentially
/// when `threads ≤ 1`), returning results in task order.
fn run_tasks<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                // Relaxed ordering suffices: the cursor only hands out
                // task indices exactly once (fetch_add is atomic at any
                // ordering); each task's output lands in its own slot,
                // so claim order can never reach results or counters.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");
    results.into_inner().into_iter().map(|o| o.expect("every task ran")).collect()
}

/// Executes one Map-Reduce job.
///
/// * `inputs` are split into `num_map_tasks` contiguous chunks; `mapper`
///   is called once per chunk (stateful per-split mapping, which is what
///   TKIJ's statistics job needs to build local matrices).
/// * `partitioner` routes keys to `num_partitions` reduce partitions.
/// * `reducer` receives its partition's records grouped by key, keys
///   sorted ascending, and every partition is reduced (possibly empty),
///   mirroring Hadoop semantics.
///
/// Timed output of one map task: its duration plus one emit buffer per
/// reduce partition.
type MapTaskOutput<K, V> = (Duration, Vec<Vec<(K, V)>>);

/// A reduce partition's grouped input, consumed exactly once by its task.
type GroupedPartition<K, V> = Mutex<Option<Vec<(K, Vec<V>)>>>;

/// Returns the concatenated reducer outputs (partition order) and the
/// job's [`JobMetrics`].
#[allow(clippy::too_many_arguments)]
pub fn run_map_reduce<I, K, V, R, M, P, F>(
    inputs: &[I],
    num_map_tasks: usize,
    num_partitions: usize,
    mapper: M,
    partitioner: P,
    reducer: F,
    cfg: &ClusterConfig,
) -> (Vec<R>, JobMetrics)
where
    I: Sync,
    K: Ord + Send + SizeOf,
    V: Send + SizeOf,
    R: Send,
    M: Fn(usize, &[I], &mut Emitter<'_, K, V>) + Sync,
    P: Fn(&K) -> usize + Sync,
    F: Fn(usize, Vec<(K, Vec<V>)>) -> Vec<R> + Sync,
{
    // tkij-lint: allow(DET002) -- feeds only JobMetrics::wall, a timing artifact
    let job_start = Instant::now();
    let num_map_tasks = num_map_tasks.clamp(1, inputs.len().max(1));
    let chunk = inputs.len().div_ceil(num_map_tasks).max(1);

    // ---- Map wave -------------------------------------------------------
    let map_results: Vec<MapTaskOutput<K, V>> = run_tasks(num_map_tasks, cfg.worker_threads, |t| {
        let lo = (t * chunk).min(inputs.len());
        let hi = ((t + 1) * chunk).min(inputs.len());
        let mut em = Emitter::new(num_partitions, &partitioner);
        // tkij-lint: allow(DET002) -- feeds only JobMetrics::map_durations, timing artifacts
        let started = Instant::now();
        mapper(t, &inputs[lo..hi], &mut em);
        (started.elapsed(), em.buffers)
    });

    let mut map_durations = Vec::with_capacity(num_map_tasks);
    let mut map_outputs: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(num_map_tasks);
    for (d, bufs) in map_results {
        map_durations.push(d);
        map_outputs.push(bufs);
    }

    // ---- Shuffle: gather, account, sort, group --------------------------
    let mut shuffle_records = vec![0u64; num_partitions];
    let mut shuffle_bytes = vec![0u64; num_partitions];
    let mut partitions: Vec<Vec<(K, V)>> = (0..num_partitions).map(|_| Vec::new()).collect();
    for bufs in map_outputs {
        for (p, buf) in bufs.into_iter().enumerate() {
            for (k, v) in buf {
                shuffle_records[p] += 1;
                shuffle_bytes[p] += (k.size_bytes() + v.size_bytes()) as u64;
                partitions[p].push((k, v));
            }
        }
    }
    let grouped: Vec<Vec<(K, Vec<V>)>> = partitions
        .into_iter()
        .map(|mut records| {
            // Stable sort keeps map-task emission order within equal keys,
            // which is itself deterministic (task-index order).
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let mut groups: Vec<(K, Vec<V>)> = Vec::new();
            for (k, v) in records {
                match groups.last_mut() {
                    Some((gk, vs)) if *gk == k => vs.push(v),
                    _ => groups.push((k, vec![v])),
                }
            }
            groups
        })
        .collect();

    // ---- Reduce wave ----------------------------------------------------
    let grouped_slots: Vec<GroupedPartition<K, V>> =
        grouped.into_iter().map(|g| Mutex::new(Some(g))).collect();
    let reduce_results: Vec<(Duration, Vec<R>)> =
        run_tasks(num_partitions, cfg.worker_threads, |p| {
            let groups = grouped_slots[p].lock().take().expect("partition reduced once");
            // tkij-lint: allow(DET002) -- feeds only JobMetrics::reduce_durations, timing artifacts
            let started = Instant::now();
            let out = reducer(p, groups);
            (started.elapsed(), out)
        });

    let mut reduce_durations = Vec::with_capacity(num_partitions);
    let mut outputs = Vec::new();
    for (d, out) in reduce_results {
        reduce_durations.push(d);
        outputs.extend(out);
    }

    let metrics = JobMetrics {
        map_durations,
        reduce_durations,
        shuffle_records,
        shuffle_bytes,
        wall: job_start.elapsed(),
    };
    (outputs, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word-count over small documents, the canonical smoke test.
    fn word_count(threads: usize) -> (Vec<(String, u64)>, JobMetrics) {
        let docs =
            vec!["a b a".to_string(), "b c".to_string(), "a c c".to_string(), "d".to_string()];
        let cfg = ClusterConfig { worker_threads: threads, ..Default::default() };
        run_map_reduce(
            &docs,
            2,
            3,
            |_, chunk, em| {
                for doc in chunk {
                    for w in doc.split_whitespace() {
                        em.emit(w.to_string(), 1u64);
                    }
                }
            },
            |k| (k.as_bytes()[0] as usize) % 3,
            |_, groups| groups.into_iter().map(|(k, vs)| (k, vs.iter().sum::<u64>())).collect(),
            &cfg,
        )
    }

    #[test]
    fn word_count_is_correct() {
        let (mut out, metrics) = word_count(0);
        out.sort();
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 3), ("d".into(), 1)]);
        assert_eq!(metrics.total_shuffle_records(), 9, "one record per word");
        assert_eq!(metrics.map_durations.len(), 2);
        assert_eq!(metrics.reduce_durations.len(), 3);
    }

    #[test]
    fn outputs_independent_of_thread_count() {
        let (seq, _) = word_count(0);
        let (par, _) = word_count(4);
        assert_eq!(seq, par, "parallel execution must not reorder output");
    }

    #[test]
    fn reducer_keys_arrive_sorted_and_grouped() {
        let data: Vec<u64> = vec![5, 3, 5, 1, 3, 5];
        let (out, _) = run_map_reduce(
            &data,
            3,
            1,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(x, x * 10);
                }
            },
            |_| 0,
            |_, groups| {
                // Assert sortedness inside the reducer itself.
                let keys: Vec<u64> = groups.iter().map(|(k, _)| *k).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted);
                groups.into_iter().map(|(k, vs)| (k, vs.len())).collect::<Vec<_>>()
            },
            &ClusterConfig::default(),
        );
        assert_eq!(out, vec![(1, 1), (3, 2), (5, 3)]);
    }

    #[test]
    fn empty_partitions_still_reduce() {
        let data = vec![1u64];
        // Relaxed ordering throughout: the counter is only read after
        // the job (and its thread joins) completed.
        let calls = AtomicUsize::new(0);
        let (_, metrics) = run_map_reduce(
            &data,
            1,
            4,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(x, ());
                }
            },
            |_| 0,
            |_, _groups| {
                calls.fetch_add(1, Ordering::Relaxed);
                Vec::<()>::new()
            },
            &ClusterConfig::default(),
        );
        // Relaxed ordering: reading after every worker joined.
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.shuffle_records, vec![1, 0, 0, 0]);
    }

    #[test]
    fn shuffle_bytes_use_sizeof() {
        let data = vec![7u64, 8u64];
        let (_, metrics) = run_map_reduce(
            &data,
            1,
            2,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(x, x as u32);
                }
            },
            |k| (*k % 2) as usize,
            |_, groups| groups,
            &ClusterConfig::default(),
        );
        // Each record: u64 key (8) + u32 value (4) = 12 bytes.
        assert_eq!(metrics.shuffle_bytes, vec![12, 12]);
        assert_eq!(metrics.total_shuffle_bytes(), 24);
    }

    #[test]
    fn more_map_tasks_than_inputs_is_fine() {
        let data = vec![1u64, 2];
        let (out, metrics) = run_map_reduce(
            &data,
            10,
            1,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(0u64, x);
                }
            },
            |_| 0,
            |_, groups| groups.into_iter().flat_map(|(_, vs)| vs).collect::<Vec<u64>>(),
            &ClusterConfig::default(),
        );
        assert_eq!(out, vec![1, 2]);
        assert!(metrics.map_durations.len() <= 2);
    }

    /// Randomized end-to-end: grouped sums computed by the engine equal a
    /// direct hash-map aggregation, for arbitrary data, split counts,
    /// partition counts and thread counts.
    #[test]
    fn randomized_aggregation_equivalence() {
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..30 {
            let n = (next() % 200) as usize;
            let data: Vec<(u64, u64)> = (0..n).map(|_| (next() % 17, next() % 1000)).collect();
            let splits = (next() % 8 + 1) as usize;
            let parts = (next() % 5 + 1) as usize;
            let threads = (next() % 4) as usize;
            let cfg = ClusterConfig { worker_threads: threads, ..Default::default() };
            let (mut got, metrics) = run_map_reduce(
                &data,
                splits,
                parts,
                |_, chunk, em| {
                    for &(k, v) in chunk {
                        em.emit(k, v);
                    }
                },
                |k| (*k as usize) % parts,
                |_, groups| {
                    groups
                        .into_iter()
                        .map(|(k, vs)| (k, vs.iter().sum::<u64>()))
                        .collect::<Vec<_>>()
                },
                &cfg,
            );
            got.sort_unstable();
            let mut want: std::collections::BTreeMap<u64, u64> = Default::default();
            for &(k, v) in &data {
                *want.entry(k).or_default() += v;
            }
            let want: Vec<(u64, u64)> = want.into_iter().collect();
            assert_eq!(got, want);
            assert_eq!(metrics.total_shuffle_records() as usize, data.len());
            assert_eq!(metrics.shuffle_records.len(), parts);
        }
    }

    #[test]
    #[should_panic(expected = "partitioner returned partition 3 for a job with 2 partitions")]
    fn emitter_rejects_out_of_range_partitions() {
        let part = |k: &u64| *k as usize;
        let mut em: Emitter<'_, u64, u64> = Emitter::new(2, &part);
        em.emit(1, 10); // in range
        em.emit(3, 30); // out of range: must panic with a useful message
    }

    #[test]
    fn emitter_counts_emissions() {
        let part = |_: &u64| 0usize;
        let mut em: Emitter<'_, u64, u64> = Emitter::new(1, &part);
        em.emit(1, 1);
        em.emit(2, 2);
        assert_eq!(em.emitted(), 2);
    }
}
