//! The Map-Reduce execution engine.
//!
//! One job = per-split mappers emitting `(K, V)` records through a
//! map-side [`Emitter`] (which partitions immediately, like Hadoop's
//! map-side partitioner), a shuffle stage that moves, counts, sorts and
//! groups each partition through a [`ShuffleTransport`], and one reduce
//! task per partition. Outputs are concatenated in partition order,
//! making the job deterministic for any thread count — and for either
//! transport: the serialized spill path reproduces the in-memory
//! gather's grouped partitions bit for bit.

use crate::cluster::ClusterConfig;
use crate::metrics::JobMetrics;
use crate::shuffle::{
    InMemoryTransport, Record, SerializedTransport, ShuffleError, ShuffleMode, ShuffleOutput,
    ShuffleTransport, TaskSink,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Map-side collector: routes each emitted record to its partition's
/// sink. The sink is held as a trait object so one mapper closure
/// serves every [`ShuffleTransport`].
pub struct Emitter<'p, K, V> {
    partitioner: &'p (dyn Fn(&K) -> usize + Sync),
    sink: &'p mut dyn TaskSink<K, V>,
    num_partitions: usize,
    emitted: usize,
}

impl<'p, K, V> Emitter<'p, K, V> {
    fn new(
        num_partitions: usize,
        partitioner: &'p (dyn Fn(&K) -> usize + Sync),
        sink: &'p mut dyn TaskSink<K, V>,
    ) -> Self {
        Emitter { partitioner, sink, num_partitions, emitted: 0 }
    }

    /// Emits one record; the partitioner must return an index `<`
    /// the configured number of partitions.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the partitioner strays out
    /// of range — in release builds too: a mis-partitioned record would
    /// otherwise surface as a bare slice-index panic far from the
    /// offending partitioner.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let p = (self.partitioner)(&key);
        assert!(
            p < self.num_partitions,
            "partitioner returned partition {p} for a job with {} partitions",
            self.num_partitions
        );
        self.sink.accept(p, key, value);
        self.emitted += 1;
    }

    /// Records emitted so far (all partitions).
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

/// Runs `n` independent tasks on `threads` worker threads (sequentially
/// when `threads ≤ 1`), returning results in task order.
fn run_tasks<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                // Relaxed ordering suffices: the cursor only hands out
                // task indices exactly once (fetch_add is atomic at any
                // ordering); each task's output lands in its own slot,
                // so claim order can never reach results or counters.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");
    results.into_inner().into_iter().map(|o| o.expect("every task ran")).collect()
}

/// A reduce partition's grouped input, consumed exactly once by its task.
type GroupedPartition<K, V> = Mutex<Option<Vec<(K, Vec<V>)>>>;

/// Executes one Map-Reduce job with the transport selected by
/// `cfg.shuffle`.
///
/// * `inputs` are split into `num_map_tasks` contiguous chunks; `mapper`
///   is called once per chunk (stateful per-split mapping, which is what
///   TKIJ's statistics job needs to build local matrices).
/// * `partitioner` routes keys to `num_partitions` reduce partitions.
/// * `reducer` receives its partition's records grouped by key, keys
///   sorted ascending, and every partition is reduced (possibly empty),
///   mirroring Hadoop semantics.
///
/// Returns the concatenated reducer outputs (partition order) and the
/// job's [`JobMetrics`].
///
/// # Panics
///
/// Panics if the serialized transport fails (spill-store I/O or a
/// corrupted segment); use [`try_run_map_reduce`] to handle those as
/// structured [`ShuffleError`]s. The in-memory default cannot fail.
#[allow(clippy::too_many_arguments)]
pub fn run_map_reduce<I, K, V, R, M, P, F>(
    inputs: &[I],
    num_map_tasks: usize,
    num_partitions: usize,
    mapper: M,
    partitioner: P,
    reducer: F,
    cfg: &ClusterConfig,
) -> (Vec<R>, JobMetrics)
where
    I: Sync,
    K: Ord + Send + Record,
    V: Send + Record,
    R: Send,
    M: Fn(usize, &[I], &mut Emitter<'_, K, V>) + Sync,
    P: Fn(&K) -> usize + Sync,
    F: Fn(usize, Vec<(K, Vec<V>)>) -> Vec<R> + Sync,
{
    try_run_map_reduce(inputs, num_map_tasks, num_partitions, mapper, partitioner, reducer, cfg)
        .unwrap_or_else(|e| panic!("shuffle transport failed: {e}"))
}

/// The fallible form of [`run_map_reduce`]: serialized-transport
/// failures (spill I/O, corrupted or truncated segments, checksum
/// mismatches) surface as [`ShuffleError`] instead of panicking.
#[allow(clippy::too_many_arguments)]
pub fn try_run_map_reduce<I, K, V, R, M, P, F>(
    inputs: &[I],
    num_map_tasks: usize,
    num_partitions: usize,
    mapper: M,
    partitioner: P,
    reducer: F,
    cfg: &ClusterConfig,
) -> Result<(Vec<R>, JobMetrics), ShuffleError>
where
    I: Sync,
    K: Ord + Send + Record,
    V: Send + Record,
    R: Send,
    M: Fn(usize, &[I], &mut Emitter<'_, K, V>) + Sync,
    P: Fn(&K) -> usize + Sync,
    F: Fn(usize, Vec<(K, Vec<V>)>) -> Vec<R> + Sync,
{
    match cfg.shuffle {
        ShuffleMode::InMemory => run_map_reduce_with(
            &InMemoryTransport,
            inputs,
            num_map_tasks,
            num_partitions,
            mapper,
            partitioner,
            reducer,
            cfg,
        ),
        ShuffleMode::Serialized { spill_threshold_bytes, sink } => {
            let transport = SerializedTransport::new(spill_threshold_bytes, sink)?;
            run_map_reduce_with(
                &transport,
                inputs,
                num_map_tasks,
                num_partitions,
                mapper,
                partitioner,
                reducer,
                cfg,
            )
        }
    }
}

/// Executes one Map-Reduce job through an explicit [`ShuffleTransport`]
/// — the injection point the spill batteries and custom transports use;
/// [`run_map_reduce`] is this with the transport picked from
/// `cfg.shuffle`.
#[allow(clippy::too_many_arguments)]
pub fn run_map_reduce_with<I, K, V, R, M, P, F, T>(
    transport: &T,
    inputs: &[I],
    num_map_tasks: usize,
    num_partitions: usize,
    mapper: M,
    partitioner: P,
    reducer: F,
    cfg: &ClusterConfig,
) -> Result<(Vec<R>, JobMetrics), ShuffleError>
where
    I: Sync,
    K: Ord + Send,
    V: Send,
    R: Send,
    M: Fn(usize, &[I], &mut Emitter<'_, K, V>) + Sync,
    P: Fn(&K) -> usize + Sync,
    F: Fn(usize, Vec<(K, Vec<V>)>) -> Vec<R> + Sync,
    T: ShuffleTransport<K, V>,
{
    // tkij-lint: allow(DET002) -- feeds only JobMetrics::wall, a timing artifact
    let job_start = Instant::now();
    let num_map_tasks = num_map_tasks.clamp(1, inputs.len().max(1));
    let chunk = inputs.len().div_ceil(num_map_tasks).max(1);

    // ---- Map wave -------------------------------------------------------
    let map_results: Vec<(Duration, T::Sink)> = run_tasks(num_map_tasks, cfg.worker_threads, |t| {
        let lo = (t * chunk).min(inputs.len());
        let hi = ((t + 1) * chunk).min(inputs.len());
        let mut sink = transport.task_sink(t, num_partitions);
        let mut em = Emitter::new(num_partitions, &partitioner, &mut sink);
        // tkij-lint: allow(DET002) -- feeds only JobMetrics::map_durations, timing artifacts
        let started = Instant::now();
        mapper(t, &inputs[lo..hi], &mut em);
        (started.elapsed(), sink)
    });

    let mut map_durations = Vec::with_capacity(num_map_tasks);
    let mut sinks = Vec::with_capacity(num_map_tasks);
    for (d, sink) in map_results {
        map_durations.push(d);
        sinks.push(sink);
    }

    // ---- Shuffle: transport-specific move, account, sort, group ---------
    let ShuffleOutput { grouped, shuffle_records, shuffle_bytes, stats } =
        transport.gather(sinks, num_partitions)?;

    // ---- Reduce wave ----------------------------------------------------
    let grouped_slots: Vec<GroupedPartition<K, V>> =
        grouped.into_iter().map(|g| Mutex::new(Some(g))).collect();
    let reduce_results: Vec<(Duration, Vec<R>)> =
        run_tasks(num_partitions, cfg.worker_threads, |p| {
            let groups = grouped_slots[p].lock().take().expect("partition reduced once");
            // tkij-lint: allow(DET002) -- feeds only JobMetrics::reduce_durations, timing artifacts
            let started = Instant::now();
            let out = reducer(p, groups);
            (started.elapsed(), out)
        });

    let mut reduce_durations = Vec::with_capacity(num_partitions);
    let mut outputs = Vec::new();
    for (d, out) in reduce_results {
        reduce_durations.push(d);
        outputs.extend(out);
    }

    let metrics = JobMetrics {
        map_durations,
        reduce_durations,
        shuffle_records,
        shuffle_bytes,
        shuffle: stats,
        wall: job_start.elapsed(),
    };
    Ok((outputs, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::{MemorySink, ShuffleStats, SpillSinkKind};

    /// Word-count over small documents, the canonical smoke test.
    fn word_count(threads: usize) -> (Vec<(String, u64)>, JobMetrics) {
        word_count_mode(threads, ShuffleMode::InMemory)
    }

    fn word_count_mode(threads: usize, shuffle: ShuffleMode) -> (Vec<(String, u64)>, JobMetrics) {
        let docs =
            vec!["a b a".to_string(), "b c".to_string(), "a c c".to_string(), "d".to_string()];
        let cfg = ClusterConfig { worker_threads: threads, shuffle, ..Default::default() };
        run_map_reduce(
            &docs,
            2,
            3,
            |_, chunk, em| {
                for doc in chunk {
                    for w in doc.split_whitespace() {
                        em.emit(w.to_string(), 1u64);
                    }
                }
            },
            |k| (k.as_bytes()[0] as usize) % 3,
            |_, groups| groups.into_iter().map(|(k, vs)| (k, vs.iter().sum::<u64>())).collect(),
            &cfg,
        )
    }

    #[test]
    fn word_count_is_correct() {
        let (mut out, metrics) = word_count(0);
        out.sort();
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 3), ("d".into(), 1)]);
        assert_eq!(metrics.total_shuffle_records(), 9, "one record per word");
        assert_eq!(metrics.map_durations.len(), 2);
        assert_eq!(metrics.reduce_durations.len(), 3);
    }

    #[test]
    fn outputs_independent_of_thread_count() {
        let (seq, _) = word_count(0);
        let (par, _) = word_count(4);
        assert_eq!(seq, par, "parallel execution must not reorder output");
    }

    /// The serialized transport is a drop-in: same outputs, same
    /// record/byte accounting as the in-memory default — at any spill
    /// threshold, any thread count, and through the temp-dir store too.
    #[test]
    fn serialized_shuffle_matches_in_memory_word_count() {
        let (reference, ref_metrics) = word_count(0);
        for threshold in [0u64, 8, u64::MAX] {
            for threads in [0usize, 4] {
                let mode = ShuffleMode::Serialized {
                    spill_threshold_bytes: threshold,
                    sink: SpillSinkKind::Memory,
                };
                let (out, metrics) = word_count_mode(threads, mode);
                assert_eq!(out, reference, "threshold {threshold}, threads {threads}");
                assert_eq!(metrics.shuffle_records, ref_metrics.shuffle_records);
                assert_eq!(metrics.shuffle_bytes, ref_metrics.shuffle_bytes);
                assert_eq!(metrics.shuffle.records_spilled, 9, "every record spills");
                assert!(metrics.shuffle.spill_segments > 0);
                assert!(metrics.shuffle.spill_bytes > 0);
            }
        }
        // The in-memory transport reports no spill activity at all.
        assert_eq!(ref_metrics.shuffle, ShuffleStats::default());
        // Threshold and thread count never move the record count or the
        // checksum, only the segmentation.
        let spill = |threshold, threads| {
            word_count_mode(
                threads,
                ShuffleMode::Serialized {
                    spill_threshold_bytes: threshold,
                    sink: SpillSinkKind::Memory,
                },
            )
            .1
            .shuffle
        };
        let base = spill(0, 0);
        for (threshold, threads) in [(0u64, 4usize), (8, 0), (8, 4), (u64::MAX, 4)] {
            let s = spill(threshold, threads);
            assert_eq!(s.checksum, base.checksum);
            assert_eq!(s.records_spilled, base.records_spilled);
        }
        let (dir_out, dir_metrics) = word_count_mode(
            2,
            ShuffleMode::Serialized { spill_threshold_bytes: 8, sink: SpillSinkKind::TempDir },
        );
        assert_eq!(dir_out, reference);
        assert_eq!(dir_metrics.shuffle, spill(8, 0), "temp-dir store spills identically");
    }

    #[test]
    fn reducer_keys_arrive_sorted_and_grouped() {
        let data: Vec<u64> = vec![5, 3, 5, 1, 3, 5];
        let (out, _) = run_map_reduce(
            &data,
            3,
            1,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(x, x * 10);
                }
            },
            |_| 0,
            |_, groups| {
                // Assert sortedness inside the reducer itself.
                let keys: Vec<u64> = groups.iter().map(|(k, _)| *k).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted);
                groups.into_iter().map(|(k, vs)| (k, vs.len())).collect::<Vec<_>>()
            },
            &ClusterConfig::default(),
        );
        assert_eq!(out, vec![(1, 1), (3, 2), (5, 3)]);
    }

    #[test]
    fn empty_partitions_still_reduce() {
        let data = vec![1u64];
        // Relaxed ordering throughout: the counter is only read after
        // the job (and its thread joins) completed.
        let calls = AtomicUsize::new(0);
        let (_, metrics) = run_map_reduce(
            &data,
            1,
            4,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(x, ());
                }
            },
            |_| 0,
            |_, _groups| {
                calls.fetch_add(1, Ordering::Relaxed);
                Vec::<()>::new()
            },
            &ClusterConfig::default(),
        );
        // Relaxed ordering: reading after every worker joined.
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.shuffle_records, vec![1, 0, 0, 0]);
    }

    #[test]
    fn shuffle_bytes_use_sizeof() {
        let data = vec![7u64, 8u64];
        let (_, metrics) = run_map_reduce(
            &data,
            1,
            2,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(x, x as u32);
                }
            },
            |k| (*k % 2) as usize,
            |_, groups| groups,
            &ClusterConfig::default(),
        );
        // Each record: u64 key (8) + u32 value (4) = 12 bytes.
        assert_eq!(metrics.shuffle_bytes, vec![12, 12]);
        assert_eq!(metrics.total_shuffle_bytes(), 24);
    }

    #[test]
    fn more_map_tasks_than_inputs_is_fine() {
        let data = vec![1u64, 2];
        let (out, metrics) = run_map_reduce(
            &data,
            10,
            1,
            |_, chunk, em| {
                for &x in chunk {
                    em.emit(0u64, x);
                }
            },
            |_| 0,
            |_, groups| groups.into_iter().flat_map(|(_, vs)| vs).collect::<Vec<u64>>(),
            &ClusterConfig::default(),
        );
        assert_eq!(out, vec![1, 2]);
        assert!(metrics.map_durations.len() <= 2);
    }

    /// Randomized end-to-end: grouped sums computed by the engine equal a
    /// direct hash-map aggregation, for arbitrary data, split counts,
    /// partition counts, thread counts and shuffle transports.
    #[test]
    fn randomized_aggregation_equivalence() {
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..30 {
            let n = (next() % 200) as usize;
            let data: Vec<(u64, u64)> = (0..n).map(|_| (next() % 17, next() % 1000)).collect();
            let splits = (next() % 8 + 1) as usize;
            let parts = (next() % 5 + 1) as usize;
            let threads = (next() % 4) as usize;
            let shuffle = match round % 3 {
                0 => ShuffleMode::InMemory,
                1 => ShuffleMode::Serialized {
                    spill_threshold_bytes: next() % 128,
                    sink: SpillSinkKind::Memory,
                },
                _ => ShuffleMode::Serialized {
                    spill_threshold_bytes: u64::MAX,
                    sink: SpillSinkKind::Memory,
                },
            };
            let cfg = ClusterConfig { worker_threads: threads, shuffle, ..Default::default() };
            let (mut got, metrics) = run_map_reduce(
                &data,
                splits,
                parts,
                |_, chunk, em| {
                    for &(k, v) in chunk {
                        em.emit(k, v);
                    }
                },
                |k| (*k as usize) % parts,
                |_, groups| {
                    groups
                        .into_iter()
                        .map(|(k, vs)| (k, vs.iter().sum::<u64>()))
                        .collect::<Vec<_>>()
                },
                &cfg,
            );
            got.sort_unstable();
            let mut want: std::collections::BTreeMap<u64, u64> = Default::default();
            for &(k, v) in &data {
                *want.entry(k).or_default() += v;
            }
            let want: Vec<(u64, u64)> = want.into_iter().collect();
            assert_eq!(got, want);
            assert_eq!(metrics.total_shuffle_records() as usize, data.len());
            assert_eq!(metrics.shuffle_records.len(), parts);
        }
    }

    #[test]
    #[should_panic(expected = "partitioner returned partition 3 for a job with 2 partitions")]
    fn emitter_rejects_out_of_range_partitions() {
        let part = |k: &u64| *k as usize;
        let mut sink: MemorySink<u64, u64> = MemorySink::new(2);
        let mut em = Emitter::new(2, &part, &mut sink);
        em.emit(1, 10); // in range
        em.emit(3, 30); // out of range: must panic with a useful message
    }

    #[test]
    fn emitter_counts_emissions() {
        let part = |_: &u64| 0usize;
        let mut sink: MemorySink<u64, u64> = MemorySink::new(1);
        let mut em = Emitter::new(1, &part, &mut sink);
        em.emit(1, 1);
        em.emit(2, 2);
        assert_eq!(em.emitted(), 2);
    }
}
