//! Error type shared by the temporal data model.

use std::fmt;

/// Errors produced while constructing or parsing temporal-model values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// An interval with `end < start` (intervals are closed and ordered).
    InvalidInterval { id: u64, start: i64, end: i64 },
    /// An operation that requires a non-empty collection received an empty one.
    EmptyCollection,
    /// A structurally invalid RTJ query (disconnected, anti-parallel edge, …).
    InvalidQuery(String),
    /// A malformed line in the plain-text collection format.
    Parse { line: usize, message: String },
    /// Invalid partitioning parameters (zero granules or non-positive width).
    InvalidPartitioning(String),
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalError::InvalidInterval { id, start, end } => {
                write!(f, "interval {id} has end {end} < start {start}")
            }
            TemporalError::EmptyCollection => write!(f, "collection is empty"),
            TemporalError::InvalidQuery(msg) => write!(f, "invalid RTJ query: {msg}"),
            TemporalError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TemporalError::InvalidPartitioning(msg) => {
                write!(f, "invalid time partitioning: {msg}")
            }
        }
    }
}

impl std::error::Error for TemporalError {}

/// Error returned when parsing a configuration variant name fails.
/// Carries the offending input and the accepted names.
///
/// Lives in the base crate so every layer that exposes a `FromStr`
/// registry knob — the engine's strategy/backend/policy knobs in
/// `tkij_core::config` as well as the index crate's sweep-scan kind —
/// reports parse failures through one shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVariantError {
    /// What was being parsed ("strategy", "backend", "policy", …).
    pub what: &'static str,
    /// The rejected input.
    pub input: String,
    /// The accepted names.
    pub expected: &'static [&'static str],
}

impl fmt::Display for ParseVariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} {:?} (expected one of: {})",
            self.what,
            self.input,
            self.expected.join(", ")
        )
    }
}

impl std::error::Error for ParseVariantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TemporalError::InvalidInterval { id: 7, start: 10, end: 3 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("10") && s.contains('3'));
        assert!(TemporalError::EmptyCollection.to_string().contains("empty"));
        let q = TemporalError::InvalidQuery("loop".into());
        assert!(q.to_string().contains("loop"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(TemporalError::EmptyCollection);
    }
}
