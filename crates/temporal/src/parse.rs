//! A small textual syntax for RTJ queries.
//!
//! Queries are written as comma-separated predicate applications over
//! 1-based collection indexes, mirroring the paper's notation:
//!
//! ```text
//! starts(1, 2), finishedBy(2, 3), meets(1, 3)
//! before(1,2), before(1,3)            # the star query Qb*
//! justBefore(1,2), justBefore(2,3)
//! ```
//!
//! Predicate names are the long forms of [`PredicateKind`] (case
//! insensitive) or the paper's short names (`b`, `m`, `o`, `s`, `f`, `c`,
//! `e`, `jB`, `sM`, `sp`, and the inverses `a`, `mB`, `oB`, `d`, `sB`,
//! `fi`). The scored parameterization and the dataset-dependent `avg`
//! constant are supplied by the caller; aggregation defaults to the
//! paper's normalized sum.

use crate::aggregate::Aggregation;
use crate::collection::CollectionId;
use crate::error::TemporalError;
use crate::params::PredicateParams;
use crate::predicate::{PredicateKind, TemporalPredicate};
use crate::query::{Query, QueryEdge};

/// Resolves a predicate name (long or short form, case-insensitive for
/// long forms).
pub fn predicate_kind(name: &str) -> Option<PredicateKind> {
    // Short names are case-sensitive (`sB` vs `sp`); long names are not.
    for k in PredicateKind::all() {
        if k.short_name() == name {
            return Some(k);
        }
    }
    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        "before" => PredicateKind::Before,
        "equals" => PredicateKind::Equals,
        "meets" => PredicateKind::Meets,
        "overlaps" => PredicateKind::Overlaps,
        "contains" => PredicateKind::Contains,
        "starts" => PredicateKind::Starts,
        "finishedby" => PredicateKind::FinishedBy,
        "after" => PredicateKind::After,
        "metby" => PredicateKind::MetBy,
        "overlappedby" => PredicateKind::OverlappedBy,
        "during" => PredicateKind::During,
        "startedby" => PredicateKind::StartedBy,
        "finishes" => PredicateKind::Finishes,
        "justbefore" => PredicateKind::JustBefore,
        "shiftmeets" => PredicateKind::ShiftMeets,
        "sparks" => PredicateKind::Sparks,
        _ => return None,
    })
}

/// Parses the textual query syntax into a validated [`Query`].
///
/// `params` applies to every predicate; `avg` feeds `justBefore` /
/// `shiftMeets` (pass the collection's average length, or 0 when unused).
pub fn parse_query(text: &str, params: PredicateParams, avg: i64) -> Result<Query, TemporalError> {
    let mut edges: Vec<QueryEdge> = Vec::new();
    let mut max_vertex = 0usize;
    for (i, raw) in split_terms(text).into_iter().enumerate() {
        let term = raw.trim();
        if term.is_empty() {
            continue;
        }
        let err = |msg: String| TemporalError::Parse { line: i + 1, message: msg };
        let open =
            term.find('(').ok_or_else(|| err(format!("expected `pred(i, j)`, got `{term}`")))?;
        if !term.ends_with(')') {
            return Err(err(format!("missing `)` in `{term}`")));
        }
        let name = term[..open].trim();
        let kind =
            predicate_kind(name).ok_or_else(|| err(format!("unknown predicate `{name}`")))?;
        let args: Vec<&str> = term[open + 1..term.len() - 1].split(',').collect();
        if args.len() != 2 {
            return Err(err(format!("`{name}` takes exactly 2 vertices")));
        }
        let parse_vertex = |s: &str| -> Result<usize, TemporalError> {
            let v: usize =
                s.trim().parse().map_err(|e| err(format!("bad vertex `{}`: {e}", s.trim())))?;
            if v == 0 {
                return Err(err("vertices are 1-based".into()));
            }
            Ok(v - 1)
        };
        let src = parse_vertex(args[0])?;
        let dst = parse_vertex(args[1])?;
        max_vertex = max_vertex.max(src).max(dst);
        edges.push(QueryEdge {
            src,
            dst,
            predicate: TemporalPredicate::from_kind(kind, params, avg),
        });
    }
    if edges.is_empty() {
        return Err(TemporalError::Parse { line: 1, message: "no predicates given".into() });
    }
    let vertices = (0..=max_vertex as u32).map(CollectionId).collect();
    Query::new(vertices, edges, Aggregation::NormalizedSum)
}

/// Splits on commas that are *outside* parentheses.
fn split_terms(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::table1;

    #[test]
    fn parses_paper_queries() {
        let p = PredicateParams::P1;
        let q = parse_query("starts(1,2), finishedBy(2,3), meets(1,3)", p, 0).unwrap();
        assert_eq!(q, table1::q_sfm(p));
        let q = parse_query("before(1,2), before(1,3), before(1,4)", p, 0).unwrap();
        assert_eq!(q, table1::q_b_star(4, p));
        let q = parse_query("justBefore(1,2), justBefore(2,3)", p, 54).unwrap();
        assert_eq!(q, table1::q_jbjb(p, 54));
    }

    #[test]
    fn short_names_work() {
        let p = PredicateParams::P2;
        let q = parse_query("o(1,2), m(2,3)", p, 0).unwrap();
        assert_eq!(q, table1::q_om(p));
        let q = parse_query("sB(1,2)", p, 0).unwrap();
        assert_eq!(q.edges[0].predicate.kind, PredicateKind::StartedBy);
        let q = parse_query("sp(1,2)", p, 0).unwrap();
        assert_eq!(q.edges[0].predicate.kind, PredicateKind::Sparks);
    }

    #[test]
    fn long_names_case_insensitive() {
        let p = PredicateParams::P1;
        let q = parse_query("OVERLAPS(1,2), MetBy(2,3)", p, 0).unwrap();
        assert_eq!(q.edges[0].predicate.kind, PredicateKind::Overlaps);
        assert_eq!(q.edges[1].predicate.kind, PredicateKind::MetBy);
    }

    #[test]
    fn whitespace_tolerant() {
        let p = PredicateParams::P1;
        let q = parse_query("  meets( 1 ,  2 ) ,  before(2, 3)  ", p, 0).unwrap();
        assert_eq!(q.n(), 3);
    }

    #[test]
    fn error_messages_are_actionable() {
        let p = PredicateParams::P1;
        for (text, needle) in [
            ("", "no predicates"),
            ("frobnicates(1,2)", "unknown predicate"),
            ("meets(1)", "exactly 2"),
            ("meets(0,1)", "1-based"),
            ("meets(1,2", "missing `)`"),
            ("meets(a,b)", "bad vertex"),
            ("meets", "expected `pred(i, j)`"),
        ] {
            let e = parse_query(text, p, 0).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{text}` should mention `{needle}`, got `{e}`"
            );
        }
    }

    #[test]
    fn structural_validation_still_applies() {
        let p = PredicateParams::P1;
        // Self loops, anti-parallel edges and disconnected graphs are
        // caught by Query::new after parsing.
        assert!(parse_query("meets(1,1)", p, 0).is_err());
        assert!(parse_query("meets(1,2), before(2,1)", p, 0).is_err());
        assert!(parse_query("meets(1,2), meets(3,4)", p, 0).is_err(), "two components");
    }
}
