//! # tkij-temporal — data model for Ranked Temporal Joins
//!
//! This crate provides the substrate data model used by the TKIJ engine
//! (Pilourdault, Leroy, Amer-Yahia: *Distributed Evaluation of Top-k
//! Temporal Joins*, SIGMOD 2016):
//!
//! * [`Interval`] — closed integer-timestamped intervals with identifiers.
//! * [`IntervalCollection`] — the joined relations `C_1 … C_m`.
//! * Graded endpoint comparators `equals`/`greater` (paper Fig. 3) in
//!   [`comparators`], controlled by a [`Tolerance`] `(λ, ρ)`.
//! * Boolean and **scored temporal predicates** (paper Fig. 2 and Fig. 4):
//!   the seven Allen predicates plus `justBefore`, `shiftMeets`, `sparks`,
//!   in [`predicate`].
//! * Monotone aggregation functions in [`aggregate`].
//! * The n-ary RTJ [`Query`] graph and the paper's Table 1 query set.
//! * Uniform time partitioning into granules ([`TimePartitioning`]) and
//!   per-collection bucket statistics ([`BucketMatrix`], paper §3.2).
//! * Scored result tuples and deterministic top-k accumulation in
//!   [`result`].
//!
//! Everything here is deterministic and free of I/O except the plain-text
//! collection reader/writer, so the higher layers (solver, Map-Reduce
//! engine, TKIJ itself) can be tested hermetically.

pub mod aggregate;
pub mod bucket;
pub mod collection;
pub mod comparators;
pub mod error;
pub mod expr;
pub mod granule;
pub mod interval;
pub mod params;
pub mod parse;
pub mod predicate;
pub mod query;
pub mod result;

pub use aggregate::Aggregation;
pub use bucket::{BucketId, BucketMatrix};
pub use collection::{CollectionId, IntervalCollection};
pub use comparators::Tolerance;
pub use error::{ParseVariantError, TemporalError};
pub use expr::{Endpoint, EndpointExpr, Side};
pub use granule::TimePartitioning;
pub use interval::{Interval, Timestamp};
pub use params::PredicateParams;
pub use parse::parse_query;
pub use predicate::{PredicateClass, PredicateKind, Primitive, PrimitiveKind, TemporalPredicate};
pub use query::{JoinPlan, JoinStep, Query, QueryEdge};
pub use result::{MatchTuple, TopK};
