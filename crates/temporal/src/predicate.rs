//! Boolean and scored temporal predicates (paper Figures 2 and 4).
//!
//! A temporal predicate relates two intervals through (in)equalities on
//! affine expressions of their endpoints. Every predicate here carries:
//!
//! * its **Boolean** form — a conjunction of strict comparisons, used by
//!   the Boolean competitors (RCCIS, All-Matrix) and by tests, and
//! * its **scored** form `s-p(x, y) ∈ [0, 1]` — the minimum of graded
//!   [`Primitive`] comparators (`equals` / `greater` of Fig. 3), which is
//!   what TKIJ evaluates and bounds.
//!
//! With the Boolean parameterization `PB = ((0,0),(0,0))` the scored form
//! returns exactly `1.0` on tuples satisfying the Boolean form and `0.0`
//! otherwise (verified by property tests), which is how the paper runs
//! TKIJ-PB against the Boolean baselines.

use crate::comparators::Tolerance;
use crate::expr::{Endpoint, EndpointBox, EndpointExpr, Side};
use crate::interval::Interval;
use crate::params::PredicateParams;
use std::fmt;

/// The comparator applied to the difference of the two expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveKind {
    /// Graded equality (plateau around 0).
    Equals,
    /// Graded strict inequality `lhs > rhs`.
    Greater,
}

/// One graded comparator `kind(lhs, rhs)` with its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Primitive {
    /// Which comparator shape.
    pub kind: PrimitiveKind,
    /// Left expression.
    pub lhs: EndpointExpr,
    /// Right expression.
    pub rhs: EndpointExpr,
    /// Tolerance `(λ, ρ)` of this primitive.
    pub tol: Tolerance,
}

impl Primitive {
    /// Builds a graded-equality primitive.
    pub fn equals(lhs: EndpointExpr, rhs: EndpointExpr, tol: Tolerance) -> Self {
        Primitive { kind: PrimitiveKind::Equals, lhs, rhs, tol }
    }

    /// Builds a graded `lhs > rhs` primitive.
    pub fn greater(lhs: EndpointExpr, rhs: EndpointExpr, tol: Tolerance) -> Self {
        Primitive { kind: PrimitiveKind::Greater, lhs, rhs, tol }
    }

    /// The combined difference expression `lhs − rhs`.
    pub fn difference(&self) -> EndpointExpr {
        self.lhs.minus(&self.rhs)
    }

    /// Score of the primitive on a concrete pair.
    #[inline]
    pub fn score(&self, x: &Interval, y: &Interval) -> f64 {
        let d = self.lhs.eval(x, y) - self.rhs.eval(x, y);
        match self.kind {
            PrimitiveKind::Equals => self.tol.equals(d),
            PrimitiveKind::Greater => self.tol.greater(d),
        }
    }

    /// Sound (and per-primitive exact) score range over endpoint boxes.
    pub fn score_range(&self, left: &EndpointBox, right: &EndpointBox) -> (f64, f64) {
        let (dlo, dhi) = self.difference().range(left, right);
        match self.kind {
            PrimitiveKind::Equals => self.tol.equals_range(dlo, dhi),
            PrimitiveKind::Greater => self.tol.greater_range(dlo, dhi),
        }
    }

    /// Boolean satisfaction of the *crisp* comparison underlying the
    /// primitive (ignoring tolerances): `lhs = rhs` / `lhs > rhs`.
    #[inline]
    pub fn holds_crisp(&self, x: &Interval, y: &Interval) -> bool {
        let d = self.lhs.eval(x, y) - self.rhs.eval(x, y);
        match self.kind {
            PrimitiveKind::Equals => d == 0,
            PrimitiveKind::Greater => d > 0,
        }
    }

    /// If the free side appears in the difference through exactly one
    /// endpoint with unit coefficient, returns the axis-aligned range that
    /// endpoint must lie in for this primitive to score at least `v`.
    ///
    /// Returns `None` when the primitive does not constrain a single axis
    /// (then callers fall back to the enclosing bucket window and re-check
    /// scores exactly). The range may be unbounded on either side
    /// (`±f64::INFINITY`).
    pub fn free_axis_window(
        &self,
        anchor: &Interval,
        anchor_side: Side,
        v: f64,
    ) -> Option<(Endpoint, f64, f64)> {
        let free_side = match anchor_side {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
        let diff = self.difference();
        let (endpoint, coeff) = diff.single_free_endpoint(free_side)?;
        // d = coeff·f + K, where K gathers the anchored terms + constant.
        let k = diff.eval_side(anchor_side, anchor, true);
        let region = match self.kind {
            PrimitiveKind::Equals => self.tol.equals_region(v),
            PrimitiveKind::Greater => self.tol.greater_region(v),
        };
        let (dlo, dhi) =
            (region.lo.unwrap_or(f64::NEG_INFINITY), region.hi.unwrap_or(f64::INFINITY));
        // coeff·f ∈ [dlo − K, dhi − K]
        let (flo, fhi) = if coeff > 0 {
            (dlo - k as f64, dhi - k as f64)
        } else {
            (-(dhi - k as f64), -(dlo - k as f64))
        };
        Some((endpoint, flo, fhi))
    }
}

/// The crisp comparison operator of a Boolean atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// `lhs = rhs`
    Eq,
    /// `lhs < rhs`
    Lt,
    /// `lhs ≤ rhs`
    Le,
    /// `lhs > rhs`
    Gt,
}

/// One conjunct of a Boolean temporal predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct BoolAtom {
    /// Comparison operator.
    pub op: BoolOp,
    /// Left expression.
    pub lhs: EndpointExpr,
    /// Right expression.
    pub rhs: EndpointExpr,
}

impl BoolAtom {
    fn holds(&self, x: &Interval, y: &Interval) -> bool {
        let d = self.lhs.eval(x, y) - self.rhs.eval(x, y);
        match self.op {
            BoolOp::Eq => d == 0,
            BoolOp::Lt => d < 0,
            BoolOp::Le => d <= 0,
            BoolOp::Gt => d > 0,
        }
    }
}

/// Identifies the predicate family (used for display, query naming and
/// baseline routing). The paper's Fig. 2 lists 7 Allen relations; the 6
/// inverse relations complete the full 13-relation Allen algebra and are
/// derived mechanically (`p⁻¹(x, y) = p(y, x)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredicateKind {
    /// Allen `before`.
    Before,
    /// Allen `equals`.
    Equals,
    /// Allen `meets`.
    Meets,
    /// Allen `overlaps`.
    Overlaps,
    /// Allen `contains`.
    Contains,
    /// Allen `starts`.
    Starts,
    /// Allen `finishedBy`.
    FinishedBy,
    /// Allen `after` — inverse of `before`.
    After,
    /// Allen `metBy` — inverse of `meets`.
    MetBy,
    /// Allen `overlappedBy` — inverse of `overlaps`.
    OverlappedBy,
    /// Allen `during` — inverse of `contains`.
    During,
    /// Allen `startedBy` — inverse of `starts`.
    StartedBy,
    /// Allen `finishes` — inverse of `finishedBy`.
    Finishes,
    /// Paper Fig. 4 `justBefore` (gap bounded by the average length).
    JustBefore,
    /// Paper Fig. 4 `shiftMeets` (gap equal to the average length).
    ShiftMeets,
    /// Paper Fig. 4 `sparks` (a short interval igniting a much longer one).
    Sparks,
}

impl PredicateKind {
    /// Abbreviation used in the paper's query names (Table 1).
    pub fn short_name(&self) -> &'static str {
        match self {
            PredicateKind::Before => "b",
            PredicateKind::Equals => "e",
            PredicateKind::Meets => "m",
            PredicateKind::Overlaps => "o",
            PredicateKind::Contains => "c",
            PredicateKind::Starts => "s",
            PredicateKind::FinishedBy => "f",
            PredicateKind::After => "a",
            PredicateKind::MetBy => "mB",
            PredicateKind::OverlappedBy => "oB",
            PredicateKind::During => "d",
            PredicateKind::StartedBy => "sB",
            PredicateKind::Finishes => "fi",
            PredicateKind::JustBefore => "jB",
            PredicateKind::ShiftMeets => "sM",
            PredicateKind::Sparks => "sp",
        }
    }

    /// All kinds, for exhaustive tests and harness sweeps.
    pub fn all() -> [PredicateKind; 16] {
        [
            PredicateKind::Before,
            PredicateKind::Equals,
            PredicateKind::Meets,
            PredicateKind::Overlaps,
            PredicateKind::Contains,
            PredicateKind::Starts,
            PredicateKind::FinishedBy,
            PredicateKind::After,
            PredicateKind::MetBy,
            PredicateKind::OverlappedBy,
            PredicateKind::During,
            PredicateKind::StartedBy,
            PredicateKind::Finishes,
            PredicateKind::JustBefore,
            PredicateKind::ShiftMeets,
            PredicateKind::Sparks,
        ]
    }

    /// The 13 Boolean Allen relations (which partition the configurations
    /// of two *proper* intervals — property-tested).
    pub fn allen() -> [PredicateKind; 13] {
        [
            PredicateKind::Before,
            PredicateKind::After,
            PredicateKind::Meets,
            PredicateKind::MetBy,
            PredicateKind::Overlaps,
            PredicateKind::OverlappedBy,
            PredicateKind::Starts,
            PredicateKind::StartedBy,
            PredicateKind::During,
            PredicateKind::Contains,
            PredicateKind::Finishes,
            PredicateKind::FinishedBy,
            PredicateKind::Equals,
        ]
    }

    /// The inverse relation, if this kind has one in the algebra.
    pub fn inverse(&self) -> Option<PredicateKind> {
        Some(match self {
            PredicateKind::Before => PredicateKind::After,
            PredicateKind::After => PredicateKind::Before,
            PredicateKind::Meets => PredicateKind::MetBy,
            PredicateKind::MetBy => PredicateKind::Meets,
            PredicateKind::Overlaps => PredicateKind::OverlappedBy,
            PredicateKind::OverlappedBy => PredicateKind::Overlaps,
            PredicateKind::Starts => PredicateKind::StartedBy,
            PredicateKind::StartedBy => PredicateKind::Starts,
            PredicateKind::During => PredicateKind::Contains,
            PredicateKind::Contains => PredicateKind::During,
            PredicateKind::Finishes => PredicateKind::FinishedBy,
            PredicateKind::FinishedBy => PredicateKind::Finishes,
            PredicateKind::Equals => PredicateKind::Equals,
            _ => return None,
        })
    }
}

/// Coarse classification used by the Boolean baselines of Chawda et al.:
/// RCCIS supports colocation predicates (the intervals of a Boolean match
/// share a timestamp), All-Matrix supports sequence predicates (`x`
/// entirely precedes `y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredicateClass {
    /// Boolean matches intersect (meets, overlaps, starts, …).
    Colocation,
    /// Boolean matches are strictly ordered in time (before, justBefore, …).
    Sequence,
}

/// A temporal predicate with both Boolean and scored interpretations.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalPredicate {
    /// Predicate family.
    pub kind: PredicateKind,
    /// Conjunction defining the Boolean form.
    pub boolean: Vec<BoolAtom>,
    /// Min-combined graded primitives defining the scored form.
    pub primitives: Vec<Primitive>,
}

impl TemporalPredicate {
    /// `before(x, y) ⇔ x̄ < y̲`; `s-before = greater(y̲, x̄)`.
    pub fn before(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Before,
            boolean: vec![BoolAtom {
                op: BoolOp::Lt,
                lhs: EndpointExpr::end(Side::Left),
                rhs: EndpointExpr::start(Side::Right),
            }],
            primitives: vec![Primitive::greater(
                EndpointExpr::start(Side::Right),
                EndpointExpr::end(Side::Left),
                p.greater,
            )],
        }
    }

    /// `equals(x, y) ⇔ x̲ = y̲ ∧ x̄ = ȳ`;
    /// `s-equals = min{equals(x̲, y̲), equals(x̄, ȳ)}`.
    pub fn equals(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Equals,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Eq,
                    lhs: EndpointExpr::start(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Eq,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::end(Side::Right),
                },
            ],
            primitives: vec![
                Primitive::equals(
                    EndpointExpr::start(Side::Left),
                    EndpointExpr::start(Side::Right),
                    p.equals,
                ),
                Primitive::equals(
                    EndpointExpr::end(Side::Left),
                    EndpointExpr::end(Side::Right),
                    p.equals,
                ),
            ],
        }
    }

    /// `meets(x, y) ⇔ x̄ = y̲`; `s-meets = equals(x̄, y̲)`.
    pub fn meets(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Meets,
            boolean: vec![BoolAtom {
                op: BoolOp::Eq,
                lhs: EndpointExpr::end(Side::Left),
                rhs: EndpointExpr::start(Side::Right),
            }],
            primitives: vec![Primitive::equals(
                EndpointExpr::end(Side::Left),
                EndpointExpr::start(Side::Right),
                p.equals,
            )],
        }
    }

    /// `overlaps(x, y) ⇔ x̲ < y̲ ∧ x̄ > y̲ ∧ x̄ < ȳ`;
    /// `s-overlaps = min{greater(y̲, x̲), greater(x̄, y̲), greater(ȳ, x̄)}`.
    pub fn overlaps(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Overlaps,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::start(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Gt,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::end(Side::Right),
                },
            ],
            primitives: vec![
                Primitive::greater(
                    EndpointExpr::start(Side::Right),
                    EndpointExpr::start(Side::Left),
                    p.greater,
                ),
                Primitive::greater(
                    EndpointExpr::end(Side::Left),
                    EndpointExpr::start(Side::Right),
                    p.greater,
                ),
                Primitive::greater(
                    EndpointExpr::end(Side::Right),
                    EndpointExpr::end(Side::Left),
                    p.greater,
                ),
            ],
        }
    }

    /// `contains(x, y) ⇔ x̲ < y̲ ∧ x̄ > ȳ`;
    /// `s-contains = min{greater(y̲, x̲), greater(x̄, ȳ)}`.
    pub fn contains(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Contains,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::start(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Gt,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::end(Side::Right),
                },
            ],
            primitives: vec![
                Primitive::greater(
                    EndpointExpr::start(Side::Right),
                    EndpointExpr::start(Side::Left),
                    p.greater,
                ),
                Primitive::greater(
                    EndpointExpr::end(Side::Left),
                    EndpointExpr::end(Side::Right),
                    p.greater,
                ),
            ],
        }
    }

    /// `starts(x, y) ⇔ x̲ = y̲ ∧ x̄ < ȳ`;
    /// `s-starts = min{equals(x̲, y̲), greater(ȳ, x̄)}`.
    pub fn starts(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Starts,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Eq,
                    lhs: EndpointExpr::start(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::end(Side::Right),
                },
            ],
            primitives: vec![
                Primitive::equals(
                    EndpointExpr::start(Side::Left),
                    EndpointExpr::start(Side::Right),
                    p.equals,
                ),
                Primitive::greater(
                    EndpointExpr::end(Side::Right),
                    EndpointExpr::end(Side::Left),
                    p.greater,
                ),
            ],
        }
    }

    /// `finishedBy(x, y) ⇔ x̲ < y̲ ∧ x̄ = ȳ`;
    /// `s-finishedBy = min{greater(y̲, x̲), equals(x̄, ȳ)}`.
    pub fn finished_by(p: PredicateParams) -> Self {
        TemporalPredicate {
            kind: PredicateKind::FinishedBy,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::start(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Eq,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::end(Side::Right),
                },
            ],
            primitives: vec![
                Primitive::greater(
                    EndpointExpr::start(Side::Right),
                    EndpointExpr::start(Side::Left),
                    p.greater,
                ),
                Primitive::equals(
                    EndpointExpr::end(Side::Left),
                    EndpointExpr::end(Side::Right),
                    p.equals,
                ),
            ],
        }
    }

    /// Fig. 4 `justBefore(x, y) ⇔ x̄ < y̲ ∧ y̲ − x̄ ≤ avg`, where `avg` is
    /// the average interval length.
    ///
    /// Scored form per the paper: `min{greater(y̲, x̄), equals(x̄, y̲)}` with
    /// `λ_greater = ρ_greater = 0`, `λ_equals = avg` and `ρ_equals` taken
    /// from `p` (any positive value).
    pub fn just_before(p: PredicateParams, avg: i64) -> Self {
        TemporalPredicate {
            kind: PredicateKind::JustBefore,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Le,
                    lhs: EndpointExpr::start(Side::Right),
                    rhs: EndpointExpr::end(Side::Left).plus(avg),
                },
            ],
            primitives: vec![
                Primitive::greater(
                    EndpointExpr::start(Side::Right),
                    EndpointExpr::end(Side::Left),
                    Tolerance::ZERO,
                ),
                Primitive::equals(
                    EndpointExpr::end(Side::Left),
                    EndpointExpr::start(Side::Right),
                    Tolerance::new(avg.max(0), p.equals.rho),
                ),
            ],
        }
    }

    /// Fig. 4 `shiftMeets(x, y) ⇔ y̲ = x̄ + avg`;
    /// `s-shiftMeets = equals(x̄ + avg, y̲)`.
    pub fn shift_meets(p: PredicateParams, avg: i64) -> Self {
        TemporalPredicate {
            kind: PredicateKind::ShiftMeets,
            boolean: vec![BoolAtom {
                op: BoolOp::Eq,
                lhs: EndpointExpr::start(Side::Right),
                rhs: EndpointExpr::end(Side::Left).plus(avg),
            }],
            primitives: vec![Primitive::equals(
                EndpointExpr::end(Side::Left).plus(avg),
                EndpointExpr::start(Side::Right),
                p.equals,
            )],
        }
    }

    /// Fig. 4 `sparks(x, y) ⇔ x̄ < y̲ ∧ (ȳ − y̲) > factor·(x̄ − x̲)`;
    /// `s-sparks = min{greater(y̲, x̄), greater(ȳ − y̲, factor·(x̄ − x̲))}`.
    ///
    /// The paper fixes `factor = 10` ("the preceding hashtag lasted 10
    /// times shorter").
    pub fn sparks(p: PredicateParams, factor: i64) -> Self {
        TemporalPredicate {
            kind: PredicateKind::Sparks,
            boolean: vec![
                BoolAtom {
                    op: BoolOp::Lt,
                    lhs: EndpointExpr::end(Side::Left),
                    rhs: EndpointExpr::start(Side::Right),
                },
                BoolAtom {
                    op: BoolOp::Gt,
                    lhs: EndpointExpr::length(Side::Right),
                    rhs: EndpointExpr::length(Side::Left).scaled(factor),
                },
            ],
            primitives: vec![
                Primitive::greater(
                    EndpointExpr::start(Side::Right),
                    EndpointExpr::end(Side::Left),
                    p.greater,
                ),
                Primitive::greater(
                    EndpointExpr::length(Side::Right),
                    EndpointExpr::length(Side::Left).scaled(factor),
                    p.greater,
                ),
            ],
        }
    }

    /// The inverse relation `p⁻¹(x, y) = p(y, x)`: every endpoint
    /// expression has its sides exchanged and the kind is mapped through
    /// [`PredicateKind::inverse`]. Completes the 13-relation Allen
    /// algebra from the paper's 7 base relations.
    ///
    /// Panics for the extended predicates (`justBefore`, `shiftMeets`,
    /// `sparks`), which have no named inverse in the algebra.
    pub fn inverse(&self) -> Self {
        let kind = self.kind.inverse().unwrap_or_else(|| panic!("{self} has no inverse relation"));
        TemporalPredicate {
            kind,
            boolean: self
                .boolean
                .iter()
                .map(|a| BoolAtom {
                    op: a.op,
                    lhs: a.lhs.clone().swap_sides(),
                    rhs: a.rhs.clone().swap_sides(),
                })
                .collect(),
            primitives: self
                .primitives
                .iter()
                .map(|pr| Primitive {
                    kind: pr.kind,
                    lhs: pr.lhs.clone().swap_sides(),
                    rhs: pr.rhs.clone().swap_sides(),
                    tol: pr.tol,
                })
                .collect(),
        }
    }

    /// Allen `after(x, y) ⇔ before(y, x)`.
    pub fn after(p: PredicateParams) -> Self {
        Self::before(p).inverse()
    }

    /// Allen `metBy(x, y) ⇔ meets(y, x)`.
    pub fn met_by(p: PredicateParams) -> Self {
        Self::meets(p).inverse()
    }

    /// Allen `overlappedBy(x, y) ⇔ overlaps(y, x)`.
    pub fn overlapped_by(p: PredicateParams) -> Self {
        Self::overlaps(p).inverse()
    }

    /// Allen `during(x, y) ⇔ contains(y, x)`.
    pub fn during(p: PredicateParams) -> Self {
        Self::contains(p).inverse()
    }

    /// Allen `startedBy(x, y) ⇔ starts(y, x)`.
    pub fn started_by(p: PredicateParams) -> Self {
        Self::starts(p).inverse()
    }

    /// Allen `finishes(x, y) ⇔ finishedBy(y, x)`.
    pub fn finishes(p: PredicateParams) -> Self {
        Self::finished_by(p).inverse()
    }

    /// Builds a predicate by kind. `avg` parameterizes `justBefore` and
    /// `shiftMeets` (ignored elsewhere); `sparks` uses the paper's
    /// factor 10.
    pub fn from_kind(kind: PredicateKind, p: PredicateParams, avg: i64) -> Self {
        match kind {
            PredicateKind::Before => Self::before(p),
            PredicateKind::Equals => Self::equals(p),
            PredicateKind::Meets => Self::meets(p),
            PredicateKind::Overlaps => Self::overlaps(p),
            PredicateKind::Contains => Self::contains(p),
            PredicateKind::Starts => Self::starts(p),
            PredicateKind::FinishedBy => Self::finished_by(p),
            PredicateKind::After => Self::after(p),
            PredicateKind::MetBy => Self::met_by(p),
            PredicateKind::OverlappedBy => Self::overlapped_by(p),
            PredicateKind::During => Self::during(p),
            PredicateKind::StartedBy => Self::started_by(p),
            PredicateKind::Finishes => Self::finishes(p),
            PredicateKind::JustBefore => Self::just_before(p, avg),
            PredicateKind::ShiftMeets => Self::shift_meets(p, avg),
            PredicateKind::Sparks => Self::sparks(p, 10),
        }
    }

    /// Scored evaluation `s-p(x, y)`: minimum over the graded primitives.
    #[inline]
    pub fn score(&self, x: &Interval, y: &Interval) -> f64 {
        let mut s = 1.0f64;
        for prim in &self.primitives {
            s = s.min(prim.score(x, y));
            if s == 0.0 {
                break;
            }
        }
        s
    }

    /// Boolean evaluation `p(x, y)`.
    #[inline]
    pub fn holds(&self, x: &Interval, y: &Interval) -> bool {
        self.boolean.iter().all(|a| a.holds(x, y))
    }

    /// Sound score enclosure over endpoint boxes: interval min of the
    /// per-primitive (exact) ranges. May be loose when primitives share
    /// endpoints; the solver tightens it by branch-and-bound.
    pub fn score_range(&self, left: &EndpointBox, right: &EndpointBox) -> (f64, f64) {
        let mut lo = 1.0f64;
        let mut hi = 1.0f64;
        for prim in &self.primitives {
            let (plo, phi) = prim.score_range(left, right);
            lo = lo.min(plo);
            hi = hi.min(phi);
        }
        (lo, hi)
    }

    /// Baseline routing class of the Boolean form.
    pub fn class(&self) -> PredicateClass {
        match self.kind {
            PredicateKind::Before
            | PredicateKind::After
            | PredicateKind::JustBefore
            | PredicateKind::ShiftMeets
            | PredicateKind::Sparks => PredicateClass::Sequence,
            _ => PredicateClass::Colocation,
        }
    }

    /// Axis-aligned window the *free* interval's endpoints must satisfy for
    /// `s-p ≥ v`, given the anchored interval. Conservative: a primitive
    /// that does not constrain a single axis contributes no bound. Callers
    /// must still verify scores exactly.
    pub fn threshold_window(
        &self,
        anchor: &Interval,
        anchor_side: Side,
        v: f64,
    ) -> ThresholdWindow {
        let mut w = ThresholdWindow::unbounded();
        if v <= 0.0 {
            return w;
        }
        for prim in &self.primitives {
            if let Some((endpoint, lo, hi)) = prim.free_axis_window(anchor, anchor_side, v) {
                w.tighten(endpoint, lo, hi);
            }
        }
        w
    }
}

/// Conservative per-axis bounds on the free interval's endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdWindow {
    /// Range the free start must lie in.
    pub start: (f64, f64),
    /// Range the free end must lie in.
    pub end: (f64, f64),
}

impl ThresholdWindow {
    /// A window that admits everything.
    pub fn unbounded() -> Self {
        ThresholdWindow {
            start: (f64::NEG_INFINITY, f64::INFINITY),
            end: (f64::NEG_INFINITY, f64::INFINITY),
        }
    }

    /// Intersects a new per-axis constraint in.
    pub fn tighten(&mut self, endpoint: Endpoint, lo: f64, hi: f64) {
        let axis = match endpoint {
            Endpoint::Start => &mut self.start,
            Endpoint::End => &mut self.end,
        };
        axis.0 = axis.0.max(lo);
        axis.1 = axis.1.min(hi);
    }

    /// Whether no interval can satisfy the window.
    pub fn is_empty(&self) -> bool {
        self.start.0 > self.start.1 || self.end.0 > self.end.1
    }

    /// Whether a concrete interval satisfies the window.
    pub fn admits(&self, iv: &Interval) -> bool {
        let s = iv.start as f64;
        let e = iv.end as f64;
        s >= self.start.0 && s <= self.start.1 && e >= self.end.0 && e <= self.end.1
    }
}

impl fmt::Display for TemporalPredicate {
    /// Writes the scored name, e.g. `s-overlaps`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.kind {
            PredicateKind::Before => "before",
            PredicateKind::Equals => "equals",
            PredicateKind::Meets => "meets",
            PredicateKind::Overlaps => "overlaps",
            PredicateKind::Contains => "contains",
            PredicateKind::Starts => "starts",
            PredicateKind::FinishedBy => "finishedBy",
            PredicateKind::After => "after",
            PredicateKind::MetBy => "metBy",
            PredicateKind::OverlappedBy => "overlappedBy",
            PredicateKind::During => "during",
            PredicateKind::StartedBy => "startedBy",
            PredicateKind::Finishes => "finishes",
            PredicateKind::JustBefore => "justBefore",
            PredicateKind::ShiftMeets => "shiftMeets",
            PredicateKind::Sparks => "sparks",
        };
        write!(f, "s-{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn boolean_allen_semantics() {
        let p = PredicateParams::P1;
        let x = iv(0, 10, 20);
        assert!(TemporalPredicate::before(p).holds(&x, &iv(1, 25, 30)));
        assert!(
            !TemporalPredicate::before(p).holds(&x, &iv(1, 20, 30)),
            "touching is meets, not before"
        );
        assert!(TemporalPredicate::meets(p).holds(&x, &iv(1, 20, 30)));
        assert!(TemporalPredicate::equals(p).holds(&x, &iv(1, 10, 20)));
        assert!(TemporalPredicate::overlaps(p).holds(&x, &iv(1, 15, 30)));
        assert!(
            !TemporalPredicate::overlaps(p).holds(&x, &iv(1, 10, 30)),
            "needs strict start order"
        );
        assert!(TemporalPredicate::contains(p).holds(&x, &iv(1, 12, 18)));
        assert!(TemporalPredicate::starts(p).holds(&x, &iv(1, 10, 25)));
        assert!(TemporalPredicate::finished_by(p).holds(&x, &iv(1, 15, 20)));
    }

    #[test]
    fn boolean_extended_semantics() {
        let p = PredicateParams::P1;
        let x = iv(0, 10, 20);
        let jb = TemporalPredicate::just_before(p, 5);
        assert!(jb.holds(&x, &iv(1, 23, 30)), "gap 3 ≤ avg 5");
        assert!(jb.holds(&x, &iv(1, 25, 30)), "gap 5 ≤ avg 5");
        assert!(!jb.holds(&x, &iv(1, 26, 30)), "gap 6 > avg 5");
        assert!(!jb.holds(&x, &iv(1, 20, 30)), "must start strictly after");

        let sm = TemporalPredicate::shift_meets(p, 5);
        assert!(sm.holds(&x, &iv(1, 25, 30)));
        assert!(!sm.holds(&x, &iv(1, 24, 30)));

        let sp = TemporalPredicate::sparks(p, 10);
        // len(x) = 10, need len(y) > 100 and y after x.
        assert!(sp.holds(&x, &iv(1, 21, 130)));
        assert!(!sp.holds(&x, &iv(1, 21, 121)), "len exactly 100 is not >");
        assert!(!sp.holds(&x, &iv(1, 15, 200)), "y must start after x ends");
    }

    #[test]
    fn scored_meets_matches_figure3() {
        // (λ_e, ρ_e) = (4, 8): score 1 when |gap| ≤ 4, 0.5 at |gap| = 8.
        let p = PredicateParams::new(4, 8, 0, 0);
        let m = TemporalPredicate::meets(p);
        let x = iv(0, 0, 100);
        assert_eq!(m.score(&x, &iv(1, 100, 150)), 1.0);
        assert_eq!(m.score(&x, &iv(1, 104, 150)), 1.0);
        assert!((m.score(&x, &iv(1, 108, 150)) - 0.5).abs() < 1e-12);
        assert_eq!(m.score(&x, &iv(1, 112, 150)), 0.0);
    }

    #[test]
    fn scored_starts_uses_min() {
        let p = PredicateParams::new(4, 16, 0, 10);
        let s = TemporalPredicate::starts(p);
        let x = iv(0, 100, 200);
        // Perfect start equality but weak end inequality → min limits.
        let y = iv(1, 100, 205);
        let expected = p.greater.greater(5); // 0.5
        assert!((s.score(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        let p = PredicateParams::P1;
        assert_eq!(TemporalPredicate::overlaps(p).to_string(), "s-overlaps");
        assert_eq!(TemporalPredicate::just_before(p, 3).to_string(), "s-justBefore");
        assert_eq!(PredicateKind::ShiftMeets.short_name(), "sM");
    }

    #[test]
    fn classes_route_to_baselines() {
        let p = PredicateParams::PB;
        assert_eq!(TemporalPredicate::before(p).class(), PredicateClass::Sequence);
        assert_eq!(TemporalPredicate::sparks(p, 10).class(), PredicateClass::Sequence);
        assert_eq!(TemporalPredicate::meets(p).class(), PredicateClass::Colocation);
        assert_eq!(TemporalPredicate::overlaps(p).class(), PredicateClass::Colocation);
    }

    #[test]
    fn threshold_window_meets() {
        // s-meets(x, y) = equals(x̄, y̲) with (λ, ρ) = (4, 8); anchor x ends
        // at 100; v = 0.5 ⇒ |x̄ − y̲| ≤ 4 + 8·0.5 = 8 ⇒ y̲ ∈ [92, 108].
        let p = PredicateParams::new(4, 8, 0, 0);
        let m = TemporalPredicate::meets(p);
        let x = iv(0, 0, 100);
        let w = m.threshold_window(&x, Side::Left, 0.5);
        assert_eq!(w.start, (92.0, 108.0));
        assert_eq!(w.end, (f64::NEG_INFINITY, f64::INFINITY));
        assert!(w.admits(&iv(1, 100, 500)));
        assert!(!w.admits(&iv(1, 110, 500)));
    }

    #[test]
    fn threshold_window_anchoring_right_side() {
        // Anchor y, free x: s-meets constrains x̄.
        let p = PredicateParams::new(4, 8, 0, 0);
        let m = TemporalPredicate::meets(p);
        let y = iv(1, 100, 150);
        let w = m.threshold_window(&y, Side::Right, 1.0);
        assert_eq!(w.end, (96.0, 104.0));
        assert!(w.admits(&iv(0, 0, 100)));
        assert!(!w.admits(&iv(0, 0, 90)));
    }

    #[test]
    fn sparks_window_is_conservative_not_empty() {
        // The length primitive touches both free endpoints → only the
        // first primitive (y̲ > x̄) contributes.
        let p = PredicateParams::P1;
        let sp = TemporalPredicate::sparks(p, 10);
        let x = iv(0, 10, 20);
        let w = sp.threshold_window(&x, Side::Left, 1.0);
        assert!(w.start.0 >= 20.0);
        assert_eq!(w.end, (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn inverse_relations_swap_sides() {
        let p = PredicateParams::P1;
        let x = iv(0, 10, 20);
        let y = iv(1, 12, 30);
        for base in [
            TemporalPredicate::before(p),
            TemporalPredicate::meets(p),
            TemporalPredicate::overlaps(p),
            TemporalPredicate::contains(p),
            TemporalPredicate::starts(p),
            TemporalPredicate::finished_by(p),
            TemporalPredicate::equals(p),
        ] {
            let inv = base.inverse();
            assert_eq!(base.holds(&x, &y), inv.holds(&y, &x), "{base}");
            assert_eq!(base.score(&x, &y), inv.score(&y, &x), "{base}");
            assert_eq!(inv.inverse().kind, base.kind, "double inverse");
        }
        // Spot semantics: during(x, y) ⇔ contains(y, x).
        let during = TemporalPredicate::during(p);
        assert!(during.holds(&iv(0, 14, 18), &iv(1, 10, 20)));
        assert!(!during.holds(&iv(0, 10, 20), &iv(1, 14, 18)));
        // after(x, y) ⇔ before(y, x).
        let after = TemporalPredicate::after(p);
        assert!(after.holds(&iv(0, 30, 40), &iv(1, 0, 10)));
        assert!(!after.holds(&iv(0, 0, 10), &iv(1, 30, 40)));
        assert_eq!(after.class(), PredicateClass::Sequence);
    }

    #[test]
    #[should_panic(expected = "no inverse relation")]
    fn extended_predicates_have_no_inverse() {
        let _ = TemporalPredicate::sparks(PredicateParams::P1, 10).inverse();
    }

    proptest! {
        /// Allen's theorem: for two *proper* intervals, exactly one of the
        /// 13 relations holds. This pins every Boolean definition at once.
        #[test]
        fn thirteen_relations_partition_proper_pairs(
            xs in -50i64..50, xw in 1i64..30,
            ys in -50i64..50, yw in 1i64..30,
        ) {
            let p = PredicateParams::PB;
            let x = iv(0, xs, xs + xw);
            let y = iv(1, ys, ys + yw);
            let holding: Vec<&str> = PredicateKind::allen()
                .iter()
                .filter(|k| TemporalPredicate::from_kind(**k, p, 0).holds(&x, &y))
                .map(|k| k.short_name())
                .collect();
            prop_assert_eq!(
                holding.len(),
                1,
                "exactly one Allen relation must hold for {:?}/{:?}: {:?}",
                x,
                y,
                holding
            );
        }

        /// With PB, scored == Boolean indicator, for every predicate kind.
        #[test]
        fn pb_scored_equals_boolean(
            kind_idx in 0usize..16,
            xs in -50i64..50, xw in 0i64..30,
            ys in -50i64..50, yw in 0i64..30,
            avg in 1i64..10,
        ) {
            let kind = PredicateKind::all()[kind_idx];
            let pred = TemporalPredicate::from_kind(kind, PredicateParams::PB, avg);
            let x = iv(0, xs, xs + xw);
            let y = iv(1, ys, ys + yw);
            let s = pred.score(&x, &y);
            prop_assert!(s == 0.0 || s == 1.0, "PB must be crisp, got {s}");
            prop_assert_eq!(s == 1.0, pred.holds(&x, &y), "kind {:?}", kind);
        }

        /// Scores are within [0,1] and score_range encloses the score at
        /// the point box.
        #[test]
        fn score_range_soundness(
            kind_idx in 0usize..16,
            xs in -50i64..50, xw in 0i64..30,
            ys in -50i64..50, yw in 0i64..30,
        ) {
            let kind = PredicateKind::all()[kind_idx];
            let pred = TemporalPredicate::from_kind(kind, PredicateParams::P1, 5);
            let x = iv(0, xs, xs + xw);
            let y = iv(1, ys, ys + yw);
            let s = pred.score(&x, &y);
            prop_assert!((0.0..=1.0).contains(&s));
            let (lo, hi) = pred.score_range(&EndpointBox::point(&x), &EndpointBox::point(&y));
            prop_assert!(lo - 1e-12 <= s && s <= hi + 1e-12);
        }

        /// Any interval scoring ≥ v is admitted by the threshold window.
        #[test]
        fn threshold_window_soundness(
            kind_idx in 0usize..16,
            xs in -50i64..50, xw in 0i64..30,
            ys in -50i64..50, yw in 0i64..30,
            v in 0.05f64..1.0,
        ) {
            let kind = PredicateKind::all()[kind_idx];
            let pred = TemporalPredicate::from_kind(kind, PredicateParams::P2, 5);
            let x = iv(0, xs, xs + xw);
            let y = iv(1, ys, ys + yw);
            if pred.score(&x, &y) >= v {
                let w = pred.threshold_window(&x, Side::Left, v);
                prop_assert!(w.admits(&y), "window {w:?} must admit scoring pair");
                let w = pred.threshold_window(&y, Side::Right, v);
                prop_assert!(w.admits(&x));
            }
        }
    }
}
