//! Graded endpoint comparators `equals` and `greater` (paper Figure 3).
//!
//! A scored temporal predicate approximates the Boolean (in)equalities on
//! interval endpoints with *degrees of satisfaction* in `[0, 1]`. Both
//! comparators are piecewise-linear functions of the difference
//! `d = a - b` of the two compared endpoint expressions, shaped by a
//! [`Tolerance`] `(λ, ρ)`:
//!
//! * `equals(a, b)` is `1` on the plateau `|d| ≤ λ`, decays linearly to `0`
//!   at `|d| = λ + ρ`.
//! * `greater(a, b)` is `0` for `d ≤ λ`, climbs linearly, and saturates at
//!   `1` for `d ≥ λ + ρ`.
//!
//! Setting `λ = ρ = 0` degenerates to the Boolean semantics (strict
//! equality / strict inequality), which is how the paper obtains the `PB`
//! parameterization used to compare against Boolean competitors.
//!
//! Besides forward evaluation this module provides the two ingredients the
//! rest of the system needs:
//!
//! * **threshold regions** ([`Tolerance::equals_region`],
//!   [`Tolerance::greater_region`]): the exact set `{d : f(d) ≥ v}`, used to
//!   translate score thresholds into R-tree windows (paper §4, "local query
//!   execution ... returns only intervals x_j s.t. s-p(x_i, x_j) ≥ v"), and
//! * **range enclosures** ([`Tolerance::equals_range`],
//!   [`Tolerance::greater_range`]): the exact image of an interval of `d`
//!   values, the building block of the bound solver (paper §3.3).

/// Tolerance parameters `(λ, ρ)` of one comparator (paper Fig. 3).
///
/// `λ` widens the region considered a perfect match; `ρ` controls how fast
/// the score decays outside it (`ρ = 0` is a step function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tolerance {
    /// Plateau half-width λ ≥ 0.
    pub lambda: i64,
    /// Decay width ρ ≥ 0.
    pub rho: i64,
}

/// An inclusive range of `d = a - b` values, possibly unbounded on either
/// side. Used to report threshold regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DRange {
    /// Lower bound on `d` (−∞ if `None`).
    pub lo: Option<f64>,
    /// Upper bound on `d` (+∞ if `None`).
    pub hi: Option<f64>,
}

impl DRange {
    /// The full real line (no constraint).
    pub const UNBOUNDED: DRange = DRange { lo: None, hi: None };

    /// Whether `d` lies in the range.
    pub fn contains(&self, d: f64) -> bool {
        self.lo.is_none_or(|lo| d >= lo) && self.hi.is_none_or(|hi| d <= hi)
    }
}

impl Tolerance {
    /// Creates a tolerance; both parameters must be non-negative.
    pub fn new(lambda: i64, rho: i64) -> Self {
        assert!(lambda >= 0 && rho >= 0, "tolerance parameters must be ≥ 0");
        Tolerance { lambda, rho }
    }

    /// The Boolean degeneration `(0, 0)`.
    pub const ZERO: Tolerance = Tolerance { lambda: 0, rho: 0 };

    /// `equals(a, b)` evaluated on the difference `d = a - b` (Fig. 3 left).
    #[inline]
    pub fn equals(&self, d: i64) -> f64 {
        let ad = d.abs();
        if ad <= self.lambda {
            1.0
        } else if self.rho == 0 || ad >= self.lambda + self.rho {
            0.0
        } else {
            (self.lambda + self.rho - ad) as f64 / self.rho as f64
        }
    }

    /// `greater(a, b)` evaluated on the difference `d = a - b` (Fig. 3
    /// right): the degree to which `a > b`.
    #[inline]
    pub fn greater(&self, d: i64) -> f64 {
        if self.rho == 0 {
            // Step function: the Boolean `a > b` with slack λ.
            return if d > self.lambda { 1.0 } else { 0.0 };
        }
        if d <= self.lambda {
            0.0
        } else if d >= self.lambda + self.rho {
            1.0
        } else {
            (d - self.lambda) as f64 / self.rho as f64
        }
    }

    /// Exact region `{d : equals(d) ≥ v}` for a threshold `v ∈ (0, 1]`.
    ///
    /// Returns `None` when the region is empty (cannot happen for
    /// `v ≤ 1`), and [`DRange::UNBOUNDED`] when `v ≤ 0` (every `d`
    /// qualifies).
    pub fn equals_region(&self, v: f64) -> DRange {
        if v <= 0.0 {
            return DRange::UNBOUNDED;
        }
        let v = v.min(1.0);
        // equals(d) ≥ v  ⇔  |d| ≤ λ + ρ·(1 − v).
        let half = self.lambda as f64 + self.rho as f64 * (1.0 - v);
        DRange { lo: Some(-half), hi: Some(half) }
    }

    /// Exact region `{d : greater(d) ≥ v}` for a threshold `v ∈ (0, 1]`.
    pub fn greater_region(&self, v: f64) -> DRange {
        if v <= 0.0 {
            return DRange::UNBOUNDED;
        }
        let v = v.min(1.0);
        if self.rho == 0 {
            // Step function: score ≥ v > 0 ⇔ score = 1 ⇔ d > λ ⇔ d ≥ λ + 1
            // on integer differences.
            return DRange { lo: Some(self.lambda as f64 + 1.0), hi: None };
        }
        // greater(d) ≥ v ⇔ d ≥ λ + ρ·v.
        DRange { lo: Some(self.lambda as f64 + self.rho as f64 * v), hi: None }
    }

    /// Exact image `[min, max]` of `equals` over all integer `d` in
    /// `[d_lo, d_hi]`.
    ///
    /// `equals` is unimodal with its peak at `d = 0`, so the maximum is
    /// attained at the point of `[d_lo, d_hi]` closest to zero and the
    /// minimum at one of the ends.
    pub fn equals_range(&self, d_lo: i64, d_hi: i64) -> (f64, f64) {
        debug_assert!(d_lo <= d_hi);
        let peak = d_lo.max(0).min(d_hi);
        let max = self.equals(peak);
        let min = self.equals(d_lo).min(self.equals(d_hi));
        (min, max)
    }

    /// Exact image `[min, max]` of `greater` (non-decreasing in `d`) over
    /// all integer `d` in `[d_lo, d_hi]`.
    pub fn greater_range(&self, d_lo: i64, d_hi: i64) -> (f64, f64) {
        debug_assert!(d_lo <= d_hi);
        (self.greater(d_lo), self.greater(d_hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equals_plateau_slope_zero() {
        let t = Tolerance::new(4, 16);
        // Plateau.
        assert_eq!(t.equals(0), 1.0);
        assert_eq!(t.equals(4), 1.0);
        assert_eq!(t.equals(-4), 1.0);
        // Slope: |d| = λ + ρ/2 ⇒ 0.5.
        assert!((t.equals(12) - 0.5).abs() < 1e-12);
        assert!((t.equals(-12) - 0.5).abs() < 1e-12);
        // Zero region.
        assert_eq!(t.equals(20), 0.0);
        assert_eq!(t.equals(-20), 0.0);
        assert_eq!(t.equals(1000), 0.0);
    }

    #[test]
    fn greater_zero_slope_saturation() {
        let t = Tolerance::new(0, 10);
        assert_eq!(t.greater(0), 0.0);
        assert_eq!(t.greater(-5), 0.0);
        assert!((t.greater(5) - 0.5).abs() < 1e-12);
        assert_eq!(t.greater(10), 1.0);
        assert_eq!(t.greater(99), 1.0);
    }

    #[test]
    fn greater_with_lambda_slack() {
        let t = Tolerance::new(2, 8);
        assert_eq!(t.greater(2), 0.0, "d = λ still scores 0");
        assert!((t.greater(6) - 0.5).abs() < 1e-12);
        assert_eq!(t.greater(10), 1.0);
    }

    #[test]
    fn boolean_degeneration() {
        let t = Tolerance::ZERO;
        assert_eq!(t.equals(0), 1.0);
        assert_eq!(t.equals(1), 0.0);
        assert_eq!(t.equals(-1), 0.0);
        assert_eq!(t.greater(1), 1.0);
        assert_eq!(t.greater(0), 0.0);
        assert_eq!(t.greater(-1), 0.0);
    }

    #[test]
    fn rho_zero_equals_is_step_with_plateau() {
        let t = Tolerance::new(3, 0);
        assert_eq!(t.equals(3), 1.0);
        assert_eq!(t.equals(4), 0.0);
    }

    #[test]
    fn paper_example_meets_bounds() {
        // §3.3 example: s-meets with (λ_e, ρ_e) = (4, 8); x ends in
        // [20, 30], y starts in [20, 30] ⇒ d ∈ [-10, 10];
        // min score 0.25 (|d| = 10), max score 1.
        let t = Tolerance::new(4, 8);
        let (lo, hi) = t.equals_range(-10, 10);
        assert!((hi - 1.0).abs() < 1e-12);
        assert!((lo - 0.25).abs() < 1e-12);
    }

    #[test]
    fn regions_unbounded_below_zero_threshold() {
        let t = Tolerance::new(4, 16);
        assert_eq!(t.equals_region(0.0), DRange::UNBOUNDED);
        assert_eq!(t.greater_region(-1.0), DRange::UNBOUNDED);
    }

    #[test]
    fn greater_region_step_function_uses_integer_successor() {
        let t = Tolerance::new(2, 0);
        let r = t.greater_region(0.5);
        assert_eq!(r.lo, Some(3.0));
        assert!(r.contains(3.0) && !r.contains(2.0));
    }

    proptest! {
        /// Forward evaluation and the threshold region agree:
        /// `f(d) ≥ v  ⇔  d ∈ region(v)` for every integer d.
        #[test]
        fn region_inverse_consistency(
            lambda in 0i64..20, rho in 0i64..30,
            d in -100i64..100, v in 0.01f64..1.0,
        ) {
            let t = Tolerance::new(lambda, rho);
            let eq_in = t.equals_region(v).contains(d as f64);
            prop_assert_eq!(t.equals(d) >= v - 1e-9, eq_in);
            let gt_in = t.greater_region(v).contains(d as f64);
            prop_assert_eq!(t.greater(d) >= v - 1e-9, gt_in);
        }

        /// Range enclosures are exact: they contain every attained value
        /// and their ends are attained.
        #[test]
        fn range_enclosures_are_tight(
            lambda in 0i64..20, rho in 0i64..30,
            a in -100i64..100, w in 0i64..80,
        ) {
            let t = Tolerance::new(lambda, rho);
            let (lo, hi) = t.equals_range(a, a + w);
            let (glo, ghi) = t.greater_range(a, a + w);
            let mut seen_eq = (f64::MAX, f64::MIN);
            let mut seen_gt = (f64::MAX, f64::MIN);
            for d in a..=a + w {
                let e = t.equals(d);
                let g = t.greater(d);
                prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
                prop_assert!(g >= glo - 1e-12 && g <= ghi + 1e-12);
                seen_eq = (seen_eq.0.min(e), seen_eq.1.max(e));
                seen_gt = (seen_gt.0.min(g), seen_gt.1.max(g));
            }
            prop_assert!((seen_eq.0 - lo).abs() < 1e-12 && (seen_eq.1 - hi).abs() < 1e-12);
            prop_assert!((seen_gt.0 - glo).abs() < 1e-12 && (seen_gt.1 - ghi).abs() < 1e-12);
        }

        /// Scores always stay within [0, 1] and `equals` is symmetric.
        #[test]
        fn scores_bounded_and_equals_symmetric(
            lambda in 0i64..50, rho in 0i64..50, d in -1000i64..1000,
        ) {
            let t = Tolerance::new(lambda, rho);
            for s in [t.equals(d), t.greater(d)] {
                prop_assert!((0.0..=1.0).contains(&s));
            }
            prop_assert_eq!(t.equals(d), t.equals(-d));
        }
    }
}
