//! Uniform time partitioning into granules (paper §3.2).
//!
//! TKIJ partitions the time range of each collection into `g` contiguous
//! granules of equal width. The paper adopts uniform (range) partitioning,
//! "shown to be appropriate for temporal joins". Granule ranges here are
//! disjoint inclusive integer ranges `[origin + l·width, origin +
//! (l+1)·width − 1]` (the paper's example writes touching real ranges;
//! integer timestamps make disjointness exact).

use crate::error::TemporalError;
use crate::interval::Timestamp;

/// A uniform partitioning of a time range into `count` granules of `width`
/// timestamps each, starting at `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimePartitioning {
    /// First timestamp of granule 0.
    pub origin: Timestamp,
    /// Granule width (> 0).
    pub width: i64,
    /// Number of granules `g` (> 0).
    pub count: u32,
}

impl TimePartitioning {
    /// Builds a partitioning covering `[min, max]` with `g` granules.
    ///
    /// The width is the smallest integer such that `g` granules cover the
    /// range; the last granule may extend past `max`.
    pub fn from_range(min: Timestamp, max: Timestamp, g: u32) -> Result<Self, TemporalError> {
        if g == 0 {
            return Err(TemporalError::InvalidPartitioning("zero granules".into()));
        }
        if max < min {
            return Err(TemporalError::InvalidPartitioning(format!(
                "empty time range [{min}, {max}]"
            )));
        }
        let span = (max - min + 1) as u64;
        let width = span.div_ceil(g as u64) as i64;
        Ok(TimePartitioning { origin: min, width: width.max(1), count: g })
    }

    /// The granule index containing `t`, clamped to `[0, g)` so that
    /// slightly out-of-range timestamps (e.g. after an update) still map to
    /// a granule.
    #[inline]
    pub fn granule_of(&self, t: Timestamp) -> u32 {
        if t < self.origin {
            return 0;
        }
        let idx = (t - self.origin) / self.width;
        (idx as u64).min(self.count as u64 - 1) as u32
    }

    /// Inclusive timestamp range `[lo, hi]` of granule `l`.
    #[inline]
    pub fn range(&self, l: u32) -> (Timestamp, Timestamp) {
        debug_assert!(l < self.count);
        let lo = self.origin + l as i64 * self.width;
        (lo, lo + self.width - 1)
    }

    /// Number of granules `g`.
    #[inline]
    pub fn g(&self) -> u32 {
        self.count
    }

    /// Last timestamp covered by the partitioning.
    pub fn end(&self) -> Timestamp {
        self.origin + self.count as i64 * self.width - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_division() {
        let p = TimePartitioning::from_range(0, 99, 10).unwrap();
        assert_eq!(p.width, 10);
        assert_eq!(p.range(0), (0, 9));
        assert_eq!(p.range(9), (90, 99));
        assert_eq!(p.granule_of(0), 0);
        assert_eq!(p.granule_of(9), 0);
        assert_eq!(p.granule_of(10), 1);
        assert_eq!(p.granule_of(99), 9);
    }

    #[test]
    fn ragged_division_rounds_up() {
        let p = TimePartitioning::from_range(0, 100, 3).unwrap();
        assert_eq!(p.width, 34);
        assert_eq!(p.granule_of(100), 2);
        assert!(p.end() >= 100);
    }

    #[test]
    fn clamping_out_of_range() {
        let p = TimePartitioning::from_range(10, 109, 10).unwrap();
        assert_eq!(p.granule_of(5), 0, "below origin clamps to 0");
        assert_eq!(p.granule_of(10_000), 9, "beyond end clamps to g-1");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(TimePartitioning::from_range(0, 10, 0).is_err());
        assert!(TimePartitioning::from_range(10, 0, 4).is_err());
    }

    #[test]
    fn single_point_range() {
        let p = TimePartitioning::from_range(7, 7, 4).unwrap();
        assert_eq!(p.width, 1);
        assert_eq!(p.granule_of(7), 0);
    }

    proptest! {
        /// Granule ranges tile the covered span disjointly, and
        /// `granule_of` agrees with `range`.
        #[test]
        fn tiling_consistency(min in -1000i64..1000, span in 1i64..5000, g in 1u32..64) {
            let p = TimePartitioning::from_range(min, min + span - 1, g).unwrap();
            // Ranges are contiguous and ordered.
            for l in 0..g {
                let (lo, hi) = p.range(l);
                prop_assert_eq!(hi - lo + 1, p.width);
                if l > 0 {
                    prop_assert_eq!(p.range(l - 1).1 + 1, lo);
                }
            }
            // Every in-range timestamp maps to the granule whose range
            // contains it.
            for t in [min, min + span / 2, min + span - 1] {
                let l = p.granule_of(t);
                let (lo, hi) = p.range(l);
                prop_assert!(lo <= t && t <= hi);
            }
            // The partitioning covers the requested max.
            prop_assert!(p.end() >= min + span - 1);
        }
    }
}
