//! Scored result tuples and deterministic top-k accumulation.
//!
//! RTJ results are tuples `(x_1, …, x_n)` with an aggregated score. Both
//! the per-reducer local joins (Fig. 5d) and the final merge job (Fig. 5e)
//! accumulate them through [`TopK`], which keeps the best `k` under a
//! *total* deterministic order — score descending, then tuple ids
//! ascending — so that distributed execution order can never change the
//! reported output.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One result tuple: the interval ids per query vertex plus the aggregated
/// score.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchTuple {
    /// Interval ids, indexed by query vertex.
    pub ids: Vec<u64>,
    /// Aggregated score in `[0, 1]`.
    pub score: f64,
}

impl MatchTuple {
    /// Creates a tuple; the score must be finite.
    pub fn new(ids: Vec<u64>, score: f64) -> Self {
        debug_assert!(score.is_finite());
        MatchTuple { ids, score }
    }

    /// Total order: better first (higher score, then lexicographically
    /// smaller id vector — an arbitrary but deterministic tie-break).
    pub fn rank_cmp(&self, other: &Self) -> Ordering {
        other.score.total_cmp(&self.score).then_with(|| self.ids.cmp(&other.ids))
    }
}

/// Wrapper ordering the heap so that the *worst* retained tuple is at the
/// root (max-heap on "badness").
#[derive(Debug, Clone, PartialEq)]
struct Worst(MatchTuple);

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // `rank_cmp` orders better tuples as `Less`, so the BinaryHeap
        // maximum under it is the lowest-ranked retained tuple.
        self.0.rank_cmp(&other.0)
    }
}

/// A bounded accumulator retaining the best `k` tuples seen so far.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl TopK {
    /// Creates an accumulator for the best `k` tuples (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k requires k ≥ 1");
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of tuples currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `k` tuples are retained.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The score of the currently-worst retained tuple once full
    /// (the running `τ_k` threshold used for pruning); `None` before that.
    pub fn threshold(&self) -> Option<f64> {
        if self.is_full() {
            self.heap.peek().map(|w| w.0.score)
        } else {
            None
        }
    }

    /// Score a candidate must *exceed-or-tie into* to be accepted right
    /// now: 0 while not full (any score competes — scores are
    /// non-negative), else the k-th score.
    pub fn admission_score(&self) -> f64 {
        self.threshold().unwrap_or(0.0)
    }

    /// Offers a tuple; returns `true` if it was retained.
    pub fn offer(&mut self, tuple: MatchTuple) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Worst(tuple));
            return true;
        }
        // Full: replace the worst if the candidate ranks strictly better.
        let worst = self.heap.peek().expect("k ≥ 1");
        if tuple.rank_cmp(&worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(Worst(tuple));
            true
        } else {
            false
        }
    }

    /// Merges another accumulator in (used by the final merge job).
    pub fn merge(&mut self, other: TopK) {
        for w in other.heap {
            self.offer(w.0);
        }
    }

    /// Consumes the accumulator, returning tuples best-first.
    pub fn into_sorted_vec(self) -> Vec<MatchTuple> {
        let mut v: Vec<MatchTuple> = self.heap.into_iter().map(|w| w.0).collect();
        v.sort_by(MatchTuple::rank_cmp);
        v
    }

    /// The scores best-first without consuming (for assertions/reports).
    pub fn sorted_scores(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.heap.iter().map(|w| w.0.score).collect();
        v.sort_by(|a, b| b.total_cmp(a));
        v
    }

    /// Minimum score among retained tuples (Fig. 8c reports this per
    /// reducer); `None` when empty.
    pub fn min_score(&self) -> Option<f64> {
        self.heap.peek().map(|w| w.0.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ids: &[u64], score: f64) -> MatchTuple {
        MatchTuple::new(ids.to_vec(), score)
    }

    #[test]
    fn keeps_best_k() {
        let mut top = TopK::new(2);
        assert!(top.offer(t(&[1], 0.5)));
        assert!(top.offer(t(&[2], 0.9)));
        assert!(top.is_full());
        assert_eq!(top.threshold(), Some(0.5));
        assert!(top.offer(t(&[3], 0.7)));
        assert!(!top.offer(t(&[4], 0.2)));
        let out = top.into_sorted_vec();
        assert_eq!(out.iter().map(|m| m.score).collect::<Vec<_>>(), vec![0.9, 0.7]);
    }

    #[test]
    fn deterministic_tie_break_on_ids() {
        let mut top = TopK::new(2);
        top.offer(t(&[5, 5], 0.5));
        top.offer(t(&[1, 9], 0.5));
        top.offer(t(&[3, 3], 0.5));
        let out = top.into_sorted_vec();
        assert_eq!(out[0].ids, vec![1, 9]);
        assert_eq!(out[1].ids, vec![3, 3]);
    }

    #[test]
    fn equal_tuple_is_not_admitted_when_full() {
        let mut top = TopK::new(1);
        top.offer(t(&[1], 0.5));
        assert!(!top.offer(t(&[1], 0.5)), "identical rank must not displace");
        assert!(top.offer(t(&[0], 0.5)), "smaller ids rank strictly better");
    }

    #[test]
    fn admission_score_is_zero_until_full() {
        let mut top = TopK::new(3);
        assert_eq!(top.admission_score(), 0.0);
        top.offer(t(&[1], 0.9));
        assert_eq!(top.admission_score(), 0.0);
        top.offer(t(&[2], 0.8));
        top.offer(t(&[3], 0.7));
        assert_eq!(top.admission_score(), 0.7);
    }

    #[test]
    fn merge_equals_sequential_offers() {
        let tuples: Vec<MatchTuple> = (0..20).map(|i| t(&[i], (i as f64 * 7.0) % 1.0)).collect();
        let mut a = TopK::new(5);
        let mut b = TopK::new(5);
        let mut all = TopK::new(5);
        for (i, tp) in tuples.iter().enumerate() {
            if i % 2 == 0 {
                a.offer(tp.clone());
            } else {
                b.offer(tp.clone());
            }
            all.offer(tp.clone());
        }
        a.merge(b);
        assert_eq!(a.sorted_scores(), all.sorted_scores());
    }

    proptest! {
        /// TopK returns exactly the k best under the deterministic order,
        /// matching a full sort, for any offer order.
        #[test]
        fn matches_full_sort(
            scores in proptest::collection::vec(0.0f64..1.0, 1..80),
            k in 1usize..20,
        ) {
            let tuples: Vec<MatchTuple> = scores
                .iter()
                .enumerate()
                .map(|(i, s)| t(&[i as u64], (s * 16.0).round() / 16.0))
                .collect();
            let mut top = TopK::new(k);
            for tp in &tuples {
                top.offer(tp.clone());
            }
            let mut expected = tuples.clone();
            expected.sort_by(MatchTuple::rank_cmp);
            expected.truncate(k);
            let got = top.into_sorted_vec();
            prop_assert_eq!(got, expected);
        }

        /// The threshold is monotonically non-decreasing as offers arrive.
        #[test]
        fn threshold_monotone(scores in proptest::collection::vec(0.0f64..1.0, 1..60)) {
            let mut top = TopK::new(4);
            let mut last = 0.0f64;
            for (i, s) in scores.iter().enumerate() {
                top.offer(t(&[i as u64], *s));
                let now = top.admission_score();
                prop_assert!(now >= last - 1e-15);
                last = now;
            }
        }
    }
}
