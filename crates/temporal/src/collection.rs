//! Interval collections: the relations `C_1 … C_m` of an RTJ query.

use crate::error::TemporalError;
use crate::interval::{Interval, Timestamp};
use std::io::{BufRead, Write};

/// Identifier of a collection within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CollectionId(pub u32);

impl std::fmt::Display for CollectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0 + 1)
    }
}

/// A named collection of intervals.
///
/// Collections are immutable once built (TKIJ's statistics are collected
/// per dataset; updates go through the bucket-matrix delta API).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalCollection {
    /// Collection identifier.
    pub id: CollectionId,
    intervals: Vec<Interval>,
}

/// Summary statistics of a collection (min/max/avg length, time range) —
/// the numbers §4.3.1 reports for the traffic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of intervals.
    pub len: usize,
    /// Earliest start.
    pub min_start: Timestamp,
    /// Latest end.
    pub max_end: Timestamp,
    /// Shortest length.
    pub min_length: i64,
    /// Longest length.
    pub max_length: i64,
    /// Average length, rounded to the nearest integer — this is the `avg`
    /// constant of the `justBefore`/`shiftMeets` predicates.
    pub avg_length: i64,
}

impl IntervalCollection {
    /// Builds a collection from intervals (must be non-empty).
    pub fn new(id: CollectionId, intervals: Vec<Interval>) -> Result<Self, TemporalError> {
        if intervals.is_empty() {
            return Err(TemporalError::EmptyCollection);
        }
        Ok(IntervalCollection { id, intervals })
    }

    /// The intervals, in insertion order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of intervals `|C_i|`.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the collection is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// `(min start, max end)` over the collection.
    pub fn time_range(&self) -> (Timestamp, Timestamp) {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for iv in &self.intervals {
            min = min.min(iv.start);
            max = max.max(iv.end);
        }
        (min, max)
    }

    /// Average interval length `AVG_z(z̄ − z̲)`, rounded to nearest.
    pub fn avg_length(&self) -> i64 {
        let sum: i128 = self.intervals.iter().map(|iv| iv.length() as i128).sum();
        let n = self.intervals.len() as i128;
        ((sum + n / 2) / n) as i64
    }

    /// Full summary statistics in one pass.
    pub fn stats(&self) -> CollectionStats {
        let mut s = CollectionStats {
            len: self.intervals.len(),
            min_start: i64::MAX,
            max_end: i64::MIN,
            min_length: i64::MAX,
            max_length: i64::MIN,
            avg_length: 0,
        };
        let mut sum: i128 = 0;
        for iv in &self.intervals {
            s.min_start = s.min_start.min(iv.start);
            s.max_end = s.max_end.max(iv.end);
            let l = iv.length();
            s.min_length = s.min_length.min(l);
            s.max_length = s.max_length.max(l);
            sum += l as i128;
        }
        let n = self.intervals.len() as i128;
        s.avg_length = ((sum + n / 2) / n) as i64;
        s
    }

    /// Reads the plain-text format (one `id,start,end` line per interval;
    /// `#`-prefixed lines and blank lines are skipped).
    pub fn read_text<R: BufRead>(id: CollectionId, reader: R) -> Result<Self, TemporalError> {
        let mut intervals = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line =
                line.map_err(|e| TemporalError::Parse { line: i + 1, message: e.to_string() })?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            intervals.push(Interval::parse_line(trimmed, i + 1)?);
        }
        Self::new(id, intervals)
    }

    /// Writes the plain-text format.
    pub fn write_text<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for iv in &self.intervals {
            writeln!(writer, "{iv}")?;
        }
        Ok(())
    }

    /// A copy of this collection under a different id — the paper's §4.3.1
    /// methodology ("we copy each list of connections 3 times and process
    /// 3-way queries").
    pub fn copy_as(&self, id: CollectionId) -> Self {
        IntervalCollection { id, intervals: self.intervals.clone() }
    }

    /// Appends an interval (insert-style update; paper §3.2 notes updates
    /// are handled by re-running the statistics process on the delta —
    /// [`crate::BucketMatrix::insert`] is that process's unit step).
    pub fn push(&mut self, iv: Interval) {
        self.intervals.push(iv);
    }

    /// Removes the first interval with the given id (delete-style update);
    /// returns it if present. Fails (returns `None`) rather than leaving
    /// the collection empty.
    pub fn remove_id(&mut self, id: u64) -> Option<Interval> {
        if self.intervals.len() == 1 {
            return None;
        }
        let pos = self.intervals.iter().position(|iv| iv.id == id)?;
        Some(self.intervals.remove(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    fn sample() -> IntervalCollection {
        IntervalCollection::new(CollectionId(0), vec![iv(0, 10, 20), iv(1, 5, 6), iv(2, 30, 70)])
            .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            IntervalCollection::new(CollectionId(0), vec![]),
            Err(TemporalError::EmptyCollection)
        );
    }

    #[test]
    fn ranges_and_lengths() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.time_range(), (5, 70));
        // Lengths 10, 1, 40 → avg 17.
        assert_eq!(c.avg_length(), 17);
        let s = c.stats();
        assert_eq!((s.min_length, s.max_length, s.avg_length), (1, 40, 17));
        assert_eq!((s.min_start, s.max_end, s.len), (5, 70, 3));
    }

    #[test]
    fn avg_length_rounds_to_nearest() {
        let c = IntervalCollection::new(
            CollectionId(0),
            vec![iv(0, 0, 1), iv(1, 0, 2)], // lengths 1, 2 → 1.5 → 2
        )
        .unwrap();
        assert_eq!(c.avg_length(), 2);
    }

    #[test]
    fn text_roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_text(&mut buf).unwrap();
        let back = IntervalCollection::read_text(CollectionId(0), buf.as_slice()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn text_reader_skips_comments_and_blanks() {
        let text = "# header\n\n1,10,20\n  \n2,30,40\n";
        let c = IntervalCollection::read_text(CollectionId(1), text.as_bytes()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.intervals()[1], iv(2, 30, 40));
    }

    #[test]
    fn text_reader_reports_bad_line() {
        let text = "1,10,20\nbogus\n";
        match IntervalCollection::read_text(CollectionId(0), text.as_bytes()) {
            Err(TemporalError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn copies_share_intervals_under_new_id() {
        let c = sample();
        let d = c.copy_as(CollectionId(2));
        assert_eq!(d.id, CollectionId(2));
        assert_eq!(d.intervals(), c.intervals());
        assert_eq!(d.id.to_string(), "C3");
    }
}
