//! Bucket statistics: the per-collection endpoint-distribution matrices
//! `B_i` of paper §3.2.
//!
//! A bucket `b_{i,l,l'} = (g_{i,l}, g_{i,l'})` holds the intervals of
//! collection `C_i` that start in granule `l` and end in granule `l'`;
//! the matrix records `B_i[l][l'] = |b_{i,l,l'}|`. Matrices are built by
//! the statistics-collection Map-Reduce job (each mapper maintains a local
//! matrix, reducers merge), so [`BucketMatrix::merge`] must be associative
//! and commutative — property-tested below. Incremental updates (paper:
//! "we can easily handle updates by applying the same process on the
//! inserted/deleted data") are supported through [`BucketMatrix::insert`]
//! and [`BucketMatrix::remove`].

use crate::granule::TimePartitioning;
use crate::interval::Interval;

/// Identifies a bucket: the pair (start granule, end granule), `start_g ≤
/// end_g` for well-formed intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BucketId {
    /// Granule containing the interval start.
    pub start_g: u16,
    /// Granule containing the interval end.
    pub end_g: u16,
}

impl BucketId {
    /// Builds a bucket id from granule indexes.
    pub fn new(start_g: u32, end_g: u32) -> Self {
        debug_assert!(start_g <= u16::MAX as u32 && end_g <= u16::MAX as u32);
        BucketId { start_g: start_g as u16, end_g: end_g as u16 }
    }
}

/// The endpoint-distribution matrix of one collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketMatrix {
    partitioning: TimePartitioning,
    /// Row-major `g × g` counts: `counts[start_g * g + end_g]`.
    counts: Vec<u64>,
    total: u64,
}

impl BucketMatrix {
    /// An empty matrix over the given partitioning.
    pub fn new(partitioning: TimePartitioning) -> Self {
        let g = partitioning.g() as usize;
        BucketMatrix { partitioning, counts: vec![0; g * g], total: 0 }
    }

    /// Builds the matrix of a slice of intervals in one pass.
    pub fn build(partitioning: TimePartitioning, intervals: &[Interval]) -> Self {
        let mut m = Self::new(partitioning);
        for iv in intervals {
            m.insert(iv);
        }
        m
    }

    /// The partitioning the matrix is defined over.
    pub fn partitioning(&self) -> TimePartitioning {
        self.partitioning
    }

    /// Number of granules `g`.
    pub fn g(&self) -> u32 {
        self.partitioning.g()
    }

    /// The bucket an interval falls into.
    #[inline]
    pub fn bucket_of(&self, iv: &Interval) -> BucketId {
        BucketId::new(self.partitioning.granule_of(iv.start), self.partitioning.granule_of(iv.end))
    }

    /// Records one interval.
    pub fn insert(&mut self, iv: &Interval) {
        let b = self.bucket_of(iv);
        let g = self.g() as usize;
        self.counts[b.start_g as usize * g + b.end_g as usize] += 1;
        self.total += 1;
    }

    /// Removes one interval (delete-style update). Saturates at zero if the
    /// interval was never recorded.
    pub fn remove(&mut self, iv: &Interval) {
        let b = self.bucket_of(iv);
        let g = self.g() as usize;
        let slot = &mut self.counts[b.start_g as usize * g + b.end_g as usize];
        if *slot > 0 {
            *slot -= 1;
            self.total -= 1;
        }
    }

    /// Cardinality `|b_{l,l'}|` of a bucket.
    #[inline]
    pub fn count(&self, b: BucketId) -> u64 {
        let g = self.g() as usize;
        self.counts[b.start_g as usize * g + b.end_g as usize]
    }

    /// Total number of recorded intervals (`Σ` of all entries).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Row-major `g × g` counts — the raw lane a serialized-shuffle codec
    /// reads to frame-encode the matrix.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reconstructs a matrix from its row-major counts lane (the inverse
    /// of [`Self::counts`]; the total is re-derived). Panics when the
    /// lane's length is not `g × g`.
    pub fn from_counts(partitioning: TimePartitioning, counts: Vec<u64>) -> Self {
        let g = partitioning.g() as usize;
        assert_eq!(counts.len(), g * g, "counts lane must hold g × g entries");
        let total = counts.iter().sum();
        BucketMatrix { partitioning, counts, total }
    }

    /// Iterates the non-empty buckets with their cardinalities, in
    /// deterministic (row-major) order.
    pub fn nonempty(&self) -> impl Iterator<Item = (BucketId, u64)> + '_ {
        let g = self.g();
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (BucketId::new(i as u32 / g, i as u32 % g), c))
    }

    /// Number of non-empty buckets (the quantity §4.3.2 reports: 151
    /// buckets at 0.58 M intervals, 296 at 2.31 M).
    pub fn nonempty_len(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Merges another matrix (same partitioning) into this one. This is
    /// the reducer-side aggregation of the statistics Map-Reduce job.
    pub fn merge(&mut self, other: &BucketMatrix) {
        assert_eq!(
            self.partitioning, other.partitioning,
            "cannot merge matrices over different partitionings"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The endpoint box (paper Def. 1 constraints (1)(2)) induced by a
    /// bucket: start ranges over granule `l`, end over granule `l'`.
    pub fn endpoint_box(&self, b: BucketId) -> crate::expr::EndpointBox {
        let (slo, shi) = self.partitioning.range(b.start_g as u32);
        let (elo, ehi) = self.partitioning.range(b.end_g as u32);
        crate::expr::EndpointBox::new((slo, shi), (elo, ehi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn part() -> TimePartitioning {
        TimePartitioning::from_range(0, 99, 10).unwrap()
    }

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn counts_round_trip_through_from_counts() {
        let m =
            BucketMatrix::build(part(), &[iv(0, 5, 8), iv(1, 5, 15), iv(2, 7, 12), iv(3, 95, 99)]);
        let rebuilt = BucketMatrix::from_counts(m.partitioning(), m.counts().to_vec());
        assert_eq!(rebuilt, m);
        assert_eq!(rebuilt.total(), 4, "total is re-derived from the lane");
    }

    #[test]
    #[should_panic(expected = "counts lane must hold g × g entries")]
    fn from_counts_rejects_misshapen_lanes() {
        let _ = BucketMatrix::from_counts(part(), vec![0; 7]);
    }

    #[test]
    fn build_counts_by_bucket() {
        let m =
            BucketMatrix::build(part(), &[iv(0, 5, 8), iv(1, 5, 15), iv(2, 7, 12), iv(3, 95, 99)]);
        assert_eq!(m.count(BucketId::new(0, 0)), 1);
        assert_eq!(m.count(BucketId::new(0, 1)), 2);
        assert_eq!(m.count(BucketId::new(9, 9)), 1);
        assert_eq!(m.count(BucketId::new(3, 4)), 0);
        assert_eq!(m.total(), 4);
        assert_eq!(m.nonempty_len(), 3);
    }

    #[test]
    fn nonempty_iterates_in_row_major_order() {
        let m = BucketMatrix::build(part(), &[iv(0, 95, 99), iv(1, 5, 15), iv(2, 5, 8)]);
        let buckets: Vec<BucketId> = m.nonempty().map(|(b, _)| b).collect();
        assert_eq!(buckets, vec![BucketId::new(0, 0), BucketId::new(0, 1), BucketId::new(9, 9)]);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = BucketMatrix::new(part());
        let a = iv(0, 42, 77);
        m.insert(&a);
        assert_eq!(m.total(), 1);
        m.remove(&a);
        assert_eq!(m.total(), 0);
        assert_eq!(m.nonempty_len(), 0);
        // Removing an absent interval saturates.
        m.remove(&a);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn endpoint_box_matches_granule_ranges() {
        let m = BucketMatrix::new(part());
        let b = m.endpoint_box(BucketId::new(1, 2));
        assert_eq!(b.start, (10, 19));
        assert_eq!(b.end, (20, 29));
    }

    #[test]
    #[should_panic(expected = "different partitionings")]
    fn merge_rejects_mismatched_partitionings() {
        let mut a = BucketMatrix::new(part());
        let b = BucketMatrix::new(TimePartitioning::from_range(0, 99, 5).unwrap());
        a.merge(&b);
    }

    proptest! {
        /// Entries always sum to the number of inserted intervals, and the
        /// interval's endpoints actually fall in its bucket's box.
        #[test]
        fn totals_and_membership(
            ivs in proptest::collection::vec((0i64..100, 0i64..100), 0..50)
        ) {
            let mut m = BucketMatrix::new(part());
            for (i, (a, b)) in ivs.iter().enumerate() {
                let (s, e) = (*a.min(b), *a.max(b));
                let interval = iv(i as u64, s, e);
                m.insert(&interval);
                let bucket = m.bucket_of(&interval);
                prop_assert!(m.endpoint_box(bucket).contains(&interval));
                prop_assert!(bucket.start_g <= bucket.end_g);
            }
            prop_assert_eq!(m.total() as usize, ivs.len());
            let sum: u64 = m.nonempty().map(|(_, c)| c).sum();
            prop_assert_eq!(sum as usize, ivs.len());
        }

        /// Merge is commutative and associative, and splitting a dataset
        /// across mappers then merging equals building it in one pass
        /// (Map-Reduce combiner correctness).
        #[test]
        fn merge_equals_bulk_build(
            ivs in proptest::collection::vec((0i64..100, 0i64..60), 1..60),
            split in 0usize..60,
        ) {
            let intervals: Vec<Interval> = ivs
                .iter()
                .enumerate()
                .map(|(i, (s, w))| iv(i as u64, *s, s + w))
                .collect();
            let split = split % intervals.len();
            let whole = BucketMatrix::build(part(), &intervals);
            let left = BucketMatrix::build(part(), &intervals[..split]);
            let right = BucketMatrix::build(part(), &intervals[split..]);
            let mut lr = left.clone();
            lr.merge(&right);
            let mut rl = right.clone();
            rl.merge(&left);
            prop_assert_eq!(&lr, &whole);
            prop_assert_eq!(&rl, &whole);
        }
    }
}
