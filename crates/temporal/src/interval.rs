//! Time intervals: the base tuples of every RTJ collection.

use crate::error::TemporalError;
use std::fmt;

/// Integer timestamp. The paper uses integer endpoints (seconds for the
/// network-traffic dataset); `i64` covers both epoch seconds and
/// micro-benchmark toy ranges.
pub type Timestamp = i64;

/// A closed interval `[start, end]` with a collection-unique identifier.
///
/// The paper writes the endpoints of `x` as underlined/overlined `x`; here
/// they are [`Interval::start`] and [`Interval::end`]. `end >= start` always
/// holds for values built through [`Interval::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Identifier, unique within its collection.
    pub id: u64,
    /// Start timestamp (inclusive).
    pub start: Timestamp,
    /// End timestamp (inclusive).
    pub end: Timestamp,
}

impl Interval {
    /// Creates an interval, enforcing `end >= start`.
    pub fn new(id: u64, start: Timestamp, end: Timestamp) -> Result<Self, TemporalError> {
        if end < start {
            return Err(TemporalError::InvalidInterval { id, start, end });
        }
        Ok(Interval { id, start, end })
    }

    /// Creates an interval without the ordering check.
    ///
    /// Reserved for generators that construct endpoints already ordered;
    /// debug builds still assert the invariant.
    #[inline]
    pub fn new_unchecked(id: u64, start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(end >= start, "interval {id}: end {end} < start {start}");
        Interval { id, start, end }
    }

    /// Interval length `end - start` (a point interval has length 0).
    #[inline]
    pub fn length(&self) -> i64 {
        self.end - self.start
    }

    /// Whether `t` falls inside the closed interval.
    #[inline]
    pub fn contains_point(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether the two closed intervals share at least one timestamp.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Parses the plain-text format `id,start,end` used by the collection
    /// reader (one interval per line, as in the paper's ≈113 MB text files).
    pub fn parse_line(line: &str, line_no: usize) -> Result<Self, TemporalError> {
        let mut parts = line.trim().split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| TemporalError::Parse {
                    line: line_no,
                    message: format!("missing field `{what}`"),
                })
                .and_then(|s| {
                    s.trim().parse::<i64>().map_err(|e| TemporalError::Parse {
                        line: line_no,
                        message: format!("field `{what}`: {e}"),
                    })
                })
        };
        let id = next("id")? as u64;
        let start = next("start")?;
        let end = next("end")?;
        if parts.next().is_some() {
            return Err(TemporalError::Parse { line: line_no, message: "trailing fields".into() });
        }
        Interval::new(id, start, end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{},{}", self.id, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_enforces_order() {
        assert!(Interval::new(1, 5, 5).is_ok());
        assert!(Interval::new(1, 5, 4).is_err());
        let i = Interval::new(2, 10, 20).unwrap();
        assert_eq!(i.length(), 10);
    }

    #[test]
    fn point_membership() {
        let i = Interval::new(0, 3, 7).unwrap();
        assert!(i.contains_point(3));
        assert!(i.contains_point(7));
        assert!(!i.contains_point(2));
        assert!(!i.contains_point(8));
    }

    #[test]
    fn intersection_is_symmetric_and_closed() {
        let a = Interval::new(0, 0, 10).unwrap();
        let b = Interval::new(1, 10, 20).unwrap();
        let c = Interval::new(2, 11, 12).unwrap();
        assert!(a.intersects(&b) && b.intersects(&a), "touching endpoints intersect");
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn display_parse_roundtrip() {
        let i = Interval::new(42, -5, 1000).unwrap();
        let parsed = Interval::parse_line(&i.to_string(), 1).unwrap();
        assert_eq!(parsed, i);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Interval::parse_line("1,2", 3).is_err());
        assert!(Interval::parse_line("1,2,3,4", 3).is_err());
        assert!(Interval::parse_line("a,2,3", 3).is_err());
        assert!(Interval::parse_line("1,9,3", 3).is_err(), "end < start");
    }

    #[test]
    fn parse_reports_line_numbers() {
        match Interval::parse_line("nope", 17) {
            Err(TemporalError::Parse { line, .. }) => assert_eq!(line, 17),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
