//! Scored-predicate parameterizations (paper Table 2).

use crate::comparators::Tolerance;

/// The `(λ, ρ)` pairs applied to the `equals` and `greater` primitives of a
/// scored predicate.
///
/// The paper allows different tolerances per comparator kind and per
/// predicate; Table 2 defines the four presets used throughout the
/// evaluation:
///
/// | Id | (λ_equals, ρ_equals) | (λ_greater, ρ_greater) |
/// |----|----------------------|------------------------|
/// | P1 | (4, 16)              | (0, 10)                |
/// | P2 | (0, 16)              | (2, 8)                 |
/// | P3 | (4, 12)              | (0, 8)                 |
/// | PB | (0, 0)               | (0, 0)                 |
///
/// `PB` is the Boolean degeneration used to compare against the Boolean
/// competitors RCCIS and All-Matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredicateParams {
    /// Tolerance of every `equals` primitive.
    pub equals: Tolerance,
    /// Tolerance of every `greater` primitive.
    pub greater: Tolerance,
}

impl PredicateParams {
    /// Builds a parameterization from the four raw values.
    pub fn new(lambda_eq: i64, rho_eq: i64, lambda_gt: i64, rho_gt: i64) -> Self {
        PredicateParams {
            equals: Tolerance::new(lambda_eq, rho_eq),
            greater: Tolerance::new(lambda_gt, rho_gt),
        }
    }

    /// Table 2, row P1: `(4, 16)`, `(0, 10)`.
    pub const P1: PredicateParams = PredicateParams {
        equals: Tolerance { lambda: 4, rho: 16 },
        greater: Tolerance { lambda: 0, rho: 10 },
    };

    /// Table 2, row P2: `(0, 16)`, `(2, 8)`.
    pub const P2: PredicateParams = PredicateParams {
        equals: Tolerance { lambda: 0, rho: 16 },
        greater: Tolerance { lambda: 2, rho: 8 },
    };

    /// Table 2, row P3: `(4, 12)`, `(0, 8)`.
    pub const P3: PredicateParams = PredicateParams {
        equals: Tolerance { lambda: 4, rho: 12 },
        greater: Tolerance { lambda: 0, rho: 8 },
    };

    /// Table 2, row PB: the Boolean interpretation `(0, 0)`, `(0, 0)`.
    pub const PB: PredicateParams =
        PredicateParams { equals: Tolerance::ZERO, greater: Tolerance::ZERO };

    /// Whether this is a Boolean (step-function) parameterization: with
    /// `PB`, a scored predicate returns exactly `1.0` on tuples satisfying
    /// the Boolean predicate and `0.0` otherwise.
    pub fn is_boolean(&self) -> bool {
        *self == Self::PB
    }

    /// The presets of Table 2 with their paper names, for harness loops.
    pub fn table2() -> [(&'static str, PredicateParams); 4] {
        [("P1", Self::P1), ("P2", Self::P2), ("P3", Self::P3), ("PB", Self::PB)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        assert_eq!(PredicateParams::P1, PredicateParams::new(4, 16, 0, 10));
        assert_eq!(PredicateParams::P2, PredicateParams::new(0, 16, 2, 8));
        assert_eq!(PredicateParams::P3, PredicateParams::new(4, 12, 0, 8));
        assert_eq!(PredicateParams::PB, PredicateParams::new(0, 0, 0, 0));
    }

    #[test]
    fn only_pb_is_boolean() {
        assert!(PredicateParams::PB.is_boolean());
        assert!(!PredicateParams::P1.is_boolean());
        assert!(!PredicateParams::P2.is_boolean());
        assert!(!PredicateParams::P3.is_boolean());
    }

    #[test]
    fn table2_registry_is_complete() {
        let names: Vec<_> = PredicateParams::table2().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["P1", "P2", "P3", "PB"]);
    }
}
