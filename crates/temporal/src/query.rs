//! n-ary RTJ queries: weakly-connected oriented simple graphs whose edges
//! carry scored temporal predicates (paper §2).
//!
//! Each vertex maps to a collection; each edge `(i, j)` applies
//! `s-p(i,j)(x_i, x_j)` with `x_i` playing the predicate's left side. The
//! tuple score aggregates the per-edge scores with a monotone
//! [`Aggregation`]. [`query::table1`](self::table1) reproduces the paper's
//! query set.

use crate::aggregate::Aggregation;
use crate::collection::CollectionId;
use crate::error::TemporalError;
use crate::expr::Side;
use crate::interval::Interval;
use crate::params::PredicateParams;
use crate::predicate::TemporalPredicate;

/// One edge of the query graph.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEdge {
    /// Left vertex (plays `x` in the predicate).
    pub src: usize,
    /// Right vertex (plays `y`).
    pub dst: usize,
    /// The scored temporal predicate.
    pub predicate: TemporalPredicate,
}

/// An n-ary Ranked Temporal Join query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Collection bound to each vertex (vertices may share collections —
    /// self-joins, as in the paper's copied traffic collections).
    pub vertices: Vec<CollectionId>,
    /// Predicate edges; validated to form a weakly-connected simple
    /// oriented graph without anti-parallel pairs.
    pub edges: Vec<QueryEdge>,
    /// Monotone score aggregation `S` (the paper's experiments use the
    /// normalized sum).
    pub aggregation: Aggregation,
}

impl Query {
    /// Builds and validates a query.
    pub fn new(
        vertices: Vec<CollectionId>,
        edges: Vec<QueryEdge>,
        aggregation: Aggregation,
    ) -> Result<Self, TemporalError> {
        let n = vertices.len();
        if n < 2 {
            return Err(TemporalError::InvalidQuery("need at least 2 vertices".into()));
        }
        if edges.is_empty() {
            return Err(TemporalError::InvalidQuery("need at least one edge".into()));
        }
        if let Some(arity) = aggregation.arity() {
            if arity != edges.len() {
                return Err(TemporalError::InvalidQuery(format!(
                    "aggregation expects {arity} edges, query has {}",
                    edges.len()
                )));
            }
        }
        for (idx, e) in edges.iter().enumerate() {
            if e.src >= n || e.dst >= n {
                return Err(TemporalError::InvalidQuery(format!(
                    "edge {idx} references vertex out of range"
                )));
            }
            if e.src == e.dst {
                return Err(TemporalError::InvalidQuery(format!("edge {idx} is a self loop")));
            }
            for prior in &edges[..idx] {
                if prior.src == e.src && prior.dst == e.dst {
                    return Err(TemporalError::InvalidQuery(format!(
                        "duplicate edge ({}, {})",
                        e.src, e.dst
                    )));
                }
                if prior.src == e.dst && prior.dst == e.src {
                    return Err(TemporalError::InvalidQuery(format!(
                        "anti-parallel edges between {} and {}",
                        e.src, e.dst
                    )));
                }
            }
        }
        // Weak connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for e in &edges {
                let other = if e.src == v {
                    Some(e.dst)
                } else if e.dst == v {
                    Some(e.src)
                } else {
                    None
                };
                if let Some(o) = other {
                    if !seen[o] {
                        seen[o] = true;
                        stack.push(o);
                    }
                }
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(TemporalError::InvalidQuery("graph is not weakly connected".into()));
        }
        Ok(Query { vertices, edges, aggregation })
    }

    /// Number of query vertices `n`.
    pub fn n(&self) -> usize {
        self.vertices.len()
    }

    /// Per-edge scores of a concrete tuple (indexed like `self.edges`).
    pub fn edge_scores(&self, tuple: &[Interval]) -> Vec<f64> {
        debug_assert_eq!(tuple.len(), self.n());
        self.edges.iter().map(|e| e.predicate.score(&tuple[e.src], &tuple[e.dst])).collect()
    }

    /// Aggregated score `S` of a concrete tuple.
    pub fn score_tuple(&self, tuple: &[Interval]) -> f64 {
        self.aggregation.eval(&self.edge_scores(tuple))
    }

    /// Boolean satisfaction: every edge predicate holds crisply.
    pub fn holds_boolean(&self, tuple: &[Interval]) -> bool {
        self.edges.iter().all(|e| e.predicate.holds(&tuple[e.src], &tuple[e.dst]))
    }

    /// Plans a left-deep vertex order for local evaluation: each step binds
    /// one new vertex through an *anchor* edge to an already-bound vertex
    /// (used for index-driven candidate retrieval) and lists the remaining
    /// edges to bound vertices as exact *checks* (cycle edges, e.g. the
    /// `(x_1, x_3)` edge of Q_{s,f,m}).
    pub fn plan(&self) -> JoinPlan {
        let n = self.n();
        // Start from the highest-degree vertex (ties → lowest index): star
        // centers and chain middles first keep candidate sets narrow.
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.src] += 1;
            degree[e.dst] += 1;
        }
        let first = (0..n).max_by_key(|&v| (degree[v], n - v)).expect("n ≥ 2");
        let mut bound = vec![false; n];
        bound[first] = true;
        let mut steps = vec![JoinStep { vertex: first, anchor: None, checks: vec![] }];
        while steps.len() < n {
            // Next vertex: adjacent to the bound set, lowest index.
            let mut next: Option<(usize, usize)> = None; // (vertex, anchor edge)
            for (ei, e) in self.edges.iter().enumerate() {
                let cand = if bound[e.src] && !bound[e.dst] {
                    Some(e.dst)
                } else if bound[e.dst] && !bound[e.src] {
                    Some(e.src)
                } else {
                    None
                };
                if let Some(v) = cand {
                    if next.is_none_or(|(bv, _)| v < bv) {
                        next = Some((v, ei));
                    }
                }
            }
            let (v, anchor_edge) = next.expect("weak connectivity guarantees progress");
            let e = &self.edges[anchor_edge];
            let (bound_vertex, anchor_side) =
                if bound[e.src] { (e.src, Side::Left) } else { (e.dst, Side::Right) };
            bound[v] = true;
            let checks = self
                .edges
                .iter()
                .enumerate()
                .filter(|(ei, e)| {
                    *ei != anchor_edge
                        && ((e.src == v && bound[e.dst]) || (e.dst == v && bound[e.src]))
                })
                .map(|(ei, _)| ei)
                .collect();
            steps.push(JoinStep {
                vertex: v,
                anchor: Some(AnchorEdge { edge: anchor_edge, bound_vertex, anchor_side }),
                checks,
            });
        }
        JoinPlan { steps }
    }

    /// The paper-style query name, e.g. `Q_{s,f,m}`.
    pub fn name(&self) -> String {
        let preds: Vec<&str> = self.edges.iter().map(|e| e.predicate.kind.short_name()).collect();
        format!("Q{{{}}}", preds.join(","))
    }
}

/// The anchor of a join step: the edge connecting the new vertex to an
/// already-bound one, and which predicate side the bound vertex plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorEdge {
    /// Index into `Query::edges`.
    pub edge: usize,
    /// The bound vertex providing the anchor interval.
    pub bound_vertex: usize,
    /// The side the *bound* vertex plays in the predicate (the new vertex
    /// plays the opposite side).
    pub anchor_side: Side,
}

/// One step of a left-deep plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// Vertex bound at this step.
    pub vertex: usize,
    /// How candidates are retrieved (`None` for the first step: full
    /// bucket scan).
    pub anchor: Option<AnchorEdge>,
    /// Extra edges (by index) between this vertex and earlier-bound ones,
    /// evaluated exactly after retrieval.
    pub checks: Vec<usize>,
}

/// A complete left-deep evaluation order covering every vertex and edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// The steps, first one anchorless.
    pub steps: Vec<JoinStep>,
}

impl JoinPlan {
    /// Sanity check: every edge appears exactly once as anchor or check.
    pub fn covers_all_edges(&self, num_edges: usize) -> bool {
        let mut seen = vec![0usize; num_edges];
        for s in &self.steps {
            if let Some(a) = s.anchor {
                seen[a.edge] += 1;
            }
            for &c in &s.checks {
                seen[c] += 1;
            }
        }
        seen.iter().all(|&c| c == 1)
    }
}

/// The paper's Table 1 query set.
///
/// Vertices are mapped to `CollectionId(0..n)`; chain queries use edges
/// `(1,2), (2,3)` (1-indexed in the paper), star queries `(1, j)` for
/// `j = 2..n`. `avg` parameterizes `justBefore`/`shiftMeets` and must be
/// the average interval length of the dataset.
pub mod table1 {
    use super::*;

    fn chain(kinds: &[crate::predicate::PredicateKind], p: PredicateParams, avg: i64) -> Query {
        let n = kinds.len() + 1;
        let vertices = (0..n as u32).map(CollectionId).collect();
        let edges = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| QueryEdge {
                src: i,
                dst: i + 1,
                predicate: TemporalPredicate::from_kind(*k, p, avg),
            })
            .collect();
        Query::new(vertices, edges, Aggregation::NormalizedSum).expect("valid chain query")
    }

    fn star(
        kind: crate::predicate::PredicateKind,
        n: usize,
        p: PredicateParams,
        avg: i64,
    ) -> Query {
        assert!(n >= 2);
        let vertices = (0..n as u32).map(CollectionId).collect();
        let edges = (1..n)
            .map(|j| QueryEdge {
                src: 0,
                dst: j,
                predicate: TemporalPredicate::from_kind(kind, p, avg),
            })
            .collect();
        Query::new(vertices, edges, Aggregation::NormalizedSum).expect("valid star query")
    }

    use crate::predicate::PredicateKind as K;

    /// `Q_{b,b}`: s-before(x1,x2), s-before(x2,x3).
    pub fn q_bb(p: PredicateParams) -> Query {
        chain(&[K::Before, K::Before], p, 0)
    }

    /// `Q_{f,f}`: s-finishedBy(x1,x2), s-finishedBy(x2,x3).
    pub fn q_ff(p: PredicateParams) -> Query {
        chain(&[K::FinishedBy, K::FinishedBy], p, 0)
    }

    /// `Q_{o,o}`: s-overlaps(x1,x2), s-overlaps(x2,x3).
    pub fn q_oo(p: PredicateParams) -> Query {
        chain(&[K::Overlaps, K::Overlaps], p, 0)
    }

    /// `Q_{s,s}`: s-starts(x1,x2), s-starts(x2,x3).
    pub fn q_ss(p: PredicateParams) -> Query {
        chain(&[K::Starts, K::Starts], p, 0)
    }

    /// `Q_{s,f,m}`: s-starts(x1,x2), s-finishedBy(x2,x3), s-meets(x1,x3)
    /// — the cyclic 3-way query.
    pub fn q_sfm(p: PredicateParams) -> Query {
        let vertices = (0..3).map(CollectionId).collect();
        let edges = vec![
            QueryEdge { src: 0, dst: 1, predicate: TemporalPredicate::starts(p) },
            QueryEdge { src: 1, dst: 2, predicate: TemporalPredicate::finished_by(p) },
            QueryEdge { src: 0, dst: 2, predicate: TemporalPredicate::meets(p) },
        ];
        Query::new(vertices, edges, Aggregation::NormalizedSum).expect("valid Qsfm")
    }

    /// `Q_{f,b}`: s-finishedBy(x1,x2), s-before(x2,x3).
    pub fn q_fb(p: PredicateParams) -> Query {
        chain(&[K::FinishedBy, K::Before], p, 0)
    }

    /// `Q_{o,m}`: s-overlaps(x1,x2), s-meets(x2,x3).
    pub fn q_om(p: PredicateParams) -> Query {
        chain(&[K::Overlaps, K::Meets], p, 0)
    }

    /// `Q_{s,m}`: s-starts(x1,x2), s-meets(x2,x3).
    pub fn q_sm(p: PredicateParams) -> Query {
        chain(&[K::Starts, K::Meets], p, 0)
    }

    /// `Q_{b*}`: n-ary star of s-before from x1.
    pub fn q_b_star(n: usize, p: PredicateParams) -> Query {
        star(K::Before, n, p, 0)
    }

    /// `Q_{o*}`: n-ary star of s-overlaps from x1.
    pub fn q_o_star(n: usize, p: PredicateParams) -> Query {
        star(K::Overlaps, n, p, 0)
    }

    /// `Q_{m*}`: n-ary star of s-meets from x1.
    pub fn q_m_star(n: usize, p: PredicateParams) -> Query {
        star(K::Meets, n, p, 0)
    }

    /// `Q_{jB,jB}`: s-justBefore(x1,x2), s-justBefore(x2,x3).
    pub fn q_jbjb(p: PredicateParams, avg: i64) -> Query {
        chain(&[K::JustBefore, K::JustBefore], p, avg)
    }

    /// `Q_{sM,sM}`: s-shiftMeets(x1,x2), s-shiftMeets(x2,x3).
    pub fn q_smsm(p: PredicateParams, avg: i64) -> Query {
        chain(&[K::ShiftMeets, K::ShiftMeets], p, avg)
    }

    /// All fixed-arity Table 1 queries with their paper names (star
    /// queries are instantiated at `n = 3`).
    pub fn all(p: PredicateParams, avg: i64) -> Vec<(&'static str, Query)> {
        vec![
            ("Qb,b", q_bb(p)),
            ("Qf,f", q_ff(p)),
            ("Qo,o", q_oo(p)),
            ("Qs,f,m", q_sfm(p)),
            ("Qs,s", q_ss(p)),
            ("Qb*", q_b_star(3, p)),
            ("Qo*", q_o_star(3, p)),
            ("Qm*", q_m_star(3, p)),
            ("Qf,b", q_fb(p)),
            ("Qo,m", q_om(p)),
            ("Qs,m", q_sm(p)),
            ("QjB,jB", q_jbjb(p, avg)),
            ("QsM,sM", q_smsm(p, avg)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PredicateKind;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn validation_rejects_bad_graphs() {
        let p = PredicateParams::P1;
        let c = |n: u32| (0..n).map(CollectionId).collect::<Vec<_>>();
        let before = || TemporalPredicate::before(p);
        // Self loop.
        assert!(Query::new(
            c(2),
            vec![QueryEdge { src: 0, dst: 0, predicate: before() }],
            Aggregation::NormalizedSum
        )
        .is_err());
        // Anti-parallel.
        assert!(Query::new(
            c(2),
            vec![
                QueryEdge { src: 0, dst: 1, predicate: before() },
                QueryEdge { src: 1, dst: 0, predicate: before() },
            ],
            Aggregation::NormalizedSum
        )
        .is_err());
        // Disconnected (4 vertices, one edge).
        assert!(Query::new(
            c(4),
            vec![QueryEdge { src: 0, dst: 1, predicate: before() }],
            Aggregation::NormalizedSum
        )
        .is_err());
        // Weight arity mismatch.
        assert!(Query::new(
            c(2),
            vec![QueryEdge { src: 0, dst: 1, predicate: before() }],
            Aggregation::WeightedSum(vec![1.0, 2.0])
        )
        .is_err());
    }

    #[test]
    fn table1_queries_are_valid_and_named() {
        for (name, q) in table1::all(PredicateParams::P1, 5) {
            assert!(q.n() >= 3, "{name}");
            assert!(q.plan().covers_all_edges(q.edges.len()), "{name}");
            assert!(!q.name().is_empty());
        }
        assert_eq!(table1::q_sfm(PredicateParams::P1).name(), "Q{s,f,m}");
        assert_eq!(table1::q_jbjb(PredicateParams::P3, 5).name(), "Q{jB,jB}");
    }

    #[test]
    fn star_arity_matches_n() {
        for n in 2..=5 {
            let q = table1::q_o_star(n, PredicateParams::P1);
            assert_eq!(q.n(), n);
            assert_eq!(q.edges.len(), n - 1);
            assert!(q.plan().covers_all_edges(n - 1));
        }
    }

    #[test]
    fn score_tuple_normalized_sum() {
        let p = PredicateParams::new(4, 8, 0, 10);
        let q = table1::q_sm(p);
        // x1 starts with x2 perfectly; x2 meets x3 with gap 8 ⇒ equals
        // score 0.5 ⇒ S = (1 + ... ) depends on starts' greater part.
        let x1 = iv(0, 100, 150);
        let x2 = iv(1, 100, 200); // starts: equals(100,100)=1, greater(200,150)=1
        let x3 = iv(2, 208, 300); // meets: equals(200,208) = (4+8-8)/8 = 0.5
        let scores = q.edge_scores(&[x1, x2, x3]);
        assert_eq!(scores[0], 1.0);
        assert!((scores[1] - 0.5).abs() < 1e-12);
        assert!((q.score_tuple(&[x1, x2, x3]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn boolean_tuple_evaluation() {
        let q = table1::q_bb(PredicateParams::PB);
        let t = [iv(0, 0, 10), iv(1, 11, 20), iv(2, 25, 30)];
        assert!(q.holds_boolean(&t));
        let t2 = [iv(0, 0, 10), iv(1, 10, 20), iv(2, 25, 30)];
        assert!(!q.holds_boolean(&t2), "touching is not before");
    }

    #[test]
    fn plan_chain_binds_each_vertex_once() {
        let q = table1::q_om(PredicateParams::P1);
        let plan = q.plan();
        let mut vertices: Vec<usize> = plan.steps.iter().map(|s| s.vertex).collect();
        vertices.sort_unstable();
        assert_eq!(vertices, vec![0, 1, 2]);
        assert!(plan.steps[0].anchor.is_none());
        assert!(plan.steps[1..].iter().all(|s| s.anchor.is_some()));
        // Chain middle vertex has degree 2 → chosen first.
        assert_eq!(plan.steps[0].vertex, 1);
    }

    #[test]
    fn plan_cycle_has_check_edge() {
        let q = table1::q_sfm(PredicateParams::P1);
        let plan = q.plan();
        let total_checks: usize = plan.steps.iter().map(|s| s.checks.len()).sum();
        assert_eq!(total_checks, 1, "one cycle edge must become a check");
        assert!(plan.covers_all_edges(3));
    }

    #[test]
    fn plan_star_anchors_on_center() {
        let q = table1::q_b_star(5, PredicateParams::P1);
        let plan = q.plan();
        assert_eq!(plan.steps[0].vertex, 0, "star center bound first");
        for s in &plan.steps[1..] {
            let a = s.anchor.unwrap();
            assert_eq!(a.bound_vertex, 0);
            assert_eq!(a.anchor_side, Side::Left);
            assert!(s.checks.is_empty());
        }
    }

    #[test]
    fn from_kind_round_trips_short_names() {
        let q = table1::q_m_star(3, PredicateParams::P1);
        assert_eq!(q.edges[0].predicate.kind, PredicateKind::Meets);
        assert_eq!(q.name(), "Q{m,m}");
    }
}
