//! Affine expressions over the endpoints of an interval pair.
//!
//! A temporal predicate compares *expressions* of the four endpoints of a
//! pair `(x, y)`. For the Allen predicates (paper Fig. 2) the expressions
//! are single endpoints, but the generalized predicates of Fig. 4 compare
//! derived quantities: `shiftMeets` compares `x̄ + avg` with `y̲`, and
//! `sparks` compares the lengths `ȳ − y̲` and `10·(x̄ − x̲)`. All of those
//! are affine combinations of endpoints, which is exactly what
//! [`EndpointExpr`] captures. Affinity is what makes interval-arithmetic
//! enclosures (and therefore the bound solver) exact per expression.

use crate::interval::{Interval, Timestamp};
use std::fmt;

/// Which interval of the pair an endpoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first interval of the predicate (the paper's `x`).
    Left,
    /// The second interval of the predicate (the paper's `y`).
    Right,
}

/// Which endpoint of an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The start timestamp (the paper's underlined `x`).
    Start,
    /// The end timestamp (the paper's overlined `x`).
    End,
}

/// One linear term `coeff · endpoint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Term {
    /// Integer coefficient (e.g. `10` in `10·(x̄ − x̲)` of `sparks`).
    pub coeff: i64,
    /// Which interval the endpoint comes from.
    pub side: Side,
    /// Which endpoint.
    pub endpoint: Endpoint,
}

/// An affine expression `Σ coeffᵢ·endpointᵢ + constant` over the endpoints
/// of an interval pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EndpointExpr {
    /// Linear terms; kept short (at most 2 in all built-in predicates).
    pub terms: Vec<Term>,
    /// Additive constant (e.g. the average length in `shiftMeets`).
    pub constant: i64,
}

impl EndpointExpr {
    /// The single endpoint `side.endpoint`.
    pub fn endpoint(side: Side, endpoint: Endpoint) -> Self {
        EndpointExpr { terms: vec![Term { coeff: 1, side, endpoint }], constant: 0 }
    }

    /// Start of the given side: `x̲` or `y̲`.
    pub fn start(side: Side) -> Self {
        Self::endpoint(side, Endpoint::Start)
    }

    /// End of the given side: `x̄` or `ȳ`.
    pub fn end(side: Side) -> Self {
        Self::endpoint(side, Endpoint::End)
    }

    /// Interval length `end − start` of the given side.
    pub fn length(side: Side) -> Self {
        EndpointExpr {
            terms: vec![
                Term { coeff: 1, side, endpoint: Endpoint::End },
                Term { coeff: -1, side, endpoint: Endpoint::Start },
            ],
            constant: 0,
        }
    }

    /// Adds a constant offset (e.g. `x̄ + avg` in `shiftMeets`).
    pub fn plus(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// The same expression with the two sides exchanged: every `x`
    /// endpoint becomes the corresponding `y` endpoint and vice versa.
    /// Used to derive inverse Allen relations (`p⁻¹(x, y) = p(y, x)`).
    pub fn swap_sides(mut self) -> Self {
        for t in &mut self.terms {
            t.side = match t.side {
                Side::Left => Side::Right,
                Side::Right => Side::Left,
            };
        }
        self
    }

    /// The affine difference `self − other`, with like terms merged and
    /// zero-coefficient terms dropped.
    ///
    /// A comparator applied to `(lhs, rhs)` only ever depends on this
    /// difference, so the solver and the index layer reason about the
    /// combined expression.
    pub fn minus(&self, other: &EndpointExpr) -> EndpointExpr {
        let mut terms: Vec<Term> = self.terms.clone();
        for t in &other.terms {
            terms.push(Term { coeff: -t.coeff, ..*t });
        }
        // Merge like terms (tiny vectors; quadratic is fine and allocation-free).
        let mut merged: Vec<Term> = Vec::with_capacity(terms.len());
        for t in terms {
            if let Some(m) =
                merged.iter_mut().find(|m| m.side == t.side && m.endpoint == t.endpoint)
            {
                m.coeff += t.coeff;
            } else {
                merged.push(t);
            }
        }
        merged.retain(|t| t.coeff != 0);
        EndpointExpr { terms: merged, constant: self.constant - other.constant }
    }

    /// Multiplies every coefficient and the constant by `k`
    /// (e.g. `10·(x̄ − x̲)` in `sparks`).
    pub fn scaled(mut self, k: i64) -> Self {
        for t in &mut self.terms {
            t.coeff *= k;
        }
        self.constant *= k;
        self
    }

    /// Evaluates the expression on a concrete pair.
    #[inline]
    pub fn eval(&self, x: &Interval, y: &Interval) -> i64 {
        let mut acc = self.constant;
        for t in &self.terms {
            let iv = match t.side {
                Side::Left => x,
                Side::Right => y,
            };
            let v = match t.endpoint {
                Endpoint::Start => iv.start,
                Endpoint::End => iv.end,
            };
            acc += t.coeff * v;
        }
        acc
    }

    /// Range of the expression when each endpoint independently ranges over
    /// the given boxes (`[start_lo, start_hi]`, `[end_lo, end_hi]` per
    /// side). Exact because the expression is affine.
    pub fn range(&self, left: &EndpointBox, right: &EndpointBox) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for t in &self.terms {
            let b = match t.side {
                Side::Left => left,
                Side::Right => right,
            };
            let (vlo, vhi) = match t.endpoint {
                Endpoint::Start => b.start,
                Endpoint::End => b.end,
            };
            if t.coeff >= 0 {
                lo += t.coeff * vlo;
                hi += t.coeff * vhi;
            } else {
                lo += t.coeff * vhi;
                hi += t.coeff * vlo;
            }
        }
        (lo, hi)
    }

    /// Splits the expression into the contribution of one side and the
    /// rest, if the expression touches the `free` side through exactly one
    /// endpoint with coefficient ±1.
    ///
    /// Used by the index layer: when `x` is bound, a constraint on
    /// `expr(x, y)` that touches a single `y`-endpoint linearly translates
    /// into an axis-aligned range on that endpoint.
    pub fn single_free_endpoint(&self, free: Side) -> Option<(Endpoint, i64)> {
        let mut found: Option<(Endpoint, i64)> = None;
        for t in &self.terms {
            if t.side == free {
                if found.is_some() {
                    return None; // touches two free endpoints (e.g. a length)
                }
                if t.coeff != 1 && t.coeff != -1 {
                    return None;
                }
                found = Some((t.endpoint, t.coeff));
            }
        }
        found
    }

    /// Evaluates only the terms of `side` against a concrete interval;
    /// returns the partial sum including the constant when `with_constant`.
    pub fn eval_side(&self, side: Side, iv: &Interval, with_constant: bool) -> i64 {
        let mut acc = if with_constant { self.constant } else { 0 };
        for t in &self.terms {
            if t.side == side {
                let v = match t.endpoint {
                    Endpoint::Start => iv.start,
                    Endpoint::End => iv.end,
                };
                acc += t.coeff * v;
            }
        }
        acc
    }
}

/// Independent ranges for the two endpoints of one interval variable:
/// `start ∈ [start.0, start.1]`, `end ∈ [end.0, end.1]`.
///
/// This is the domain shape induced by a bucket `b = (g_l, g_l')` (paper
/// Def. 1 constraints (1) and (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointBox {
    /// Inclusive range of the start endpoint.
    pub start: (Timestamp, Timestamp),
    /// Inclusive range of the end endpoint.
    pub end: (Timestamp, Timestamp),
}

impl EndpointBox {
    /// Builds a box, asserting well-formed ranges.
    pub fn new(start: (Timestamp, Timestamp), end: (Timestamp, Timestamp)) -> Self {
        assert!(start.0 <= start.1 && end.0 <= end.1, "malformed endpoint box");
        EndpointBox { start, end }
    }

    /// The degenerate box holding exactly one interval.
    pub fn point(iv: &Interval) -> Self {
        EndpointBox { start: (iv.start, iv.start), end: (iv.end, iv.end) }
    }

    /// Whether a concrete interval falls inside the box.
    pub fn contains(&self, iv: &Interval) -> bool {
        self.start.0 <= iv.start
            && iv.start <= self.start.1
            && self.end.0 <= iv.end
            && iv.end <= self.end.1
    }
}

impl fmt::Display for EndpointExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.terms {
            let sym = match (t.side, t.endpoint) {
                (Side::Left, Endpoint::Start) => "x.start",
                (Side::Left, Endpoint::End) => "x.end",
                (Side::Right, Endpoint::Start) => "y.start",
                (Side::Right, Endpoint::End) => "y.end",
            };
            if first {
                if t.coeff == 1 {
                    write!(f, "{sym}")?;
                } else {
                    write!(f, "{}*{sym}", t.coeff)?;
                }
                first = false;
            } else if t.coeff >= 0 {
                write!(f, " + {}*{sym}", t.coeff)?;
            } else {
                write!(f, " - {}*{sym}", -t.coeff)?;
            }
        }
        if self.constant != 0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant > 0 {
                write!(f, " + {}", self.constant)?;
            } else {
                write!(f, " - {}", -self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn eval_single_endpoints() {
        let x = iv(0, 10, 20);
        let y = iv(1, 30, 45);
        assert_eq!(EndpointExpr::start(Side::Left).eval(&x, &y), 10);
        assert_eq!(EndpointExpr::end(Side::Left).eval(&x, &y), 20);
        assert_eq!(EndpointExpr::start(Side::Right).eval(&x, &y), 30);
        assert_eq!(EndpointExpr::end(Side::Right).eval(&x, &y), 45);
    }

    #[test]
    fn eval_lengths_and_offsets() {
        let x = iv(0, 10, 20);
        let y = iv(1, 30, 45);
        assert_eq!(EndpointExpr::length(Side::Left).eval(&x, &y), 10);
        assert_eq!(EndpointExpr::length(Side::Right).eval(&x, &y), 15);
        assert_eq!(EndpointExpr::end(Side::Left).plus(54).eval(&x, &y), 74);
        assert_eq!(EndpointExpr::length(Side::Left).scaled(10).eval(&x, &y), 100);
    }

    #[test]
    fn single_free_endpoint_detection() {
        let e = EndpointExpr::start(Side::Right);
        assert_eq!(e.single_free_endpoint(Side::Right), Some((Endpoint::Start, 1)));
        assert_eq!(e.single_free_endpoint(Side::Left), None);
        let len = EndpointExpr::length(Side::Right);
        assert_eq!(len.single_free_endpoint(Side::Right), None, "touches both endpoints");
        let scaled = EndpointExpr::start(Side::Right).scaled(10);
        assert_eq!(scaled.single_free_endpoint(Side::Right), None, "non-unit coefficient");
    }

    #[test]
    fn minus_merges_like_terms() {
        let x = iv(0, 10, 20);
        let y = iv(1, 30, 45);
        // (x̄ + 5) − x̄ = 5: terms cancel entirely.
        let d = EndpointExpr::end(Side::Left).plus(5).minus(&EndpointExpr::end(Side::Left));
        assert!(d.terms.is_empty());
        assert_eq!(d.eval(&x, &y), 5);
        // len(y) − 10·len(x) keeps 4 terms and evaluates consistently.
        let d =
            EndpointExpr::length(Side::Right).minus(&EndpointExpr::length(Side::Left).scaled(10));
        assert_eq!(d.eval(&x, &y), 15 - 100);
        assert_eq!(d.terms.len(), 4);
    }

    #[test]
    fn display_is_readable() {
        let e = EndpointExpr::length(Side::Left).scaled(10);
        assert_eq!(e.to_string(), "10*x.end - 10*x.start");
        let c = EndpointExpr::end(Side::Left).plus(54);
        assert_eq!(c.to_string(), "x.end + 54");
    }

    proptest! {
        /// The affine range enclosure is sound and tight at its corners.
        #[test]
        fn range_encloses_all_points(
            s1 in 0i64..50, w1 in 0i64..50, s2 in 0i64..50, w2 in 0i64..50,
            ds in 0i64..30, de in 0i64..30,
        ) {
            // Box: start ∈ [s, s+ds], end ∈ [s+w, s+w+de] per side.
            let lb = EndpointBox::new((s1, s1 + ds), (s1 + w1, s1 + w1 + de));
            let rb = EndpointBox::new((s2, s2 + ds), (s2 + w2, s2 + w2 + de));
            let exprs = [
                EndpointExpr::start(Side::Left),
                EndpointExpr::end(Side::Right),
                EndpointExpr::length(Side::Right),
                EndpointExpr::length(Side::Left).scaled(10),
                EndpointExpr::end(Side::Left).plus(7),
            ];
            for expr in &exprs {
                let (lo, hi) = expr.range(&lb, &rb);
                // Sample corner intervals (clamped to validity).
                for &(xs, xe) in &[(lb.start.0, lb.end.0), (lb.start.1, lb.end.1), (lb.start.0, lb.end.1)] {
                    for &(ys, ye) in &[(rb.start.0, rb.end.0), (rb.start.1, rb.end.1), (rb.start.0, rb.end.1)] {
                        if xe >= xs && ye >= ys {
                            let v = expr.eval(&iv(0, xs, xe), &iv(1, ys, ye));
                            prop_assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}]");
                        }
                    }
                }
            }
        }

        /// `eval` decomposes into per-side partial sums.
        #[test]
        fn eval_side_decomposition(s1 in -100i64..100, w1 in 0i64..50, s2 in -100i64..100, w2 in 0i64..50) {
            let x = iv(0, s1, s1 + w1);
            let y = iv(1, s2, s2 + w2);
            let exprs = [
                EndpointExpr::length(Side::Right),
                EndpointExpr::end(Side::Left).plus(13),
                EndpointExpr::start(Side::Right).scaled(-3),
            ];
            for e in &exprs {
                let whole = e.eval(&x, &y);
                let parts = e.eval_side(Side::Left, &x, true) + e.eval_side(Side::Right, &y, false);
                prop_assert_eq!(whole, parts);
            }
        }
    }
}
