//! Monotone aggregation of per-edge predicate scores (the paper's `S`).
//!
//! The score of an n-ary result tuple aggregates the partial scores of
//! every query edge. The paper requires `S` to be **monotone** — this is
//! what makes bound aggregation in the `loose` strategy sound (Alg. 2,
//! lines 4–5) and what the rank-join early-termination thresholds rely on.
//!
//! The paper's experiments use the normalized sum
//! `S = Σ s-p(i,j)(x_i, x_j) / |E|`; weighted sums and `min` are provided
//! as the other common monotone choices from the rank-join literature.

/// A monotone aggregation function over edge scores in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregation {
    /// `Σ sᵢ / n` — the paper's default (§4, "Queries").
    NormalizedSum,
    /// `Σ wᵢ·sᵢ` with non-negative weights, normalized by `Σ wᵢ` so results
    /// stay in `[0, 1]`.
    WeightedSum(Vec<f64>),
    /// `min(sᵢ)` — the strictest monotone aggregation.
    Min,
}

impl Aggregation {
    /// Aggregates the edge scores into a tuple score in `[0, 1]`.
    pub fn eval(&self, scores: &[f64]) -> f64 {
        assert!(!scores.is_empty(), "aggregation over zero edges");
        match self {
            Aggregation::NormalizedSum => scores.iter().sum::<f64>() / scores.len() as f64,
            Aggregation::WeightedSum(w) => {
                assert_eq!(w.len(), scores.len(), "weight/edge arity mismatch");
                let total: f64 = w.iter().sum();
                assert!(total > 0.0, "weights must not all be zero");
                w.iter().zip(scores).map(|(wi, si)| wi * si).sum::<f64>() / total
            }
            Aggregation::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// Aggregates per-edge score *bounds* into tuple-score bounds.
    ///
    /// Because `S` is monotone, applying it componentwise to the lower
    /// (resp. upper) ends yields a sound lower (resp. upper) bound — this
    /// is exactly how the `loose` strategy combines pair bounds (Alg. 2).
    pub fn combine_bounds(&self, bounds: &[(f64, f64)]) -> (f64, f64) {
        let los: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let his: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        (self.eval(&los), self.eval(&his))
    }

    /// Minimum score edge `edge` must reach for a tuple to be able to
    /// attain total score `target`, given that the edges listed in
    /// `fixed` already have known scores and every other edge is
    /// optimistically assumed to score `1.0`.
    ///
    /// Used by the local rank-join to derive R-tree thresholds: candidates
    /// scoring below the returned value cannot contribute a top-k result.
    /// A non-positive return value means the edge is unconstrained.
    pub fn required_edge_score(
        &self,
        fixed: &[(usize, f64)],
        edge: usize,
        num_edges: usize,
        target: f64,
    ) -> f64 {
        debug_assert!(edge < num_edges);
        debug_assert!(fixed.iter().all(|(e, _)| *e != edge));
        match self {
            Aggregation::NormalizedSum => {
                let fixed_sum: f64 = fixed.iter().map(|(_, s)| s).sum();
                let free = num_edges - fixed.len() - 1; // besides `edge`
                target * num_edges as f64 - fixed_sum - free as f64
            }
            Aggregation::WeightedSum(w) => {
                let total: f64 = w.iter().sum();
                let fixed_sum: f64 = fixed.iter().map(|(e, s)| w[*e] * s).sum();
                let mut free_sum = 0.0;
                for (e, we) in w.iter().enumerate() {
                    if e != edge && !fixed.iter().any(|(fe, _)| *fe == e) {
                        free_sum += we;
                    }
                }
                if w[edge] <= 0.0 {
                    // Zero-weight edge can never be constrained.
                    return f64::NEG_INFINITY;
                }
                (target * total - fixed_sum - free_sum) / w[edge]
            }
            Aggregation::Min => target,
        }
    }

    /// Number of edge weights this aggregation is specialized to, if any.
    pub fn arity(&self) -> Option<usize> {
        match self {
            Aggregation::WeightedSum(w) => Some(w.len()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalized_sum_matches_paper_formula() {
        let s = Aggregation::NormalizedSum;
        assert!((s.eval(&[1.0, 0.5]) - 0.75).abs() < 1e-12);
        assert!((s.eval(&[0.2]) - 0.2).abs() < 1e-12);
        assert!((s.eval(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_normalizes() {
        let s = Aggregation::WeightedSum(vec![3.0, 1.0]);
        assert!((s.eval(&[1.0, 0.0]) - 0.75).abs() < 1e-12);
        assert!((s.eval(&[0.0, 1.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_is_strict() {
        let s = Aggregation::Min;
        assert_eq!(s.eval(&[0.9, 0.1, 0.5]), 0.1);
    }

    #[test]
    fn combine_bounds_is_componentwise() {
        let s = Aggregation::NormalizedSum;
        let (lo, hi) = s.combine_bounds(&[(0.0, 1.0), (0.5, 0.75)]);
        assert!((lo - 0.25).abs() < 1e-12);
        assert!((hi - 0.875).abs() < 1e-12);
    }

    #[test]
    fn required_edge_score_normalized_sum() {
        // 2 edges, target 0.9, other edge free (assumed 1.0):
        // need s ≥ 0.9·2 − 1 = 0.8.
        let s = Aggregation::NormalizedSum;
        let need = s.required_edge_score(&[], 0, 2, 0.9);
        assert!((need - 0.8).abs() < 1e-12);
        // With the other edge fixed at 0.6: need s ≥ 1.8 − 0.6 = 1.2 ⇒
        // impossible, caller prunes.
        let need = s.required_edge_score(&[(1, 0.6)], 0, 2, 0.9);
        assert!((need - 1.2).abs() < 1e-12);
    }

    #[test]
    fn required_edge_score_min_is_target() {
        let s = Aggregation::Min;
        assert_eq!(s.required_edge_score(&[], 1, 3, 0.7), 0.7);
    }

    proptest! {
        /// Monotonicity: raising any single edge score never lowers the
        /// aggregate.
        #[test]
        fn monotone(
            base in proptest::collection::vec(0.0f64..1.0, 1..6),
            idx in 0usize..6, bump in 0.0f64..1.0,
        ) {
            let idx = idx % base.len();
            let mut hi = base.clone();
            hi[idx] = (hi[idx] + bump).min(1.0);
            let aggs = [
                Aggregation::NormalizedSum,
                Aggregation::Min,
                Aggregation::WeightedSum(vec![1.0; base.len()]),
            ];
            for a in &aggs {
                prop_assert!(a.eval(&hi) >= a.eval(&base) - 1e-12);
            }
        }

        /// The required-edge-score threshold is consistent: any candidate
        /// meeting it can reach `target` with optimistic free edges, and
        /// any candidate strictly below it cannot.
        #[test]
        fn required_edge_score_consistency(
            other in 0.0f64..1.0, target in 0.0f64..1.0, s in 0.0f64..1.0,
        ) {
            let agg = Aggregation::NormalizedSum;
            let need = agg.required_edge_score(&[(1, other)], 0, 3, target);
            // Edges: 0 = candidate s, 1 = fixed `other`, 2 = free (1.0).
            let attained = agg.eval(&[s, other, 1.0]);
            if s >= need + 1e-9 {
                prop_assert!(attained >= target - 1e-9);
            }
            if s < need - 1e-9 {
                prop_assert!(attained < target + 1e-9);
            }
        }
    }
}
