//! Lexer edge cases the whole lint pass rests on: raw strings and
//! comments must never leak into the code channel (false positives),
//! code after them must still be seen (false negatives), and `scrub`
//! must be total over arbitrary input.

use proptest::prelude::*;
use std::path::PathBuf;
use tkij_lint::lexer::{has_word, scrub};
use tkij_lint::rules::lint_file;

fn codes(src: &str) -> Vec<&'static str> {
    lint_file(&PathBuf::from("edge.rs"), "core", src).iter().map(|f| f.code).collect()
}

#[test]
fn raw_string_containing_hashmap_is_not_flagged() {
    let src = "let doc = r#\"use std::collections::HashMap; // still a string\"#;\n";
    assert_eq!(codes(src), Vec::<&str>::new());
    let s = scrub(src);
    assert!(!has_word(&s.code_lines[0], "HashMap"));
    assert_eq!(s.strings.len(), 1);
    assert!(s.strings[0].content.contains("HashMap"));
}

#[test]
fn raw_string_with_hashes_and_inner_quotes() {
    let src = "let q = r##\"quoted \"# inside\" HashMap\"##; use std::collections::HashMap;\n";
    // The literal's `"#` must not close it early; the real `HashMap`
    // after the literal must still be flagged — exactly once.
    assert_eq!(codes(src), vec!["DET001"]);
    let s = scrub(src);
    assert_eq!(s.strings[0].content, "quoted \"# inside\" HashMap");
}

#[test]
fn nested_block_comments_blank_fully_and_close_correctly() {
    let src = "/* outer /* HashMap inner */ still comment */ let x = 1;\n\
               use std::collections::HashMap;\n";
    // Only the real use on line 2 may be flagged; the doubly-nested
    // comment must not, and `let x` after the close must be code.
    let findings = lint_file(&PathBuf::from("edge.rs"), "core", src);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!((findings[0].code, findings[0].line), ("DET001", 2));
    let s = scrub(src);
    assert!(s.code_lines[0].contains("let x = 1;"));
    assert!(s.comment_lines[0].contains("HashMap inner"));
}

#[test]
fn comment_markers_inside_string_literals_stay_strings() {
    // The `//` inside the literal must not start a comment — the
    // HashMap after it on the same line is real code and must flag.
    let src = "let url = \"https://example.com/x\"; use std::collections::HashMap;\n";
    assert_eq!(codes(src), vec!["DET001"]);
    let s = scrub(src);
    assert_eq!(s.comment_lines[0], "");
    assert_eq!(s.strings[0].content, "https://example.com/x");
}

#[test]
fn char_literal_quote_does_not_open_a_string() {
    // `'"'` must be consumed as a char literal, or everything after it
    // would be swallowed as a string and the HashMap missed.
    let src = "let c = '\"'; use std::collections::HashMap;\n";
    assert_eq!(codes(src), vec!["DET001"]);
    // Lifetimes must survive in the code channel.
    let s = scrub("fn f<'a>(x: &'a str) -> &'a str { x }\n");
    assert!(s.code_lines[0].contains("'a"));
}

#[test]
fn multi_line_string_blanks_every_line() {
    let src = "let s = \"line one HashMap\nline two HashMap\";\nuse std::collections::HashMap;\n";
    let findings = lint_file(&PathBuf::from("edge.rs"), "core", src);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn suppression_without_reason_still_fails_via_public_api() {
    let src = "// tkij-lint: allow(DET002) --\n\
               let t = std::time::Instant::now();\n";
    let got = codes(src);
    assert!(got.contains(&"DET002"), "reasonless allow must be inert: {got:?}");
    assert!(got.contains(&"SUP001"), "and reported itself: {got:?}");
}

proptest! {
    /// `scrub` is total: no panic on arbitrary (possibly non-UTF-8-
    /// boundary-hostile) input, and the line structure always matches
    /// the source's.
    #[test]
    fn scrub_never_panics_and_preserves_lines(
        bytes in proptest::collection::vec(0u8..=255u8, 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let s = scrub(&src);
        let lines = src.split('\n').count();
        prop_assert_eq!(s.code_lines.len(), lines);
        prop_assert_eq!(s.comment_lines.len(), lines);
        // The code channel is byte-preserving per line.
        for (code, orig) in s.code_lines.iter().zip(src.split('\n')) {
            prop_assert_eq!(code.len(), orig.len());
        }
    }
}
