//! The committed bad-code fixtures must each trip their rule, the
//! registry-drift mini-workspace must be caught, and the live workspace
//! must pass both layers clean — the same contracts CI enforces through
//! the `tkij-lint` binary's exit code.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tkij_lint::registry::{check_registry, RegistryPaths};
use tkij_lint::{check_registry_at, check_rules, rules};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

/// Codes found in a `fixtures/bad/` file, linted the way the binary
/// lints explicit file arguments: every rule active.
fn bad_fixture_codes(name: &str) -> Vec<&'static str> {
    let path = fixture(&format!("bad/{name}.rs"));
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    rules::lint_file(&path, "core", &source).iter().map(|f| f.code).collect()
}

#[test]
fn each_det_fixture_trips_its_rule() {
    for code in rules::DET_CODES {
        let name = code.to_lowercase();
        let got = bad_fixture_codes(&name);
        assert!(got.contains(&code), "fixtures/bad/{name}.rs should trip {code}, got {got:?}");
    }
}

#[test]
fn reasonless_suppression_fixture_trips_both() {
    let got = bad_fixture_codes("sup001");
    assert!(got.contains(&"SUP001"), "missing SUP001 in {got:?}");
    assert!(got.contains(&"DET001"), "a reasonless suppression must not suppress; got {got:?}");
}

#[test]
fn registry_drift_fixture_is_caught() {
    let findings = check_registry(&RegistryPaths::for_workspace(&fixture("registry_drift")));
    let codes: BTreeSet<&str> = findings.iter().map(|f| f.code).collect();
    // The planted drift (bench_smoke forgot `topbuckets_selected`) must
    // surface from both directions — the gated baseline key with no
    // emission, and the struct field with no emission — and nothing
    // else in the mini-workspace may drift.
    assert_eq!(codes.into_iter().collect::<Vec<_>>(), vec!["REG102", "REG103"], "{findings:#?}");
}

#[test]
fn live_workspace_passes_both_layers() {
    let root =
        Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf();
    let rule_findings = check_rules(&root).expect("workspace scan");
    assert!(rule_findings.is_empty(), "{rule_findings:#?}");
    let registry_findings = check_registry_at(&root);
    assert!(registry_findings.is_empty(), "{registry_findings:#?}");
}
