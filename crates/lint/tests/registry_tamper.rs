//! The registry cross-check must catch each drift class on a tampered
//! copy of the *live* surfaces — not just on the committed mini-fixture
//! — so the test proves the parsers actually understand the real
//! `bench_smoke`, baseline, and fingerprint files.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tkij_lint::registry::{check_registry, RegistryPaths};

/// Copies the four live registry surfaces into a scratch directory
/// laid out like the workspace, then applies `tamper` to one file.
fn tampered_workspace(tag: &str, tamper_rel: &str, tamper: impl Fn(&str) -> String) -> PathBuf {
    let live = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let root = std::env::temp_dir().join(format!("tkij-lint-tamper-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for dir in ["crates/core/src", "crates/bench/src/bin", "crates/mapreduce/src", "tests"] {
        std::fs::create_dir_all(root.join(dir)).expect("scratch dirs");
    }
    let mut surfaces = vec![
        "crates/bench/src/bin/bench_smoke.rs".to_string(),
        "crates/bench/src/bin/bench_serving.rs".to_string(),
        "BENCH_BASELINE.json".to_string(),
        "tests/thread_determinism.rs".to_string(),
        "tests/intra_parallel_determinism.rs".to_string(),
        "tests/serving_determinism.rs".to_string(),
        "tests/shuffle_spill_determinism.rs".to_string(),
    ];
    for src_dir in ["crates/core/src", "crates/mapreduce/src"] {
        for entry in std::fs::read_dir(live.join(src_dir)).expect("crate src") {
            let path = entry.expect("entry").path();
            if path.extension().is_some_and(|e| e == "rs") {
                surfaces.push(format!("{src_dir}/{}", path.file_name().unwrap().to_str().unwrap()));
            }
        }
    }
    for rel in &surfaces {
        let source = std::fs::read_to_string(live.join(rel)).expect("live surface readable");
        let out = if rel == tamper_rel { tamper(&source) } else { source };
        std::fs::write(root.join(rel), out).expect("scratch write");
    }
    root
}

fn codes_at(root: &Path) -> BTreeSet<&'static str> {
    check_registry(&RegistryPaths::for_workspace(root)).iter().map(|f| f.code).collect()
}

/// Drops every source line containing `needle`.
fn drop_lines(source: &str, needle: &str) -> String {
    source.lines().filter(|l| !l.contains(needle)).map(|l| format!("{l}\n")).collect()
}

#[test]
fn untampered_copy_is_clean() {
    let root = tampered_workspace("clean", "BENCH_BASELINE.json", |s| s.to_string());
    let codes = codes_at(&root);
    assert!(codes.is_empty(), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_backend_counter_emission_is_caught() {
    // The acceptance drill: remove the per-backend `probe_chunks`
    // emission from a copy of bench_smoke. The gate now compares
    // against nothing (REG102 for each backend key) and the
    // LocalJoinStats counter lost its emission (REG107).
    let root = tampered_workspace("emission", "crates/bench/src/bin/bench_smoke.rs", |s| {
        drop_lines(s, "{n}_probe_chunks")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG102"), "{codes:?}");
    assert!(codes.contains("REG107"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_literal_counter_emission_is_caught() {
    let root = tampered_workspace("literal", "crates/bench/src/bin/bench_smoke.rs", |s| {
        drop_lines(s, "\"topbuckets_pruned_merge\"")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG102"), "{codes:?}");
    assert!(codes.contains("REG103"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_gated_baseline_key_is_caught() {
    let root = tampered_workspace("baseline", "BENCH_BASELINE.json", |s| {
        drop_lines(s, "\"dtb_shuffle_records\"")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG101"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_a_fingerprint_read_is_caught() {
    let root = tampered_workspace("fingerprint", "tests/thread_determinism.rs", |s| {
        drop_lines(s, ".topbuckets.solver_calls")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG104"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_serving_emission_is_caught() {
    // The serving drill: remove the cache-hit counter emission from a
    // copy of bench_serving. The baseline gates a key no harness emits
    // (REG102) and the ServingStats counter lost its emission (REG110).
    let root = tampered_workspace("serving", "crates/bench/src/bin/bench_serving.rs", |s| {
        drop_lines(s, "\"serving_plan_cache_hits\"")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG102"), "{codes:?}");
    assert!(codes.contains("REG110"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_the_evictions_emission_is_caught() {
    // The bounded-cache counter is a REG110 sibling of hits/misses:
    // dropping its emission leaves the baseline gating a key nothing
    // emits (REG102) and the ServingStats field unemitted (REG110).
    let root = tampered_workspace("evictions", "crates/bench/src/bin/bench_serving.rs", |s| {
        drop_lines(s, "\"serving_plan_cache_evictions\"")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG102"), "{codes:?}");
    assert!(codes.contains("REG110"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_a_serving_counter_battery_assert_is_caught() {
    // Every ServingStats field must also be asserted by the serving
    // determinism battery: dropping the evictions assert (while the
    // emission and gate stay intact) is its own REG110 drift.
    let root = tampered_workspace("servingassert", "tests/serving_determinism.rs", |s| {
        drop_lines(s, "stats.plan_cache_evictions")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG110"), "{codes:?}");
    assert!(!codes.contains("REG102"), "the emission and gate are untouched: {codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_a_serving_battery_fingerprint_read_is_caught() {
    // The serving battery is a fingerprint surface like the other two:
    // dropping a TopBucketsStats read from it must trip REG104.
    let root = tampered_workspace("servingfp", "tests/serving_determinism.rs", |s| {
        drop_lines(s, ".topbuckets.pruned_local")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG104"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_spill_counter_emission_is_caught() {
    // The out-of-core shuffle drill: remove the spilled-record counter
    // emission from a copy of bench_smoke's spill leg. The baseline
    // gates a key nothing emits (REG102) and the ShuffleStats counter
    // lost its emission (REG111).
    let root = tampered_workspace("spill", "crates/bench/src/bin/bench_smoke.rs", |s| {
        drop_lines(s, "\"shuffle_records_spilled\"")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG102"), "{codes:?}");
    assert!(codes.contains("REG111"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_a_shuffle_checksum_fingerprint_read_is_caught() {
    // Every determinism battery must read the spill checksum into its
    // fingerprint: dropping the `shuffle_fp` helper's read line (the
    // one line containing `.shuffle.checksum`) while the emission and
    // the gate stay intact is its own REG111 drift.
    let root = tampered_workspace("spillfp", "tests/thread_determinism.rs", |s| {
        drop_lines(s, ".shuffle.checksum")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG111"), "{codes:?}");
    assert!(!codes.contains("REG102"), "the emission and gate are untouched: {codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_the_spill_battery_shuffle_reads_is_caught() {
    // The spill battery itself is a REG111 fingerprint surface: a copy
    // that renames its `shuffle` captures reads no `.shuffle.<field>`
    // member at all and must drift on every ShuffleStats counter.
    let root = tampered_workspace("spillbattery", "tests/shuffle_spill_determinism.rs", |s| {
        s.replace(".shuffle.", ".shuffle_gone.")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG111"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_the_local_stats_capture_is_caught() {
    let root = tampered_workspace("localstats", "tests/intra_parallel_determinism.rs", |s| {
        s.replace("local_stats", "local_statz")
    });
    let codes = codes_at(&root);
    assert!(codes.contains("REG109"), "{codes:?}");
    let _ = std::fs::remove_dir_all(&root);
}
