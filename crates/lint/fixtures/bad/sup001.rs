//! Bad-code fixture: SUP001 — suppression without a reason. The
//! reasonless `allow` is itself a finding and suppresses nothing, so
//! `tkij-lint check <this file>` must exit 1 with both SUP001 and
//! DET001.

// tkij-lint: allow(DET001)
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    map.get(&key).copied()
}
