//! Bad-code fixture: DET002 — wall-clock read outside the bench crate.
//! `tkij-lint check <this file>` must exit 1.

use std::time::Instant;

pub fn scored_with_clock(items: &[u64]) -> u64 {
    let started = Instant::now();
    let score: u64 = items.iter().sum();
    // Folding elapsed time into a result makes it nondeterministic.
    score.wrapping_add(started.elapsed().as_nanos() as u64)
}
