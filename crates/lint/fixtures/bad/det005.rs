//! Bad-code fixture: DET005 — atomic use without a rationale comment.
//! `tkij-lint check <this file>` must exit 1.
//!
//! (The rule wants a nearby comment explaining why the chosen memory
//! semantics cannot affect results or counters; this file has none.)

use std::sync::atomic::AtomicU64;

pub fn publish(bound: &AtomicU64, score_bits: u64) {
    bound.fetch_max(score_bits, std::sync::atomic::Ordering::Relaxed);
}
