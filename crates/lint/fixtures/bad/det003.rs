//! Bad-code fixture: DET003 — thread-identity branching.
//! `tkij-lint check <this file>` must exit 1.

pub fn chunk_bias() -> u64 {
    // Branching on which thread runs this chunk breaks bit-identical
    // counters across worker_threads settings.
    let id = std::thread::current().id();
    if format!("{id:?}").len() % 2 == 0 {
        1
    } else {
        0
    }
}
