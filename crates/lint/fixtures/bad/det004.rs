//! Bad-code fixture: DET004 — OS-entropy RNG seeding.
//! `tkij-lint check <this file>` must exit 1.

pub fn shuffled(items: &mut Vec<u64>) {
    let mut rng = rand::thread_rng();
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}
