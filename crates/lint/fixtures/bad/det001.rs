//! Bad-code fixture: DET001 — hash-ordered container in a
//! counter-bearing context. `tkij-lint check <this file>` must exit 1.

use std::collections::HashMap;

pub fn bucket_counts(keys: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0u64) += 1;
    }
    counts
}
