//! Registry-drift fixture: the bench emission surface, with one
//! planted drift — `topbuckets_selected` is declared in
//! `TopBucketsStats` and gated in `BENCH_BASELINE.json`, but the
//! emission below forgot it. The cross-checker must report REG103
//! (field not emitted) and REG102 (gated key no longer emitted).

fn emit(report: &ExecutionReport, n: &str) {
    let mut metrics: Vec<(String, String)> = Vec::new();
    let mut push = |key: &str, value: String| metrics.push((key.to_string(), value));
    // (blank lines keep the closure definition's own `.push(` site
    // away from the first key literal, as in the real bench_smoke)

    push(&format!("{n}_tuples_scored"), report.tuples_scored().to_string());
    push(&format!("{n}_candidates_visited"), report.candidates_visited().to_string());
    push(&format!("{n}_index_probes"), report.index_probes().to_string());
    push(&format!("{n}_items_scanned"), report.items_scanned().to_string());
    push(&format!("{n}_buckets_rtree"), report.buckets_rtree().to_string());
    push(&format!("{n}_buckets_sweep"), report.buckets_sweep().to_string());
    push(&format!("{n}_probe_chunks"), report.probe_chunks().to_string());

    push("topbuckets_candidates", report.topbuckets.candidates.to_string());
    // DRIFT: push("topbuckets_selected", ..) is missing here.
    push("topbuckets_solver_calls", report.topbuckets.solver_calls.to_string());
    push("topbuckets_pruned_local", report.topbuckets.pruned_local.to_string());
    push("topbuckets_pruned_merge", report.topbuckets.pruned_merge.to_string());

    push("dtb_assignments_scored", report.distribution.assignments_scored.to_string());
    push("dtb_cap_fallbacks", report.distribution.cap_fallbacks.to_string());
    push("dtb_shuffle_records", report.distribution.estimated_shuffle_records.to_string());
    push("dtb_replication_factor", format!("{:.6}", report.distribution.replication_factor));
    push("dtb_result_imbalance", format!("{:.6}", report.distribution.result_imbalance));
}
