//! Registry-drift fixture: a miniature copy of the four counter
//! surfaces' *shape* (never compiled — only parsed by the registry
//! cross-checker). The drift planted in this mini-workspace lives in
//! `crates/bench/src/bin/bench_smoke.rs`, which forgot to emit
//! `topbuckets_selected`.

pub struct LocalJoinStats {
    pub combos_assigned: usize,
    pub combos_processed: usize,
    pub tuples_scored: u64,
    pub candidates_visited: u64,
    pub index_probes: u64,
    pub items_scanned: u64,
    pub buckets_rtree: u64,
    pub buckets_sweep: u64,
    pub probe_chunks: u64,
    pub intra_threads_used: u64,
    pub kth_score: f64,
}

pub struct TopBucketsStats {
    pub candidates: usize,
    pub selected: usize,
    pub solver_calls: usize,
    pub pruned_local: usize,
    pub pruned_merge: usize,
    pub worker_groups: usize,
    pub total_results: u128,
    pub selected_results: u128,
    pub duration: Duration,
}

pub struct DistributionSummary {
    pub policy: DistributionPolicy,
    pub duration: Duration,
    pub replication_factor: f64,
    pub estimated_shuffle_records: u64,
    pub result_imbalance: f64,
    pub assignments_scored: u64,
    pub cap_fallbacks: u64,
}

impl ExecutionReport {
    pub fn tuples_scored(&self) -> u64 {
        self.local_stats.iter().map(|s| s.tuples_scored).sum()
    }

    pub fn candidates_visited(&self) -> u64 {
        self.local_stats.iter().map(|s| s.candidates_visited).sum()
    }

    pub fn index_probes(&self) -> u64 {
        self.local_stats.iter().map(|s| s.index_probes).sum()
    }

    pub fn items_scanned(&self) -> u64 {
        self.local_stats.iter().map(|s| s.items_scanned).sum()
    }

    pub fn buckets_rtree(&self) -> u64 {
        self.local_stats.iter().map(|s| s.buckets_rtree).sum()
    }

    pub fn buckets_sweep(&self) -> u64 {
        self.local_stats.iter().map(|s| s.buckets_sweep).sum()
    }

    pub fn probe_chunks(&self) -> u64 {
        self.local_stats.iter().map(|s| s.probe_chunks).sum()
    }

    pub fn intra_threads_used(&self) -> u64 {
        self.local_stats.iter().map(|s| s.intra_threads_used).max().unwrap_or(0)
    }
}
