//! Registry-drift fixture: the fingerprint surface (parsed, never
//! compiled). Captures every non-timing stats field plus the wholesale
//! per-reducer `local_stats`, exactly like the real battery — this
//! surface is drift-free; the planted drift is bench-side.

struct Fingerprint {
    results: Vec<(u64, u64)>,
    topbuckets: (usize, usize, usize, usize, usize, usize, u128, u128),
    distribution: (f64, u64, f64, u64, u64),
    local_stats: Vec<LocalJoinStats>,
}

fn fingerprint(report: &ExecutionReport) -> Fingerprint {
    Fingerprint {
        results: report.results.iter().map(|m| (m.score.to_bits(), m.ids[0])).collect(),
        topbuckets: (
            report.topbuckets.candidates,
            report.topbuckets.selected,
            report.topbuckets.solver_calls,
            report.topbuckets.pruned_local,
            report.topbuckets.pruned_merge,
            report.topbuckets.worker_groups,
            report.topbuckets.total_results,
            report.topbuckets.selected_results,
        ),
        distribution: (
            report.distribution.replication_factor,
            report.distribution.estimated_shuffle_records,
            report.distribution.result_imbalance,
            report.distribution.assignments_scored,
            report.distribution.cap_fallbacks,
        ),
        local_stats: report.local_stats.clone(),
    }
}
