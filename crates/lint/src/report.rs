//! Findings and their human/JSON renderings.

use std::fmt;
use std::path::PathBuf;

/// One lint or registry finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is anchored to (workspace-relative when the
    /// check ran over a workspace root).
    pub file: PathBuf,
    /// 1-based line, or 0 for file/registry-level findings.
    pub line: usize,
    /// Rule code (`DET001`..`DET005`, `SUP001`, `REG1xx`).
    pub code: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.code, self.message)
    }
}

/// Renders findings as a JSON array of `{file, line, code, message}`
/// objects — the machine-readable contract of `check --json`, consumed
/// by CI annotation steps without parsing human text.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"file\": {}, \"line\": {}, \"code\": {}, \"message\": {}}}{}\n",
            json_str(&f.file.display().to_string()),
            f.line,
            json_str(f.code),
            json_str(&f.message),
            comma
        ));
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = Finding {
            file: PathBuf::from("a\"b.rs"),
            line: 3,
            code: "DET001",
            message: "line1\nline2".into(),
        };
        let j = render_json(std::slice::from_ref(&f));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
