//! Layer 2: the counter-registry cross-check.
//!
//! The workspace's deterministic work counters live in four places that
//! must stay in lock-step:
//!
//! 1. the **struct field lists** of `LocalJoinStats`, `TopBucketsStats`
//!    and `DistributionSummary`, plus the `u64` aggregate accessors of
//!    `ExecutionReport`, all in `crates/core/src`;
//! 2. the **JSON keys emitted by the bench harnesses**
//!    (`crates/bench/src/bin/bench_smoke.rs` and, when the serving
//!    layer exists, `crates/bench/src/bin/bench_serving.rs`);
//! 3. the **gated keys** in `BENCH_BASELINE.json`;
//! 4. the **fingerprint structs** of the determinism batteries
//!    (`tests/thread_determinism.rs`,
//!    `tests/intra_parallel_determinism.rs` and, with the serving
//!    layer, `tests/serving_determinism.rs`).
//!
//! The serving layer (`ServingStats`, `bench_serving`, the serving
//! battery) is an *optional fifth surface*: a workspace without any of
//! it (the registry-drift mini-fixture) skips those checks entirely,
//! but as soon as one piece exists all three are required and
//! cross-checked (REG110).
//!
//! The out-of-core shuffle (`ShuffleStats` in `crates/mapreduce/src`,
//! `bench_smoke`'s spill leg, the spill-forced battery
//! `tests/shuffle_spill_determinism.rs`) is an *optional sixth surface*
//! under the same all-or-nothing contract: once the struct or the
//! battery exists, every `ShuffleStats` counter must be emitted as a
//! gated `shuffle_<field>` key and read (`.shuffle.<field>`) into every
//! determinism fingerprint, the spill battery included (REG111).
//!
//! "Added a counter but forgot to gate or fingerprint it" used to be a
//! reviewer catch; this module makes it a CI failure: any counter that
//! exists in one place but not the others is reported, modulo the
//! explicit per-sink exclusion lists below (timing fields, execution
//! -shape fields like `intra_threads_used`, derived magnitudes).

use crate::lexer::{scrub, word_positions, Scrubbed};
use crate::report::Finding;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// `TopBucketsStats` fields that are deliberately *not* emitted/gated
/// by `bench_smoke` (they are still fingerprinted): `worker_groups` is
/// an execution-shape record of the candidate partitioning,
/// `total_results`/`selected_results` are `u128` magnitudes whose gated
/// derivative is the pruning counters, `duration` is timing.
const TOPBUCKETS_BENCH_EXCLUDED: [&str; 4] =
    ["worker_groups", "total_results", "selected_results", "duration"];

/// `TopBucketsStats` fields excluded from the fingerprint check:
/// timing only.
const TOPBUCKETS_FP_EXCLUDED: [&str; 1] = ["duration"];

/// `DistributionSummary` fields that are configuration echo or timing,
/// not counters.
const DISTRIBUTION_EXCLUDED: [&str; 2] = ["policy", "duration"];

/// `bench_smoke` emits `estimated_shuffle_records` under a shorter
/// key; the registry maps struct field → emitted `dtb_*` suffix.
const DISTRIBUTION_KEY_ALIASES: [(&str, &str); 1] =
    [("estimated_shuffle_records", "shuffle_records")];

/// `LocalJoinStats` fields with no per-backend `bench_smoke` key and no
/// `ExecutionReport` aggregate: `combos_*` are per-reducer scheduling
/// detail, `kth_score` surfaces as `reducer_kth_scores`/
/// `min_kth_score`, `intra_threads_used` is the execution-shape record
/// (emitted only as the `hot_intra_threads_used` probe). All of them
/// are still covered by the fingerprints' wholesale `local_stats`
/// clone.
const LOCALJOIN_BENCH_EXCLUDED: [&str; 4] =
    ["combos_assigned", "combos_processed", "kth_score", "intra_threads_used"];

/// Everything the four surfaces declare, parsed.
#[derive(Debug, Default)]
pub struct Registry {
    pub localjoin_fields: Vec<String>,
    pub topbuckets_fields: Vec<String>,
    pub distribution_fields: Vec<String>,
    /// `pub fn name(&self) -> u64` accessors of `ExecutionReport`.
    pub report_accessors: Vec<String>,
    /// Literal keys `bench_smoke` pushes (e.g. `topbuckets_candidates`).
    pub bench_literal_keys: Vec<String>,
    /// Per-backend key suffixes (`push(&format!("{n}_<suffix>"), ..)`).
    pub bench_backend_suffixes: Vec<String>,
    /// Keys gated in `BENCH_BASELINE.json`'s `metrics` object.
    pub baseline_keys: Vec<String>,
    /// `ServingStats` fields — empty when the workspace has no serving
    /// layer (the optional fifth surface).
    pub serving_fields: Vec<String>,
    /// Literal keys `bench_serving` pushes (e.g. `serving_qps`).
    pub serving_literal_keys: Vec<String>,
    /// Scrubbed code lines of the serving determinism battery, used to
    /// verify every `ServingStats` field is asserted there (the
    /// serving half of REG110).
    pub serving_battery_code: Vec<String>,
    /// `ShuffleStats` fields — empty when the workspace has no
    /// out-of-core shuffle (the optional sixth surface).
    pub shuffle_fields: Vec<String>,
    /// The spill battery's fingerprint reads — `None` without the
    /// shuffle surface. Kept out of [`Registry::fingerprints`] because
    /// the spill battery deliberately fingerprints only the spill and
    /// work-counter lanes, not TopBuckets/distribution telemetry.
    pub shuffle_battery_fp: Option<FingerprintUse>,
    /// Per fingerprint file: fields read as `.topbuckets.<f>` /
    /// `.distribution.<f>` / `.shuffle.<f>`, whether `local_stats` is
    /// captured, and the report accessors called.
    pub fingerprints: Vec<FingerprintUse>,
}

#[derive(Debug, Default)]
pub struct FingerprintUse {
    pub file: PathBuf,
    pub topbuckets_fields: BTreeSet<String>,
    pub distribution_fields: BTreeSet<String>,
    pub shuffle_fields: BTreeSet<String>,
    pub captures_local_stats: bool,
}

/// Where the four surfaces live under a workspace root. Separated from
/// the parsing so tests can point the checker at fixture copies.
#[derive(Debug, Clone)]
pub struct RegistryPaths {
    pub core_src_dir: PathBuf,
    pub bench_smoke: PathBuf,
    /// The serving-throughput harness — part of the optional serving
    /// surface; may be absent (the mini-fixture has no serving layer).
    pub bench_serving: PathBuf,
    pub baseline: PathBuf,
    pub fingerprint_tests: Vec<PathBuf>,
    /// The serving determinism battery — required exactly when the
    /// serving surface exists; parsed as a fingerprint file.
    pub serving_battery: PathBuf,
    /// The mapreduce crate's sources, where `ShuffleStats` lives —
    /// part of the optional out-of-core shuffle surface; the directory
    /// may be absent (the mini-fixture has no mapreduce crate).
    pub mapreduce_src_dir: PathBuf,
    /// The spill-forced shuffle determinism battery — required exactly
    /// when the shuffle surface exists; parsed for its `.shuffle.`
    /// fingerprint reads.
    pub shuffle_battery: PathBuf,
}

impl RegistryPaths {
    /// The live workspace layout, relative to `root`.
    pub fn for_workspace(root: &Path) -> Self {
        RegistryPaths {
            core_src_dir: root.join("crates/core/src"),
            bench_smoke: root.join("crates/bench/src/bin/bench_smoke.rs"),
            bench_serving: root.join("crates/bench/src/bin/bench_serving.rs"),
            baseline: root.join("BENCH_BASELINE.json"),
            fingerprint_tests: vec![
                root.join("tests/thread_determinism.rs"),
                root.join("tests/intra_parallel_determinism.rs"),
            ],
            serving_battery: root.join("tests/serving_determinism.rs"),
            mapreduce_src_dir: root.join("crates/mapreduce/src"),
            shuffle_battery: root.join("tests/shuffle_spill_determinism.rs"),
        }
    }
}

/// Runs the full cross-check; findings are registry drifts (`REG1xx`)
/// or parse failures (`REG001`).
pub fn check_registry(paths: &RegistryPaths) -> Vec<Finding> {
    let mut findings = Vec::new();
    let reg = match parse_registry(paths, &mut findings) {
        Some(reg) => reg,
        None => return findings,
    };
    cross_check(&reg, paths, &mut findings);
    findings
}

fn reg_fail(findings: &mut Vec<Finding>, file: &Path, message: String) {
    findings.push(Finding { file: file.to_path_buf(), line: 0, code: "REG001", message });
}

fn parse_registry(paths: &RegistryPaths, findings: &mut Vec<Finding>) -> Option<Registry> {
    let mut reg = Registry::default();

    // --- 1. struct fields + accessors from crates/core/src -----------
    let mut core_files: Vec<PathBuf> = std::fs::read_dir(&paths.core_src_dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    core_files.sort();
    for file in &core_files {
        let Ok(source) = std::fs::read_to_string(file) else { continue };
        let s = scrub(&source);
        if let Some(fields) = parse_struct_fields(&s, "LocalJoinStats") {
            reg.localjoin_fields = fields;
        }
        if let Some(fields) = parse_struct_fields(&s, "TopBucketsStats") {
            reg.topbuckets_fields = fields;
        }
        if let Some(fields) = parse_struct_fields(&s, "DistributionSummary") {
            reg.distribution_fields = fields;
        }
        if let Some(fields) = parse_struct_fields(&s, "ServingStats") {
            reg.serving_fields = fields;
        }
        let accessors = parse_u64_accessors(&s, "ExecutionReport");
        if !accessors.is_empty() {
            reg.report_accessors = accessors;
        }
    }
    for (what, got) in [
        ("LocalJoinStats", &reg.localjoin_fields),
        ("TopBucketsStats", &reg.topbuckets_fields),
        ("DistributionSummary", &reg.distribution_fields),
        ("ExecutionReport u64 accessors", &reg.report_accessors),
    ] {
        if got.is_empty() {
            reg_fail(
                findings,
                &paths.core_src_dir,
                format!("could not parse {what} from any file in this directory"),
            );
        }
    }

    // --- 2. bench_smoke emission -------------------------------------
    match std::fs::read_to_string(&paths.bench_smoke) {
        Ok(source) => {
            let s = scrub(&source);
            let (literal, suffixes) = parse_bench_keys(&s);
            reg.bench_literal_keys = literal;
            reg.bench_backend_suffixes = suffixes;
            if reg.bench_literal_keys.is_empty() && reg.bench_backend_suffixes.is_empty() {
                reg_fail(
                    findings,
                    &paths.bench_smoke,
                    "no `push(\"<key>\", ..)` emission calls found".into(),
                );
            }
        }
        Err(e) => reg_fail(findings, &paths.bench_smoke, format!("cannot read: {e}")),
    }

    // --- 3. baseline keys --------------------------------------------
    match std::fs::read_to_string(&paths.baseline) {
        Ok(source) => {
            reg.baseline_keys = parse_baseline_metric_keys(&source);
            if reg.baseline_keys.is_empty() {
                reg_fail(findings, &paths.baseline, "no keys under \"metrics\" found".into());
            }
        }
        Err(e) => reg_fail(findings, &paths.baseline, format!("cannot read: {e}")),
    }

    // --- 4. fingerprint tests ----------------------------------------
    for file in &paths.fingerprint_tests {
        match std::fs::read_to_string(file) {
            Ok(source) => reg.fingerprints.push(parse_fingerprint_use(file, &scrub(&source))),
            Err(e) => reg_fail(findings, file, format!("cannot read: {e}")),
        }
    }

    // --- 5. the serving surface (optional, all-or-nothing) -----------
    // A workspace without a serving layer has neither a `ServingStats`
    // struct nor a `bench_serving` harness and skips every serving
    // check. As soon as either exists, all three serving surfaces
    // (struct, harness, determinism battery) are required.
    if !reg.serving_fields.is_empty() || paths.bench_serving.exists() {
        if reg.serving_fields.is_empty() {
            reg_fail(
                findings,
                &paths.core_src_dir,
                "a bench_serving harness exists but no ServingStats struct parses from any \
                 file in this directory"
                    .into(),
            );
        }
        match std::fs::read_to_string(&paths.bench_serving) {
            Ok(source) => {
                let (literal, _) = parse_bench_keys(&scrub(&source));
                reg.serving_literal_keys = literal;
                if reg.serving_literal_keys.is_empty() {
                    reg_fail(
                        findings,
                        &paths.bench_serving,
                        "no `push(\"<key>\", ..)` emission calls found".into(),
                    );
                }
            }
            Err(e) => reg_fail(findings, &paths.bench_serving, format!("cannot read: {e}")),
        }
        match std::fs::read_to_string(&paths.serving_battery) {
            Ok(source) => {
                let s = scrub(&source);
                reg.serving_battery_code = s.code_lines.clone();
                reg.fingerprints.push(parse_fingerprint_use(&paths.serving_battery, &s));
            }
            Err(e) => reg_fail(findings, &paths.serving_battery, format!("cannot read: {e}")),
        }
    }

    // --- 6. the out-of-core shuffle surface (optional) ---------------
    // Same all-or-nothing contract as serving: a workspace without a
    // serialized shuffle has no `ShuffleStats` struct and no spill
    // battery and skips these checks; as soon as either exists, the
    // struct, the battery, the `shuffle_*` bench emission and the
    // `.shuffle.<field>` fingerprint reads are all required (REG111).
    if let Ok(entries) = std::fs::read_dir(&paths.mapreduce_src_dir) {
        let mut files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        files.sort();
        for file in &files {
            let Ok(source) = std::fs::read_to_string(file) else { continue };
            if let Some(fields) = parse_struct_fields(&scrub(&source), "ShuffleStats") {
                reg.shuffle_fields = fields;
            }
        }
    }
    if !reg.shuffle_fields.is_empty() || paths.shuffle_battery.exists() {
        if reg.shuffle_fields.is_empty() {
            reg_fail(
                findings,
                &paths.mapreduce_src_dir,
                "a spill determinism battery exists but no ShuffleStats struct parses from any \
                 file in this directory"
                    .into(),
            );
        }
        match std::fs::read_to_string(&paths.shuffle_battery) {
            Ok(source) => {
                reg.shuffle_battery_fp =
                    Some(parse_fingerprint_use(&paths.shuffle_battery, &scrub(&source)));
            }
            Err(e) => reg_fail(findings, &paths.shuffle_battery, format!("cannot read: {e}")),
        }
    }

    if findings.is_empty() {
        Some(reg)
    } else {
        None
    }
}

/// Parses one determinism battery's fingerprint reads.
fn parse_fingerprint_use(file: &Path, s: &Scrubbed) -> FingerprintUse {
    FingerprintUse {
        file: file.to_path_buf(),
        topbuckets_fields: parse_member_reads(s, "topbuckets"),
        distribution_fields: parse_member_reads(s, "distribution"),
        shuffle_fields: parse_member_reads(s, "shuffle"),
        captures_local_stats: s
            .code_lines
            .iter()
            .any(|l| word_positions(l, "local_stats").next().is_some()),
    }
}

fn cross_check(reg: &Registry, paths: &RegistryPaths, findings: &mut Vec<Finding>) {
    let mut drift = |file: &Path, code: &'static str, message: String| {
        findings.push(Finding { file: file.to_path_buf(), line: 0, code, message });
    };

    // REG101/REG102: bench emission ↔ baseline gate, both directions.
    // Both harnesses feed the same gate (CI concatenates their reports
    // into one bench_check input), so their non-timing keys form one
    // emitted set. `*_ms` keys are artifact-only by contract and never
    // gated.
    let mut emitted: BTreeSet<String> =
        reg.bench_literal_keys.iter().filter(|k| !k.ends_with("_ms")).cloned().collect();
    for suffix in &reg.bench_backend_suffixes {
        if suffix.ends_with("_ms") {
            continue;
        }
        // The gated configuration runs all three backends.
        for backend in ["rtree", "sweep", "auto"] {
            emitted.insert(format!("{backend}_{suffix}"));
        }
    }
    emitted.extend(reg.serving_literal_keys.iter().filter(|k| !k.ends_with("_ms")).cloned());
    for key in &emitted {
        if !reg.baseline_keys.contains(key) {
            drift(
                &paths.baseline,
                "REG101",
                format!(
                    "a bench harness emits `{key}` but BENCH_BASELINE.json does not gate it — \
                     add it to the baseline (or emit it as an `*_ms` artifact if it is timing)"
                ),
            );
        }
    }
    for key in &reg.baseline_keys {
        if !emitted.contains(key) {
            let harness =
                if key.starts_with("serving_") { &paths.bench_serving } else { &paths.bench_smoke };
            drift(
                harness,
                "REG102",
                format!(
                    "BENCH_BASELINE.json gates `{key}` but no bench harness emits it — \
                     the gate would compare against nothing"
                ),
            );
        }
    }

    // REG103/REG104: TopBucketsStats fields → bench keys + fingerprints.
    for field in &reg.topbuckets_fields {
        if !TOPBUCKETS_BENCH_EXCLUDED.contains(&field.as_str())
            && !reg.bench_literal_keys.contains(&format!("topbuckets_{field}"))
        {
            drift(
                &paths.bench_smoke,
                "REG103",
                format!(
                    "TopBucketsStats field `{field}` has no `topbuckets_{field}` emission in \
                     bench_smoke — emit and gate it, or add it to the registry exclusion list \
                     with a rationale"
                ),
            );
        }
        if !TOPBUCKETS_FP_EXCLUDED.contains(&field.as_str()) {
            for fp in &reg.fingerprints {
                if !fp.topbuckets_fields.contains(field) {
                    drift(
                        &fp.file,
                        "REG104",
                        format!(
                            "TopBucketsStats field `{field}` is not read into this file's \
                             determinism fingerprint — a drift in it would go unnoticed"
                        ),
                    );
                }
            }
        }
    }

    // REG105/REG106: DistributionSummary fields.
    for field in &reg.distribution_fields {
        if DISTRIBUTION_EXCLUDED.contains(&field.as_str()) {
            continue;
        }
        let alias = DISTRIBUTION_KEY_ALIASES
            .iter()
            .find(|(f, _)| f == field)
            .map(|(_, a)| *a)
            .unwrap_or(field);
        if !reg.bench_literal_keys.contains(&format!("dtb_{alias}")) {
            drift(
                &paths.bench_smoke,
                "REG105",
                format!(
                    "DistributionSummary field `{field}` has no `dtb_{alias}` emission in \
                     bench_smoke — emit and gate it, or exclude it with a rationale"
                ),
            );
        }
        for fp in &reg.fingerprints {
            if !fp.distribution_fields.contains(field) {
                drift(
                    &fp.file,
                    "REG106",
                    format!(
                        "DistributionSummary field `{field}` is not read into this file's \
                         determinism fingerprint"
                    ),
                );
            }
        }
    }

    // REG107: every LocalJoinStats counter must surface per backend in
    // bench_smoke (as a `{backend}_<field>` suffix) unless excluded.
    for field in &reg.localjoin_fields {
        if !LOCALJOIN_BENCH_EXCLUDED.contains(&field.as_str())
            && !reg.bench_backend_suffixes.contains(field)
        {
            drift(
                &paths.bench_smoke,
                "REG107",
                format!(
                    "LocalJoinStats counter `{field}` has no per-backend `{{backend}}_{field}` \
                     emission in bench_smoke — emit and gate it, or exclude it with a rationale"
                ),
            );
        }
    }

    // REG108: ExecutionReport u64 aggregates must correspond to
    // LocalJoinStats fields (they sum per-reducer telemetry; an
    // accessor over a field the registry does not know about means the
    // two lists drifted apart).
    for acc in &reg.report_accessors {
        if !reg.localjoin_fields.contains(acc) {
            drift(
                &paths.core_src_dir,
                "REG108",
                format!(
                    "ExecutionReport::{acc}() aggregates no LocalJoinStats field of that name — \
                     counter accessors and the per-reducer field list drifted apart"
                ),
            );
        }
    }

    // REG109: the fingerprints must capture per-reducer telemetry
    // wholesale — that is what makes every LocalJoinStats field
    // (current and future) drift-checked by construction.
    for fp in &reg.fingerprints {
        if !fp.captures_local_stats {
            drift(
                &fp.file,
                "REG109",
                format!(
                    "this determinism fingerprint does not capture `local_stats` — per-reducer \
                     counters ({}, ...) would not be drift-checked",
                    reg.localjoin_fields.first().map(String::as_str).unwrap_or("?")
                ),
            );
        }
    }

    // REG110: every serving counter must surface as a gated
    // `serving_<field>` key in bench_serving AND be asserted by the
    // serving determinism battery (its stats checks are what make the
    // exact gate trustworthy). A no-op when the workspace has no
    // serving layer (`serving_fields` is empty).
    for field in &reg.serving_fields {
        let key = format!("serving_{field}");
        if !reg.serving_literal_keys.contains(&key) {
            drift(
                &paths.bench_serving,
                "REG110",
                format!(
                    "ServingStats counter `{field}` has no `{key}` emission in bench_serving — \
                     emit and gate it, or exclude it with a rationale"
                ),
            );
        }
        if !reg.serving_battery_code.iter().any(|line| word_positions(line, field).next().is_some())
        {
            drift(
                &paths.serving_battery,
                "REG110",
                format!(
                    "ServingStats counter `{field}` is never asserted by the serving determinism \
                     battery — a drift in it would go unnoticed"
                ),
            );
        }
    }

    // REG111: every ShuffleStats spill counter must surface as a gated
    // `shuffle_<field>` literal key in bench_smoke's spill leg AND be
    // read (`.shuffle.<field>`) into every determinism fingerprint,
    // the spill battery included — the batteries' threshold × thread
    // grids are what prove these counters deterministic enough for the
    // exact gate. A no-op when the workspace has no out-of-core
    // shuffle surface (`shuffle_fields` is empty).
    for field in &reg.shuffle_fields {
        let key = format!("shuffle_{field}");
        if !reg.bench_literal_keys.contains(&key) {
            drift(
                &paths.bench_smoke,
                "REG111",
                format!(
                    "ShuffleStats counter `{field}` has no `{key}` emission in bench_smoke's \
                     spill leg — emit and gate it, or exclude it with a rationale"
                ),
            );
        }
        for fp in reg.fingerprints.iter().chain(reg.shuffle_battery_fp.as_ref()) {
            if !fp.shuffle_fields.contains(field) {
                drift(
                    &fp.file,
                    "REG111",
                    format!(
                        "ShuffleStats counter `{field}` is not read (`.shuffle.{field}`) into \
                         this file's determinism fingerprint — a spill-accounting drift would \
                         go unnoticed"
                    ),
                );
            }
        }
    }
}

/// Parses `pub struct <name> { pub field: Ty, ... }` field names from a
/// scrubbed file. Returns `None` when the struct is not in this file.
fn parse_struct_fields(s: &Scrubbed, name: &str) -> Option<Vec<String>> {
    let pat = format!("struct {name}");
    let start = s
        .code_lines
        .iter()
        .position(|l| word_positions(l, &pat).next().is_some() && l.contains('{'))?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for line in &s.code_lines[start..] {
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        // Field pattern at struct depth: `pub <ident>:` — attributes
        // and nested braces (none in these plain structs) aside.
        if depth == 1 || (depth == 0 && line.contains('}')) {
            if let Some(field) = field_name_of(line) {
                fields.push(field);
            }
        }
        if depth <= 0 {
            return Some(fields);
        }
    }
    Some(fields)
}

fn field_name_of(code_line: &str) -> Option<String> {
    let t = code_line.trim_start();
    let rest = t.strip_prefix("pub ")?;
    let ident: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    let after = &rest[ident.len()..];
    (!ident.is_empty() && after.trim_start().starts_with(':')).then_some(ident)
}

/// Parses `pub fn <name>(&self) -> u64` within `impl <name> {`.
fn parse_u64_accessors(s: &Scrubbed, impl_name: &str) -> Vec<String> {
    let pat = format!("impl {impl_name}");
    let Some(start) = s.code_lines.iter().position(|l| word_positions(l, &pat).next().is_some())
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut entered = false;
    for line in &s.code_lines[start..] {
        if depth == 1 {
            if let Some(rest) = line.trim_start().strip_prefix("pub fn ") {
                let ident: String =
                    rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                let after = &rest[ident.len()..];
                if after.contains("(&self)") && after.contains("-> u64") {
                    out.push(ident);
                }
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            break;
        }
    }
    out
}

/// Collects `push("<key>", ..)` literal keys and
/// `push(&format!("{n}_<suffix>"), ..)` per-backend suffixes: for each
/// `push(` site in the code channel, the next string literal at or
/// after it is the key expression.
fn parse_bench_keys(s: &Scrubbed) -> (Vec<String>, Vec<String>) {
    let mut literal = Vec::new();
    let mut suffixes = Vec::new();
    let mut push_sites: Vec<(usize, usize)> = Vec::new();
    for (idx, line) in s.code_lines.iter().enumerate() {
        for col in word_positions(line, "push") {
            let after = line[col + "push".len()..].trim_start();
            if after.starts_with('(') {
                push_sites.push((idx + 1, col));
            }
        }
    }
    for (line, col) in push_sites {
        // The key literal must sit on the call line or within the next
        // two (the `&format!(..)` form wraps); a `push(` with no nearby
        // literal is some other container's push, not an emission.
        let Some(lit) = s
            .strings
            .iter()
            .find(|l| (l.line > line || (l.line == line && l.col > col)) && l.line <= line + 2)
        else {
            continue;
        };
        match lit.content.strip_prefix("{n}_") {
            Some(suffix) => suffixes.push(suffix.to_string()),
            None => literal.push(lit.content.clone()),
        }
    }
    (literal, suffixes)
}

/// Keys of the `"metrics": { ... }` object in the baseline JSON.
fn parse_baseline_metric_keys(source: &str) -> Vec<String> {
    let Some(pos) = source.find("\"metrics\"") else { return Vec::new() };
    let Some(open_rel) = source[pos..].find('{') else { return Vec::new() };
    let body = &source[pos + open_rel + 1..];
    let end = body.find('}').unwrap_or(body.len());
    let mut keys = Vec::new();
    for line in body[..end].lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some(close) = rest.find('"') {
                if rest[close + 1..].trim_start().starts_with(':') {
                    keys.push(rest[..close].to_string());
                }
            }
        }
    }
    keys
}

/// Fields read as `.<member>.<field>` (e.g. `report.topbuckets.candidates`).
fn parse_member_reads(s: &Scrubbed, member: &str) -> BTreeSet<String> {
    let pat = format!(".{member}.");
    let mut out = BTreeSet::new();
    for line in &s.code_lines {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find(&pat) {
            let after = &rest[pos + pat.len()..];
            let ident: String =
                after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if !ident.is_empty() {
                out.insert(ident);
            }
            rest = after;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_field_parse() {
        let src =
            "/// Doc.\npub struct TopBucketsStats {\n    /// A counter.\n    pub candidates: \
                   usize,\n    pub duration: Duration,\n}\n";
        let fields = parse_struct_fields(&scrub(src), "TopBucketsStats").unwrap();
        assert_eq!(fields, vec!["candidates", "duration"]);
    }

    #[test]
    fn bench_key_parse() {
        let src = "push(\"topbuckets_candidates\", x);\npush(\n    &format!(\"{n}_index_probes\"),\
                   \n    y,\n);\n";
        let (lit, suf) = parse_bench_keys(&scrub(src));
        assert_eq!(lit, vec!["topbuckets_candidates"]);
        assert_eq!(suf, vec!["index_probes"]);
    }

    #[test]
    fn baseline_key_parse() {
        let src = "{\n  \"comment\": \"x\",\n  \"metrics\": {\n    \"a_b\": 1,\n    \"c\": 2.0\n  \
                   }\n}\n";
        assert_eq!(parse_baseline_metric_keys(src), vec!["a_b", "c"]);
    }

    #[test]
    fn member_read_parse() {
        let src = "let x = report.topbuckets.candidates;\nlet y = (r.topbuckets.selected, \
                   r.topbuckets.solver_calls);\n";
        let got = parse_member_reads(&scrub(src), "topbuckets");
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            vec!["candidates", "selected", "solver_calls"]
        );
    }
}
