//! `tkij-lint` — the workspace determinism lint pass and
//! counter-registry cross-checker.
//!
//! Layer 1 ([`rules`]) statically enforces the determinism conventions
//! every TKIJ guarantee rests on (`DET001`–`DET005`: no hash-ordered
//! containers in counter paths, no wall-clock reads outside timing
//! artifacts, no thread-identity branching, no OS-entropy RNG seeding,
//! ordering rationales on join/counter atomics), with a
//! mandatory-reason suppression syntax
//! (`// tkij-lint: allow(DET00x) -- <why>`).
//!
//! Layer 2 ([`registry`]) cross-checks the counter registry: the stats
//! struct field lists in `tkij_core`, the keys `bench_smoke` emits, the
//! keys `BENCH_BASELINE.json` gates, and the fields the determinism
//! fingerprints capture must agree, modulo explicit exclusion lists.
//!
//! Run as `cargo run -p tkij-lint -- check` (alias: `cargo lint-det`);
//! both layers are wired into CI.

pub mod lexer;
pub mod registry;
pub mod report;
pub mod rules;

pub use report::Finding;

use std::path::{Path, PathBuf};

/// Directories scanned inside the workspace root and inside each
/// `crates/*` member.
const SCANNED_DIRS: [&str; 4] = ["src", "tests", "examples", "benches"];

/// Collects every lintable `.rs` file: the facade's own source dirs
/// plus each `crates/*` member's, skipping `vendor/` (offline dep
/// stand-ins mirror external APIs, not our determinism surface) and
/// the lint crate's `fixtures/` (deliberately bad code).
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in SCANNED_DIRS {
        collect_rs(&root.join(dir), &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates_dir)?.flatten().map(|e| e.path()).collect();
        members.sort();
        for member in members.iter().filter(|m| m.is_dir()) {
            for dir in SCANNED_DIRS {
                collect_rs(&member.join(dir), &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace member a path belongs to: the segment after `crates/`
/// (`"core"`, `"bench"`, ...), or `"root"` for the facade's own
/// `src/`/`tests/`/`examples/`.
pub fn crate_of(path: &Path) -> &str {
    let mut components = path.components();
    while let Some(c) = components.next() {
        if c.as_os_str() == "crates" {
            if let Some(member) = components.next() {
                return member.as_os_str().to_str().unwrap_or("root");
            }
        }
    }
    "root"
}

/// Runs the Layer-1 rules over the whole workspace.
pub fn check_rules(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_workspace_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)?;
        for mut f in rules::lint_file(&rel, crate_of(&rel), &source) {
            f.file = rel.clone();
            findings.push(f);
        }
    }
    Ok(findings)
}

/// Runs the Layer-2 counter-registry cross-check, reporting files
/// workspace-relative.
pub fn check_registry_at(root: &Path) -> Vec<Finding> {
    let mut findings = registry::check_registry(&registry::RegistryPaths::for_workspace(root));
    for f in &mut findings {
        if let Ok(rel) = f.file.strip_prefix(root) {
            f.file = rel.to_path_buf();
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_resolves_members_and_root() {
        assert_eq!(crate_of(Path::new("crates/core/src/localjoin.rs")), "core");
        assert_eq!(crate_of(Path::new("crates/bench/benches/f.rs")), "bench");
        assert_eq!(crate_of(Path::new("tests/pipeline.rs")), "root");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "root");
    }
}
