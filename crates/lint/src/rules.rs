//! Layer 1: the determinism lint rules (`DET001`–`DET005`) and the
//! mandatory-reason suppression convention.
//!
//! Every guarantee this repository sells — bit-identical results and
//! work counters across thread counts, backends, and scan kinds — dies
//! the moment a hash-ordered container, a wall-clock read, a thread-id
//! branch, or an OS-seeded RNG slips into a result- or counter-bearing
//! path. These rules turn those failure classes into CI findings
//! *before* a test battery has to catch them flaking.
//!
//! Suppression: `// tkij-lint: allow(DET00x) -- <why>` on the flagged
//! line or the line directly above. The reason is mandatory; a
//! suppression without one is itself a finding (`SUP001`) and does not
//! suppress anything.

use crate::lexer::{scrub, word_positions, Scrubbed};
use crate::report::Finding;
use std::path::Path;

/// Crates whose results or work counters feed the determinism
/// contract: `DET001` (hash-ordered containers) applies here.
pub const COUNTER_BEARING_CRATES: [&str; 5] = ["core", "index", "mapreduce", "temporal", "solver"];

/// Crates whose *job* is timing: `DET002` (wall-clock reads) does not
/// apply. Everywhere else a clock read needs a justified suppression
/// naming the `*_ms`/`duration` artifact field it feeds.
pub const TIMING_EXEMPT_CRATES: [&str; 2] = ["bench", "lint"];

/// Crates holding join/counter code: `DET005` (atomics must carry an
/// ordering rationale) applies here.
pub const ATOMIC_RATIONALE_CRATES: [&str; 2] = ["core", "mapreduce"];

/// How many lines above an atomic-ordering use a rationale comment may
/// sit (doc comments of the enclosing fn routinely carry it).
const DET005_LOOKBACK_LINES: usize = 15;

/// The five determinism rule codes, in order.
pub const DET_CODES: [&str; 5] = ["DET001", "DET002", "DET003", "DET004", "DET005"];

/// One parsed suppression comment.
struct Suppression {
    /// 1-based line the comment sits on.
    line: usize,
    code: String,
    /// `false` when the mandatory `-- <why>` part is missing/empty.
    has_reason: bool,
}

/// Lints one file's source. `crate_name` is the workspace member the
/// file belongs to (`"core"`, `"bench"`, ... or `"root"` for the
/// facade's own `src/`/`tests/`/`examples/`).
pub fn lint_file(path: &Path, crate_name: &str, source: &str) -> Vec<Finding> {
    let s = scrub(source);
    let suppressions = parse_suppressions(&s);
    let mut findings = Vec::new();

    let mut emit = |line: usize, code: &'static str, message: String| {
        // A well-formed suppression on the flagged line or the line
        // directly above silences the finding.
        if suppressions
            .iter()
            .any(|s| s.code == code && s.has_reason && (s.line == line || s.line + 1 == line))
        {
            return;
        }
        findings.push(Finding { file: path.to_path_buf(), line, code, message });
    };

    for (idx, code_line) in s.code_lines.iter().enumerate() {
        let line = idx + 1;
        if COUNTER_BEARING_CRATES.contains(&crate_name) {
            for word in ["HashMap", "HashSet"] {
                if word_positions(code_line, word).next().is_some() {
                    emit(
                        line,
                        "DET001",
                        format!(
                            "`{word}` in counter-bearing crate `{crate_name}`: hash iteration \
                             order is seeded per process and can leak into results or work \
                             counters — use `BTree{}` or a sorted structure",
                            &word[4..]
                        ),
                    );
                }
            }
        }
        if !TIMING_EXEMPT_CRATES.contains(&crate_name) {
            for pat in ["Instant::now", "SystemTime"] {
                if word_positions(code_line, pat).next().is_some() {
                    emit(
                        line,
                        "DET002",
                        format!(
                            "wall-clock read (`{pat}`) outside the bench crate: clocks may only \
                             feed `*_ms`/`duration` artifact fields, never a result or counter — \
                             suppress with the artifact path as the reason if this is one"
                        ),
                    );
                }
            }
        }
        for pat in ["thread::current", "ThreadId"] {
            if word_positions(code_line, pat).next().is_some() {
                emit(
                    line,
                    "DET003",
                    format!(
                        "thread-identity read (`{pat}`): which thread executes a chunk must \
                         never influence results or counters — branch on data, not on thread ids"
                    ),
                );
            }
        }
        for pat in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
            if word_positions(code_line, pat).next().is_some() {
                emit(
                    line,
                    "DET004",
                    format!(
                        "OS-entropy randomness (`{pat}`): every RNG in this workspace must take \
                         an explicit seed so runs are reproducible"
                    ),
                );
            }
        }
        if ATOMIC_RATIONALE_CRATES.contains(&crate_name) && has_atomic_ordering(code_line) {
            let lo = idx.saturating_sub(DET005_LOOKBACK_LINES);
            let has_rationale = s.comment_lines[lo..=idx]
                .iter()
                .any(|c| c.to_ascii_lowercase().contains("ordering"));
            if !has_rationale {
                emit(
                    line,
                    "DET005",
                    format!(
                        "atomic memory-ordering use without a rationale comment: join/counter \
                         atomics must explain (within {DET005_LOOKBACK_LINES} lines) why the \
                         chosen ordering cannot affect results or counters (see \
                         `publish_bound` in tkij_core::localjoin for the convention)"
                    ),
                );
            }
        }
    }

    for sup in &suppressions {
        if !sup.has_reason {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: sup.line,
                code: "SUP001",
                message: format!(
                    "suppression of {} without a reason: write \
                     `// tkij-lint: allow({}) -- <why>` — reasonless suppressions are inert",
                    sup.code, sup.code
                ),
            });
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Whether a scrubbed code line uses an *atomic* memory ordering.
/// Matching the five atomic variants (not bare `Ordering`) keeps
/// `std::cmp::Ordering::Less` and friends out of scope.
fn has_atomic_ordering(code_line: &str) -> bool {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|v| crate::lexer::has_word(code_line, &format!("Ordering::{v}")))
}

fn parse_suppressions(s: &Scrubbed) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, comment) in s.comment_lines.iter().enumerate() {
        let Some(pos) = comment.find("tkij-lint:") else { continue };
        let rest = &comment[pos + "tkij-lint:".len()..];
        let Some(open) = rest.find("allow(") else { continue };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else { continue };
        let code = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let has_reason =
            tail.trim_start().strip_prefix("--").is_some_and(|reason| !reason.trim().is_empty());
        out.push(Suppression { line: idx + 1, code, has_reason });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn codes(crate_name: &str, src: &str) -> Vec<&'static str> {
        lint_file(&PathBuf::from("x.rs"), crate_name, src).iter().map(|f| f.code).collect()
    }

    #[test]
    fn det001_scoped_to_counter_bearing_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes("core", src), vec!["DET001"]);
        assert_eq!(codes("datagen", src), Vec::<&str>::new());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "// tkij-lint: allow(DET001) -- build-only scratch map, never iterated\n\
                   use std::collections::HashMap;\n";
        assert_eq!(codes("core", src), Vec::<&str>::new());
    }

    #[test]
    fn suppression_without_reason_still_fails() {
        let src = "// tkij-lint: allow(DET001)\nuse std::collections::HashMap;\n";
        let got = codes("core", src);
        assert!(got.contains(&"DET001") && got.contains(&"SUP001"), "{got:?}");
    }

    #[test]
    fn det005_wants_a_rationale() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(codes("core", bad), vec!["DET005"]);
        let good = "// Relaxed ordering: read-only telemetry, never a counter.\n\
                    fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(codes("core", good), Vec::<&str>::new());
        // `cmp::Ordering` stays out of scope.
        let cmp = "fn g(a: i32) -> Ordering { Ordering::Less }\n";
        assert_eq!(codes("core", cmp), Vec::<&str>::new());
    }
}
