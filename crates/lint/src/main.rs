//! The `tkij-lint` binary.
//!
//! ```text
//! tkij-lint check [--json] [--root DIR] [--rules-only|--registry-only] [FILE...]
//! ```
//!
//! With no `FILE` arguments, runs both layers over the workspace at
//! `--root` (default: the current directory, falling back to the crate's
//! parent workspace when invoked via `cargo run -p tkij-lint`). With
//! `FILE` arguments, lints exactly those files with **every** rule
//! active (as if they lived in a counter-bearing crate) — the mode the
//! committed bad-code fixtures are checked with.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;
use tkij_lint::{check_registry_at, check_rules, report, rules, Finding};

struct Args {
    json: bool,
    rules_only: bool,
    registry_only: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tkij-lint check [--json] [--root DIR] [--rules-only|--registry-only] [FILE...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    if raw.next().as_deref() != Some("check") {
        return usage();
    }
    let mut args = Args {
        json: false,
        rules_only: false,
        registry_only: false,
        root: None,
        files: Vec::new(),
    };
    let mut raw = raw.peekable();
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--rules-only" => args.rules_only = true,
            "--registry-only" => args.registry_only = true,
            "--root" => match raw.next() {
                Some(dir) => args.root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if args.rules_only && args.registry_only {
        return usage();
    }

    let findings = match run(&args) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("tkij-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", report::render_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("tkij-lint: clean");
        } else {
            println!("tkij-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(args: &Args) -> std::io::Result<Vec<Finding>> {
    if !args.files.is_empty() {
        // Explicit files: all rules active (counter-bearing context).
        let mut findings = Vec::new();
        for file in &args.files {
            let source = std::fs::read_to_string(file)?;
            findings.extend(rules::lint_file(file, "core", &source));
        }
        return Ok(findings);
    }

    let root = match &args.root {
        Some(root) => root.clone(),
        // Under `cargo run -p tkij-lint` the working directory is the
        // invoker's; prefer an explicit workspace mark over guessing.
        None => {
            let cwd = std::env::current_dir()?;
            if cwd.join("Cargo.toml").is_file() {
                cwd
            } else {
                return Err(std::io::Error::other(
                    "not inside a workspace root; pass --root <dir>",
                ));
            }
        }
    };

    let mut findings = Vec::new();
    if !args.registry_only {
        findings.extend(check_rules(&root)?);
    }
    if !args.rules_only {
        findings.extend(check_registry_at(&root));
    }
    Ok(findings)
}
