//! A small comment/string/raw-string-aware Rust lexer.
//!
//! The linter never needs a full token tree — every rule and every
//! registry parse works on a *scrubbed* view of a source file in which
//! string-literal contents and comments are blanked out of the code
//! channel and routed to side channels instead. That makes word-level
//! matching (`HashMap`, `Instant::now`, `push("key"`) immune to the
//! classic false positives: `"a HashMap in a string"`, `// HashMap in a
//! comment`, `r#"nested "quotes" with HashMap"#`, nested block
//! comments, and `//` sequences inside string literals.
//!
//! The scrub is line-preserving: `code_lines[i]`, `comment_lines[i]`
//! and the original file line `i + 1` always refer to the same line, so
//! findings carry exact 1-based line numbers.

/// One string literal encountered in the file, with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based line of the literal's opening quote.
    pub line: usize,
    /// Byte column (0-based) of the opening delimiter on that line.
    pub col: usize,
    /// The literal's raw content (escapes *not* resolved; the registry
    /// only ever matches plain ASCII keys, where raw == cooked).
    pub content: String,
}

/// The scrubbed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct Scrubbed {
    /// Per line: the code with comments and string/char contents
    /// replaced by spaces (delimiters too). Identifier and punctuation
    /// positions are byte-preserved.
    pub code_lines: Vec<String>,
    /// Per line: the concatenated comment text of that line (line
    /// comments, doc comments, and every line a block comment spans).
    pub comment_lines: Vec<String>,
    /// Every string literal (plain, raw, byte, byte-raw) in file order.
    pub strings: Vec<StrLit>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the current depth.
    BlockComment(u32),
    Str {
        raw_hashes: Option<u32>,
    },
}

/// Scrubs a source file. Total: never panics, for arbitrary input
/// (property-tested), and always yields exactly one code/comment line
/// per input line.
pub fn scrub(source: &str) -> Scrubbed {
    let mut out = Scrubbed::default();
    let mut state = State::Code;
    // Accumulator for the string literal currently being lexed.
    let mut cur_str: Option<StrLit> = None;

    for (line_idx, line) in source.split('\n').enumerate() {
        let bytes = line.as_bytes();
        let mut code = vec![b' '; bytes.len()];
        let mut comment = String::new();
        let mut i = 0usize;

        // A line comment never crosses a newline.
        if state == State::LineComment {
            state = State::Code;
        }

        while i < bytes.len() {
            match state {
                State::Code => {
                    let b = bytes[i];
                    let next = bytes.get(i + 1).copied();
                    if b == b'/' && next == Some(b'/') {
                        comment.push_str(&line[i..]);
                        state = State::LineComment;
                        i = bytes.len();
                    } else if b == b'/' && next == Some(b'*') {
                        state = State::BlockComment(1);
                        i += 2;
                    } else if b == b'"' {
                        cur_str =
                            Some(StrLit { line: line_idx + 1, col: i, content: String::new() });
                        state = State::Str { raw_hashes: None };
                        i += 1;
                    } else if let Some(h) = raw_string_open(bytes, i) {
                        cur_str =
                            Some(StrLit { line: line_idx + 1, col: i, content: String::new() });
                        state = State::Str { raw_hashes: Some(h.hashes) };
                        i += h.open_len;
                    } else if b == b'\'' && !prev_is_ident(bytes, i) {
                        // Char literal vs lifetime: `'\...'` and `'X'`
                        // are char literals; anything else (`'a`,
                        // `'static`) is a lifetime and stays code.
                        if let Some(len) = char_literal_len(bytes, i) {
                            i += len; // blank the whole literal
                        } else {
                            code[i] = b;
                            i += 1;
                        }
                    } else {
                        code[i] = b;
                        i += 1;
                    }
                }
                State::LineComment => unreachable!("reset at line start"),
                State::BlockComment(depth) => {
                    let next = bytes.get(i + 1).copied();
                    if bytes[i] == b'*' && next == Some(b'/') {
                        comment.push(' ');
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                        i += 2;
                    } else if bytes[i] == b'/' && next == Some(b'*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        // Push whole UTF-8 chars, not bytes.
                        let ch_len = utf8_len(bytes[i]);
                        comment.push_str(lossy_slice(line, i, ch_len));
                        i += ch_len;
                    }
                }
                State::Str { raw_hashes } => {
                    let s = cur_str.as_mut().expect("string literal in flight");
                    match raw_hashes {
                        None => {
                            if bytes[i] == b'\\' {
                                // Keep the escape raw; skip both bytes
                                // so `\"` cannot close the literal.
                                s.content.push_str(lossy_slice(line, i, 2));
                                i += 1 + utf8_len(*bytes.get(i + 1).unwrap_or(&b' '));
                            } else if bytes[i] == b'"' {
                                out.strings.push(cur_str.take().expect("literal"));
                                state = State::Code;
                                i += 1;
                            } else {
                                let ch_len = utf8_len(bytes[i]);
                                s.content.push_str(lossy_slice(line, i, ch_len));
                                i += ch_len;
                            }
                        }
                        Some(h) => {
                            if bytes[i] == b'"' && closes_raw(bytes, i, h) {
                                out.strings.push(cur_str.take().expect("literal"));
                                state = State::Code;
                                i += 1 + h as usize;
                            } else {
                                let ch_len = utf8_len(bytes[i]);
                                s.content.push_str(lossy_slice(line, i, ch_len));
                                i += ch_len;
                            }
                        }
                    }
                }
            }
        }

        // Multi-line string literals keep their line structure in the
        // captured content (the registry never needs it, but the rules
        // must still see *nothing* of the string in the code channel).
        if let (State::Str { .. }, Some(s)) = (state, cur_str.as_mut()) {
            s.content.push('\n');
        }

        out.code_lines.push(String::from_utf8(code).expect("spaces and ASCII code bytes"));
        out.comment_lines.push(comment);
    }
    // An unterminated literal at EOF is malformed Rust; record what we
    // saw rather than lose it (and never panic).
    if let Some(s) = cur_str.take() {
        out.strings.push(s);
    }
    out
}

struct RawOpen {
    hashes: u32,
    open_len: usize,
}

/// Detects `r"`, `r#"`, `br##"`, ... at byte `i` (not inside an
/// identifier: `attr"` or `bar"` must not start a raw string).
fn raw_string_open(bytes: &[u8], i: usize) -> Option<RawOpen> {
    if prev_is_ident(bytes, i) {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some(RawOpen { hashes, open_len: j + 1 - i })
    } else {
        None
    }
}

/// Whether the `"` at byte `i` is followed by `hashes` `#`s.
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    let h = hashes as usize;
    i + h < bytes.len() + 1
        && bytes[i + 1..].len() >= h
        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
}

/// Length in bytes of a char literal starting at the `'` at byte `i`,
/// or `None` if this `'` starts a lifetime instead.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let body = bytes.get(i + 1)?;
    if *body == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1 - i),
                _ => j += 1,
            }
        }
        None
    } else {
        // `'X'` (X = any single char, possibly multi-byte).
        let len = utf8_len(*body);
        if bytes.get(i + 1 + len) == Some(&b'\'') {
            Some(2 + len)
        } else {
            None // a lifetime like 'a or 'static
        }
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Byte length of the UTF-8 char whose first byte is `b` (1 for
/// continuation/invalid bytes, so progress is always made).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// A panic-proof slice of up to `len` bytes starting at `i`, snapped to
/// char boundaries.
fn lossy_slice(line: &str, i: usize, len: usize) -> &str {
    let end = (i + len).min(line.len());
    let mut start = i.min(line.len());
    while start > 0 && !line.is_char_boundary(start) {
        start -= 1;
    }
    let mut e = end;
    while e < line.len() && !line.is_char_boundary(e) {
        e += 1;
    }
    &line[start..e.min(line.len())]
}

/// Iterator over word-boundary occurrences of `word` in scrubbed code.
/// "Word" means: not preceded or followed by `[A-Za-z0-9_]`.
pub fn word_positions<'a>(code: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    code.match_indices(word).filter_map(move |(pos, _)| {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        (before_ok && after_ok).then_some(pos)
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `code` contains `word` at a word boundary (eagerly
/// evaluated, so `word` may be a temporary).
pub fn has_word(code: &str, word: &str) -> bool {
    word_positions(code, word).next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments() {
        let s = scrub("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;");
        assert!(!s.code_lines[0].contains("HashMap"));
        assert!(s.comment_lines[0].contains("HashMap here"));
        assert!(s.code_lines[1].contains("HashMap"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, "HashMap");
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n/* b\nc */ d\ne";
        let s = scrub(src);
        assert_eq!(s.code_lines.len(), 4);
        assert_eq!(s.comment_lines.len(), 4);
        assert!(s.code_lines[2].contains('d'));
        assert!(s.comment_lines[1].contains('b'));
    }

    #[test]
    fn word_boundaries() {
        let hits: Vec<_> =
            word_positions("HashMap MyHashMap HashMaps HashMap", "HashMap").collect();
        assert_eq!(hits.len(), 2);
    }
}
