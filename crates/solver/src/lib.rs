//! # tkij-solver — score bounds for bucket combinations
//!
//! TKIJ prunes the join search space with score upper/lower bounds on
//! *bucket combinations* (paper §3.3, Definition 1). The original system
//! delegates this optimization problem to the Choco constraint solver;
//! this crate substitutes an interval-arithmetic **branch-and-bound**
//! optimizer specialized to the structure of scored temporal predicates:
//!
//! * every predicate is a `min` of piecewise-linear comparators applied to
//!   affine endpoint expressions, so box enclosures are cheap and exact in
//!   the limit;
//! * the aggregation `S` is monotone, so componentwise combination of edge
//!   enclosures stays sound.
//!
//! The two entry points mirror the paper's strategies:
//!
//! * [`pair_bounds`] — bounds of a single predicate over a bucket *pair*
//!   (4 variables; used by the `loose` strategy, Alg. 2 line 3);
//! * [`nary_bounds`] — bounds of the full n-ary score over a bucket
//!   combination (2n variables; used by `brute-force` and the refinement
//!   phase of `two-phase`).
//!
//! Bounds are always **sound**: `lb ≤ S(t) ≤ ub` for every tuple `t`
//! drawn from the combination (property-tested). With the default
//! configuration they are also tight to `1e-6`.

pub mod bnb;
pub mod problem;

pub use bnb::{BoundOutcome, SolverConfig};
pub use problem::{BoundsProblem, PairTerm};

use tkij_temporal::expr::EndpointBox;
use tkij_temporal::predicate::TemporalPredicate;
use tkij_temporal::query::Query;

/// A sound `[lb, ub]` score enclosure, plus solver telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBounds {
    /// Sound lower bound on every result score in the combination.
    pub lb: f64,
    /// Sound upper bound.
    pub ub: f64,
    /// Total branch-and-bound nodes expanded (both directions).
    pub nodes: usize,
    /// Whether both directions converged within `eps`.
    pub tight: bool,
}

impl ScoreBounds {
    fn from_outcomes(min: BoundOutcome, max: BoundOutcome) -> Self {
        ScoreBounds {
            lb: min.bound.clamp(0.0, 1.0),
            ub: max.bound.clamp(0.0, 1.0),
            nodes: min.nodes + max.nodes,
            tight: min.converged && max.converged,
        }
    }
}

/// Bounds of `s-p(x, y)` when `x` ranges over `left` and `y` over `right`
/// (both with the implicit `start ≤ end`).
pub fn pair_bounds(
    predicate: &TemporalPredicate,
    left: EndpointBox,
    right: EndpointBox,
    cfg: &SolverConfig,
) -> ScoreBounds {
    let prob = BoundsProblem::pair(predicate, left, right);
    solve(&prob, cfg)
}

/// Bounds of the aggregated query score when each vertex variable ranges
/// over its combination bucket's box.
pub fn nary_bounds(query: &Query, boxes: Vec<EndpointBox>, cfg: &SolverConfig) -> ScoreBounds {
    let prob = BoundsProblem::from_query(query, boxes);
    solve(&prob, cfg)
}

/// Solves both directions of an explicit [`BoundsProblem`].
pub fn solve(problem: &BoundsProblem<'_>, cfg: &SolverConfig) -> ScoreBounds {
    // Fast path: the enclosure is already a point (common for buckets far
    // from a predicate's sensitive region: everything scores 0 or 1).
    let (lo, hi) = problem.enclosure(&problem.boxes);
    if hi - lo <= cfg.eps {
        return ScoreBounds {
            lb: lo.clamp(0.0, 1.0),
            ub: hi.clamp(0.0, 1.0),
            nodes: 0,
            tight: true,
        };
    }
    ScoreBounds::from_outcomes(bnb::minimize(problem, cfg), bnb::maximize(problem, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tkij_temporal::interval::Interval;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::predicate::PredicateKind;
    use tkij_temporal::query::table1;

    #[test]
    fn fast_path_skips_bnb() {
        // Buckets wildly apart under s-meets: every pair scores 0.
        let pred = TemporalPredicate::meets(PredicateParams::P1);
        let b = pair_bounds(
            &pred,
            EndpointBox::new((0, 9), (0, 9)),
            EndpointBox::new((1000, 1009), (1000, 1009)),
            &SolverConfig::default(),
        );
        assert_eq!((b.lb, b.ub), (0.0, 0.0));
        assert_eq!(b.nodes, 0);
        assert!(b.tight);
    }

    #[test]
    fn nary_bounds_match_paper_figure6() {
        let p = PredicateParams::new(1, 3, 0, 4);
        let q = table1::q_ss(p);
        let boxes = vec![
            EndpointBox::new((10, 20), (20, 30)),
            EndpointBox::new((20, 30), (30, 40)),
            EndpointBox::new((30, 40), (30, 40)),
        ];
        let b = nary_bounds(&q, boxes, &SolverConfig::default());
        assert!(b.tight);
        assert!((b.ub - 0.5).abs() < 1e-6);
        assert!(b.lb.abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness: every valid integer point drawn from the boxes
        /// scores within [lb, ub], for every predicate kind.
        #[test]
        fn pair_bounds_sound(
            kind_idx in 0usize..16,
            ls in -40i64..40, lw in 0i64..25, le in 0i64..25,
            rs in -40i64..40, rw in 0i64..25, re in 0i64..25,
            fx in 0.0f64..1.0, fy in 0.0f64..1.0,
        ) {
            let kind = PredicateKind::all()[kind_idx];
            let pred = TemporalPredicate::from_kind(kind, PredicateParams::P2, 7);
            let left = EndpointBox::new((ls, ls + lw), (ls + lw, ls + lw + le));
            let right = EndpointBox::new((rs, rs + rw), (rs + rw, rs + rw + re));
            let b = pair_bounds(&pred, left, right, &SolverConfig::default());
            // Sample a valid point parameterized by the fractions.
            let xs = ls + (fx * lw as f64) as i64;
            let xe = (ls + lw) + (fy * le as f64) as i64;
            let ys = rs + (fy * rw as f64) as i64;
            let ye = (rs + rw) + (fx * re as f64) as i64;
            let x = Interval::new(0, xs, xe.max(xs)).unwrap();
            let y = Interval::new(1, ys, ye.max(ys)).unwrap();
            if left.contains(&x) && right.contains(&y) {
                let s = pred.score(&x, &y);
                prop_assert!(s >= b.lb - 1e-6, "score {s} < lb {}", b.lb);
                prop_assert!(s <= b.ub + 1e-6, "score {s} > ub {}", b.ub);
            }
        }

        /// n-ary soundness on a cyclic query: sampled tuples respect the
        /// solver's bounds, and bounds are tight on point boxes.
        #[test]
        fn nary_bounds_sound_qsfm(
            s1 in 0i64..40, w1 in 0i64..20,
            s2 in 0i64..40, w2 in 0i64..20,
            s3 in 0i64..40, w3 in 0i64..20,
            spread in 1i64..12,
        ) {
            let q = table1::q_sfm(PredicateParams::P1);
            let t = [
                Interval::new(0, s1, s1 + w1).unwrap(),
                Interval::new(1, s2, s2 + w2).unwrap(),
                Interval::new(2, s3, s3 + w3).unwrap(),
            ];
            // Boxes spread around each sampled interval.
            let boxes: Vec<EndpointBox> = t
                .iter()
                .map(|iv| EndpointBox::new(
                    (iv.start - spread, iv.start + spread),
                    (iv.end - spread, iv.end + spread),
                ))
                .collect();
            let b = nary_bounds(&q, boxes, &SolverConfig::default());
            let s = q.score_tuple(&t);
            prop_assert!(s >= b.lb - 1e-6 && s <= b.ub + 1e-6);

            let point_boxes = t.iter().map(EndpointBox::point).collect();
            let bp = nary_bounds(&q, point_boxes, &SolverConfig::default());
            prop_assert!((bp.lb - s).abs() < 1e-6 && (bp.ub - s).abs() < 1e-6);
        }
    }
}
