//! The Bounds Problem (paper §3.3, Definition 1).
//!
//! Given a bucket combination `ω = (b_1, …, b_n)`, find the maximum
//! (resp. minimum) of `S_{(i,j)∈E}(s-p_{(i,j)}(x_i, x_j))` subject to each
//! `x_i` starting in granule `g_{i,l_i}` and ending in `g_{i,l'_i}`. Here
//! each interval variable is a pair of integer endpoint variables whose
//! domains are an [`EndpointBox`], plus the implicit validity constraint
//! `start ≤ end`.

use tkij_temporal::aggregate::Aggregation;
use tkij_temporal::expr::EndpointBox;
use tkij_temporal::interval::Interval;
use tkij_temporal::predicate::TemporalPredicate;
use tkij_temporal::query::Query;

/// One scored-predicate term between two interval variables.
#[derive(Debug, Clone)]
pub struct PairTerm<'q> {
    /// Variable playing the predicate's left side.
    pub left: usize,
    /// Variable playing the right side.
    pub right: usize,
    /// The predicate.
    pub predicate: &'q TemporalPredicate,
}

/// A complete instance of the Bounds Problem.
#[derive(Debug, Clone)]
pub struct BoundsProblem<'q> {
    /// Domain box per interval variable (from the combination's buckets).
    pub boxes: Vec<EndpointBox>,
    /// Predicate terms (the query edges restricted to these variables).
    pub edges: Vec<PairTerm<'q>>,
    /// The monotone aggregation `S`.
    pub aggregation: &'q Aggregation,
}

impl<'q> BoundsProblem<'q> {
    /// Builds the n-ary problem for a query over one box per query vertex.
    pub fn from_query(query: &'q Query, boxes: Vec<EndpointBox>) -> Self {
        assert_eq!(boxes.len(), query.n(), "one box per query vertex");
        let edges = query
            .edges
            .iter()
            .map(|e| PairTerm { left: e.src, right: e.dst, predicate: &e.predicate })
            .collect();
        BoundsProblem { boxes, edges, aggregation: &query.aggregation }
    }

    /// Builds the 2-variable problem for a single predicate (the `loose`
    /// strategy computes bounds per bucket *pair*; the per-edge score needs
    /// no aggregation, so a 1-edge normalized sum is used).
    pub fn pair(predicate: &'q TemporalPredicate, left: EndpointBox, right: EndpointBox) -> Self {
        static SINGLE: Aggregation = Aggregation::NormalizedSum;
        BoundsProblem {
            boxes: vec![left, right],
            edges: vec![PairTerm { left: 0, right: 1, predicate }],
            aggregation: &SINGLE,
        }
    }

    /// Number of interval variables.
    pub fn num_vars(&self) -> usize {
        self.boxes.len()
    }

    /// Evaluates the aggregated score at a concrete point.
    pub fn eval(&self, point: &[Interval]) -> f64 {
        debug_assert_eq!(point.len(), self.boxes.len());
        let scores: Vec<f64> =
            self.edges.iter().map(|e| e.predicate.score(&point[e.left], &point[e.right])).collect();
        self.aggregation.eval(&scores)
    }

    /// Sound interval enclosure of the aggregated score over the given
    /// boxes: per-edge exact primitive ranges, min-combined per predicate,
    /// aggregated componentwise (valid because `S` is monotone).
    ///
    /// May be loose when primitives or edges share endpoint variables; the
    /// branch-and-bound layer contracts it by splitting.
    pub fn enclosure(&self, boxes: &[EndpointBox]) -> (f64, f64) {
        let bounds: Vec<(f64, f64)> = self
            .edges
            .iter()
            .map(|e| e.predicate.score_range(&boxes[e.left], &boxes[e.right]))
            .collect();
        self.aggregation.combine_bounds(&bounds)
    }

    /// A feasible integer point inside the boxes, as close to the centers
    /// as validity (`start ≤ end`) allows; `None` if some box admits no
    /// valid interval.
    pub fn center_point(&self, boxes: &[EndpointBox]) -> Option<Vec<Interval>> {
        let mut point = Vec::with_capacity(boxes.len());
        for (i, b) in boxes.iter().enumerate() {
            // Valid starts must not exceed the largest possible end.
            let s_hi = b.start.1.min(b.end.1);
            if s_hi < b.start.0 {
                return None;
            }
            let s = ((b.start.0 + b.start.1) / 2).clamp(b.start.0, s_hi);
            let e_lo = b.end.0.max(s);
            let e = ((b.end.0 + b.end.1) / 2).clamp(e_lo, b.end.1);
            point.push(Interval::new_unchecked(i as u64, s, e));
        }
        Some(point)
    }

    /// Whether a box vector admits any valid interval assignment.
    pub fn feasible(boxes: &[EndpointBox]) -> bool {
        boxes.iter().all(|b| b.start.0 <= b.end.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::query::table1;

    fn iv(id: u64, s: i64, e: i64) -> Interval {
        Interval::new(id, s, e).unwrap()
    }

    #[test]
    fn pair_eval_matches_predicate() {
        let p = PredicateParams::new(4, 8, 0, 0);
        let pred = TemporalPredicate::meets(p);
        let prob = BoundsProblem::pair(
            &pred,
            EndpointBox::new((10, 20), (20, 30)),
            EndpointBox::new((20, 30), (30, 40)),
        );
        let x = iv(0, 12, 25);
        let y = iv(1, 25, 35);
        assert_eq!(prob.eval(&[x, y]), pred.score(&x, &y));
    }

    #[test]
    fn paper_meets_example_enclosure() {
        // §3.3: ω = (b_{1,1,2}, b_{2,2,3}), s-meets with (4, 8):
        // scores span [0.25, 1] — the pair enclosure is already exact here.
        let p = PredicateParams::new(4, 8, 0, 0);
        let pred = TemporalPredicate::meets(p);
        let prob = BoundsProblem::pair(
            &pred,
            EndpointBox::new((10, 20), (20, 30)),
            EndpointBox::new((20, 30), (30, 40)),
        );
        let (lo, hi) = prob.enclosure(&prob.boxes);
        assert!((hi - 1.0).abs() < 1e-12);
        assert!((lo - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_query_maps_edges() {
        let q = table1::q_sfm(PredicateParams::P1);
        let boxes = vec![
            EndpointBox::new((0, 9), (0, 9)),
            EndpointBox::new((0, 9), (10, 19)),
            EndpointBox::new((10, 19), (10, 19)),
        ];
        let prob = BoundsProblem::from_query(&q, boxes);
        assert_eq!(prob.num_vars(), 3);
        assert_eq!(prob.edges.len(), 3);
        assert_eq!((prob.edges[2].left, prob.edges[2].right), (0, 2));
    }

    #[test]
    fn center_point_respects_validity() {
        // Box where blind centering would give start 9 > end 5.
        let boxes = [EndpointBox::new((8, 10), (0, 5))];
        let pred = TemporalPredicate::before(PredicateParams::P1);
        let prob = BoundsProblem::pair(
            &pred,
            EndpointBox::new((0, 1), (0, 1)),
            EndpointBox::new((0, 1), (0, 1)),
        );
        // Feasibility check is static.
        assert!(!BoundsProblem::feasible(&boxes), "start.lo > end.hi");
        assert!(BoundsProblem::feasible(&prob.boxes));
        let pt = prob.center_point(&prob.boxes).unwrap();
        assert!(pt.iter().all(|i| i.end >= i.start));
    }

    #[test]
    fn center_point_clamps_into_overlap() {
        let pred = TemporalPredicate::before(PredicateParams::P1);
        // start ∈ [0, 10], end ∈ [4, 6]: center start 5 ≤ 6 ok; but
        // start ∈ [6, 10] with end ∈ [0, 7] needs the fallback branch.
        let prob = BoundsProblem::pair(
            &pred,
            EndpointBox::new((6, 10), (0, 7)),
            EndpointBox::new((0, 1), (0, 1)),
        );
        let pt = prob.center_point(&prob.boxes).unwrap();
        assert!(pt[0].start >= 6 && pt[0].end <= 7 && pt[0].start <= pt[0].end);
    }
}
