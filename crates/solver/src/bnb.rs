//! Best-first branch-and-bound over endpoint boxes.
//!
//! The paper delegates the Bounds Problem to the Choco constraint solver;
//! this module plays that role. It maximizes (or minimizes) the aggregated
//! score over integer endpoint domains by repeatedly splitting the widest
//! domain and pruning with the interval enclosure of
//! [`BoundsProblem::enclosure`]. Because every predicate is a
//! min-combination of piecewise-linear functions of affine expressions,
//! the enclosure is exact on single points, so the search converges to the
//! integer optimum; an `eps` gap and a node cap bound the effort while
//! keeping the returned bound **sound** (never tighter than the truth).

use crate::problem::BoundsProblem;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tkij_temporal::expr::EndpointBox;

/// Branch-and-bound configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Terminate when the sound bound is within `eps` of a witnessed value.
    pub eps: f64,
    /// Stop expanding after this many nodes; the returned bound stays
    /// sound but `converged` is reported `false`.
    pub max_nodes: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { eps: 1e-6, max_nodes: 20_000 }
    }
}

/// Result of one optimization direction.
#[derive(Debug, Clone, Copy)]
pub struct BoundOutcome {
    /// Sound bound on the optimum (≥ max for maximize, ≤ min for minimize).
    pub bound: f64,
    /// Best value witnessed at a feasible integer point (equals `bound` up
    /// to `eps` when `converged`).
    pub witness: f64,
    /// Nodes expanded.
    pub nodes: usize,
    /// Whether the gap closed below `eps`.
    pub converged: bool,
}

/// Which bound is being computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Max,
    Min,
}

struct Node {
    /// Optimistic transformed bound (higher is better in both senses).
    bound: f64,
    boxes: Box<[EndpointBox]>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound.total_cmp(&other.bound)
    }
}

/// Computes a sound upper bound on the maximum aggregated score.
pub fn maximize(problem: &BoundsProblem<'_>, cfg: &SolverConfig) -> BoundOutcome {
    optimize(problem, cfg, Sense::Max)
}

/// Computes a sound lower bound on the minimum aggregated score.
pub fn minimize(problem: &BoundsProblem<'_>, cfg: &SolverConfig) -> BoundOutcome {
    optimize(problem, cfg, Sense::Min)
}

fn optimize(problem: &BoundsProblem<'_>, cfg: &SolverConfig, sense: Sense) -> BoundOutcome {
    // Work in a transformed space where we always maximize: Min negates.
    let tr = |v: f64| match sense {
        Sense::Max => v,
        Sense::Min => -v,
    };
    let encl_hi = |boxes: &[EndpointBox]| -> f64 {
        let (lo, hi) = problem.enclosure(boxes);
        match sense {
            Sense::Max => hi,
            Sense::Min => -lo,
        }
    };

    let root: Box<[EndpointBox]> = clip_validity(problem.boxes.clone().into_boxed_slice())
        .expect("bucket boxes always admit valid intervals");

    let mut incumbent = f64::NEG_INFINITY;
    if let Some(pt) = problem.center_point(&root) {
        incumbent = tr(problem.eval(&pt));
    }
    // Corner sampling: piecewise-linear scores attain extremes of their
    // `greater` primitives at box corners, so seeding the incumbent with
    // (up to 256) valid corner points makes most pair problems converge
    // at the root instead of hunting for a witness by splitting.
    let dims = 2 * root.len();
    if dims <= 8 {
        let mut point = Vec::with_capacity(root.len());
        for mask in 0u32..(1 << dims) {
            point.clear();
            let mut valid = true;
            for (v, b) in root.iter().enumerate() {
                let s = if mask & (1 << (2 * v)) == 0 { b.start.0 } else { b.start.1 };
                let e_raw = if mask & (1 << (2 * v + 1)) == 0 { b.end.0 } else { b.end.1 };
                let e = e_raw.max(s);
                if e > b.end.1 {
                    valid = false;
                    break;
                }
                point.push(tkij_temporal::interval::Interval::new_unchecked(v as u64, s, e));
            }
            if valid {
                incumbent = incumbent.max(tr(problem.eval(&point)));
            }
        }
    }

    let mut heap = BinaryHeap::new();
    let root_bound = encl_hi(&root);
    heap.push(Node { bound: root_bound, boxes: root });

    let mut nodes = 0usize;
    let mut result_bound = root_bound;
    let mut converged = false;

    while let Some(node) = heap.pop() {
        // All remaining nodes have bound ≤ node.bound: this is the global
        // sound bound right now.
        result_bound = node.bound.max(incumbent);
        if node.bound <= incumbent + cfg.eps {
            converged = true;
            break;
        }
        if nodes >= cfg.max_nodes {
            break;
        }
        nodes += 1;

        let Some(dim) = widest_dim(&node.boxes) else {
            // Point box: enclosure is exact here.
            incumbent = incumbent.max(node.bound);
            continue;
        };
        for child in split(&node.boxes, dim) {
            let Some(child) = clip_validity(child) else { continue };
            let bound = encl_hi(&child);
            if bound <= incumbent + cfg.eps {
                continue; // pruned
            }
            if let Some(pt) = problem.center_point(&child) {
                incumbent = incumbent.max(tr(problem.eval(&pt)));
            }
            heap.push(Node { bound, boxes: child });
        }
        if heap.is_empty() {
            // Everything pruned against the incumbent: it is the optimum.
            result_bound = incumbent;
            converged = true;
        }
    }
    if !converged && heap.is_empty() {
        converged = true;
        result_bound = result_bound.min(f64::INFINITY);
    }

    let (bound, witness) = match sense {
        Sense::Max => (result_bound, incumbent),
        Sense::Min => (-result_bound, -incumbent),
    };
    BoundOutcome { bound, witness, nodes, converged }
}

/// Tightens each variable's box with the validity constraint
/// `start ≤ end`; `None` if some variable admits no valid interval.
fn clip_validity(mut boxes: Box<[EndpointBox]>) -> Option<Box<[EndpointBox]>> {
    for b in boxes.iter_mut() {
        let start_hi = b.start.1.min(b.end.1);
        let end_lo = b.end.0.max(b.start.0);
        if start_hi < b.start.0 || end_lo > b.end.1 {
            return None;
        }
        b.start.1 = start_hi;
        b.end.0 = end_lo;
    }
    Some(boxes)
}

/// The dimension (variable, axis) with the widest domain, or `None` if all
/// are points. Axis 0 = start, 1 = end.
fn widest_dim(boxes: &[EndpointBox]) -> Option<(usize, u8)> {
    let mut best: Option<((usize, u8), i64)> = None;
    for (v, b) in boxes.iter().enumerate() {
        for (axis, (lo, hi)) in [(0u8, b.start), (1u8, b.end)] {
            let w = hi - lo;
            if w > 0 && best.is_none_or(|(_, bw)| w > bw) {
                best = Some(((v, axis), w));
            }
        }
    }
    best.map(|(d, _)| d)
}

/// Splits one dimension at its midpoint into two child box vectors.
fn split(boxes: &[EndpointBox], (var, axis): (usize, u8)) -> [Box<[EndpointBox]>; 2] {
    let mut left: Box<[EndpointBox]> = boxes.into();
    let mut right: Box<[EndpointBox]> = boxes.into();
    let (lo, hi) = if axis == 0 { boxes[var].start } else { boxes[var].end };
    let mid = lo + (hi - lo) / 2;
    if axis == 0 {
        left[var].start = (lo, mid);
        right[var].start = (mid + 1, hi);
    } else {
        left[var].end = (lo, mid);
        right[var].end = (mid + 1, hi);
    }
    [left, right]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkij_temporal::interval::Interval;
    use tkij_temporal::params::PredicateParams;
    use tkij_temporal::predicate::TemporalPredicate;
    use tkij_temporal::query::table1;

    #[test]
    fn meets_pair_example_is_tight() {
        let p = PredicateParams::new(4, 8, 0, 0);
        let pred = TemporalPredicate::meets(p);
        let prob = BoundsProblem::pair(
            &pred,
            EndpointBox::new((10, 20), (20, 30)),
            EndpointBox::new((20, 30), (30, 40)),
        );
        let cfg = SolverConfig::default();
        let max = maximize(&prob, &cfg);
        let min = minimize(&prob, &cfg);
        assert!(max.converged && min.converged);
        assert!((max.bound - 1.0).abs() < 1e-6, "UB = 1, got {}", max.bound);
        assert!((min.bound - 0.25).abs() < 1e-6, "LB = 0.25, got {}", min.bound);
    }

    #[test]
    fn figure6_brute_force_tightens_loose_bound() {
        // Paper Fig. 6: Q = s-starts(1,2), s-starts(2,3), normalized sum,
        // params {(λe, ρe), (λg, ρg)} = {(1, 3), (0, 4)};
        // b1 = (g1, g2), b2 = (g2, g3), b3 = (g3, g3) with g1 = [10,20],
        // g2 = [20,30], g3 = [30,40]. The loose (enclosure) UB is 1 but the
        // exact n-ary UB is 0.5: both equals cannot hold simultaneously.
        let p = PredicateParams::new(1, 3, 0, 4);
        let q = table1::q_ss(p);
        let boxes = vec![
            EndpointBox::new((10, 20), (20, 30)),
            EndpointBox::new((20, 30), (30, 40)),
            EndpointBox::new((30, 40), (30, 40)),
        ];
        let prob = BoundsProblem::from_query(&q, boxes);
        let (_, loose_hi) = prob.enclosure(&prob.boxes);
        assert!((loose_hi - 1.0).abs() < 1e-12, "loose UB is 1");
        let max = maximize(&prob, &SolverConfig::default());
        assert!(max.converged);
        assert!((max.bound - 0.5).abs() < 1e-6, "tight UB is 0.5, got {}", max.bound);
        let min = minimize(&prob, &SolverConfig::default());
        assert!(min.bound.abs() < 1e-6, "LB is 0, got {}", min.bound);
    }

    #[test]
    fn point_boxes_give_exact_values() {
        let p = PredicateParams::P1;
        let q = table1::q_om(p);
        let t = [
            Interval::new(0, 5, 20).unwrap(),
            Interval::new(1, 10, 30).unwrap(),
            Interval::new(2, 33, 50).unwrap(),
        ];
        let boxes = t.iter().map(EndpointBox::point).collect();
        let prob = BoundsProblem::from_query(&q, boxes);
        let expect = q.score_tuple(&t);
        let max = maximize(&prob, &SolverConfig::default());
        let min = minimize(&prob, &SolverConfig::default());
        assert!((max.bound - expect).abs() < 1e-9);
        assert!((min.bound - expect).abs() < 1e-9);
    }

    #[test]
    fn node_cap_keeps_bounds_sound() {
        let p = PredicateParams::P1;
        let q = table1::q_o_star(4, p);
        let boxes = vec![EndpointBox::new((0, 1000), (0, 1000)); 4];
        let prob = BoundsProblem::from_query(&q, boxes);
        let cfg = SolverConfig { eps: 1e-9, max_nodes: 5 };
        let max = maximize(&prob, &cfg);
        // Few nodes: probably not converged, but the bound must still
        // dominate any sampled point.
        let pt = prob.center_point(&prob.boxes).unwrap();
        assert!(max.bound >= prob.eval(&pt) - 1e-9);
        assert!(max.bound <= 1.0 + 1e-9);
    }

    #[test]
    fn split_respects_validity_clipping() {
        // A same-granule bucket: start and end share [0, 9]; the invalid
        // corner start > end must never produce infeasible children that
        // crash or skew bounds.
        let p = PredicateParams::new(0, 4, 0, 4);
        let pred = TemporalPredicate::contains(p);
        let prob = BoundsProblem::pair(
            &pred,
            EndpointBox::new((0, 9), (0, 9)),
            EndpointBox::new((0, 9), (0, 9)),
        );
        let max = maximize(&prob, &SolverConfig::default());
        let min = minimize(&prob, &SolverConfig::default());
        assert!(max.converged && min.converged);
        // contains needs x̲ < y̲ ∧ x̄ > ȳ: within one 10-wide granule the
        // best margin is 9 on both sides ⇒ greater scores... margin 9 with
        // λ=0, ρ=4 gives 1.0; but both margins compete for width 9:
        // x = [0, 9], y = [4, 5] gives d1 = 4, d2 = 4 ⇒ min = 1.0.
        assert!((max.bound - 1.0).abs() < 1e-6, "got {}", max.bound);
        assert!(min.bound.abs() < 1e-9);
    }
}
