//! Task scheduling — n-ary chain queries and strategy comparison.
//!
//! Machines log task executions as intervals; an operator looks for
//! pipelines of tasks that ran back-to-back across three machines
//! (`Q{m,m}`: x1 meets x2, x2 meets x3). This example also contrasts the
//! three TopBuckets strategies (paper Alg. 2) and DTB vs LPT workload
//! distribution on the same query — all must return the same scores.
//!
//! Run with: `cargo run --release --example task_scheduling`

use tkij::prelude::*;

fn machine_log(id: u32, n: usize, seed: u64) -> IntervalCollection {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0i64;
    let intervals = (0..n)
        .map(|i| {
            // Tasks run 5–120 ticks with 0–20 ticks of idle time between.
            t += rng.gen_range(0i64..=20);
            let start = t;
            t += rng.gen_range(5i64..=120);
            Interval::new_unchecked(i as u64, start, t)
        })
        .collect();
    IntervalCollection::new(CollectionId(id), intervals).expect("n > 0")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let collections = vec![machine_log(0, 800, 1), machine_log(1, 800, 2), machine_log(2, 800, 3)];

    // Chains of tasks where each stage starts roughly as the previous one
    // finishes (λ = 2 tolerates small clock skew, as the intro motivates).
    let params = PredicateParams::new(2, 10, 0, 8);
    let query = table1::q_m_star(3, params); // star: x1 meets x2, x1 meets x3
    let chain = {
        // And the chain variant x1 -> x2 -> x3.
        Query::new(
            vec![CollectionId(0), CollectionId(1), CollectionId(2)],
            vec![
                QueryEdge { src: 0, dst: 1, predicate: TemporalPredicate::meets(params) },
                QueryEdge { src: 1, dst: 2, predicate: TemporalPredicate::meets(params) },
            ],
            Aggregation::NormalizedSum,
        )?
    };

    println!("query: {} over 3 machine logs (800 tasks each)\n", chain.name());
    let mut reference_scores: Option<Vec<f64>> = None;
    for (sname, strategy) in Strategy::all() {
        for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
            let engine = Tkij::new(
                TkijConfig::default()
                    .with_granules(16)
                    .with_reducers(6)
                    .with_strategy(strategy)
                    .with_distribution(policy),
            );
            let dataset = engine.prepare(collections.clone())?;
            let report = engine.execute(&dataset, &chain, 5)?;
            println!(
                "{:<12} + {:<3}: kept {:>4}/{:<5} combos | {}",
                sname,
                policy.name(),
                report.topbuckets.selected,
                report.topbuckets.candidates,
                report.phase_line()
            );
            let scores: Vec<f64> = report.results.iter().map(|t| t.score).collect();
            match &reference_scores {
                None => {
                    println!("  top chains:");
                    for t in &report.results {
                        println!("    {:?}  score {:.3}", t.ids, t.score);
                    }
                    reference_scores = Some(scores);
                }
                Some(r) => {
                    assert_eq!(r.len(), scores.len());
                    for (a, b) in r.iter().zip(&scores) {
                        assert!((a - b).abs() < 1e-9, "strategies must agree on scores");
                    }
                }
            }
        }
    }
    println!("\nall strategy × policy combinations returned identical top-5 scores");

    // Bonus: the star query finds fan-out patterns (one task feeding two).
    let engine = Tkij::new(TkijConfig::default().with_granules(16).with_reducers(6));
    let dataset = engine.prepare(collections)?;
    let report = engine.execute(&dataset, &query, 3)?;
    println!("\nfan-out ({}) top-3:", query.name());
    for t in &report.results {
        println!("    {:?}  score {:.3}", t.ids, t.score);
    }
    Ok(())
}
