//! Tweet analysis — the paper's introduction scenario.
//!
//! Intervals represent hashtag lifespans. The `sparks` predicate (paper
//! Fig. 4) finds pairs where a short-lived hashtag precedes one lasting
//! at least 10× longer — "finding all short-lasting hashtags before the
//! long-lasting #JeSuisCharlie". A Boolean `meets` would return almost
//! nothing here; the ranked semantics surfaces the best near-matches.
//!
//! Run with: `cargo run --release --example tweet_analysis`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkij::prelude::*;

/// Synthesizes hashtag lifespans: lots of short-lived tags, a few
/// long-running discussions.
fn hashtag_lifespans(id: u32, n: usize, seed: u64) -> IntervalCollection {
    let mut rng = StdRng::seed_from_u64(seed);
    let day = 86_400i64;
    let intervals = (0..n)
        .map(|i| {
            let start = rng.gen_range(0..day);
            let len = if rng.gen::<f64>() < 0.08 {
                rng.gen_range(3_600i64..36_000) // viral: hours
            } else {
                rng.gen_range(60..1_800) // ephemeral: minutes
            };
            Interval::new_unchecked(i as u64, start, (start + len).min(day))
        })
        .collect();
    IntervalCollection::new(CollectionId(id), intervals).expect("n > 0")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tags = hashtag_lifespans(0, 4_000, 99);
    let collections = vec![tags.clone(), tags.copy_as(CollectionId(1))];

    // s-sparks(x, y): y starts after x ends AND y lasts > 10× longer,
    // both graded with P1's `greater` tolerance.
    let query = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge {
            src: 0,
            dst: 1,
            predicate: TemporalPredicate::sparks(PredicateParams::P1, 10),
        }],
        Aggregation::NormalizedSum,
    )?;

    let engine = Tkij::new(TkijConfig::default().with_granules(24).with_reducers(6));
    let dataset = engine.prepare(collections)?;
    let report = engine.execute(&dataset, &query, 8)?;

    println!("top spark pairs (short tag igniting a long one):");
    let lookup = |id: u64| {
        *dataset.collections[0].intervals().iter().find(|iv| iv.id == id).expect("result ids exist")
    };
    for t in &report.results {
        let x = lookup(t.ids[0]);
        let y = lookup(t.ids[1]);
        println!(
            "  #tag{:<4} [{:>5}s long] -> #tag{:<4} [{:>5}s long]  gap {:>4}s  score {:.3}",
            x.id,
            x.length(),
            y.id,
            y.length(),
            y.start - x.end,
            t.score
        );
    }

    // Every reported pair satisfies the ranked-sparks intuition.
    for t in &report.results {
        let (x, y) = (lookup(t.ids[0]), lookup(t.ids[1]));
        assert!(y.start > x.end, "y must start after x ends");
        assert!(y.length() > 5 * x.length(), "y must be much longer");
    }
    println!(
        "\npruning: {:.1}% of {} potential pairs never materialized",
        report.pruned_pct(),
        report.topbuckets.total_results
    );
    Ok(())
}
