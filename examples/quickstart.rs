//! Quickstart: evaluate a 2-way ranked temporal join end to end.
//!
//! Builds two small interval collections, prepares TKIJ's offline
//! statistics, and runs a top-10 `s-meets` query — the "almost meets"
//! semantics from the paper's introduction, where pairs whose endpoints
//! align within a tolerance score highest.
//!
//! Run with: `cargo run --release --example quickstart`

use tkij::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating example of the paper (Fig. 1): two collections of
    // tasks; we want pairs (x, y) where y starts roughly when x ends.
    let c1 = IntervalCollection::new(
        CollectionId(0),
        vec![
            Interval::new(1, 2, 9)?,   // x1
            Interval::new(2, 4, 14)?,  // x2
            Interval::new(3, 1, 17)?,  // x3
            Interval::new(4, 12, 19)?, // x4
            Interval::new(5, 22, 25)?, // x5
        ],
    )?;
    let c2 = IntervalCollection::new(
        CollectionId(1),
        vec![
            Interval::new(1, 11, 14)?, // y1
            Interval::new(2, 16, 19)?, // y2
            Interval::new(3, 9, 23)?,  // y3
            Interval::new(4, 19, 24)?, // y4
            Interval::new(5, 21, 26)?, // y5
        ],
    )?;

    // Scored s-meets with tolerance (λ, ρ) = (0, 4): strict equality of
    // x.end and y.start scores 1.0, and the score decays over 4 ticks.
    let params = PredicateParams::new(0, 4, 0, 0);
    let query = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge { src: 0, dst: 1, predicate: TemporalPredicate::meets(params) }],
        Aggregation::NormalizedSum,
    )?;

    let engine = Tkij::new(TkijConfig::default().with_granules(4).with_reducers(2));
    let dataset = engine.prepare(vec![c1, c2])?;
    let report = engine.execute(&dataset, &query, 3)?;

    println!("top-3 'x almost meets y' pairs:");
    for (rank, t) in report.results.iter().enumerate() {
        println!("  #{} (x{}, y{})  score {:.2}", rank + 1, t.ids[0], t.ids[1], t.score);
    }
    println!("\nexecution: {}", report.phase_line());
    println!(
        "TopBuckets kept {}/{} combinations ({:.0}% of potential results pruned)",
        report.topbuckets.selected,
        report.topbuckets.candidates,
        report.pruned_pct()
    );

    // x1 meets y3 and x4 meets y4 exactly (score 1.0, ties break on
    // ids); x3 almost meets y2 (gap 1 → score 0.75). Under the paper's
    // wider tolerance its third pick is (x1, y1); with (λ, ρ) = (0, 4)
    // the pair (x3, y2) edges it out.
    assert_eq!(report.results[0].ids, vec![1, 3]);
    assert_eq!(report.results[1].ids, vec![4, 4]);
    assert!((report.results[0].score - 1.0).abs() < 1e-9);
    assert!((report.results[1].score - 1.0).abs() < 1e-9);
    assert_eq!(report.results[2].ids, vec![3, 2]);
    assert!((report.results[2].score - 0.75).abs() < 1e-9);

    // The reducer-local join serves candidates from a pluggable backend:
    // the default is the cache-friendly sweep store; the paper's R-tree
    // remains available and returns identical results.
    let rtree_engine = Tkij::new(
        TkijConfig::default()
            .with_granules(4)
            .with_reducers(2)
            .with_local_backend(LocalJoinBackend::RTree),
    );
    let rtree_report = rtree_engine.execute(&dataset, &query, 3)?;
    assert_eq!(report.backend, LocalJoinBackend::Sweep);
    assert_eq!(rtree_report.backend, LocalJoinBackend::RTree);
    for (a, b) in report.results.iter().zip(&rtree_report.results) {
        assert_eq!(a.ids, b.ids);
        assert!((a.score - b.score).abs() < 1e-12);
    }
    println!("\nsweep and rtree local-join backends agree on the top-3");
    Ok(())
}
