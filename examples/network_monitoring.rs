//! Network traffic monitoring — the paper's §4.3 scenario.
//!
//! Simulates a firewall packet log, builds connection intervals with the
//! paper's 60-second gap rule, and runs the two real-life queries of the
//! evaluation: `Q{jB,jB}` (sequences of connections that closely follow
//! each other) and `Q{sM,sM}` (sequences separated by the average delay),
//! plus a *hybrid* variant restricted to the same client — the paper's
//! future-work extension.
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::collections::BTreeMap;
use tkij::core::hybrid::{execute_hybrid, AttrConstraint, AttrPredicate};
use tkij::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate one day of traffic and build connections (substitute for
    // the paper's proprietary log; see DESIGN.md).
    let cfg = TrafficConfig::calibrated(8_000, 42);
    let (connections, attrs) = tkij::datagen::traffic_collection(&cfg, 1.0, CollectionId(0));
    let stats = connections.stats();
    println!(
        "built {} connections; length (min, avg, max) = ({}, {}, {}) s",
        stats.len, stats.min_length, stats.avg_length, stats.max_length
    );

    // The paper copies the connection list three times for 3-way queries.
    let collections = vec![
        connections.clone(),
        connections.copy_as(CollectionId(1)),
        connections.copy_as(CollectionId(2)),
    ];
    let avg = connections.avg_length();

    let engine = Tkij::new(TkijConfig::default().with_granules(40).with_reducers(8));
    let dataset = engine.prepare(collections)?;

    for (label, query) in [
        (
            "Q{jB,jB} — chains of closely-following connections",
            table1::q_jbjb(PredicateParams::P3, avg),
        ),
        (
            "Q{sM,sM} — chains separated by the average delay",
            table1::q_smsm(PredicateParams::P3, avg),
        ),
    ] {
        let report = engine.execute(&dataset, &query, 5)?;
        println!("\n{label}");
        println!("  {}", report.phase_line());
        for t in &report.results {
            println!("    chain {:?}  score {:.3}", t.ids, t.score);
        }
    }

    // Hybrid query: connection chains *of the same client* (attribute =
    // client id). This folds a non-temporal equality into the join.
    let client_tables: Vec<BTreeMap<u64, u64>> = (0..3)
        .map(|_| attrs.iter().enumerate().map(|(i, (c, _))| (i as u64, *c as u64)).collect())
        .collect();
    let query = table1::q_jbjb(PredicateParams::P3, avg);
    let constraints = [
        AttrConstraint { src: 0, dst: 1, predicate: AttrPredicate::Equal },
        AttrConstraint { src: 1, dst: 2, predicate: AttrPredicate::Equal },
    ];
    let report = execute_hybrid(&engine, &dataset, &query, &client_tables, &constraints, 5)?;
    println!("\nHybrid Q{{jB,jB}} restricted to a single client's connections:");
    for t in &report.results {
        let client = client_tables[0][&t.ids[0]];
        println!("    client {client}: chain {:?}  score {:.3}", t.ids, t.score);
    }
    Ok(())
}
