//! Shape-churn battery for the bounded plan cache: a server whose
//! workload cycles through **more distinct query shapes than the cache
//! holds** must stay within its capacity at every step, evict in a
//! deterministic LRU order under serial access, and still serve every
//! query bit-identical to its solo `Tkij::execute` reference — an
//! evicted plan is recomputed, never a different plan.
//!
//! Capacity 0 keeps the pre-bounded behavior (never evicts), and the
//! default capacity is large enough that the other batteries' mixes
//! never churn — which is what lets `bench_serving` pin evictions at 0.

use tkij::prelude::*;

/// Every deterministic (non-timing) quantity of one execution, in a
/// directly comparable shape (the same capture as the serving battery).
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    results: Vec<(Vec<u64>, u64)>,
    local_stats: Vec<tkij::core::LocalJoinStats>,
    reducer_kth_bits: Vec<u64>,
    topbuckets: (usize, usize, usize, usize, usize, usize, u128, u128),
    distribution: (u64, u64, u64, u64, u64),
    join_shuffle: u64,
    merge_shuffle: u64,
    buckets: (u64, u64),
}

fn fingerprint(report: &ExecutionReport) -> Fingerprint {
    Fingerprint {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        local_stats: report.local_stats.clone(),
        reducer_kth_bits: report.reducer_kth_scores.iter().map(|s| s.to_bits()).collect(),
        topbuckets: (
            report.topbuckets.candidates,
            report.topbuckets.selected,
            report.topbuckets.solver_calls,
            report.topbuckets.pruned_local,
            report.topbuckets.pruned_merge,
            report.topbuckets.worker_groups,
            report.topbuckets.total_results,
            report.topbuckets.selected_results,
        ),
        distribution: (
            report.distribution.assignments_scored,
            report.distribution.cap_fallbacks,
            report.distribution.estimated_shuffle_records,
            report.distribution.replication_factor.to_bits(),
            report.distribution.result_imbalance.to_bits(),
        ),
        join_shuffle: report.join.total_shuffle_records(),
        merge_shuffle: report.merge.total_shuffle_records(),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
    }
}

/// Distinct plan shapes: the cache key includes `k`, so one query
/// family at `SHAPES` different result sizes churns through `SHAPES`
/// distinct cache entries without changing the probe workload much.
const SHAPES: usize = 8;

fn churn_queries() -> Vec<(Query, usize)> {
    (1..=SHAPES).map(|k| (table1::q_om(PredicateParams::P1), k)).collect()
}

fn engine(capacity: usize) -> Tkij {
    Tkij::new(
        TkijConfig::default().with_granules(6).with_reducers(4).with_plan_cache_capacity(capacity),
    )
}

#[test]
fn churn_stays_within_capacity_and_matches_solo() {
    // More distinct shapes than the cache holds, several passes: the
    // cache must never exceed its capacity at *any* step, every shape
    // must miss on every pass (sequential churn through 8 shapes in a
    // 3-slot LRU evicts each shape before its next use), and every
    // served report must still reproduce its solo reference bit for
    // bit — eviction only costs a re-plan, never changes a plan.
    const CAPACITY: usize = 3;
    const PASSES: usize = 3;
    let engine = engine(CAPACITY);
    let dataset = engine.prepare(uniform_collections(3, 80, 555)).unwrap();
    let queries = churn_queries();
    let solo: Vec<Fingerprint> = queries
        .iter()
        .map(|(q, k)| fingerprint(&engine.execute(&dataset, q, *k).unwrap()))
        .collect();

    let server = engine.serve(dataset);
    assert_eq!(server.plan_cache_capacity(), CAPACITY);
    for _ in 0..PASSES {
        for (i, (q, k)) in queries.iter().enumerate() {
            let report = server.query(q, *k).unwrap();
            assert!(
                server.plan_cache_len() <= CAPACITY,
                "cache grew past its capacity after shape {i}: {} > {CAPACITY}",
                server.plan_cache_len()
            );
            assert_eq!(fingerprint(&report), solo[i], "churned shape {i} diverges from solo");
        }
    }

    let stats = server.stats();
    let total = (PASSES * SHAPES) as u64;
    assert_eq!(stats.queries, total);
    assert_eq!(stats.plan_cache_misses, total, "every pass re-misses every evicted shape");
    assert_eq!(stats.plan_cache_hits, 0);
    assert_eq!(stats.plan_cache_evictions, total - CAPACITY as u64);
    assert_eq!(server.plan_cache_len(), CAPACITY);
}

#[test]
fn eviction_sequence_is_deterministic_across_runs() {
    // Two servers over identically prepared datasets serve the same
    // serial churn workload: the full stats snapshot — including the
    // eviction count — and every fingerprint must repeat exactly.
    let run = || {
        let engine = engine(2);
        let dataset = engine.prepare(uniform_collections(3, 80, 777)).unwrap();
        let server = engine.serve(dataset);
        let mut fps = Vec::new();
        for _ in 0..2 {
            for (q, k) in churn_queries() {
                fps.push(fingerprint(&server.query(&q, k).unwrap()));
            }
        }
        (fps, server.stats(), server.plan_cache_len())
    };
    let (fps_a, stats_a, len_a) = run();
    let (fps_b, stats_b, len_b) = run();
    assert_eq!(fps_a, fps_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(len_a, len_b);
    assert!(stats_a.plan_cache_evictions > 0, "the churn workload must actually evict");
}

#[test]
fn lru_keeps_hot_shapes_served() {
    // Server-level LRU semantics: with capacity 2, re-touching shape A
    // before inserting C makes B the victim — A stays a hit, B
    // re-misses. Counters pin the exact hit/miss/eviction sequence.
    let engine = engine(2);
    let dataset = engine.prepare(uniform_collections(3, 60, 111)).unwrap();
    let server = engine.serve(dataset);
    let q = table1::q_om(PredicateParams::P1);

    server.query(&q, 1).unwrap(); // A: miss
    server.query(&q, 2).unwrap(); // B: miss
    server.query(&q, 1).unwrap(); // A: hit (now most recent)
    server.query(&q, 3).unwrap(); // C: miss, evicts B (LRU)
    server.query(&q, 1).unwrap(); // A: hit — survived the eviction
    server.query(&q, 2).unwrap(); // B: re-miss, evicts C

    let stats = server.stats();
    assert_eq!(stats.queries, 6);
    assert_eq!(stats.plan_cache_hits, 2);
    assert_eq!(stats.plan_cache_misses, 4);
    assert_eq!(stats.plan_cache_evictions, 2);
    assert_eq!(server.plan_cache_len(), 2);
}

#[test]
fn zero_capacity_is_unbounded() {
    // Capacity 0 preserves the pre-bounded behavior: every distinct
    // shape stays cached and nothing is ever evicted.
    let engine = engine(0);
    let dataset = engine.prepare(uniform_collections(3, 60, 222)).unwrap();
    let server = engine.serve(dataset);
    assert_eq!(server.plan_cache_capacity(), 0);
    for _ in 0..2 {
        for (q, k) in churn_queries() {
            server.query(&q, k).unwrap();
        }
    }
    let stats = server.stats();
    assert_eq!(stats.plan_cache_misses, SHAPES as u64, "one miss per shape, no churn");
    assert_eq!(stats.plan_cache_hits, SHAPES as u64, "the second pass hits every shape");
    assert_eq!(stats.plan_cache_evictions, 0);
    assert_eq!(server.plan_cache_len(), SHAPES);
}
