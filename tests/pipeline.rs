//! Full-pipeline plumbing: dataset preparation, updates, persistence,
//! hybrid queries, determinism across cluster shapes, report contents.

use std::collections::BTreeMap;
use tkij::core::hybrid::{execute_hybrid, AttrConstraint, AttrPredicate};
use tkij::core::naive::naive_topk_where;
use tkij::prelude::*;

#[test]
fn updates_are_equivalent_to_rebuilding() {
    let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(3));
    let mut dataset = engine.prepare(uniform_collections(3, 40, 64)).unwrap();
    let q = table1::q_om(PredicateParams::P1);

    // Apply a batch of inserts and deletes.
    dataset.insert(0, Interval::new(900, 50_000, 50_040).unwrap());
    dataset.insert(1, Interval::new(901, 50_010, 50_060).unwrap());
    dataset.insert(2, Interval::new(902, 50_060, 50_100).unwrap());
    let removed = dataset.remove(0, 3).expect("id 3 exists");
    assert_eq!(removed.id, 3);

    // A dataset rebuilt from the updated collections must agree.
    let rebuilt = engine.prepare(dataset.collections.clone()).unwrap();
    assert_eq!(dataset.matrices, rebuilt.matrices, "incremental == rebuild");

    let a = engine.execute(&dataset, &q, 8).unwrap();
    let b = engine.execute(&rebuilt, &q, 8).unwrap();
    assert_eq!(
        a.results.iter().map(|t| t.ids.clone()).collect::<Vec<_>>(),
        b.results.iter().map(|t| t.ids.clone()).collect::<Vec<_>>()
    );
    // The inserted chain is a strong match and must surface.
    assert!(a.results.iter().any(|t| t.ids == vec![900, 901, 902]));
}

#[test]
fn text_persistence_roundtrip_through_files() {
    let dir = std::env::temp_dir().join("tkij-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let collections = uniform_collections(2, 60, 77);
    // Write + read back through the plain-text format.
    let mut restored = Vec::new();
    for c in &collections {
        let path = dir.join(format!("c{}.csv", c.id.0));
        let mut buf = Vec::new();
        c.write_text(&mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let file = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        restored.push(IntervalCollection::read_text(c.id, file).unwrap());
    }
    assert_eq!(collections, restored);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deterministic_across_cluster_shapes() {
    let q = table1::q_sfm(PredicateParams::P2);
    let mut outputs = Vec::new();
    for (threads, map_slots) in [(0usize, 2usize), (4, 6), (2, 1)] {
        let engine = Tkij::with_cluster(
            TkijConfig::default().with_granules(7).with_reducers(5),
            ClusterConfig {
                map_slots,
                reduce_slots: 24,
                worker_threads: threads,
                ..Default::default()
            },
        );
        let dataset = engine.prepare(uniform_collections(3, 70, 1234)).unwrap();
        let report = engine.execute(&dataset, &q, 6).unwrap();
        outputs.push(report.results.iter().map(|t| (t.ids.clone(), t.score)).collect::<Vec<_>>());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn hybrid_pipeline_matches_filtered_oracle() {
    let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4));
    let dataset = engine.prepare(uniform_collections(3, 28, 31)).unwrap();
    let q = table1::q_fb(PredicateParams::P1);
    let tables: Vec<BTreeMap<u64, u64>> = dataset
        .collections
        .iter()
        .map(|c| c.intervals().iter().map(|iv| (iv.id, iv.id % 4)).collect())
        .collect();
    let constraints = [AttrConstraint { src: 0, dst: 2, predicate: AttrPredicate::Equal }];
    let report = execute_hybrid(&engine, &dataset, &q, &tables, &constraints, 7).unwrap();
    let refs: Vec<_> = q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
    let expected = naive_topk_where(&q, &refs, 7, |t| t[0].id % 4 == t[2].id % 4);
    assert_eq!(report.results.len(), expected.len());
    for (g, e) in report.results.iter().zip(&expected) {
        assert!((g.score - e.score).abs() < 1e-9, "{g:?} vs {e:?}");
        assert_eq!(g.ids[0] % 4, g.ids[2] % 4, "constraint must hold on returned tuples");
    }
}

#[test]
fn report_exposes_all_paper_metrics() {
    let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(6));
    let dataset = engine.prepare(uniform_collections(3, 90, 2)).unwrap();
    let report = engine.execute(&dataset, &table1::q_oo(PredicateParams::P1), 5).unwrap();

    // Fig. 9 / 10c: phase breakdown.
    assert!(report.phase_line().contains("TopBuckets"));
    // Fig. 10b: imbalance is max/avg ≥ 1 (or exactly 1 when degenerate).
    assert!(report.join.imbalance() >= 1.0 - 1e-9);
    // Fig. 8b: max reducer time ≤ sum of reducer times.
    let sum: std::time::Duration = report.join.reduce_durations.iter().sum();
    assert!(report.join.max_reduce() <= sum + std::time::Duration::from_nanos(1));
    // Fig. 8c: min k-th score within [0, 1].
    let kth = report.min_kth_score();
    assert!((0.0..=1.0).contains(&kth));
    // Fig. 10c: pruning percentage within [0, 100].
    assert!((0.0..=100.0).contains(&report.pruned_pct()));
    // §4.2.2: shuffle accounting present.
    assert!(report.distribution.estimated_shuffle_records > 0);
    // Simulated cluster time composes phases.
    let cluster = ClusterConfig::default();
    assert!(report.simulated_total(&cluster) >= report.topbuckets.duration);
    // Statistics job also produced metrics.
    assert!(dataset.stats_metrics.total_shuffle_records() > 0);
}

#[test]
fn stats_collection_insensitive_to_granularity_cost() {
    // §4: "only the number of intervals per collection had a significant
    // impact on statistics collection time" — structurally, the job's
    // shuffle volume depends on g only through matrix size, not on |Ci|.
    let engine20 = Tkij::new(TkijConfig::default().with_granules(20));
    let engine40 = Tkij::new(TkijConfig::default().with_granules(40));
    let c = uniform_collections(2, 500, 8);
    let d20 = engine20.prepare(c.clone()).unwrap();
    let d40 = engine40.prepare(c).unwrap();
    assert_eq!(
        d20.stats_metrics.total_shuffle_records(),
        d40.stats_metrics.total_shuffle_records(),
        "one matrix message per mapper per collection, regardless of g"
    );
    assert_eq!(d20.matrices[0].total(), d40.matrices[0].total());
}

#[test]
fn empty_selection_yields_empty_results_not_errors() {
    // A query whose collections cannot produce positive scores still runs
    // and returns the best (possibly zero-score) tuples, never erroring.
    let c1 = IntervalCollection::new(
        CollectionId(0),
        vec![Interval::new(0, 0, 10).unwrap(), Interval::new(1, 5, 15).unwrap()],
    )
    .unwrap();
    let c2 = IntervalCollection::new(
        CollectionId(1),
        vec![Interval::new(0, 1_000_000, 1_000_010).unwrap()],
    )
    .unwrap();
    let q = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge {
            src: 0,
            dst: 1,
            predicate: TemporalPredicate::meets(PredicateParams::P1),
        }],
        Aggregation::NormalizedSum,
    )
    .unwrap();
    let engine = Tkij::new(TkijConfig::default().with_granules(4).with_reducers(2));
    let dataset = engine.prepare(vec![c1, c2]).unwrap();
    let report = engine.execute(&dataset, &q, 5).unwrap();
    // All pairs score 0 under s-meets; the exact top-k still returns them.
    assert_eq!(report.results.len(), 2);
    assert!(report.results.iter().all(|t| t.score == 0.0));
}
