//! Thread-count determinism of the **intra-reducer sharded join**: every
//! deterministic field of the `ExecutionReport` (results with ids, local
//! join telemetry, phase counters, shuffle accounting — everything
//! except wall timings and the execution-shape `intra_threads_used`
//! record) must be bit-identical for `intra_join_threads` ∈ {0, 1, 2, 4}
//! across all three backends and all three TopBuckets strategies — and
//! across the sweep scan kinds `{Scalar, Chunked}`, sharing **one**
//! reference fingerprint per (strategy, backend), since the chunked lane
//! scan must be a pure wall-clock knob — plus repeat-run bit-identity.
//! Mirrors `tests/thread_determinism.rs`, which pins the same property
//! for the outer `worker_threads` knob.
//!
//! This is the contract that makes the parallel local join safe: the
//! chunk schedule, wave boundaries and shared-bound publication points
//! are a pure function of the data and `probe_chunk_items` — threads
//! only execute the fixed plan.

use tkij::core::Strategy;
use tkij::prelude::*;

/// One job's `ShuffleStats` fields, in registry order.
type SpillFp = (u64, u64, u64, u64);

/// Every deterministic (non-timing, non-shape) quantity of one
/// execution, in a directly comparable form.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    results: Vec<(Vec<u64>, u64)>,
    local_stats: Vec<tkij::core::LocalJoinStats>,
    reducer_kth_bits: Vec<u64>,
    topbuckets: (usize, usize, usize, usize, usize, usize, u128, u128),
    distribution: (u64, u64, u64, u64, u64),
    join_shuffle: u64,
    merge_shuffle: u64,
    buckets: (u64, u64),
    probe_chunks: u64,
    /// Serialized-shuffle spill accounting of (join, merge) — all-zero on
    /// the in-memory transport, thread-invariant under forced spilling.
    shuffle: (SpillFp, SpillFp),
}

/// The four `ShuffleStats` fields of one job, in registry order.
fn shuffle_fp(m: &tkij::mapreduce::JobMetrics) -> SpillFp {
    (m.shuffle.records_spilled, m.shuffle.spill_segments, m.shuffle.spill_bytes, m.shuffle.checksum)
}

fn fingerprint(report: &ExecutionReport) -> Fingerprint {
    Fingerprint {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        local_stats: report
            .local_stats
            .iter()
            .map(|s| {
                // `intra_threads_used` records the execution *shape*: it
                // is deterministic per configuration (asserted below)
                // but, like the timings, legitimately differs across
                // thread knobs — every other field must not.
                let mut s = s.clone();
                s.intra_threads_used = 0;
                s
            })
            .collect(),
        reducer_kth_bits: report.reducer_kth_scores.iter().map(|s| s.to_bits()).collect(),
        topbuckets: (
            report.topbuckets.candidates,
            report.topbuckets.selected,
            report.topbuckets.solver_calls,
            report.topbuckets.pruned_local,
            report.topbuckets.pruned_merge,
            report.topbuckets.worker_groups,
            report.topbuckets.total_results,
            report.topbuckets.selected_results,
        ),
        distribution: (
            report.distribution.assignments_scored,
            report.distribution.cap_fallbacks,
            report.distribution.estimated_shuffle_records,
            report.distribution.replication_factor.to_bits(),
            report.distribution.result_imbalance.to_bits(),
        ),
        join_shuffle: report.join.total_shuffle_records(),
        merge_shuffle: report.merge.total_shuffle_records(),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
        probe_chunks: report.probe_chunks(),
        shuffle: (shuffle_fp(&report.join), shuffle_fp(&report.merge)),
    }
}

/// A small chunk size so the seeded workload splits every hot candidate
/// run into many chunks and the wave machinery actually engages.
const CHUNK: usize = 16;

fn run(
    dataset: &PreparedDataset,
    strategy: Strategy,
    backend: LocalJoinBackend,
    scan: SweepScanKind,
    intra_threads: usize,
) -> ExecutionReport {
    let engine = Tkij::with_cluster(
        TkijConfig::default()
            .with_granules(4)
            .with_reducers(3)
            .with_strategy(strategy)
            .with_local_backend(backend)
            .with_sweep_scan(scan)
            .with_probe_chunk_items(CHUNK),
        ClusterConfig::default().with_intra_join_threads(intra_threads),
    );
    let q = table1::q_om(PredicateParams::P1);
    engine.execute(dataset, &q, 30).unwrap()
}

#[test]
fn report_identical_across_intra_threads_and_scan_kinds() {
    let base = Tkij::new(TkijConfig::default().with_granules(4));
    let dataset = base.prepare(uniform_collections(3, 150, 909)).unwrap();
    let mut any_parallel_wave = false;
    for (sname, strategy) in Strategy::all() {
        for (bname, backend) in LocalJoinBackend::all() {
            // One reference per (strategy, backend): scalar scan,
            // sequential. The whole {Scalar, Chunked} × intra-thread
            // grid must reproduce it bit for bit.
            let reference = run(&dataset, strategy, backend, SweepScanKind::Scalar, 0);
            let reference_fp = fingerprint(&reference);
            assert!(!reference_fp.results.is_empty(), "{sname}/{bname}: produces results");
            assert!(reference_fp.probe_chunks > 0, "{sname}/{bname}: chunks are counted");
            assert_eq!(
                reference.intra_threads_used(),
                0,
                "{sname}/{bname}: sequential execution spawns no chunk workers"
            );
            for (kname, scan) in SweepScanKind::all() {
                for threads in [0usize, 1, 2, 4] {
                    if scan == SweepScanKind::Scalar && threads == 0 {
                        continue; // the reference itself
                    }
                    let report = run(&dataset, strategy, backend, scan, threads);
                    assert_eq!(
                        fingerprint(&report),
                        reference_fp,
                        "{sname}/{bname}/{kname}: report diverges from the scalar \
                         sequential reference at intra threads {threads}"
                    );
                    any_parallel_wave |= report.intra_threads_used() >= 2;
                }
            }
        }
    }
    // The battery must actually exercise the parallel path, not just the
    // inline chunks — otherwise the identity above is vacuous.
    assert!(any_parallel_wave, "no configuration ever ran a parallel wave");
}

#[test]
fn repeated_parallel_runs_are_bit_identical() {
    // Same engine, same dataset, executed twice at intra threads 4:
    // every counter — including the execution-shape record — and every
    // score bit must repeat exactly.
    let engine = Tkij::with_cluster(
        TkijConfig::default()
            .with_granules(3)
            .with_reducers(2)
            .with_local_backend(LocalJoinBackend::Auto)
            .with_probe_chunk_items(CHUNK),
        ClusterConfig::default().with_intra_join_threads(4),
    );
    let dataset = engine.prepare(uniform_collections(3, 120, 777)).unwrap();
    let q = table1::q_sm(PredicateParams::P2);
    let a = engine.execute(&dataset, &q, 25).unwrap();
    let b = engine.execute(&dataset, &q, 25).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.intra_threads_used(), b.intra_threads_used(), "shape repeats too");
}
