//! The textual query syntax and the completed Allen algebra, exercised
//! end to end through the engine.

use tkij::prelude::*;
use tkij::temporal::parse_query;

#[test]
fn parsed_queries_run_identically_to_built_ones() {
    let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4));
    let dataset = engine.prepare(uniform_collections(3, 40, 808)).unwrap();
    let p = PredicateParams::P1;
    for (text, built) in [
        ("overlaps(1,2), meets(2,3)", table1::q_om(p)),
        ("starts(1,2), finishedBy(2,3), meets(1,3)", table1::q_sfm(p)),
        ("b(1,2), b(1,3)", table1::q_b_star(3, p)),
    ] {
        let parsed = parse_query(text, p, 0).unwrap();
        assert_eq!(parsed, built, "{text}");
        let a = engine.execute(&dataset, &parsed, 6).unwrap();
        let b = engine.execute(&dataset, &built, 6).unwrap();
        assert_eq!(
            a.results.iter().map(|t| (t.ids.clone(), t.score)).collect::<Vec<_>>(),
            b.results.iter().map(|t| (t.ids.clone(), t.score)).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn inverse_relations_mirror_their_base_through_the_engine() {
    // during(1,2) must return the mirror tuples of contains(2,1)-style
    // queries: run `contains` with the vertices swapped and compare.
    let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(3));
    let dataset = engine.prepare(uniform_collections(2, 60, 313)).unwrap();
    let p = PredicateParams::P1;

    let during = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge { src: 0, dst: 1, predicate: TemporalPredicate::during(p) }],
        Aggregation::NormalizedSum,
    )
    .unwrap();
    // contains with src/dst exchanged is the same relation.
    let contains_swapped = Query::new(
        vec![CollectionId(0), CollectionId(1)],
        vec![QueryEdge { src: 1, dst: 0, predicate: TemporalPredicate::contains(p) }],
        Aggregation::NormalizedSum,
    )
    .unwrap();

    let a = engine.execute(&dataset, &during, 8).unwrap();
    let b = engine.execute(&dataset, &contains_swapped, 8).unwrap();
    let scores = |r: &ExecutionReport| r.results.iter().map(|t| t.score).collect::<Vec<_>>();
    assert_eq!(scores(&a).len(), scores(&b).len());
    for (x, y) in scores(&a).iter().zip(scores(&b).iter()) {
        assert!((x - y).abs() < 1e-9);
    }
}

#[test]
fn parsed_inverse_predicates_match_oracle() {
    let engine = Tkij::new(TkijConfig::default().with_granules(5).with_reducers(3));
    let dataset = engine.prepare(uniform_collections(2, 45, 99)).unwrap();
    let p = PredicateParams::P2;
    for text in ["after(1,2)", "metBy(1,2)", "during(1,2)", "finishes(1,2)", "oB(1,2)"] {
        let q = parse_query(text, p, 0).unwrap();
        let report = engine.execute(&dataset, &q, 7).unwrap();
        let refs: Vec<_> = q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
        let expected = naive_topk(&q, &refs, 7);
        assert_eq!(report.results.len(), expected.len(), "{text}");
        for (g, e) in report.results.iter().zip(&expected) {
            assert!((g.score - e.score).abs() < 1e-9, "{text}");
        }
    }
}
