//! Consistency between the Boolean competitors (RCCIS, All-Matrix), the
//! exhaustive Boolean oracle and TKIJ under the PB parameterization
//! (paper §4.2.5's comparison methodology).

use tkij::baselines::{feasible_signatures, run_all_matrix, run_rccis};
use tkij::datagen::synthetic::{uniform_collection, SyntheticConfig};
use tkij::prelude::*;

/// Dense synthetic data so colocation matches exist in quantity.
fn dense(m: usize, size: usize, seed: u64) -> Vec<IntervalCollection> {
    (0..m as u32)
        .map(|i| {
            uniform_collection(
                CollectionId(i),
                &SyntheticConfig { size, start_range: (0, 2_000), length_range: (1, 100), seed },
            )
        })
        .collect()
}

#[test]
fn rccis_and_oracle_agree_on_every_colocation_query() {
    let collections = dense(3, 90, 5);
    let cluster = ClusterConfig::default();
    for (name, q) in [
        ("Qo,o", table1::q_oo(PredicateParams::PB)),
        ("Qf,f", table1::q_ff(PredicateParams::PB)),
        ("Qs,s", table1::q_ss(PredicateParams::PB)),
        ("Qs,m", table1::q_sm(PredicateParams::PB)),
        ("Qs,f,m", table1::q_sfm(PredicateParams::PB)),
    ] {
        let refs: Vec<_> = q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
        let expected = naive_boolean(&q, &refs);
        let report = run_rccis(&q, &collections, usize::MAX, 12, &cluster).expect(name);
        let mut got: Vec<Vec<u64>> = report.results.iter().map(|t| t.ids.clone()).collect();
        got.sort();
        assert_eq!(got, expected, "{name}");
    }
}

#[test]
fn all_matrix_and_oracle_agree_on_every_sequence_query() {
    let collections = dense(3, 70, 6);
    let avg = collections[0].avg_length();
    let cluster = ClusterConfig::default();
    for (name, q) in [
        ("Qb,b", table1::q_bb(PredicateParams::PB)),
        ("Qb*", table1::q_b_star(3, PredicateParams::PB)),
        ("QjB,jB", table1::q_jbjb(PredicateParams::PB, avg)),
    ] {
        let refs: Vec<_> = q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
        let expected = naive_boolean(&q, &refs);
        let report = run_all_matrix(&q, &collections, usize::MAX, 4, &cluster).expect(name);
        let mut got: Vec<Vec<u64>> = report.results.iter().map(|t| t.ids.clone()).collect();
        got.sort();
        assert_eq!(got, expected, "{name}");
    }
}

#[test]
fn tkij_pb_dominates_boolean_matches() {
    // Under PB, every Boolean match scores exactly 1.0. If at least k
    // Boolean matches exist, TKIJ-PB's top-k must be k tuples of score
    // 1.0 — i.e. TKIJ returns (a subset of) exactly what the Boolean
    // baselines hunt for.
    let collections = dense(3, 80, 9);
    let q = table1::q_oo(PredicateParams::PB);
    let refs: Vec<_> = q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
    let boolean = naive_boolean(&q, &refs);
    assert!(boolean.len() >= 10, "need enough Boolean matches for the test");

    let engine = Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4));
    let dataset = engine.prepare(collections.clone()).unwrap();
    let report = engine.execute(&dataset, &q, 10).unwrap();
    assert_eq!(report.results.len(), 10);
    let matches: std::collections::HashSet<Vec<u64>> = boolean.into_iter().collect();
    for t in &report.results {
        assert!((t.score - 1.0).abs() < 1e-12, "PB top-k must be perfect scores");
        assert!(matches.contains(&t.ids), "TKIJ-PB result must be a Boolean match");
    }

    // And the baselines, capped at the same k, also return 10 matches.
    let rccis = run_rccis(&q, &collections, 10, 12, &ClusterConfig::default()).unwrap();
    assert_eq!(rccis.results.len(), 10);
}

#[test]
fn tkij_scored_returns_k_even_when_boolean_is_scarce() {
    // §4.2.5: "Because TKIJ must return k results, if only k' < k results
    // satisfy the Boolean predicates, k−k' other results that do not
    // satisfy at least one predicate will be returned (with S(t) < 1)".
    let collections = dense(3, 25, 13);
    let q = table1::q_ss(PredicateParams::PB); // equality-heavy, scarce
    let refs: Vec<_> = q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
    let boolean = naive_boolean(&q, &refs).len();
    let k = boolean + 5;
    let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(3));
    let dataset = engine.prepare(collections).unwrap();
    let report = engine.execute(&dataset, &q, k).unwrap();
    assert_eq!(report.results.len(), k.min(25 * 25 * 25));
    let perfect = report.results.iter().filter(|t| (t.score - 1.0).abs() < 1e-12).count();
    assert_eq!(perfect, boolean, "exactly the Boolean matches score 1.0 under PB");
}

#[test]
fn all_matrix_reducer_grid_matches_paper_formula() {
    // Chain queries: the number of reducers is the number of
    // non-decreasing granule triples (the paper's 20 at g = 4, n = 3).
    let q = table1::q_bb(PredicateParams::PB);
    assert_eq!(feasible_signatures(&q, 4).len(), 20);
    assert_eq!(feasible_signatures(&q, 2).len(), 4);
    let q4 = {
        use tkij::temporal::predicate::PredicateKind as K;
        // 4-way before chain.
        let p = PredicateParams::PB;
        Query::new(
            (0..4).map(CollectionId).collect(),
            (0..3)
                .map(|i| QueryEdge {
                    src: i,
                    dst: i + 1,
                    predicate: TemporalPredicate::from_kind(K::Before, p, 0),
                })
                .collect(),
            Aggregation::NormalizedSum,
        )
        .unwrap()
    };
    // Multisets of size 4 from 4 granules: C(7, 4) = 35.
    assert_eq!(feasible_signatures(&q4, 4).len(), 35);
}

#[test]
fn baselines_report_phase_metrics() {
    let collections = dense(3, 60, 21);
    let rccis = run_rccis(
        &table1::q_oo(PredicateParams::PB),
        &collections,
        50,
        8,
        &ClusterConfig::default(),
    )
    .unwrap();
    assert_eq!(rccis.phases.len(), 2, "cascade: one stage per extra vertex");
    assert!(rccis.phases.iter().all(|(_, m)| m.total_shuffle_records() > 0));

    let am = run_all_matrix(
        &table1::q_bb(PredicateParams::PB),
        &collections,
        50,
        4,
        &ClusterConfig::default(),
    )
    .unwrap();
    assert_eq!(am.phases.len(), 1);
    assert_eq!(am.phases[0].1.reduce_durations.len(), 20);
}
