//! Plan-cache correctness, property-tested: a cache-*hit* query must be
//! bitwise-identical — scores, ids, and every work counter except the
//! serving cache counters themselves — to a cold-cache run and to a
//! solo `Tkij::execute` run, across all three TopBuckets strategies and
//! every local-join backend (the paper's R-tree, the sweep store, and
//! the per-bucket Auto mixture).
//!
//! This is the property that makes plan caching safe to enable by
//! default: planning is a pure function of (dataset statistics, query,
//! k, config), so replaying a cached plan may never move a result bit
//! or a gated counter.

use proptest::prelude::*;
use tkij::prelude::*;
// `proptest::prelude::Strategy` (the generator trait) shadows TKIJ's
// TopBuckets `Strategy` enum under the double glob import.
use tkij::core::Strategy;

/// Results plus every deterministic work counter of one execution.
#[derive(Debug, Clone, PartialEq)]
struct Capture {
    results: Vec<(Vec<u64>, u64)>,
    local_stats: Vec<tkij::core::LocalJoinStats>,
    topbuckets_selected: usize,
    topbuckets_solver_calls: usize,
    shuffle_records: u64,
    buckets: (u64, u64),
}

fn capture(report: &ExecutionReport) -> Capture {
    Capture {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        local_stats: report.local_stats.clone(),
        topbuckets_selected: report.topbuckets.selected,
        topbuckets_solver_calls: report.topbuckets.solver_calls,
        shuffle_records: report.join.total_shuffle_records(),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cache_hit_is_bitwise_identical_to_cold_run(
        seed in 0u64..10_000,
        size in 12usize..32,
        k in 1usize..10,
        g in 2u32..7,
        q_idx in 0usize..4,
    ) {
        let collections = uniform_collections(3, size, seed);
        let q = match q_idx {
            0 => table1::q_om(PredicateParams::P1),
            1 => table1::q_sm(PredicateParams::P2),
            2 => table1::q_oo(PredicateParams::P1),
            _ => table1::q_bb(PredicateParams::P3),
        };
        for (sname, strategy) in Strategy::all() {
            for (bname, backend) in LocalJoinBackend::all() {
                let engine = Tkij::new(
                    TkijConfig::default()
                        .with_granules(g)
                        .with_reducers(3)
                        .with_strategy(strategy)
                        .with_local_backend(backend),
                );
                // Statistics collection is deterministic, so a second
                // prepare of the same collections is the same dataset.
                let dataset = engine.prepare(collections.clone()).unwrap();
                let solo = capture(&engine.execute(&dataset, &q, k).unwrap());
                let server = engine.serve(dataset);
                let cold = capture(&server.query(&q, k).unwrap());
                let hit = capture(&server.query(&q, k).unwrap());
                let stats = server.stats();
                prop_assert_eq!(stats.plan_cache_misses, 1);
                prop_assert_eq!(stats.plan_cache_hits, 1);
                prop_assert_eq!(
                    &cold, &solo,
                    "{}/{}: cold-cache serving diverges from solo execute", sname, bname
                );
                prop_assert_eq!(
                    &hit, &cold,
                    "{}/{}: cache-hit run diverges from cold-cache run", sname, bname
                );
            }
        }
    }
}
