//! Workspace smoke test: one end-to-end Table 1 query (`q_om`) on
//! `uniform_collections(3, 200, 7)` through every TopBuckets strategy —
//! the determinism canary for future refactors.
//!
//! TKIJ's exactness guarantee (paper Def. 2) is the top-k *score
//! multiset*: tuples tied at the k-th score are interchangeable, and the
//! strategies deliberately prune tie-only work, so the id sets may differ
//! across strategies inside a tie plateau. The canary therefore asserts,
//! from strongest to weakest guarantee:
//!
//! 1. where the top-k set is unique (k = 1 here; rank 2 onward is a wide
//!    0.5-score plateau), ids and scores are identical across strategies;
//! 2. for k = 10, the score vectors are bit-identical across strategies;
//! 3. each strategy is bit-deterministic run-to-run, ids included.

use tkij::prelude::*;

fn run(strategy: Strategy, k: usize) -> Vec<(Vec<u64>, f64)> {
    let engine =
        Tkij::new(TkijConfig::default().with_granules(8).with_reducers(4).with_strategy(strategy));
    let dataset = engine.prepare(uniform_collections(3, 200, 7)).unwrap();
    let report = engine.execute(&dataset, &table1::q_om(PredicateParams::P1), k).unwrap();
    assert_eq!(report.results.len(), k, "{strategy:?}: expected a full top-{k}");
    assert!(
        report.results.windows(2).all(|w| w[0].score >= w[1].score),
        "{strategy:?}: results must be sorted by descending score"
    );
    for t in &report.results {
        assert!((0.0..=1.0).contains(&t.score), "{strategy:?}: score {} outside [0, 1]", t.score);
    }
    report.results.iter().map(|t| (t.ids.clone(), t.score)).collect()
}

#[test]
fn q_om_top1_identical_across_strategies() {
    // The best q_om match on this workload is unique (0.59375 vs a 0.5
    // plateau), so every strategy must return the same tuple, ids and all.
    let mut reference: Option<Vec<(Vec<u64>, f64)>> = None;
    for (name, strategy) in Strategy::all() {
        let outcome = run(strategy, 1);
        match &reference {
            None => reference = Some(outcome),
            Some(expected) => {
                assert_eq!(expected, &outcome, "{name}: unique top-1 differs across strategies")
            }
        }
    }
}

#[test]
fn q_om_top10_scores_identical_across_strategies() {
    let mut reference: Option<Vec<f64>> = None;
    for (name, strategy) in Strategy::all() {
        let scores: Vec<f64> = run(strategy, 10).into_iter().map(|(_, s)| s).collect();
        match &reference {
            None => reference = Some(scores),
            Some(expected) => assert_eq!(
                expected, &scores,
                "{name}: top-10 score multiset differs across strategies"
            ),
        }
    }
}

#[test]
fn q_om_is_deterministic_across_runs() {
    // Same seed, same config → byte-identical report, run to run, for
    // every strategy. Guards the workload generator and the engine
    // against hidden nondeterminism (hash-map iteration order, thread
    // scheduling leaking into results, ...).
    for (name, strategy) in Strategy::all() {
        assert_eq!(run(strategy, 10), run(strategy, 10), "{name}: nondeterministic run");
    }
}
