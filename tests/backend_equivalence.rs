//! Local-join backend equivalence, end to end through the public facade:
//! the R-tree and sweep candidate sources must produce **identical**
//! top-k results against the naive oracle, across all three TopBuckets
//! strategies, for randomized workloads and queries.
//!
//! Scores are compared *bitwise* between backends: both evaluate the same
//! winning tuples with identical floating-point arithmetic, so the score
//! vectors must match to the last bit — any divergence means a backend
//! served a wrong candidate set.

use proptest::prelude::*;
use tkij::prelude::*;
// `proptest::prelude::Strategy` (the generator trait) shadows TKIJ's
// TopBuckets `Strategy` enum under the double glob import.
use tkij::core::Strategy;

fn run(
    backend: LocalJoinBackend,
    strategy: Strategy,
    collections: &[IntervalCollection],
    q: &Query,
    k: usize,
    g: u32,
) -> Vec<f64> {
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(g)
            .with_reducers(3)
            .with_strategy(strategy)
            .with_local_backend(backend),
    );
    let dataset = engine.prepare(collections.to_vec()).unwrap();
    let report = engine.execute(&dataset, q, k).unwrap();
    let refs: Vec<&IntervalCollection> =
        q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
    let expected = naive_topk(q, &refs, k);
    assert_eq!(report.results.len(), expected.len(), "{strategy:?}/{backend:?}: cardinality");
    for (got, want) in report.results.iter().zip(&expected) {
        assert!(
            (got.score - want.score).abs() < 1e-9,
            "{strategy:?}/{backend:?}: {} vs oracle {}",
            got.score,
            want.score
        );
    }
    report.results.iter().map(|t| t.score).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both backends equal the oracle and each other (bitwise) for random
    /// workloads, across every TopBuckets strategy.
    #[test]
    fn backends_identical_across_strategies(
        seed in 0u64..10_000,
        size in 12usize..40,
        k in 1usize..12,
        g in 2u32..9,
        q_idx in 0usize..4,
    ) {
        let collections = uniform_collections(3, size, seed);
        let q = match q_idx {
            0 => table1::q_om(PredicateParams::P1),
            1 => table1::q_sm(PredicateParams::P2),
            2 => table1::q_oo(PredicateParams::P1),
            _ => table1::q_bb(PredicateParams::P3),
        };
        for (_, strategy) in Strategy::all() {
            let rt = run(LocalJoinBackend::RTree, strategy, &collections, &q, k, g);
            let sw = run(LocalJoinBackend::Sweep, strategy, &collections, &q, k, g);
            prop_assert_eq!(rt.len(), sw.len());
            for (a, b) in rt.iter().zip(&sw) {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}: backend scores diverge: {} vs {}", strategy, a, b
                );
            }
        }
    }
}

#[test]
fn early_termination_fires_with_the_sweep_backend() {
    // A workload with a dominant score cluster: once k high scorers are
    // found, dominated combinations must be skipped by the runtime
    // early-termination check regardless of the backend.
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(10)
            .with_reducers(2)
            .with_local_backend(LocalJoinBackend::Sweep)
            .without_pruning(),
    );
    let dataset = engine.prepare(uniform_collections(2, 120, 31)).unwrap();
    let q = {
        use tkij::temporal::{predicate::TemporalPredicate, query::QueryEdge};
        Query::new(
            vec![CollectionId(0), CollectionId(1)],
            vec![QueryEdge {
                src: 0,
                dst: 1,
                predicate: TemporalPredicate::meets(PredicateParams::P1),
            }],
            Aggregation::NormalizedSum,
        )
        .unwrap()
    };
    let report = engine.execute(&dataset, &q, 3).unwrap();
    let assigned: usize = report.local_stats.iter().map(|s| s.combos_assigned).sum();
    let processed: usize = report.local_stats.iter().map(|s| s.combos_processed).sum();
    assert!(processed > 0);
    assert!(
        processed < assigned,
        "early termination must skip dominated combos with the sweep backend \
         (processed {processed} of {assigned})"
    );
}
