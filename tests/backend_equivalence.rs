//! Local-join backend equivalence, end to end through the public facade:
//! the R-tree, sweep, and per-bucket `Auto` candidate sources must
//! produce **identical** top-k results against the naive oracle, across
//! all three TopBuckets strategies, for randomized workloads and queries.
//!
//! Scores are compared *bitwise* between backends: all evaluate the same
//! winning tuples with identical floating-point arithmetic, so the score
//! vectors must match to the last bit — any divergence means a backend
//! served a wrong candidate set (or the auto selector changed a bucket's
//! candidate semantics, which it must never do).

use proptest::prelude::*;
use tkij::prelude::*;
// `proptest::prelude::Strategy` (the generator trait) shadows TKIJ's
// TopBuckets `Strategy` enum under the double glob import.
use tkij::core::Strategy;

fn run(
    backend: LocalJoinBackend,
    strategy: Strategy,
    scan: SweepScanKind,
    collections: &[IntervalCollection],
    q: &Query,
    k: usize,
    g: u32,
) -> Vec<f64> {
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(g)
            .with_reducers(3)
            .with_strategy(strategy)
            .with_local_backend(backend)
            .with_sweep_scan(scan),
    );
    let dataset = engine.prepare(collections.to_vec()).unwrap();
    let report = engine.execute(&dataset, q, k).unwrap();
    let refs: Vec<&IntervalCollection> =
        q.vertices.iter().map(|c| &dataset.collections[c.0 as usize]).collect();
    let expected = naive_topk(q, &refs, k);
    assert_eq!(report.results.len(), expected.len(), "{strategy:?}/{backend:?}: cardinality");
    for (got, want) in report.results.iter().zip(&expected) {
        assert!(
            (got.score - want.score).abs() < 1e-9,
            "{strategy:?}/{backend:?}: {} vs oracle {}",
            got.score,
            want.score
        );
    }
    report.results.iter().map(|t| t.score).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three backends — both fixed ones and `Auto`'s per-bucket
    /// mixture — equal the oracle and each other (bitwise) for random
    /// workloads, across every TopBuckets strategy and both sweep scan
    /// kinds: a randomly drawn kind drives the sweep-indexed runs, and
    /// the *other* kind must reproduce the sweep run bit for bit.
    #[test]
    fn backends_identical_across_strategies(
        seed in 0u64..10_000,
        size in 12usize..40,
        k in 1usize..12,
        g in 2u32..9,
        q_idx in 0usize..4,
        scan_idx in 0usize..2,
    ) {
        let collections = uniform_collections(3, size, seed);
        let q = match q_idx {
            0 => table1::q_om(PredicateParams::P1),
            1 => table1::q_sm(PredicateParams::P2),
            2 => table1::q_oo(PredicateParams::P1),
            _ => table1::q_bb(PredicateParams::P3),
        };
        let scan = SweepScanKind::all()[scan_idx].1;
        let other = SweepScanKind::all()[1 - scan_idx].1;
        for (_, strategy) in Strategy::all() {
            let rt = run(LocalJoinBackend::RTree, strategy, scan, &collections, &q, k, g);
            let sw = run(LocalJoinBackend::Sweep, strategy, scan, &collections, &q, k, g);
            let auto = run(LocalJoinBackend::Auto, strategy, scan, &collections, &q, k, g);
            let sw_other = run(LocalJoinBackend::Sweep, strategy, other, &collections, &q, k, g);
            prop_assert_eq!(rt.len(), sw.len());
            prop_assert_eq!(rt.len(), auto.len());
            prop_assert_eq!(sw.len(), sw_other.len());
            for (((a, b), c), d) in rt.iter().zip(&sw).zip(&auto).zip(&sw_other) {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{:?}: backend scores diverge: {} vs {}", strategy, scan, a, b
                );
                prop_assert_eq!(
                    a.to_bits(), c.to_bits(),
                    "{:?}/{:?}: auto diverges from the fixed backends: {} vs {}",
                    strategy, scan, a, c
                );
                prop_assert_eq!(
                    b.to_bits(), d.to_bits(),
                    "{:?}: sweep diverges between scan kinds: {} vs {}", strategy, b, d
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded/parallel local join at random chunk sizes — including
    /// 1 and longer than every candidate run — stays exact against the
    /// naive oracle, is bit-identical (ids and counters included) to its
    /// own sequential execution *and* to the scalar-scan execution (the
    /// chunked lane scan may not move a counter), and its shared score
    /// bound may only *prune*: `items_scanned` never exceeds the
    /// unbounded run's (and exactly equals the sequential path's, since
    /// neither the thread count nor the scan kind can change the plan).
    #[test]
    fn sharded_path_is_exact_thread_and_scan_invariant_and_bound_only_prunes(
        seed in 0u64..10_000,
        size in 20usize..60,
        k in 1usize..10,
        chunk_sel in 0usize..6,
        backend_idx in 0usize..3,
    ) {
        // Chunk sizes spanning the degenerate (1), several non-divisors,
        // and one longer than any candidate run.
        let chunk = [1usize, 2, 7, 19, 64, 100_000][chunk_sel];
        let backend = LocalJoinBackend::all()[backend_idx].1;
        let collections = uniform_collections(3, size, seed);
        let q = table1::q_om(PredicateParams::P1);
        let exec = |threads: usize, bound: bool, scan: SweepScanKind| {
            let mut config = TkijConfig::default()
                .with_granules(5)
                .with_reducers(3)
                .with_local_backend(backend)
                .with_sweep_scan(scan)
                .with_probe_chunk_items(chunk);
            if !bound {
                config = config.without_intra_bound();
            }
            let engine = Tkij::with_cluster(
                config,
                ClusterConfig::default().with_intra_join_threads(threads),
            );
            let dataset = engine.prepare(collections.clone()).unwrap();
            engine.execute(&dataset, &q, k).unwrap()
        };
        let seq = exec(0, true, SweepScanKind::Chunked);
        let par = exec(2, true, SweepScanKind::Chunked);
        let unbounded = exec(2, false, SweepScanKind::Chunked);
        let scalar = exec(0, true, SweepScanKind::Scalar);

        // Exact vs the oracle.
        let refs: Vec<&IntervalCollection> =
            q.vertices.iter().map(|c| &collections[c.0 as usize]).collect();
        let expected = naive_topk(&q, &refs, k);
        prop_assert_eq!(par.results.len(), expected.len(), "chunk={}", chunk);
        for (got, want) in par.results.iter().zip(&expected) {
            prop_assert!(
                (got.score - want.score).abs() < 1e-9,
                "chunk={}: {} vs oracle {}", chunk, got.score, want.score
            );
        }
        // Thread-invariance: same plan, bit-identical execution record.
        prop_assert_eq!(seq.results.len(), par.results.len());
        for (a, b) in seq.results.iter().zip(&par.results) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            prop_assert_eq!(&a.ids, &b.ids, "chunk={}: tie-breaks diverge", chunk);
        }
        prop_assert_eq!(seq.items_scanned(), par.items_scanned());
        prop_assert_eq!(seq.index_probes(), par.index_probes());
        prop_assert_eq!(seq.probe_chunks(), par.probe_chunks());
        prop_assert_eq!(seq.tuples_scored(), par.tuples_scored());
        // Scan-kind invariance, end to end: the scalar-scan execution is
        // bit-identical to the chunked one — results (ids included) and
        // every work counter.
        prop_assert_eq!(seq.results.len(), scalar.results.len());
        for (a, b) in seq.results.iter().zip(&scalar.results) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            prop_assert_eq!(&a.ids, &b.ids, "chunk={}: scan kinds exchange ties", chunk);
        }
        prop_assert_eq!(seq.items_scanned(), scalar.items_scanned());
        prop_assert_eq!(seq.index_probes(), scalar.index_probes());
        prop_assert_eq!(seq.probe_chunks(), scalar.probe_chunks());
        prop_assert_eq!(seq.tuples_scored(), scalar.tuples_scored());
        // The shared bound may only prune: identical scores, never more
        // scans than the unbounded (maximally stale) run.
        for (a, b) in par.results.iter().zip(&unbounded.results) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        prop_assert!(
            par.items_scanned() <= unbounded.items_scanned(),
            "chunk={}: bound added scans: {} vs {}",
            chunk, par.items_scanned(), unbounded.items_scanned()
        );
    }
}

/// The auto-selection acceptance property, locked as a test on the
/// fig15 workload family the selector was calibrated against (`Qo,m`,
/// `k = 100`, lengths 1–100, `g = 20`, `r = 4`, seed 7): across the
/// density sweep, `Auto`'s scan effort (`items_scanned`) tracks the
/// better fixed backend within 10% at every density point — it never
/// inherits the worse backend's overhead. (Measured, the per-bucket
/// mixture actually *undercuts* both fixed backends at the banded
/// points.)
#[test]
fn auto_tracks_better_backend_scan_effort_across_densities() {
    let q = table1::q_om(PredicateParams::P1);
    // (size, span) points covering the selector's three regimes: sparse
    // small-bucket (sweep), populous mid-density band (rtree), and very
    // dense (sweep). Average bucket cardinality ≈ size/20, density ≈
    // size·50.5/span.
    for &(size, span) in &[(3000usize, 50_000i64), (3000, 5_000), (3000, 1_250), (6_000, 20_000)] {
        let mut scanned = std::collections::HashMap::new();
        for (name, backend) in LocalJoinBackend::all() {
            let engine = Tkij::new(
                TkijConfig::default()
                    .with_granules(20)
                    .with_reducers(4)
                    .with_local_backend(backend),
            );
            let collections: Vec<IntervalCollection> = (0..3u32)
                .map(|c| {
                    tkij::datagen::synthetic::uniform_collection(
                        CollectionId(c),
                        &tkij::datagen::synthetic::SyntheticConfig {
                            size,
                            start_range: (0, span),
                            length_range: (1, 100),
                            seed: 7,
                        },
                    )
                })
                .collect();
            let dataset = engine.prepare(collections).unwrap();
            let report = engine.execute(&dataset, &q, 100).unwrap();
            scanned.insert(name, report.items_scanned());
        }
        let better = scanned["rtree"].min(scanned["sweep"]);
        let ratio = scanned["auto"] as f64 / better.max(1) as f64;
        assert!(
            ratio <= 1.10,
            "size {size} span {span}: auto scanned {} vs better fixed {} (ratio {ratio:.3}); \
             all: {scanned:?}",
            scanned["auto"],
            better
        );
    }
}

#[test]
fn early_termination_fires_with_the_sweep_backend() {
    // A workload with a dominant score cluster: once k high scorers are
    // found, dominated combinations must be skipped by the runtime
    // early-termination check regardless of the backend.
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(10)
            .with_reducers(2)
            .with_local_backend(LocalJoinBackend::Sweep)
            .without_pruning(),
    );
    let dataset = engine.prepare(uniform_collections(2, 120, 31)).unwrap();
    let q = {
        use tkij::temporal::{predicate::TemporalPredicate, query::QueryEdge};
        Query::new(
            vec![CollectionId(0), CollectionId(1)],
            vec![QueryEdge {
                src: 0,
                dst: 1,
                predicate: TemporalPredicate::meets(PredicateParams::P1),
            }],
            Aggregation::NormalizedSum,
        )
        .unwrap()
    };
    let report = engine.execute(&dataset, &q, 3).unwrap();
    let assigned: usize = report.local_stats.iter().map(|s| s.combos_assigned).sum();
    let processed: usize = report.local_stats.iter().map(|s| s.combos_processed).sum();
    assert!(processed > 0);
    assert!(
        processed < assigned,
        "early termination must skip dominated combos with the sweep backend \
         (processed {processed} of {assigned})"
    );
}
