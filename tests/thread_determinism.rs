//! Thread-count determinism of the full pipeline's **work counters**:
//! every deterministic field of the `ExecutionReport` (results, local
//! join telemetry, TopBuckets and distribution phase counters, shuffle
//! accounting — everything except wall timings) must be bit-identical
//! for `worker_threads` ∈ {0, 1, 2, 4} on a seeded synthetic workload —
//! and, since the vectorized-lanes rework, across the sweep scan kinds
//! `{Scalar, Chunked}` too: the scan kind is a pure wall-clock knob, so
//! one reference fingerprint must cover the whole
//! kind × thread-count grid.
//!
//! This is what makes parallelism/vectorization work safe to land: any
//! scheduling- or lane-dependent counter or result drift fails here
//! before it can hide behind timing noise.

use tkij::prelude::*;

/// One job's `ShuffleStats` fields, in registry order.
type SpillFp = (u64, u64, u64, u64);

/// Every deterministic (non-timing) quantity of one execution, in a
/// directly comparable shape.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    results: Vec<(Vec<u64>, u64)>,
    local_stats: Vec<tkij::core::LocalJoinStats>,
    reducer_kth_bits: Vec<u64>,
    topbuckets: (usize, usize, usize, usize, usize, usize, u128, u128),
    distribution: (u64, u64, u64, u64, u64),
    join_shuffle: u64,
    merge_shuffle: u64,
    buckets: (u64, u64),
    /// Serialized-shuffle spill accounting of (join, merge). All-zero on
    /// the in-memory transport; under `TKIJ_SPILL_THRESHOLD` every cell
    /// of the grid runs the same threshold, so the full stats — segment
    /// and byte counts included — must agree bit for bit.
    shuffle: (SpillFp, SpillFp),
}

/// The four `ShuffleStats` fields of one job, in registry order.
fn shuffle_fp(m: &tkij::mapreduce::JobMetrics) -> SpillFp {
    (m.shuffle.records_spilled, m.shuffle.spill_segments, m.shuffle.spill_bytes, m.shuffle.checksum)
}

fn fingerprint(report: &ExecutionReport) -> Fingerprint {
    Fingerprint {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        local_stats: report.local_stats.clone(),
        reducer_kth_bits: report.reducer_kth_scores.iter().map(|s| s.to_bits()).collect(),
        topbuckets: (
            report.topbuckets.candidates,
            report.topbuckets.selected,
            report.topbuckets.solver_calls,
            report.topbuckets.pruned_local,
            report.topbuckets.pruned_merge,
            report.topbuckets.worker_groups,
            report.topbuckets.total_results,
            report.topbuckets.selected_results,
        ),
        distribution: (
            report.distribution.assignments_scored,
            report.distribution.cap_fallbacks,
            report.distribution.estimated_shuffle_records,
            report.distribution.replication_factor.to_bits(),
            report.distribution.result_imbalance.to_bits(),
        ),
        join_shuffle: report.join.total_shuffle_records(),
        merge_shuffle: report.merge.total_shuffle_records(),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
        shuffle: (shuffle_fp(&report.join), shuffle_fp(&report.merge)),
    }
}

fn run_with_threads(backend: LocalJoinBackend, scan: SweepScanKind, threads: usize) -> Fingerprint {
    let engine = Tkij::with_cluster(
        TkijConfig::default()
            .with_granules(6)
            .with_reducers(4)
            .with_local_backend(backend)
            .with_sweep_scan(scan),
        ClusterConfig { worker_threads: threads, ..Default::default() },
    );
    let dataset = engine.prepare(uniform_collections(3, 100, 555)).unwrap();
    let q = table1::q_om(PredicateParams::P1);
    fingerprint(&engine.execute(&dataset, &q, 10).unwrap())
}

#[test]
fn work_counters_identical_across_worker_threads_and_scan_kinds() {
    for (name, backend) in LocalJoinBackend::all() {
        // One reference per backend: the scalar scan kind, sequential.
        // Every (scan kind, thread count) cell must reproduce it bit
        // for bit — the scan kind may not shift a single counter even
        // on the R-tree backend (where it is simply unused).
        let reference = run_with_threads(backend, SweepScanKind::Scalar, 0);
        assert!(!reference.results.is_empty(), "{name}: workload produces results");
        assert!(reference.local_stats.iter().any(|s| s.index_probes > 0), "{name}");
        for (sname, scan) in SweepScanKind::all() {
            for threads in [0usize, 1, 2, 4] {
                if scan == SweepScanKind::Scalar && threads == 0 {
                    continue; // the reference itself
                }
                let fp = run_with_threads(backend, scan, threads);
                assert_eq!(
                    fp, reference,
                    "{name}/{sname}: work counters diverge from scalar worker_threads=0 \
                     at worker_threads={threads}"
                );
            }
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Same engine, same dataset, executed twice: every counter (and every
    // score bit) must repeat exactly — the property bench_smoke's exact
    // baseline keys rely on.
    let engine = Tkij::new(
        TkijConfig::default()
            .with_granules(5)
            .with_reducers(3)
            .with_local_backend(LocalJoinBackend::Auto),
    );
    let dataset = engine.prepare(uniform_collections(3, 80, 777)).unwrap();
    let q = table1::q_sm(PredicateParams::P2);
    let a = fingerprint(&engine.execute(&dataset, &q, 7).unwrap());
    let b = fingerprint(&engine.execute(&dataset, &q, 7).unwrap());
    assert_eq!(a, b);
}
