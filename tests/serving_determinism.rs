//! Concurrent-serving determinism: a query served by a shared
//! `TkijServer` must produce results and a **work-counter fingerprint**
//! bit-identical to running it alone through `Tkij::execute` — whether
//! it runs solo, repeated (plan-cache hits), or interleaved with other
//! query shapes from `threads ∈ {1, 2, 4}` concurrent handles.
//!
//! The serving counters themselves are also pinned: with the plan cache
//! enabled, misses equal the number of distinct served shapes and hits
//! the remainder, regardless of interleaving — the property that lets
//! `bench_serving` gate them exactly.

use std::sync::Arc;
use tkij::prelude::*;

/// One job's `ShuffleStats` fields, in registry order.
type SpillFp = (u64, u64, u64, u64);

/// Every deterministic (non-timing) quantity of one execution, in a
/// directly comparable shape (the same capture as the thread battery).
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    results: Vec<(Vec<u64>, u64)>,
    local_stats: Vec<tkij::core::LocalJoinStats>,
    reducer_kth_bits: Vec<u64>,
    topbuckets: (usize, usize, usize, usize, usize, usize, u128, u128),
    distribution: (u64, u64, u64, u64, u64),
    join_shuffle: u64,
    merge_shuffle: u64,
    buckets: (u64, u64),
    /// Serialized-shuffle spill accounting of (join, merge) — all-zero on
    /// the in-memory transport; serving must reproduce the solo path's
    /// spill counters exactly when spilling is forced.
    shuffle: (SpillFp, SpillFp),
}

/// The four `ShuffleStats` fields of one job, in registry order.
fn shuffle_fp(m: &tkij::mapreduce::JobMetrics) -> SpillFp {
    (m.shuffle.records_spilled, m.shuffle.spill_segments, m.shuffle.spill_bytes, m.shuffle.checksum)
}

fn fingerprint(report: &ExecutionReport) -> Fingerprint {
    Fingerprint {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        local_stats: report.local_stats.clone(),
        reducer_kth_bits: report.reducer_kth_scores.iter().map(|s| s.to_bits()).collect(),
        topbuckets: (
            report.topbuckets.candidates,
            report.topbuckets.selected,
            report.topbuckets.solver_calls,
            report.topbuckets.pruned_local,
            report.topbuckets.pruned_merge,
            report.topbuckets.worker_groups,
            report.topbuckets.total_results,
            report.topbuckets.selected_results,
        ),
        distribution: (
            report.distribution.assignments_scored,
            report.distribution.cap_fallbacks,
            report.distribution.estimated_shuffle_records,
            report.distribution.replication_factor.to_bits(),
            report.distribution.result_imbalance.to_bits(),
        ),
        join_shuffle: report.join.total_shuffle_records(),
        merge_shuffle: report.merge.total_shuffle_records(),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
        shuffle: (shuffle_fp(&report.join), shuffle_fp(&report.merge)),
    }
}

const K: usize = 8;
const ROUNDS: usize = 2;

/// The mixed query-shape workload every serving run interleaves.
fn mixed_queries() -> Vec<Query> {
    vec![
        table1::q_om(PredicateParams::P1),
        table1::q_oo(PredicateParams::P1),
        table1::q_sm(PredicateParams::P2),
        table1::q_ss(PredicateParams::P1),
    ]
}

fn engine(backend: LocalJoinBackend) -> Tkij {
    Tkij::new(TkijConfig::default().with_granules(6).with_reducers(4).with_local_backend(backend))
}

/// Serves every query `ROUNDS` times from each of `threads` concurrent
/// handles (each thread starts the rotation at its own offset, so
/// different shapes genuinely interleave), asserting every served
/// report reproduces its solo reference bit for bit.
fn assert_serving_matches_solo(backend: LocalJoinBackend, threads: usize) {
    let engine = engine(backend);
    let dataset = engine.prepare(uniform_collections(3, 80, 555)).unwrap();
    let queries = mixed_queries();
    let solo: Vec<Fingerprint> =
        queries.iter().map(|q| fingerprint(&engine.execute(&dataset, q, K).unwrap())).collect();

    let server = Arc::new(engine.serve(dataset));
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads {
            let handle = server.handle();
            let queries = &queries;
            workers.push(scope.spawn(move || {
                let mut got = Vec::new();
                for round in 0..ROUNDS {
                    for i in 0..queries.len() {
                        let qi = (i + t + round) % queries.len();
                        let report = handle.query(&queries[qi], K).unwrap();
                        got.push((qi, fingerprint(&report)));
                    }
                }
                got
            }));
        }
        for worker in workers {
            for (qi, fp) in worker.join().unwrap() {
                assert_eq!(
                    fp, solo[qi],
                    "backend {backend:?}, threads {threads}: served query {qi} diverges \
                     from its solo fingerprint"
                );
            }
        }
    });

    // The serving counters are interleaving-independent: one miss per
    // distinct shape, hits for every repeat, and no evictions — the
    // mix sits far below the default plan-cache capacity.
    let stats = server.stats();
    let total = (threads * ROUNDS * queries.len()) as u64;
    let shapes = queries.len() as u64;
    assert_eq!(stats.queries, total);
    assert_eq!(stats.plan_cache_misses, shapes);
    assert_eq!(stats.plan_cache_hits, total - shapes);
    assert_eq!(stats.plan_cache_evictions, 0);
    assert_eq!(server.plan_cache_len(), queries.len());

    // Latency is artifact-only telemetry, but its sample count is a
    // counter: every served query must land in the histogram.
    let latency = server.latency();
    assert_eq!(latency.samples, total);
    assert!(latency.p50_ms <= latency.p95_ms && latency.p95_ms <= latency.p99_ms);
}

#[test]
fn served_fingerprints_match_solo_at_all_thread_counts() {
    for threads in [1usize, 2, 4] {
        assert_serving_matches_solo(LocalJoinBackend::default(), threads);
    }
}

#[test]
fn auto_backend_serving_matches_solo_interleaved() {
    // The pooled Auto path: shared per-(collection, bucket) indexes must
    // record the same statistics-planned choices as per-query builds.
    assert_serving_matches_solo(LocalJoinBackend::Auto, 2);
}

#[test]
fn rtree_backend_serving_matches_solo_interleaved() {
    assert_serving_matches_solo(LocalJoinBackend::RTree, 2);
}

#[test]
fn repeated_serving_runs_are_bit_identical() {
    // Two servers over identically prepared datasets serve the same
    // interleaved workload: every fingerprint and the final serving
    // counters must repeat exactly.
    let run = || {
        let engine = engine(LocalJoinBackend::default());
        let dataset = engine.prepare(uniform_collections(3, 80, 777)).unwrap();
        let server = engine.serve(dataset);
        let mut fps = Vec::new();
        for q in mixed_queries() {
            for _ in 0..2 {
                fps.push(fingerprint(&server.query(&q, K).unwrap()));
            }
        }
        (fps, server.stats())
    };
    let (fps_a, stats_a) = run();
    let (fps_b, stats_b) = run();
    assert_eq!(fps_a, fps_b);
    assert_eq!(stats_a, stats_b);
}
