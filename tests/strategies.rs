//! Cross-strategy agreement and TopBuckets behavior (paper §3.3, §4.2.3).

use tkij::prelude::*;

fn scores(report: &ExecutionReport) -> Vec<f64> {
    report.results.iter().map(|t| t.score).collect()
}

#[test]
fn all_strategies_return_identical_scores() {
    let collections = uniform_collections(3, 55, 70);
    let q = table1::q_sfm(PredicateParams::P1);
    let mut reference: Option<Vec<f64>> = None;
    for (name, strategy) in Strategy::all() {
        let engine = Tkij::new(
            TkijConfig::default().with_granules(6).with_reducers(4).with_strategy(strategy),
        );
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 9).unwrap();
        let s = scores(&report);
        match &reference {
            None => reference = Some(s),
            Some(r) => {
                assert_eq!(r.len(), s.len(), "{name}");
                for (a, b) in r.iter().zip(&s) {
                    assert!((a - b).abs() < 1e-9, "{name}");
                }
            }
        }
    }
}

#[test]
fn two_phase_refinement_never_grows_the_selection() {
    // two-phase = loose selection + exact refinement + re-selection, so
    // |Ω_{k,S}| can only shrink or stay equal; brute-force (exact bounds
    // from the start) is at least as tight as loose.
    let collections = uniform_collections(3, 120, 41);
    let q = table1::q_m_star(3, PredicateParams::P1);
    let mut selected = std::collections::HashMap::new();
    for (name, strategy) in Strategy::all() {
        let engine = Tkij::new(
            TkijConfig::default().with_granules(8).with_reducers(4).with_strategy(strategy),
        );
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 5).unwrap();
        selected.insert(name, (report.topbuckets.selected, report.topbuckets.candidates));
    }
    let (loose, cand_l) = selected["loose"];
    let (two, cand_t) = selected["two-phase"];
    let (brute, cand_b) = selected["brute-force"];
    assert_eq!(cand_l, cand_t);
    assert_eq!(cand_l, cand_b);
    assert!(two <= loose, "two-phase must not select more than loose ({two} vs {loose})");
    assert!(brute <= loose, "brute-force bounds are at least as tight ({brute} vs {loose})");
}

#[test]
fn solver_effort_ranks_strategies() {
    // loose: O(|E|·pairs) solver calls; brute-force: one per combination
    // (n-ary); two-phase: loose + refinements. On a 3-vertex query with
    // b buckets per vertex: pairs = 2b², combos = b³ — brute-force must
    // invoke the solver more often than loose for b > 2·arity.
    let collections = uniform_collections(3, 200, 9);
    let q = table1::q_oo(PredicateParams::P1);
    let mut calls = std::collections::HashMap::new();
    for (name, strategy) in Strategy::all() {
        let engine = Tkij::new(
            TkijConfig::default().with_granules(10).with_reducers(4).with_strategy(strategy),
        );
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 5).unwrap();
        calls.insert(name, report.topbuckets.solver_calls);
    }
    assert!(
        calls["loose"] < calls["brute-force"],
        "loose {} must beat brute-force {}",
        calls["loose"],
        calls["brute-force"]
    );
    assert!(calls["two-phase"] >= calls["loose"], "two-phase refines on top of loose");
}

#[test]
fn topbuckets_worker_partitioning_is_transparent() {
    let collections = uniform_collections(3, 80, 3);
    let q = table1::q_om(PredicateParams::P2);
    let mut reference: Option<Vec<f64>> = None;
    for workers in [1usize, 2, 6, 64] {
        let mut cfg = TkijConfig::default().with_granules(7).with_reducers(4);
        cfg.topbuckets_workers = workers;
        let engine = Tkij::new(cfg);
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 8).unwrap();
        let s = scores(&report);
        match &reference {
            None => reference = Some(s),
            Some(r) => {
                for (a, b) in r.iter().zip(&s) {
                    assert!((a - b).abs() < 1e-9, "workers={workers}");
                }
            }
        }
    }
}

#[test]
fn pruning_improves_with_finer_granularity() {
    // Fig. 10c's driving effect: more granules → tighter buckets → larger
    // share of the potential result space pruned (for a fixed query/k).
    let collections = uniform_collections(3, 400, 21);
    let q = table1::q_om(PredicateParams::P1);
    let mut last = -1.0f64;
    for g in [5u32, 20, 60] {
        let engine = Tkij::new(TkijConfig::default().with_granules(g).with_reducers(6));
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 5).unwrap();
        let pruned = report.pruned_pct();
        assert!(
            pruned >= last - 5.0,
            "pruning should not collapse as g grows: g={g}: {pruned} after {last}"
        );
        last = last.max(pruned);
    }
    assert!(last > 50.0, "fine granularity should prune most of the space, got {last}%");
}
