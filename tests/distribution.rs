//! Workload-distribution invariants and the DTB-vs-LPT comparison
//! (paper §3.4 and §4.2.2), exercised through the public facade.

use tkij::core::{distribute, run_topbuckets};
use tkij::prelude::*;
use tkij::solver::SolverConfig;

fn setup(seed: u64, size: usize) -> (Tkij, PreparedDataset, Query) {
    let engine = Tkij::new(TkijConfig::default().with_granules(10).with_reducers(6));
    let dataset = engine.prepare(uniform_collections(3, size, seed)).unwrap();
    let q = table1::q_om(PredicateParams::P2);
    (engine, dataset, q)
}

#[test]
fn assignment_invariants_hold_for_both_policies() {
    let (_, dataset, q) = setup(11, 150);
    let (selected, _) =
        run_topbuckets(&q, &dataset.matrices, 100, Strategy::Loose, &SolverConfig::default(), 2);
    for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
        let a = distribute(&selected, policy, 6, &q, &dataset.matrices);
        // 1. Every combination lands on exactly one reducer.
        let total: usize = a.reducer_combos.iter().map(Vec::len).sum();
        assert_eq!(total, selected.len(), "{policy:?}");
        // 2. Every bucket of every combination is mapped to its reducer.
        for ci in 0..selected.len() {
            let rj = a.combo_reducer[ci];
            for (v, &b) in selected.buckets(ci).iter().enumerate() {
                assert!(
                    a.bucket_map[&(v as u16, b)].contains(&rj),
                    "{policy:?}: combo {ci} bucket not shipped"
                );
            }
        }
        // 3. Potential-result accounting is consistent.
        let sum: u128 = a.reducer_results.iter().sum();
        assert_eq!(sum, selected.total_results(), "{policy:?}");
        // 4. Replication ≥ 1 by definition.
        assert!(a.replication_factor >= 1.0 - 1e-12, "{policy:?}");
    }
}

#[test]
fn both_policies_yield_identical_final_scores() {
    let collections = uniform_collections(3, 120, 23);
    let q = table1::q_ss(PredicateParams::P2);
    let mut reference: Option<Vec<f64>> = None;
    for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
        let engine = Tkij::new(
            TkijConfig::default().with_granules(10).with_reducers(6).with_distribution(policy),
        );
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 20).unwrap();
        let scores: Vec<f64> = report.results.iter().map(|t| t.score).collect();
        match &reference {
            None => reference = Some(scores),
            Some(r) => {
                assert_eq!(r.len(), scores.len());
                for (a, b) in r.iter().zip(&scores) {
                    assert!((a - b).abs() < 1e-9, "{policy:?}");
                }
            }
        }
    }
}

#[test]
fn dtb_spreads_high_ub_combos_more_evenly_than_lpt() {
    // The paper's core distribution claim (§4.2.2): DTB gives every
    // reducer a fair share of high-scoring combinations. We measure the
    // spread of the top-r combinations (by UB) across reducers.
    let (_, dataset, q) = setup(17, 400);
    let (selected, _) =
        run_topbuckets(&q, &dataset.matrices, 1000, Strategy::Loose, &SolverConfig::default(), 2);
    let r = 6;
    if selected.len() < r {
        return; // degenerate selection; nothing to compare
    }
    let order = selected.indices_by_ub_desc();
    let spread = |policy: DistributionPolicy| -> usize {
        let a = distribute(&selected, policy, r, &q, &dataset.matrices);
        let reducers: std::collections::HashSet<u32> =
            order[..r].iter().map(|&i| a.combo_reducer[i as usize]).collect();
        reducers.len()
    };
    let dtb = spread(DistributionPolicy::Dtb);
    let lpt = spread(DistributionPolicy::Lpt);
    assert_eq!(dtb, r, "DTB must place the top-r UB combos on r distinct reducers");
    assert!(dtb >= lpt, "DTB spread {dtb} must dominate LPT spread {lpt}");
}

#[test]
fn join_shuffle_matches_assignment_estimate() {
    let collections = uniform_collections(3, 90, 31);
    for policy in [DistributionPolicy::Dtb, DistributionPolicy::Lpt] {
        let engine = Tkij::new(
            TkijConfig::default().with_granules(8).with_reducers(5).with_distribution(policy),
        );
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &table1::q_oo(PredicateParams::P1), 7).unwrap();
        assert_eq!(
            report.join.total_shuffle_records(),
            report.distribution.estimated_shuffle_records,
            "{policy:?}"
        );
        assert_eq!(report.join.shuffle_records.len(), 5);
    }
}

#[test]
fn reducer_count_does_not_change_results() {
    let collections = uniform_collections(3, 70, 53);
    let q = table1::q_fb(PredicateParams::P1);
    let mut reference: Option<Vec<f64>> = None;
    for r in [1usize, 2, 7, 24, 64] {
        let engine = Tkij::new(TkijConfig::default().with_granules(6).with_reducers(r));
        let dataset = engine.prepare(collections.clone()).unwrap();
        let report = engine.execute(&dataset, &q, 9).unwrap();
        let scores: Vec<f64> = report.results.iter().map(|t| t.score).collect();
        match &reference {
            None => reference = Some(scores),
            Some(rf) => {
                assert_eq!(rf.len(), scores.len(), "r={r}");
                for (a, b) in rf.iter().zip(&scores) {
                    assert!((a - b).abs() < 1e-9, "r={r}");
                }
            }
        }
    }
}
