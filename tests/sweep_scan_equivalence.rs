//! Scalar-oracle battery for the vectorized sweep lanes: the chunked
//! in-window scan (`SweepScanKind::Chunked`) must be **indistinguishable**
//! from the scalar reference (`SweepScanKind::Scalar`) in everything but
//! wall clock — identical visit set, identical visit *order*, identical
//! hit counts, and an identical `items_scanned` telemetry count, for
//! `window_query`, `item_chunks`, and `threshold_candidates` alike.
//!
//! This is the contract that lets the chunked kind be the engine default
//! without refreshing a single `BENCH_BASELINE.json` counter or
//! determinism fingerprint: if any of these assertions can fail, the
//! kinds are not interchangeable and the knob is broken.
//!
//! Coverage: randomized interval sets (duplicates, zero-width intervals,
//! touching runs) × randomized windows (zero-width, reversed, degenerate,
//! half-open infinite), plus pinned swept-run lengths `0`, `1`,
//! `LANE_WIDTH − 1`, `LANE_WIDTH`, `LANE_WIDTH + 1`, and
//! `8 × LANE_WIDTH + 3` — one run per chunk/tail code path of the mask
//! scan.

use proptest::prelude::*;
use tkij::index::lanes::LANE_WIDTH;
use tkij::index::{threshold_candidates, SweepIndex, SweepScanKind, Window};
use tkij::prelude::*;
use tkij::temporal::expr::Side;
use tkij::temporal::predicate::{PredicateKind, TemporalPredicate};

fn iv(id: u64, s: i64, e: i64) -> Interval {
    Interval::new(id, s, e).unwrap()
}

/// One probe's full observable behavior: ids in visit order + the
/// examined-items count.
fn probe(index: &SweepIndex, w: &Window) -> (Vec<u64>, u64) {
    let mut ids = Vec::new();
    let scanned = index.window_query(w, |i| ids.push(i.id));
    (ids, scanned)
}

/// Builds both kinds over the same items and asserts a window probe is
/// observationally identical; returns the (shared) observation.
fn assert_probe_identical(items: &[Interval], w: &Window) -> (Vec<u64>, u64) {
    let scalar = SweepIndex::build_with_scan(items.to_vec(), SweepScanKind::Scalar);
    let chunked = SweepIndex::build_with_scan(items.to_vec(), SweepScanKind::Chunked);
    let (ids_s, scanned_s) = probe(&scalar, w);
    let (ids_c, scanned_c) = probe(&chunked, w);
    assert_eq!(ids_c, ids_s, "visit sequence diverges for {w:?}");
    assert_eq!(scanned_c, scanned_s, "items_scanned diverges for {w:?}");
    (ids_c, scanned_c)
}

/// Pins a probe whose swept run has *exactly* `run_len` items, with a
/// mixed hit/miss mask pattern: `run_len` intervals share `end = 1000`
/// (the end-axis run the probe sweeps), every third one with a start
/// outside the start window (mask misses), and enough filler (distinct
/// ends, in-window starts) that the start run stays strictly longer —
/// so the probe must pick the end run and scan exactly `run_len` items.
fn pinned_run(run_len: usize) {
    let mut items = Vec::new();
    for i in 0..run_len as u64 {
        let start = if i % 3 == 0 { -10 - i as i64 } else { 2 * i as i64 };
        items.push(iv(i, start, 1_000));
    }
    for f in 0..(run_len as u64 + 2) {
        items.push(iv(1_000 + f, (f as i64 * 3) % 500, 2_000 + f as i64));
    }
    let w = Window { start: (0.0, 1_000.0), end: (1_000.0, 1_000.0) };
    let (ids, scanned) = assert_probe_identical(&items, &w);
    assert_eq!(scanned as usize, run_len, "swept run length must be exactly {run_len}");
    let expect: Vec<u64> = (0..run_len as u64).filter(|i| i % 3 != 0).collect();
    assert_eq!(ids, expect, "run_len = {run_len}: in-window subset in (end, start, id) order");
}

#[test]
fn every_chunk_and_tail_path_is_pinned() {
    // 0: empty run (early return); 1 and LANE_WIDTH-1: pure scalar tail;
    // LANE_WIDTH: exactly one full chunk, no tail; LANE_WIDTH+1: chunk +
    // 1-slot tail; 8*LANE_WIDTH+3: many chunks + 3-slot tail.
    for run_len in [0, 1, LANE_WIDTH - 1, LANE_WIDTH, LANE_WIDTH + 1, 8 * LANE_WIDTH + 3] {
        pinned_run(run_len);
    }
}

#[test]
fn degenerate_windows_are_identical_and_scan_free() {
    let items: Vec<Interval> = (0..100)
        .map(|i| iv(i, (i as i64 * 7) % 40, (i as i64 * 7) % 40 + (i as i64 % 5)))
        .collect();
    for w in [
        Window { start: (20.0, 10.0), end: (f64::NEG_INFINITY, f64::INFINITY) }, // reversed
        Window { start: (f64::NEG_INFINITY, f64::INFINITY), end: (30.0, 1.0) },  // reversed
        Window { start: (5.0, 1.0), end: (9.0, 3.0) },                           // both reversed
        Window { start: (f64::INFINITY, f64::NEG_INFINITY), end: (0.0, 50.0) },  // inverted ∞
        Window { start: (10_000.0, 20_000.0), end: (f64::NEG_INFINITY, f64::INFINITY) }, // disjoint
    ] {
        let (ids, scanned) = assert_probe_identical(&items, &w);
        assert_eq!((ids.len(), scanned), (0, 0), "{w:?}: degenerate windows never sweep");
    }
}

#[test]
fn item_chunks_are_kind_independent() {
    // The probe-stream sharding unit reads the backend's item order,
    // which the scan kind must not touch: chunk boundaries and contents
    // are identical, so the intra-join chunk plan cannot move.
    use tkij::index::CandidateSource;
    let items: Vec<Interval> =
        (0..70).map(|i| iv(i, (i as i64 * 13) % 90, (i as i64 * 13) % 90 + 20)).collect();
    let scalar = SweepIndex::build_with_scan(items.clone(), SweepScanKind::Scalar);
    let chunked = SweepIndex::build_with_scan(items, SweepScanKind::Chunked);
    assert_eq!(scalar.items(), chunked.items(), "item order is kind-independent");
    for chunk_items in [1usize, 7, 16, 70, 500] {
        let a: Vec<&[Interval]> = scalar.item_chunks(chunk_items).collect();
        let b: Vec<&[Interval]> = chunked.item_chunks(chunk_items).collect();
        assert_eq!(a, b, "chunk_items = {chunk_items}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random interval sets — duplicates (small value space), zero-width
    /// and touching intervals — × random windows, including zero-width
    /// and reversed axes: both kinds report the identical visit
    /// sequence, hit count, and scan count.
    #[test]
    fn window_probes_identical(
        points in proptest::collection::vec((0i64..60, 0i64..20), 0..250),
        ws in -5i64..70, ww in -10i64..40,
        we in -5i64..90, wh in -10i64..40,
        open_start in proptest::bool::ANY,
        open_end in proptest::bool::ANY,
    ) {
        let items: Vec<Interval> = points
            .iter()
            .enumerate()
            .map(|(i, (s, w))| iv(i as u64, *s, s + w))
            .collect();
        // Negative widths produce reversed (empty) axes on purpose.
        let w = Window {
            start: if open_start {
                (f64::NEG_INFINITY, f64::INFINITY)
            } else {
                (ws as f64, (ws + ww) as f64)
            },
            end: if open_end {
                (f64::NEG_INFINITY, f64::INFINITY)
            } else {
                (we as f64, (we + wh) as f64)
            },
        };
        let scalar = SweepIndex::build_with_scan(items.clone(), SweepScanKind::Scalar);
        let chunked = SweepIndex::build_with_scan(items.clone(), SweepScanKind::Chunked);
        let (ids_s, scanned_s) = probe(&scalar, &w);
        let (ids_c, scanned_c) = probe(&chunked, &w);
        prop_assert_eq!(&ids_c, &ids_s, "visit order diverges");
        prop_assert_eq!(scanned_c, scanned_s, "items_scanned diverges");
        // Both equal the linear-scan oracle as a *set* (order is the
        // backend's deterministic endpoint order, checked above).
        let mut got = ids_c;
        got.sort_unstable();
        let mut want: Vec<u64> =
            items.iter().filter(|i| w.contains(i)).map(|i| i.id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want, "visit set diverges from the linear oracle");
    }

    /// The join-facing probe path: `threshold_candidates` over random
    /// predicates, anchors, sides, and thresholds reports the identical
    /// candidate sequence and scan count for both kinds.
    #[test]
    fn threshold_probes_identical(
        kind_idx in 0usize..16,
        points in proptest::collection::vec((0i64..150, 0i64..40), 1..120),
        a_s in 0i64..150, a_w in 0i64..40,
        v in 0.0f64..1.0,
        anchor_left in proptest::bool::ANY,
    ) {
        let kind = PredicateKind::all()[kind_idx];
        let pred = TemporalPredicate::from_kind(kind, PredicateParams::P2, 8);
        let items: Vec<Interval> = points
            .iter()
            .enumerate()
            .map(|(i, (s, w))| iv(i as u64, *s, s + w))
            .collect();
        let scalar = SweepIndex::build_with_scan(items.clone(), SweepScanKind::Scalar);
        let chunked = SweepIndex::build_with_scan(items, SweepScanKind::Chunked);
        let anchor = iv(9_999, a_s, a_s + a_w);
        let side = if anchor_left { Side::Left } else { Side::Right };
        let mut a = Vec::new();
        let mut b = Vec::new();
        let scanned_s =
            threshold_candidates(&scalar, &pred, &anchor, side, v, |c| a.push(c.id));
        let scanned_c =
            threshold_candidates(&chunked, &pred, &anchor, side, v, |c| b.push(c.id));
        prop_assert_eq!(b, a, "{:?} side={:?} v={}: candidate order", kind, side, v);
        prop_assert_eq!(scanned_c, scanned_s, "{:?} side={:?} v={}: scan count", kind, side, v);
    }
}
