//! Out-of-core shuffle determinism: the serialized spill transport must
//! be **bit-transparent** — identical results (ids and score bits),
//! identical work counters, identical statistics — to the in-memory
//! transport on the full grid of spill thresholds `{0, 1 KiB, unbounded}`
//! × local-join backends × `worker_threads ∈ {0, 2}`, for both spill
//! sinks (in-memory segments and a real temp directory), plus repeat-run
//! bit-identity of the spill counters themselves.
//!
//! The invariants the `ShuffleStats` counters are pinned to:
//!
//! * `records_spilled` equals the job's total shuffle records under any
//!   threshold (every record is serialized; the threshold only chooses
//!   segment boundaries) and never varies with threads;
//! * `checksum` (xor-folded per-frame CRC-32) is invariant across
//!   thresholds, threads, and sinks — segmentation cannot change frame
//!   payloads;
//! * `spill_segments` / `spill_bytes` vary with the threshold but never
//!   with threads — the flush schedule is a pure function of the data.
//!
//! The in-memory reference pins `ShuffleMode::InMemory` explicitly so the
//! battery stays truthful under the CI leg that forces serialization
//! suite-wide through `TKIJ_SPILL_THRESHOLD`.

use tkij::mapreduce::{ShuffleMode, ShuffleStats, SpillSinkKind};
use tkij::prelude::*;

/// One job's `ShuffleStats` fields, in registry order.
type SpillFp = (u64, u64, u64, u64);

/// Every deterministic (non-timing) quantity of one execution, plus the
/// spill accounting, in a directly comparable shape.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    results: Vec<(Vec<u64>, u64)>,
    matrices: Vec<tkij::temporal::bucket::BucketMatrix>,
    local_stats: Vec<tkij::core::LocalJoinStats>,
    join_shuffle: (u64, u64),
    merge_shuffle: (u64, u64),
    buckets: (u64, u64),
    /// Serialized-shuffle spill accounting of (stats, join, merge).
    shuffle: (SpillFp, SpillFp, SpillFp),
}

/// The four `ShuffleStats` fields of one job, in registry order.
fn shuffle_fp(m: &tkij::mapreduce::JobMetrics) -> SpillFp {
    (m.shuffle.records_spilled, m.shuffle.spill_segments, m.shuffle.spill_bytes, m.shuffle.checksum)
}

/// One full pipeline run (prepare + execute) on a fixed seeded workload
/// under an explicit shuffle mode.
fn run(backend: LocalJoinBackend, threads: usize, shuffle: ShuffleMode) -> Fingerprint {
    let engine = Tkij::with_cluster(
        TkijConfig::default().with_granules(6).with_reducers(4).with_local_backend(backend),
        ClusterConfig { worker_threads: threads, shuffle, ..Default::default() },
    );
    let dataset = engine.prepare(uniform_collections(3, 100, 4242)).unwrap();
    let q = table1::q_om(PredicateParams::P1);
    let report = engine.execute(&dataset, &q, 10).unwrap();
    Fingerprint {
        results: report.results.iter().map(|t| (t.ids.clone(), t.score.to_bits())).collect(),
        matrices: dataset.matrices.clone(),
        local_stats: report.local_stats.clone(),
        join_shuffle: (report.join.total_shuffle_records(), report.join.total_shuffle_bytes()),
        merge_shuffle: (report.merge.total_shuffle_records(), report.merge.total_shuffle_bytes()),
        buckets: (report.buckets_rtree(), report.buckets_sweep()),
        shuffle: (
            shuffle_fp(&dataset.stats_metrics),
            shuffle_fp(&report.join),
            shuffle_fp(&report.merge),
        ),
    }
}

/// A fingerprint with the spill lanes cleared, for cross-transport
/// comparison: everything else must be bit-identical.
fn sans_spill(fp: &Fingerprint) -> Fingerprint {
    Fingerprint { shuffle: Default::default(), ..fp.clone() }
}

const THRESHOLDS: [u64; 3] = [0, 1024, u64::MAX];

fn serialized(threshold: u64) -> ShuffleMode {
    ShuffleMode::Serialized { spill_threshold_bytes: threshold, sink: SpillSinkKind::Memory }
}

#[test]
fn spill_grid_is_bit_identical_to_in_memory() {
    for (name, backend) in LocalJoinBackend::all() {
        let reference = run(backend, 0, ShuffleMode::InMemory);
        assert!(!reference.results.is_empty(), "{name}: workload produces results");
        assert_eq!(
            reference.shuffle,
            Default::default(),
            "{name}: the in-memory transport spills nothing"
        );
        // In-memory is thread-invariant (re-pinned here so the serialized
        // cells below compare against a battle-tested reference).
        assert_eq!(run(backend, 2, ShuffleMode::InMemory), reference, "{name}: in-memory");

        let mut checksums = Vec::new();
        for threshold in THRESHOLDS {
            let mut per_thread = Vec::new();
            for threads in [0usize, 2] {
                let fp = run(backend, threads, serialized(threshold));
                assert_eq!(
                    sans_spill(&fp),
                    sans_spill(&reference),
                    "{name}: serialized shuffle (threshold {threshold}, threads {threads}) \
                     changed a result or work counter"
                );
                for (job, (records, segments, bytes, _)) in
                    [("stats", fp.shuffle.0), ("join", fp.shuffle.1), ("merge", fp.shuffle.2)]
                {
                    assert!(records > 0, "{name}/{job}: serialization spills every record");
                    assert!(segments > 0 && bytes > 0, "{name}/{job}: segments are accounted");
                }
                // Every shuffled record serializes, regardless of threshold.
                assert_eq!(fp.shuffle.1 .0, reference.join_shuffle.0, "{name}: join spill count");
                assert_eq!(fp.shuffle.2 .0, reference.merge_shuffle.0, "{name}: merge spill count");
                per_thread.push(fp);
            }
            // The flush schedule is data-determined: segment/byte counts
            // may depend on the threshold, never on the thread knob.
            assert_eq!(
                per_thread[0].shuffle, per_thread[1].shuffle,
                "{name}: spill counters drifted across worker_threads at threshold {threshold}"
            );
            checksums.push((per_thread[0].shuffle.0 .3, per_thread[0].shuffle.1 .3));
        }
        // Xor-folded frame CRCs are segmentation-invariant.
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "{name}: shuffle checksum varies with the spill threshold: {checksums:?}"
        );
    }
}

#[test]
fn threshold_extremes_bound_the_segment_counts() {
    let backend = LocalJoinBackend::default();
    let fine = run(backend, 0, serialized(0));
    let coarse = run(backend, 0, serialized(u64::MAX));
    for (job, fine, coarse) in
        [("join", fine.shuffle.1, coarse.shuffle.1), ("merge", fine.shuffle.2, coarse.shuffle.2)]
    {
        // Threshold 0 flushes after every record: one segment each.
        assert_eq!(fine.1, fine.0, "{job}: threshold 0 makes a segment per record");
        // Unbounded buffering flushes once per nonempty (task, partition).
        assert!(coarse.1 < fine.1, "{job}: unbounded buffering coalesces segments");
        assert_eq!(coarse.0, fine.0, "{job}: the threshold never changes what is spilled");
        // Per-segment headers make finer spilling strictly larger on disk.
        assert!(fine.2 > coarse.2, "{job}: segment headers cost bytes");
    }
}

#[test]
fn temp_dir_sink_matches_the_memory_sink_bit_for_bit() {
    for threshold in [0u64, 1024] {
        let mem = run(LocalJoinBackend::default(), 2, serialized(threshold));
        let disk = run(
            LocalJoinBackend::default(),
            2,
            ShuffleMode::Serialized {
                spill_threshold_bytes: threshold,
                sink: SpillSinkKind::TempDir,
            },
        );
        // Full fingerprint equality — spill counters and checksums
        // included — between in-memory segments and real files.
        assert_eq!(mem, disk, "sinks diverge at threshold {threshold}");
    }
}

#[test]
fn repeated_spill_runs_are_bit_identical() {
    let a = run(LocalJoinBackend::Auto, 2, serialized(1024));
    let b = run(LocalJoinBackend::Auto, 2, serialized(1024));
    assert_eq!(a, b);
}

#[test]
fn report_shuffle_stats_merges_the_online_jobs() {
    // The `ExecutionReport::shuffle_stats` accessor: summed spill
    // counters, xor-folded checksum, join ⊕ merge.
    let engine = Tkij::with_cluster(
        TkijConfig::default().with_granules(6).with_reducers(4),
        ClusterConfig { shuffle: serialized(0), ..Default::default() },
    );
    let dataset = engine.prepare(uniform_collections(3, 100, 4242)).unwrap();
    let q = table1::q_om(PredicateParams::P1);
    let report = engine.execute(&dataset, &q, 10).unwrap();
    let merged = report.shuffle_stats();
    assert_eq!(
        merged.records_spilled,
        report.join.shuffle.records_spilled + report.merge.shuffle.records_spilled
    );
    assert_eq!(
        merged.spill_segments,
        report.join.shuffle.spill_segments + report.merge.shuffle.spill_segments
    );
    assert_eq!(
        merged.spill_bytes,
        report.join.shuffle.spill_bytes + report.merge.shuffle.spill_bytes
    );
    assert_eq!(merged.checksum, report.join.shuffle.checksum ^ report.merge.shuffle.checksum);
    assert_ne!(merged, ShuffleStats::default());
}
